//! # stembed — Stable Tuple Embeddings for Dynamic Databases
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! *"Stable Tuple Embeddings for Dynamic Databases"* (Toenshoff, Friedman,
//! Grohe, Kimelfeld — ICDE 2023, arXiv:2103.06766).
//!
//! The two embedding algorithms of the paper live in [`core`]
//! (`stembed-core`): the **FoRWaRD** algorithm (foreign-key random walk
//! embeddings trained with SGD statically, extended to new tuples by solving
//! a linear system) and a **dynamic Node2Vec** adaptation (skip-gram over a
//! bipartite fact/value graph, continued with frozen old vectors).
//!
//! ```
//! use stembed::reldb::movies::movies_database;
//! use stembed::core::{ForwardConfig, ForwardEmbedding};
//!
//! let db = movies_database();
//! let cfg = ForwardConfig { dim: 8, epochs: 3, ..ForwardConfig::small() };
//! let emb = ForwardEmbedding::train(&db, db.schema().relation_id("MOVIES").unwrap(), &cfg, 7).unwrap();
//! assert_eq!(emb.dim(), 8);
//! ```

pub use datasets;
pub use dbgraph;
pub use linalg;
pub use ml;
pub use node2vec;
pub use reldb;
pub use stembed_core as core;
