//! # stembed — Stable Tuple Embeddings for Dynamic Databases
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! *"Stable Tuple Embeddings for Dynamic Databases"* (Tönshoff, Friedman,
//! Grohe, Kimelfeld — ICDE 2023, [arXiv:2103.06766]).
//!
//! The two embedding algorithms of the paper live in [`core`]
//! (`stembed-core`): the **FoRWaRD** algorithm (foreign-key random walk
//! embeddings trained with SGD statically, extended to new tuples by solving
//! a linear system) and a **dynamic Node2Vec** adaptation (skip-gram over a
//! bipartite fact/value graph, continued with frozen old vectors).
//!
//! [arXiv:2103.06766]: https://arxiv.org/abs/2103.06766
//!
//! ## Workspace layout
//!
//! | crate | re-export | contents |
//! |---|---|---|
//! | `stembed-runtime` | [`runtime`] | deterministic RNG streams ([`runtime::DetRng`], [`runtime::stream_rng`]) and the shard-based parallel [`runtime::Runtime`] under every compute layer |
//! | `linalg` | [`linalg`] | dense matrices, QR/Cholesky/Jacobi-eigen, SVD pseudoinverse, least squares |
//! | `reldb` | [`reldb`] | in-memory relational database: schemas, foreign keys, cascade deletion journals, the paper's movies example |
//! | `dbgraph` | [`dbgraph`] | bipartite fact/value graph `G_D` and parallel Node2Vec walk sampling |
//! | `node2vec` | [`node2vec`] | SGNS training with frozen-vector dynamic continuation |
//! | `datasets` | [`datasets`] | synthetic generators for the paper's benchmark databases |
//! | `ml` | [`ml`] | downstream classifiers (RBF-SVM, logistic regression) and CV utilities |
//! | `stembed-core` | [`core`] | walk schemes, kernels, destination distributions, FoRWaRD training + dynamic extension, the [`core::TupleEmbedder`] trait |
//! | `repro` | — | experiment harness and `table1`–`table6`/`fig5` binaries |
//! | `bench` | — | criterion benchmarks (offline shim; see `scripts/bench.sh`) |
//!
//! Every randomised layer draws from seed-derived per-item RNG streams and
//! reduces in a fixed order, so results are **bit-identical for any shard
//! count** (`STEMBED_SHARDS`); `tests/determinism.rs` asserts this for walk
//! corpora, FoRWaRD training, dynamic extension, and Node2Vec end to end.
//!
//! ```
//! use stembed::reldb::movies::movies_database;
//! use stembed::core::{ForwardConfig, ForwardEmbedding};
//!
//! let db = movies_database();
//! let cfg = ForwardConfig { dim: 8, epochs: 3, ..ForwardConfig::small() };
//! let emb = ForwardEmbedding::train(&db, db.schema().relation_id("MOVIES").unwrap(), &cfg, 7).unwrap();
//! assert_eq!(emb.dim(), 8);
//! ```

pub use datasets;
pub use dbgraph;
pub use linalg;
pub use ml;
pub use node2vec;
pub use reldb;
pub use stembed_core as core;
pub use stembed_runtime as runtime;
