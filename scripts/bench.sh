#!/usr/bin/env bash
# Record the static-embedding benchmark (Table V + runtime shard scaling)
# into BENCH_static_embed.json at the repo root, so the perf trajectory of
# the workspace is tracked across PRs.
#
# Usage: scripts/bench.sh [--compare BASELINE.json] [extra cargo-bench args]
#
# With --compare, per-benchmark speedups against the baseline JSON (e.g.
# the committed BENCH_static_embed.json) are printed after the run:
# speedup = baseline median / new median, so >1.0 means faster.
#
# The `forward_shards` group trains the same FoRWaRD embedding at 1/2/4/8
# shards; outputs are bit-identical (tests/determinism.rs), only wall-clock
# may move. NOTE: the observable speedup is bounded by the machine —
# `nproc` cores cap the effective worker count, so a 1-core container
# reports a ratio of ~1.0 by construction.

set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE=""
if [[ "${1:-}" == "--compare" ]]; then
  BASELINE="${2:?--compare needs a baseline JSON path}"
  shift 2
fi

OUT="${BENCH_OUT:-BENCH_static_embed.json}"
case "$OUT" in
  /*) ABS_OUT="$OUT" ;;
  *) ABS_OUT="$PWD/$OUT" ;;
esac
if [[ -n "$BASELINE" ]]; then
  case "$BASELINE" in
    /*) ;;
    *) BASELINE="$PWD/$BASELINE" ;;
  esac
  # Snapshot now: OUT may be the baseline file itself.
  BASELINE_COPY="$(mktemp)"
  trap 'rm -f "$BASELINE_COPY"' EXIT
  cp "$BASELINE" "$BASELINE_COPY"
fi

echo "machine: $(nproc) core(s)"
STEMBED_BENCH_JSON="$ABS_OUT" cargo bench -p bench --bench static_embed "$@"

python3 - "$ABS_OUT" "${BASELINE_COPY:-}" <<'EOF'
import json, os, sys

path = sys.argv[1]
baseline_path = sys.argv[2] if len(sys.argv) > 2 and sys.argv[2] else None
with open(path) as f:
    results = json.load(f)

# Append machine context so the JSON is self-describing across runs.
report = {
    "bench": "static_embed",
    "cores": os.cpu_count(),
    "results": results,
}
with open(path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

shard = {
    r["id"].split("/")[-1]: r["median_ns"]
    for r in results
    if r["group"] == "forward_shards"
}
if "1" in shard and "4" in shard:
    ratio = shard["1"] / shard["4"]
    print(f"\nforward_shards: 4-shard speedup over 1 shard = {ratio:.2f}x "
          f"(on {os.cpu_count()} core(s); >=2x expected from 4+ cores)")
print(f"wrote {path}")

if baseline_path:
    with open(baseline_path) as f:
        base = json.load(f)
    base_results = base["results"] if isinstance(base, dict) else base
    base_by_key = {(r["group"], r["id"]): r["median_ns"] for r in base_results}
    print(f"\nspeedup vs baseline (baseline median / new median):")
    print(f"  {'benchmark':<28} {'baseline':>12} {'new':>12} {'speedup':>8}")
    worst = None
    for r in results:
        key = (r["group"], r["id"])
        if key not in base_by_key:
            print(f"  {r['group'] + '/' + r['id']:<28} {'—':>12} "
                  f"{r['median_ns'] / 1e6:>10.1f}ms {'new':>8}")
            continue
        ratio = base_by_key[key] / r["median_ns"]
        print(f"  {r['group'] + '/' + r['id']:<28} "
              f"{base_by_key[key] / 1e6:>10.1f}ms {r['median_ns'] / 1e6:>10.1f}ms "
              f"{ratio:>7.2f}x")
        if worst is None or ratio < worst[1]:
            worst = (r["id"], ratio)
    if worst:
        print(f"  worst speedup: {worst[0]} at {worst[1]:.2f}x")
EOF
