#!/usr/bin/env bash
# Record the static-embedding benchmark (Table V + runtime shard scaling)
# into BENCH_static_embed.json at the repo root, so the perf trajectory of
# the workspace is tracked across PRs.
#
# Usage: scripts/bench.sh [extra cargo-bench args]
#
# The `forward_shards` group trains the same FoRWaRD embedding at 1/2/4/8
# shards; outputs are bit-identical (tests/determinism.rs), only wall-clock
# may move. NOTE: the observable speedup is bounded by the machine —
# `nproc` cores cap the effective worker count, so a 1-core container
# reports a ratio of ~1.0 by construction.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_static_embed.json}"
case "$OUT" in
  /*) ABS_OUT="$OUT" ;;
  *) ABS_OUT="$PWD/$OUT" ;;
esac

echo "machine: $(nproc) core(s)"
STEMBED_BENCH_JSON="$ABS_OUT" cargo bench -p bench --bench static_embed "$@"

python3 - "$ABS_OUT" <<'EOF'
import json, os, sys

path = sys.argv[1]
with open(path) as f:
    results = json.load(f)

# Append machine context so the JSON is self-describing across runs.
report = {
    "bench": "static_embed",
    "cores": os.cpu_count(),
    "results": results,
}
with open(path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

shard = {
    r["id"].split("/")[-1]: r["median_ns"]
    for r in results
    if r["group"] == "forward_shards"
}
if "1" in shard and "4" in shard:
    ratio = shard["1"] / shard["4"]
    print(f"\nforward_shards: 4-shard speedup over 1 shard = {ratio:.2f}x "
          f"(on {os.cpu_count()} core(s); >=2x expected from 4+ cores)")
print(f"wrote {path}")
EOF
