#!/usr/bin/env bash
# Record benchmark JSON reports at the repo root (BENCH_<name>.json), so the
# perf trajectory of the workspace is tracked across PRs.
#
# Usage: scripts/bench.sh [--bench NAME]... [--compare [BASELINE.json]]
#                         [--full] [extra cargo-bench args]
#
#   --bench NAME  benchmark target to run and record (repeatable). Default:
#                 static_embed and dynamic_extend — the two tracked reports
#                 (Table V static training, Table VI one-tuple extension).
#   --compare     after each run, print per-benchmark speedups against the
#                 previously committed BENCH_<name>.json (speedup =
#                 baseline median / new median, so >1.0 means faster). An
#                 explicit baseline path may follow, but only with exactly
#                 one --bench.
#   --full        large-scale profile: datasets generated at scale 0.5
#                 (vs the 0.08–0.12 CI defaults) via STEMBED_BENCH_SCALE.
#                 Meant for the manual `bench-full` CI job or a beefy dev
#                 box — expect a multi-hour wall-clock on one core. Note
#                 that --compare against a committed CI-scale baseline
#                 compares different workloads; the ratios then measure
#                 scale, not regressions.
#
# The static report's `forward_shards` group trains the same FoRWaRD
# embedding at 1/2/4/8 shards; outputs are bit-identical
# (tests/determinism.rs), only wall-clock may move. NOTE: the observable
# shard speedup is bounded by the machine — `nproc` cores cap the effective
# worker count, so a 1-core container reports a ratio of ~1.0 by
# construction.

set -euo pipefail
cd "$(dirname "$0")/.."

BENCHES=()
COMPARE=0
BASELINE=""
EXTRA=()
while [[ $# -gt 0 ]]; do
  case "$1" in
    --bench)
      BENCHES+=("${2:?--bench needs a benchmark name}")
      shift 2
      ;;
    --compare)
      COMPARE=1
      if [[ "${2:-}" == *.json ]]; then
        BASELINE="$2"
        shift
      fi
      shift
      ;;
    --full)
      # Large-scale profile; an explicit STEMBED_BENCH_SCALE still wins so
      # the manual CI job can parameterise it.
      export STEMBED_BENCH_SCALE="${STEMBED_BENCH_SCALE:-0.5}"
      shift
      ;;
    *)
      EXTRA+=("$1")
      shift
      ;;
  esac
done
if [[ ${#BENCHES[@]} -eq 0 ]]; then
  BENCHES=(static_embed dynamic_extend)
fi
if [[ -n "$BASELINE" && ${#BENCHES[@]} -ne 1 ]]; then
  echo "error: an explicit --compare baseline needs exactly one --bench" >&2
  exit 2
fi

echo "machine: $(nproc) core(s)"
for bench in "${BENCHES[@]}"; do
  OUT="$PWD/BENCH_${bench}.json"
  BASELINE_COPY=""
  if [[ "$COMPARE" == 1 ]]; then
    base="${BASELINE:-$OUT}"
    case "$base" in
      /*) ;;
      *) base="$PWD/$base" ;;
    esac
    if [[ -f "$base" ]]; then
      # Snapshot now: the run overwrites OUT, which is the default baseline.
      BASELINE_COPY="$(mktemp)"
      cp "$base" "$BASELINE_COPY"
    else
      echo "note: no baseline $base for $bench; skipping comparison"
    fi
  fi

  echo
  echo "== $bench =="
  STEMBED_BENCH_JSON="$OUT" cargo bench -p bench --bench "$bench" \
    ${EXTRA[@]+"${EXTRA[@]}"}

  python3 - "$bench" "$OUT" "${BASELINE_COPY:-}" <<'EOF'
import json, os, sys

bench, path = sys.argv[1], sys.argv[2]
baseline_path = sys.argv[3] if len(sys.argv) > 3 and sys.argv[3] else None
with open(path) as f:
    results = json.load(f)

# Append machine context so the JSON is self-describing across runs.
report = {
    "bench": bench,
    "cores": os.cpu_count(),
    "results": results,
}
with open(path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")

shard = {
    r["id"].split("/")[-1]: r["median_ns"]
    for r in results
    if r["group"] == "forward_shards"
}
if "1" in shard and "4" in shard:
    ratio = shard["1"] / shard["4"]
    print(f"\nforward_shards: 4-shard speedup over 1 shard = {ratio:.2f}x "
          f"(on {os.cpu_count()} core(s); >=2x expected from 4+ cores)")
print(f"wrote {path}")

if baseline_path:
    with open(baseline_path) as f:
        base = json.load(f)
    base_results = base["results"] if isinstance(base, dict) else base
    base_by_key = {(r["group"], r["id"]): r["median_ns"] for r in base_results}
    print(f"\n{bench}: speedup vs baseline (baseline median / new median):")
    print(f"  {'benchmark':<36} {'baseline':>12} {'new':>12} {'speedup':>8}")
    worst = None
    for r in results:
        key = (r["group"], r["id"])
        if key not in base_by_key:
            print(f"  {r['group'] + '/' + r['id']:<36} {'—':>12} "
                  f"{r['median_ns'] / 1e6:>10.1f}ms {'new':>8}")
            continue
        ratio = base_by_key[key] / r["median_ns"]
        print(f"  {r['group'] + '/' + r['id']:<36} "
              f"{base_by_key[key] / 1e6:>10.1f}ms {r['median_ns'] / 1e6:>10.1f}ms "
              f"{ratio:>7.2f}x")
        if worst is None or ratio < worst[1]:
            worst = (r["id"], ratio)
    if worst:
        print(f"  worst speedup: {worst[0]} at {worst[1]:.2f}x")
EOF
  if [[ -n "$BASELINE_COPY" ]]; then
    rm -f "$BASELINE_COPY"
  fi
done
