//! Mondial-like database (May 1999, geographic multi-source integration).
//!
//! Table I shape: prediction relation `TARGET`, predicted attribute
//! `target` (binary: Christian-majority vs not, ≈ 114:71 imbalance scaled
//! to 206 samples), **40 relations**, 21,497 tuples, 167 attributes. As in
//! the real Mondial setup of the paper, the prediction relation is binary —
//! it contains *only* the country name and the hidden class — so every bit
//! of signal must travel across foreign keys: `TARGET → COUNTRY →`
//! satellite relations (religions, languages, ethnic groups carry the
//! class; dozens of other geographic satellites are realistic distractors).

use crate::synth::{DatasetParams, SynthCtx};
use crate::Dataset;
use reldb::{Database, Schema, SchemaBuilder, Value, ValueType};

/// The 38 satellite relations (name, number of payload attributes beyond
/// the key and the country FK). Totals: 38 relations, 85 payload attrs →
/// with 2 structural attrs each plus TARGET(2) and COUNTRY(4):
/// 38·2 + 85 + 6 = 167 attributes, matching Table I.
const SATELLITES: [(&str, usize); 38] = [
    ("RELIGION", 3),
    ("LANGUAGE", 3),
    ("ETHNICGROUP", 3),
    ("CITY", 3),
    ("PROVINCE", 3),
    ("ECONOMY", 3),
    ("POLITICS", 3),
    ("POPULATION", 3),
    ("BORDER", 3),
    ("MOUNTAIN", 2),
    ("RIVER", 2),
    ("LAKE", 2),
    ("SEA", 2),
    ("DESERT", 2),
    ("ISLAND", 2),
    ("AIRPORT", 2),
    ("ORGANIZATION", 2),
    ("MEMBER", 2),
    ("ENCOMPASSES", 2),
    ("LOCATED", 2),
    ("MOUNTAINSITE", 2),
    ("RIVERTHROUGH", 2),
    ("CITYPOP", 2),
    ("PROVPOP", 2),
    ("AGRICULTURE", 2),
    ("INDUSTRY", 2),
    ("SERVICE", 2),
    ("INFLATION", 2),
    ("UNEMPLOYMENT", 2),
    ("GDP", 2),
    ("DEPENDENT", 2),
    ("TREATY", 2),
    ("ALLIANCE", 2),
    ("COAST", 2),
    ("CLIMATE", 2),
    ("EXPORT", 2),
    ("IMPORT", 2),
    ("HERITAGE", 2),
];

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.relation("TARGET")
        .attr("country", ValueType::Text)
        .attr("target", ValueType::Text) // hidden prediction column
        .key(&["country"]);
    b.relation("COUNTRY")
        .attr("code", ValueType::Text)
        .attr("name", ValueType::Text)
        .attr("area", ValueType::Float)
        .attr("population", ValueType::Int)
        .key(&["code"]);
    for (name, payload) in SATELLITES {
        let mut rb = b
            .relation(name)
            .attr("sid", ValueType::Text)
            .attr("country", ValueType::Text);
        for p in 0..payload {
            // Payload types cycle text → float → int.
            let ty = match p % 3 {
                0 => ValueType::Text,
                1 => ValueType::Float,
                _ => ValueType::Int,
            };
            rb = rb.attr(format!("v{p}"), ty);
        }
        rb.key(&["sid"]);
    }
    b.foreign_key("TARGET", &["country"], "COUNTRY");
    for (name, _) in SATELLITES {
        b.foreign_key(name, &["country"], "COUNTRY");
    }
    b.build().expect("mondial schema is valid")
}

/// Generate the dataset.
pub fn generate(params: &DatasetParams) -> Dataset {
    let mut ctx = SynthCtx::new(params, 0x4d4f);
    let mut db = Database::new(schema());
    let pred = db.schema().relation_id("TARGET").unwrap();

    let n_countries = params.scaled(206, 30);
    let mut labels = Vec::with_capacity(n_countries);
    let mut countries: Vec<(String, usize)> = Vec::with_capacity(n_countries);
    for i in 0..n_countries {
        // Christian-majority : other ≈ 114 : 71 (paper §VI-A-2).
        let class = ctx.class_from_weights(&[114.0, 71.0]);
        let code = format!("M{i:03}");
        let area = Value::Float(ctx.float_in(10.0, 1000.0));
        let population = Value::Int(ctx.int_in(100, 90_000));
        db.insert_into(
            "COUNTRY",
            vec![
                Value::Text(code.clone()),
                ctx.noise_token("cname", 400),
                ctx.maybe_null(area),
                ctx.maybe_null(population),
            ],
        )
        .expect("country insert");
        let fact = db
            .insert_into("TARGET", vec![Value::Text(code.clone()), Value::Null])
            .expect("target insert");
        labels.push((fact, class));
        countries.push((code, class));
    }

    // Tuple budget: 21,497 total − 2·countries for TARGET/COUNTRY.
    let full_satellite_budget = 21_497 - 2 * 206;
    let signal_rows_full = 500usize; // per signal relation
    let noise_rows_full = (full_satellite_budget - 3 * signal_rows_full) / (SATELLITES.len() - 3);
    // Remainder rows land in the last satellite so full scale is exact.
    let remainder_full =
        full_satellite_budget - 3 * signal_rows_full - noise_rows_full * (SATELLITES.len() - 3);

    for (idx, (name, payload)) in SATELLITES.iter().enumerate() {
        let is_signal = idx < 3;
        let full_rows = if is_signal {
            signal_rows_full
        } else if idx == SATELLITES.len() - 1 {
            noise_rows_full + remainder_full
        } else {
            noise_rows_full
        };
        let rows = params.scaled(full_rows, n_countries.min(full_rows).max(10));
        for r in 0..rows {
            // Signal relations cover every country at least once.
            let (code, class) = if is_signal && r < countries.len() {
                countries[r].clone()
            } else {
                countries[ctx.index(countries.len())].clone()
            };
            let mut values = vec![
                Value::Text(format!("{}{r:05}", &name[..2].to_ascii_lowercase())),
                Value::Text(code),
            ];
            for p in 0..*payload {
                let v = match (p % 3, is_signal) {
                    (0, true) => ctx.class_token(name, class, 4),
                    (0, false) => ctx.noise_token(name, 12),
                    (1, true) => ctx.class_float(class, 50.0, 25.0, 15.0),
                    (1, false) => Value::Float(ctx.float_in(0.0, 100.0)),
                    (_, true) => ctx.class_int(class, 10.0, 5.0, 4.0),
                    (_, false) => Value::Int(ctx.int_in(0, 1000)),
                };
                values.push(ctx.maybe_null(v));
            }
            db.insert_into(name, values).expect("satellite insert");
        }
    }

    Dataset {
        name: "Mondial",
        db,
        prediction_rel: pred,
        class_attr: 1,
        labels,
        class_names: vec!["Christian", "non-Christian"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_one_shape() {
        let ds = generate(&DatasetParams::default());
        ds.validate().unwrap();
        assert_eq!(ds.sample_count(), 206);
        assert_eq!(ds.db.schema().relation_count(), 40);
        assert_eq!(ds.db.schema().total_attributes(), 167);
        assert_eq!(ds.db.total_facts(), 21_497);
        assert_eq!(ds.class_count(), 2);
        // ≈ 114:71 imbalance.
        let dist = ds.class_distribution();
        let frac = dist[0] as f64 / ds.sample_count() as f64;
        assert!((0.5..0.72).contains(&frac), "majority fraction {frac}");
    }

    #[test]
    fn prediction_relation_is_bare() {
        // The paper stresses that Mondial's target relation contains only
        // the country name and the class — no feature leakage possible.
        let ds = generate(&DatasetParams::tiny(9));
        let rel = ds.db.schema().relation(ds.prediction_rel);
        assert_eq!(rel.arity(), 2);
        for (_, fact) in ds.db.facts(ds.prediction_rel) {
            assert!(fact.get(1).is_null());
        }
    }

    #[test]
    fn signal_relations_cover_every_country() {
        let ds = generate(&DatasetParams::tiny(11));
        for name in ["RELIGION", "LANGUAGE", "ETHNICGROUP"] {
            let rel = ds.db.schema().relation_id(name).unwrap();
            let mut seen: std::collections::HashSet<String> = Default::default();
            for (_, fact) in ds.db.facts(rel) {
                seen.insert(fact.get(1).as_text().unwrap().to_string());
            }
            assert_eq!(seen.len(), ds.sample_count(), "{name} must cover all");
        }
    }
}
