//! Shared machinery for the synthetic dataset generators.

use reldb::Value;
use stembed_runtime::rng::DetRng;

/// Generation parameters shared by all five datasets.
#[derive(Debug, Clone, Copy)]
pub struct DatasetParams {
    /// RNG seed; generation is fully deterministic given the seed.
    pub seed: u64,
    /// Size multiplier: `1.0` reproduces the Table I tuple counts, smaller
    /// values shrink every relation proportionally (minimum sizes keep the
    /// databases well-formed). Used by quick experiment modes.
    pub scale: f64,
    /// Signal strength `α ∈ [0, 1]`: probability that a class-bearing
    /// categorical attribute draws from its class-specific pool rather than
    /// the shared noise pool; also scales the separation of numeric
    /// class-conditional means.
    pub signal: f64,
    /// Probability of nulling out a nullable attribute value (the real
    /// datasets contain missing values).
    pub p_null: f64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            seed: 2023,
            scale: 1.0,
            signal: 0.85,
            p_null: 0.02,
        }
    }
}

impl DatasetParams {
    /// Scaled count with a floor.
    pub fn scaled(&self, full: usize, min: usize) -> usize {
        ((full as f64 * self.scale).round() as usize).max(min)
    }

    /// A small-scale preset for tests and quick runs.
    pub fn tiny(seed: u64) -> Self {
        DatasetParams {
            seed,
            scale: 0.08,
            signal: 0.9,
            p_null: 0.02,
        }
    }
}

/// RNG + sampling helpers used by every generator.
pub struct SynthCtx {
    rng: DetRng,
    params: DatasetParams,
}

impl SynthCtx {
    /// Fresh context; `salt` decorrelates the five generators under a
    /// shared seed.
    pub fn new(params: &DatasetParams, salt: u64) -> Self {
        SynthCtx {
            rng: DetRng::seed_from_u64(params.seed.wrapping_mul(0x9e37).wrapping_add(salt)),
            params: *params,
        }
    }

    /// The generation parameters.
    pub fn params(&self) -> &DatasetParams {
        &self.params
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int_in(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.random_range(lo..hi)
    }

    /// Uniform index.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.random_range(0..n)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn float_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.random_range(lo..hi)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.random_range(0.0..1.0) < p
    }

    /// Standard normal via Box–Muller (the offline `rand` has no
    /// distributions module).
    pub fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A categorical token from a class-conditional pool family: with
    /// probability `signal` the token comes from the class's own pool of
    /// `pool` tokens, otherwise from a shared pool — this is how class
    /// signal is planted in satellite relations.
    pub fn class_token(&mut self, prefix: &str, class: usize, pool: usize) -> Value {
        let signal = self.params.signal;
        if self.chance(signal) {
            Value::Text(format!("{prefix}_c{class}_{}", self.index(pool)))
        } else {
            Value::Text(format!("{prefix}_shared_{}", self.index(pool * 2)))
        }
    }

    /// A class-free categorical token (pure noise attribute).
    pub fn noise_token(&mut self, prefix: &str, pool: usize) -> Value {
        Value::Text(format!("{prefix}_{}", self.index(pool)))
    }

    /// Class-conditional numeric: `base + class·step·signal + σ·N(0,1)`.
    pub fn class_float(&mut self, class: usize, base: f64, step: f64, sigma: f64) -> Value {
        let mean = base + class as f64 * step * self.params.signal;
        Value::Float(mean + sigma * self.gaussian())
    }

    /// Class-conditional integer (rounded [`SynthCtx::class_float`]).
    pub fn class_int(&mut self, class: usize, base: f64, step: f64, sigma: f64) -> Value {
        let Value::Float(x) = self.class_float(class, base, step, sigma) else {
            unreachable!()
        };
        Value::Int(x.round() as i64)
    }

    /// Replace with `⊥` with the configured null probability.
    pub fn maybe_null(&mut self, v: Value) -> Value {
        if self.chance(self.params.p_null) {
            Value::Null
        } else {
            v
        }
    }

    /// Draw a class id from explicit per-class weights.
    pub fn class_from_weights(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = self.rng.random_range(0.0..total);
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_has_floor() {
        let p = DatasetParams {
            scale: 0.01,
            ..Default::default()
        };
        assert_eq!(p.scaled(1000, 25), 25);
        let p1 = DatasetParams::default();
        assert_eq!(p1.scaled(1000, 25), 1000);
    }

    #[test]
    fn gaussian_moments() {
        let mut ctx = SynthCtx::new(&DatasetParams::default(), 1);
        let xs: Vec<f64> = (0..20_000).map(|_| ctx.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn class_tokens_carry_signal() {
        let params = DatasetParams {
            signal: 0.9,
            ..Default::default()
        };
        let mut ctx = SynthCtx::new(&params, 2);
        let mut class_specific = 0;
        for _ in 0..1000 {
            if let Value::Text(t) = ctx.class_token("x", 3, 4) {
                if t.starts_with("x_c3_") {
                    class_specific += 1;
                }
            }
        }
        assert!((850..=950).contains(&class_specific), "{class_specific}");
    }

    #[test]
    fn class_weights_respected() {
        let mut ctx = SynthCtx::new(&DatasetParams::default(), 3);
        let mut counts = [0usize; 2];
        for _ in 0..5000 {
            counts[ctx.class_from_weights(&[3.0, 1.0])] += 1;
        }
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((2.4..3.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn determinism() {
        let p = DatasetParams::default();
        let mut a = SynthCtx::new(&p, 9);
        let mut b = SynthCtx::new(&p, 9);
        for _ in 0..100 {
            assert_eq!(a.int_in(0, 1000), b.int_in(0, 1000));
        }
    }
}
