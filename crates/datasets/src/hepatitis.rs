//! Hepatitis-like database (ECML/PKDD 2002 discovery challenge, modified
//! per Neville et al. as in the paper).
//!
//! Table I shape: prediction relation `DISPAT`, predicted attribute `type`
//! (Hepatitis B vs C, imbalanced ≈ 206:294 at 500 samples), 7 relations,
//! 12,927 tuples, 26 attributes. The class signal lives in the medical
//! examination relations (`INDIS`, `INHOSP`, `BIO`, …) that reference the
//! patient — reachable from `DISPAT` only by backward FK walks.

use crate::synth::{DatasetParams, SynthCtx};
use crate::Dataset;
use reldb::{Database, Schema, SchemaBuilder, Value, ValueType};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.relation("DISPAT")
        .attr("pid", ValueType::Text)
        .attr("age", ValueType::Int)
        .attr("sex", ValueType::Text)
        .attr("type", ValueType::Text) // hidden prediction column
        .key(&["pid"]);
    b.relation("INDIS")
        .attr("iid", ValueType::Text)
        .attr("pid", ValueType::Text)
        .attr("got", ValueType::Float)
        .attr("gpt", ValueType::Float)
        .attr("alb", ValueType::Float)
        .attr("tbil", ValueType::Float)
        .key(&["iid"]);
    b.relation("INHOSP")
        .attr("hid", ValueType::Text)
        .attr("pid", ValueType::Text)
        .attr("che", ValueType::Float)
        .key(&["hid"]);
    b.relation("BIO")
        .attr("bid", ValueType::Text)
        .attr("pid", ValueType::Text)
        .attr("fibros", ValueType::Text)
        .attr("activity", ValueType::Text)
        .key(&["bid"]);
    b.relation("INTERFERON")
        .attr("fid", ValueType::Text)
        .attr("pid", ValueType::Text)
        .attr("dose", ValueType::Float)
        .key(&["fid"]);
    b.relation("REL11")
        .attr("r11id", ValueType::Text)
        .attr("pid", ValueType::Text)
        .attr("marker", ValueType::Text)
        .key(&["r11id"]);
    b.relation("REL12")
        .attr("r12id", ValueType::Text)
        .attr("pid", ValueType::Text)
        .attr("measure", ValueType::Float)
        .key(&["r12id"]);
    for rel in ["INDIS", "INHOSP", "BIO", "INTERFERON", "REL11", "REL12"] {
        b.foreign_key(rel, &["pid"], "DISPAT");
    }
    b.build().expect("hepatitis schema is valid")
}

/// Generate the dataset.
pub fn generate(params: &DatasetParams) -> Dataset {
    let mut ctx = SynthCtx::new(params, 0x4e50);
    let mut db = Database::new(schema());
    let pred = db.schema().relation_id("DISPAT").unwrap();

    let n_patients = params.scaled(500, 30);
    let mut labels = Vec::with_capacity(n_patients);
    let mut patient_ids = Vec::with_capacity(n_patients);
    for i in 0..n_patients {
        // Hepatitis B : Hepatitis C ≈ 206 : 294.
        let class = ctx.class_from_weights(&[206.0, 294.0]);
        let pid = format!("p{i:04}");
        let age = ctx.class_int(class, 38.0, 14.0, 11.0);
        let sex = ctx.noise_token("sex", 2);
        let fact = db
            .insert_into(
                "DISPAT",
                vec![
                    Value::Text(pid.clone()),
                    ctx.maybe_null(age),
                    ctx.maybe_null(sex),
                    Value::Null, // hidden class
                ],
            )
            .expect("patient insert");
        labels.push((fact, class));
        patient_ids.push((pid, class));
    }

    // Each satellite row picks a patient: the first `n_patients` rows cover
    // every patient once (so every patient has signal), the rest uniform.
    let pick = |ctx: &mut SynthCtx, i: usize| -> (String, usize) {
        if i < patient_ids.len() {
            patient_ids[i].clone()
        } else {
            patient_ids[ctx.index(patient_ids.len())].clone()
        }
    };

    // INDIS: strong numeric signal in got/gpt (liver enzymes).
    for i in 0..params.scaled(4000, 60) {
        let (pid, class) = pick(&mut ctx, i);
        let got = ctx.class_float(class, 45.0, 40.0, 18.0);
        let gpt = ctx.class_float(class, 50.0, 35.0, 20.0);
        let alb = ctx.class_float(class, 4.0, 0.3, 0.6);
        let tbil = Value::Float(ctx.float_in(0.2, 2.5));
        let (alb, tbil) = (ctx.maybe_null(alb), ctx.maybe_null(tbil));
        db.insert_into(
            "INDIS",
            vec![
                Value::Text(format!("in{i:05}")),
                Value::Text(pid),
                got,
                gpt,
                alb,
                tbil,
            ],
        )
        .expect("indis insert");
    }

    // INHOSP: moderate numeric signal in che.
    for i in 0..params.scaled(2500, 40) {
        let (pid, class) = pick(&mut ctx, i);
        let che = ctx.class_float(class, 180.0, -45.0, 40.0);
        db.insert_into(
            "INHOSP",
            vec![
                Value::Text(format!("ho{i:05}")),
                Value::Text(pid),
                ctx.maybe_null(che),
            ],
        )
        .expect("inhosp insert");
    }

    // BIO: categorical signal in fibrosis stage and activity grade.
    for i in 0..params.scaled(500, 30) {
        let (pid, class) = pick(&mut ctx, i);
        let fibros = ctx.class_token("fibros", class, 3);
        let activity = ctx.class_token("act", class, 3);
        db.insert_into(
            "BIO",
            vec![
                Value::Text(format!("bio{i:05}")),
                Value::Text(pid),
                ctx.maybe_null(fibros),
                ctx.maybe_null(activity),
            ],
        )
        .expect("bio insert");
    }

    // INTERFERON: weak numeric signal.
    for i in 0..params.scaled(1500, 25) {
        let (pid, class) = pick(&mut ctx, i);
        let dose = ctx.class_float(class, 6.0, 1.0, 2.5);
        db.insert_into(
            "INTERFERON",
            vec![
                Value::Text(format!("if{i:05}")),
                Value::Text(pid),
                ctx.maybe_null(dose),
            ],
        )
        .expect("interferon insert");
    }

    // REL11: weak categorical marker.
    for i in 0..params.scaled(2000, 25) {
        let (pid, class) = pick(&mut ctx, i);
        let marker = ctx.class_token("mk", class, 6);
        db.insert_into(
            "REL11",
            vec![
                Value::Text(format!("ra{i:05}")),
                Value::Text(pid),
                ctx.maybe_null(marker),
            ],
        )
        .expect("rel11 insert");
    }

    // REL12: pure noise measurements (realistic distractor relation).
    for i in 0..params.scaled(1927, 25) {
        let (pid, _class) = pick(&mut ctx, i);
        let measure = Value::Float(ctx.float_in(0.0, 100.0));
        db.insert_into(
            "REL12",
            vec![
                Value::Text(format!("rb{i:05}")),
                Value::Text(pid),
                ctx.maybe_null(measure),
            ],
        )
        .expect("rel12 insert");
    }

    Dataset {
        name: "Hepatitis",
        db,
        prediction_rel: pred,
        class_attr: 3,
        labels,
        class_names: vec!["HepatitisB", "HepatitisC"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_one_shape() {
        let ds = generate(&DatasetParams::default());
        ds.validate().unwrap();
        assert_eq!(ds.sample_count(), 500);
        assert_eq!(ds.db.schema().relation_count(), 7);
        assert_eq!(ds.db.schema().total_attributes(), 26);
        assert_eq!(ds.db.total_facts(), 12_927);
        assert_eq!(ds.class_count(), 2);
        // Imbalance roughly 206:294.
        let dist = ds.class_distribution();
        let frac = dist[0] as f64 / ds.sample_count() as f64;
        assert!((0.33..0.50).contains(&frac), "class-0 fraction {frac}");
    }

    #[test]
    fn scaling_shrinks_everything() {
        let ds = generate(&DatasetParams::tiny(7));
        ds.validate().unwrap();
        assert!(ds.db.total_facts() < 2_000);
        assert!(ds.sample_count() >= 30);
    }

    #[test]
    fn deterministic() {
        let a = generate(&DatasetParams::tiny(5));
        let b = generate(&DatasetParams::tiny(5));
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.db.total_facts(), b.db.total_facts());
    }
}
