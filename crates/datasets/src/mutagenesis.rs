//! Mutagenesis-like database (Debnath et al. 1991).
//!
//! Table I shape: prediction relation `MOLECULE`, predicted attribute
//! `mutagenic` (binary, 122 positive : 66 negative), 3 relations, 10,324
//! tuples, 14 attributes. As in the real data the prediction relation
//! carries some chemical descriptors itself (`logp`, `lumo`) while the rest
//! of the signal lives in the atom composition and bond structure.

use crate::synth::{DatasetParams, SynthCtx};
use crate::Dataset;
use reldb::{Database, Schema, SchemaBuilder, Value, ValueType};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.relation("MOLECULE")
        .attr("mid", ValueType::Text)
        .attr("ind1", ValueType::Int)
        .attr("logp", ValueType::Float)
        .attr("lumo", ValueType::Float)
        .attr("mutagenic", ValueType::Text) // hidden prediction column
        .key(&["mid"]);
    b.relation("ATOM")
        .attr("aid", ValueType::Text)
        .attr("mid", ValueType::Text)
        .attr("element", ValueType::Text)
        .attr("atype", ValueType::Int)
        .attr("charge", ValueType::Float)
        .key(&["aid"]);
    b.relation("BOND")
        .attr("bid", ValueType::Text)
        .attr("atom1", ValueType::Text)
        .attr("atom2", ValueType::Text)
        .attr("btype", ValueType::Int)
        .key(&["bid"]);
    b.foreign_key("ATOM", &["mid"], "MOLECULE");
    b.foreign_key("BOND", &["atom1"], "ATOM");
    b.foreign_key("BOND", &["atom2"], "ATOM");
    b.build().expect("mutagenesis schema is valid")
}

/// Generate the dataset.
pub fn generate(params: &DatasetParams) -> Dataset {
    let mut ctx = SynthCtx::new(params, 0x4d47);
    let mut db = Database::new(schema());
    let pred = db.schema().relation_id("MOLECULE").unwrap();

    let n_molecules = params.scaled(188, 24);
    let n_atoms = params.scaled(4893, 24 * 8);
    let n_bonds = params.scaled(5243, 24 * 8);

    let mut labels = Vec::with_capacity(n_molecules);
    let mut molecules: Vec<(String, usize)> = Vec::with_capacity(n_molecules);
    for i in 0..n_molecules {
        // 122 mutagenic : 66 non-mutagenic.
        let class = ctx.class_from_weights(&[66.0, 122.0]);
        let mid = format!("d{i:03}");
        // Direct descriptors carry part of the signal, as in the real data.
        let ind1 = ctx.class_int(class, 0.0, 1.0, 0.4);
        let logp = ctx.class_float(class, 2.0, 1.4, 1.0);
        let lumo = ctx.class_float(class, -1.2, -0.8, 0.5);
        let fact = db
            .insert_into(
                "MOLECULE",
                vec![
                    Value::Text(mid.clone()),
                    ctx.maybe_null(ind1),
                    ctx.maybe_null(logp),
                    ctx.maybe_null(lumo),
                    Value::Null, // hidden class
                ],
            )
            .expect("molecule insert");
        labels.push((fact, class));
        molecules.push((mid, class));
    }

    // Atoms: element distribution depends on the class (mutagenic molecules
    // are nitro-aromatic: more N/O). Atoms are dealt round-robin so every
    // molecule has atoms; per-molecule atom lists drive bond generation.
    let mut atoms_of: Vec<Vec<String>> = vec![Vec::new(); n_molecules];
    for i in 0..n_atoms {
        let m_idx = if i < n_molecules {
            i
        } else {
            ctx.index(n_molecules)
        };
        let (mid, class) = molecules[m_idx].clone();
        let element = if ctx.chance(params.signal) {
            // Class-conditional element frequencies.
            let pools: [&[&str]; 2] = [
                &["c", "c", "c", "h", "h", "cl"],
                &["c", "c", "n", "o", "o", "h"],
            ];
            let pool = pools[class];
            Value::Text(pool[ctx.index(pool.len())].to_string())
        } else {
            ctx.noise_token("el", 5)
        };
        let atype = ctx.class_int(class, 22.0, 6.0, 8.0);
        let charge = ctx.class_float(class, -0.1, 0.15, 0.1);
        let aid = format!("a{i:05}");
        db.insert_into(
            "ATOM",
            vec![
                Value::Text(aid.clone()),
                Value::Text(mid),
                ctx.maybe_null(element),
                ctx.maybe_null(atype),
                ctx.maybe_null(charge),
            ],
        )
        .expect("atom insert");
        atoms_of[m_idx].push(aid);
    }

    // Bonds: connect atoms within the same molecule (chain + random
    // chords), bond type weakly class-conditional (aromatic rings).
    let mut bonds = 0usize;
    let mut i = 0usize;
    while bonds < n_bonds {
        let m_idx = i % n_molecules;
        i += 1;
        let list = &atoms_of[m_idx];
        if list.len() < 2 {
            continue;
        }
        let a = ctx.index(list.len());
        let mut b = ctx.index(list.len());
        if b == a {
            b = (a + 1) % list.len();
        }
        let class = molecules[m_idx].1;
        let btype = if ctx.chance(params.signal * 0.6) {
            Value::Int(1 + class as i64) // single vs aromatic-ish
        } else {
            Value::Int(ctx.int_in(1, 4))
        };
        db.insert_into(
            "BOND",
            vec![
                Value::Text(format!("b{bonds:05}")),
                Value::Text(list[a].clone()),
                Value::Text(list[b].clone()),
                ctx.maybe_null(btype),
            ],
        )
        .expect("bond insert");
        bonds += 1;
    }

    Dataset {
        name: "Mutagenesis",
        db,
        prediction_rel: pred,
        class_attr: 4,
        labels,
        class_names: vec!["non-mutagenic", "mutagenic"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_one_shape() {
        let ds = generate(&DatasetParams::default());
        ds.validate().unwrap();
        assert_eq!(ds.sample_count(), 188);
        assert_eq!(ds.db.schema().relation_count(), 3);
        assert_eq!(ds.db.schema().total_attributes(), 14);
        assert_eq!(ds.db.total_facts(), 10_324);
        // 122:66 imbalance (positive = class 1).
        let dist = ds.class_distribution();
        let frac = dist[1] as f64 / ds.sample_count() as f64;
        assert!((0.55..0.75).contains(&frac), "mutagenic fraction {frac}");
    }

    #[test]
    fn bonds_connect_atoms_of_one_molecule() {
        let ds = generate(&DatasetParams::tiny(1));
        ds.validate().unwrap();
        let schema = ds.db.schema();
        let bond = schema.relation_id("BOND").unwrap();
        let atom = schema.relation_id("ATOM").unwrap();
        for (_, fact) in ds.db.facts(bond) {
            let a1 = fact.get(1).clone();
            let a2 = fact.get(2).clone();
            let f1 = ds.db.lookup_key(atom, &[a1]).unwrap();
            let f2 = ds.db.lookup_key(atom, &[a2]).unwrap();
            let m1 = ds.db.fact(f1).unwrap().get(1);
            let m2 = ds.db.fact(f2).unwrap().get(1);
            assert_eq!(m1, m2, "bond crosses molecules");
        }
    }

    #[test]
    fn every_molecule_has_atoms() {
        let ds = generate(&DatasetParams::tiny(2));
        let atom = ds.db.schema().relation_id("ATOM").unwrap();
        let mut seen: std::collections::HashSet<String> = Default::default();
        for (_, fact) in ds.db.facts(atom) {
            seen.insert(fact.get(1).as_text().unwrap().to_string());
        }
        assert_eq!(seen.len(), ds.sample_count());
    }
}
