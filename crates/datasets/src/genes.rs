//! Genes-like database (KDD Cup 2001 gene localization task).
//!
//! Table I shape: prediction relation `CLASSIFICATION`, predicted attribute
//! `localization` (15 classes), 3 relations, 6,063 tuples, 15 attributes.
//! The class signal lives in the `GENE` attribute rows (complex, motif,
//! class) and — as in the real data — in **interaction homophily**: genes
//! preferentially interact with genes of the same localization, so walks
//! through `INTERACTION` carry signal too.

use crate::synth::{DatasetParams, SynthCtx};
use crate::Dataset;
use reldb::{Database, Schema, SchemaBuilder, Value, ValueType};

const CLASSES: usize = 15;

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.relation("CLASSIFICATION")
        .attr("gid", ValueType::Text)
        .attr("localization", ValueType::Text) // hidden prediction column
        .key(&["gid"]);
    b.relation("GENE")
        .attr("rowid", ValueType::Text)
        .attr("gid", ValueType::Text)
        .attr("essential", ValueType::Text)
        .attr("cls", ValueType::Text)
        .attr("complex", ValueType::Text)
        .attr("motif", ValueType::Text)
        .attr("chromosome", ValueType::Int)
        .key(&["rowid"]);
    b.relation("INTERACTION")
        .attr("iid", ValueType::Text)
        .attr("gid1", ValueType::Text)
        .attr("gid2", ValueType::Text)
        .attr("itype", ValueType::Text)
        .attr("expr", ValueType::Float)
        .attr("corr", ValueType::Float)
        .key(&["iid"]);
    b.foreign_key("GENE", &["gid"], "CLASSIFICATION");
    b.foreign_key("INTERACTION", &["gid1"], "CLASSIFICATION");
    b.foreign_key("INTERACTION", &["gid2"], "CLASSIFICATION");
    b.build().expect("genes schema is valid")
}

/// Generate the dataset.
pub fn generate(params: &DatasetParams) -> Dataset {
    let mut ctx = SynthCtx::new(params, 0x6e5e);
    let mut db = Database::new(schema());
    let pred = db.schema().relation_id("CLASSIFICATION").unwrap();

    // Skewed class weights: majority ≈ 43% (the paper's Figure 5a baseline).
    let mut weights = vec![1.0f64; CLASSES];
    weights[0] = 12.0;
    weights[1] = 2.0;
    weights[2] = 1.5;
    weights[3] = 1.2;

    let n_genes = params.scaled(862, 45);
    let mut labels = Vec::with_capacity(n_genes);
    let mut genes: Vec<(String, usize)> = Vec::with_capacity(n_genes);
    // Per-class gene index for homophilous interaction sampling.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); CLASSES];
    for i in 0..n_genes {
        let class = ctx.class_from_weights(&weights);
        let gid = format!("g{i:04}");
        let fact = db
            .insert_into(
                "CLASSIFICATION",
                vec![Value::Text(gid.clone()), Value::Null],
            )
            .expect("gene insert");
        labels.push((fact, class));
        by_class[class].push(i);
        genes.push((gid, class));
    }

    // GENE attribute rows: ~5 per gene, strongly class-specific complex and
    // motif tokens (the paper reports ~98% on Genes — the structure is
    // nearly deterministic).
    let n_gene_rows = params.scaled(4300, 150);
    for i in 0..n_gene_rows {
        let (gid, class) = if i < genes.len() {
            genes[i].clone()
        } else {
            genes[ctx.index(genes.len())].clone()
        };
        let essential = ctx.noise_token("ess", 2);
        let cls = ctx.class_token("cls", class, 2);
        let complex = ctx.class_token("cpx", class, 2);
        let motif = ctx.class_token("mot", class, 3);
        let chromosome = Value::Int(ctx.int_in(1, 17));
        db.insert_into(
            "GENE",
            vec![
                Value::Text(format!("gr{i:05}")),
                Value::Text(gid),
                ctx.maybe_null(essential),
                ctx.maybe_null(cls),
                ctx.maybe_null(complex),
                ctx.maybe_null(motif),
                ctx.maybe_null(chromosome),
            ],
        )
        .expect("gene row insert");
    }

    // INTERACTION: homophilous gene pairs.
    let n_inter = params.scaled(901, 60);
    for i in 0..n_inter {
        let a = ctx.index(genes.len());
        let (gid1, class1) = genes[a].clone();
        // With probability `signal`, interact within the same class.
        let b_idx = if ctx.chance(params.signal) && by_class[class1].len() > 1 {
            let bucket = &by_class[class1];
            let mut b = bucket[ctx.index(bucket.len())];
            if b == a {
                b = bucket[ctx.index(bucket.len())];
            }
            b
        } else {
            ctx.index(genes.len())
        };
        let (gid2, _class2) = genes[b_idx].clone();
        let itype = ctx.noise_token("it", 3);
        let expr = Value::Float(ctx.float_in(-1.0, 1.0));
        let corr = Value::Float(ctx.float_in(0.0, 1.0));
        db.insert_into(
            "INTERACTION",
            vec![
                Value::Text(format!("ix{i:05}")),
                Value::Text(gid1),
                Value::Text(gid2),
                ctx.maybe_null(itype),
                ctx.maybe_null(expr),
                ctx.maybe_null(corr),
            ],
        )
        .expect("interaction insert");
    }

    Dataset {
        name: "Genes",
        db,
        prediction_rel: pred,
        class_attr: 1,
        labels,
        class_names: vec![
            "nucleus",
            "cytoplasm",
            "mitochondria",
            "membrane",
            "er",
            "golgi",
            "vacuole",
            "peroxisome",
            "extracellular",
            "cytoskeleton",
            "endosome",
            "cellwall",
            "lipid",
            "ribosome",
            "transport",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_one_shape() {
        let ds = generate(&DatasetParams::default());
        ds.validate().unwrap();
        assert_eq!(ds.sample_count(), 862);
        assert_eq!(ds.db.schema().relation_count(), 3);
        assert_eq!(ds.db.schema().total_attributes(), 15);
        assert_eq!(ds.db.total_facts(), 6_063);
        assert_eq!(ds.class_count(), 15);
        // Majority class ≈ 43%.
        let dist = ds.class_distribution();
        let majority = *dist.iter().max().unwrap() as f64 / ds.sample_count() as f64;
        assert!((0.32..0.55).contains(&majority), "majority {majority}");
    }

    #[test]
    fn interactions_are_homophilous() {
        let ds = generate(&DatasetParams::default());
        let inter = ds.db.schema().relation_id("INTERACTION").unwrap();
        let class_of: std::collections::HashMap<String, usize> = ds
            .labels
            .iter()
            .map(|(f, c)| {
                let gid = ds
                    .db
                    .fact(*f)
                    .unwrap()
                    .get(0)
                    .as_text()
                    .unwrap()
                    .to_string();
                (gid, *c)
            })
            .collect();
        let mut same = 0usize;
        let mut total = 0usize;
        for (_, fact) in ds.db.facts(inter) {
            let g1 = fact.get(1).as_text().unwrap();
            let g2 = fact.get(2).as_text().unwrap();
            if class_of[g1] == class_of[g2] {
                same += 1;
            }
            total += 1;
        }
        let frac = same as f64 / total as f64;
        assert!(frac > 0.6, "homophily fraction {frac}");
    }

    #[test]
    fn tiny_scale_is_valid() {
        let ds = generate(&DatasetParams::tiny(3));
        ds.validate().unwrap();
        assert!(ds.sample_count() >= 45);
    }
}
