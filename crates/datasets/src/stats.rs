//! Table I reproduction: structural statistics of the datasets.

use crate::Dataset;
use std::fmt;

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableOneRow {
    /// Dataset name.
    pub dataset: &'static str,
    /// Prediction relation name.
    pub prediction_rel: String,
    /// Predicted attribute name.
    pub prediction_attr: String,
    /// Number of prediction samples.
    pub samples: usize,
    /// Number of relations.
    pub relations: usize,
    /// Total number of tuples.
    pub tuples: usize,
    /// Total number of attributes.
    pub attributes: usize,
}

impl fmt::Display for TableOneRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<12} {:<15} {:<13} {:>8} {:>10} {:>8} {:>11}",
            self.dataset,
            self.prediction_rel,
            self.prediction_attr,
            self.samples,
            self.relations,
            self.tuples,
            self.attributes
        )
    }
}

/// Compute the Table I row of a dataset.
pub fn table_one(ds: &Dataset) -> TableOneRow {
    let schema = ds.db.schema();
    let rel = schema.relation(ds.prediction_rel);
    TableOneRow {
        dataset: ds.name,
        prediction_rel: rel.name.clone(),
        prediction_attr: rel.attributes[ds.class_attr].name.clone(),
        samples: ds.sample_count(),
        relations: schema.relation_count(),
        tuples: ds.db.total_facts(),
        attributes: schema.total_attributes(),
    }
}

/// The paper's reported Table I values, for side-by-side printing.
pub fn paper_table_one() -> Vec<TableOneRow> {
    vec![
        TableOneRow {
            dataset: "Hepatitis",
            prediction_rel: "Dispat".into(),
            prediction_attr: "type".into(),
            samples: 500,
            relations: 7,
            tuples: 12_927,
            attributes: 26,
        },
        TableOneRow {
            dataset: "Genes",
            prediction_rel: "Classification".into(),
            prediction_attr: "localization".into(),
            samples: 862,
            relations: 3,
            tuples: 6_063,
            attributes: 15,
        },
        TableOneRow {
            dataset: "Mutagenesis",
            prediction_rel: "Molecule".into(),
            prediction_attr: "mutagenic".into(),
            samples: 188,
            relations: 3,
            tuples: 10_324,
            attributes: 14,
        },
        TableOneRow {
            dataset: "World",
            prediction_rel: "Country".into(),
            prediction_attr: "continent".into(),
            samples: 239,
            relations: 3,
            tuples: 5_411,
            attributes: 24,
        },
        TableOneRow {
            dataset: "Mondial",
            prediction_rel: "Target".into(),
            prediction_attr: "target".into(),
            samples: 206,
            relations: 40,
            tuples: 21_497,
            attributes: 167,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::DatasetParams;

    #[test]
    fn generated_rows_match_paper_rows_at_full_scale() {
        let params = DatasetParams::default();
        let paper = paper_table_one();
        for (ds, expected) in crate::all_datasets(&params).iter().zip(&paper) {
            let row = table_one(ds);
            assert_eq!(row.samples, expected.samples, "{}", ds.name);
            assert_eq!(row.relations, expected.relations, "{}", ds.name);
            assert_eq!(row.tuples, expected.tuples, "{}", ds.name);
            assert_eq!(row.attributes, expected.attributes, "{}", ds.name);
        }
    }

    #[test]
    fn display_is_aligned() {
        let row = &paper_table_one()[0];
        let s = row.to_string();
        assert!(s.contains("Hepatitis"));
        assert!(s.contains("12927"));
    }
}
