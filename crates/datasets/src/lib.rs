//! # datasets — structure-faithful synthetic benchmark databases
//!
//! The paper evaluates on five multi-relational benchmark databases
//! (Hepatitis, Genes, Mutagenesis, World, Mondial — Table I). The original
//! dumps are not available offline, so this crate generates **synthetic
//! substitutes that reproduce the structural parameters of Table I**: the
//! same number of relations, attributes, tuples and prediction samples, the
//! same class arity and (approximate) class imbalance, and the key/FK
//! topology the datasets are known for.
//!
//! The crucial property preserved (per the substitution note in DESIGN.md):
//! **the class signal lives in attributes of *other* relations, reachable
//! only through foreign keys.** A classifier that sees only the prediction
//! relation's own attributes cannot do much better than the majority class
//! (Mondial's prediction relation literally contains only a name); an
//! embedding that propagates information along FK walks can. This is
//! exactly the property the paper's evaluation exercises.
//!
//! The predicted column itself is **physically hidden** from the embedders:
//! the prediction relation carries the class attribute as an all-null
//! column (nulls produce no graph nodes and no walk-destination values),
//! and the true labels are returned out of band in [`Dataset::labels`].
//! This makes it impossible for an embedding to leak the target.

pub mod genes;
pub mod hepatitis;
pub mod mondial;
pub mod mutagenesis;
pub mod stats;
pub mod synth;
pub mod world;

pub use stats::{table_one, TableOneRow};
pub use synth::DatasetParams;

use reldb::{Database, FactId, RelationId};

/// A generated benchmark dataset: database + out-of-band labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name as in the paper's Table I.
    pub name: &'static str,
    /// The database (prediction column present but all-null).
    pub db: Database,
    /// The prediction relation.
    pub prediction_rel: RelationId,
    /// Position of the (hidden) prediction attribute.
    pub class_attr: usize,
    /// `(fact, class)` for every fact of the prediction relation.
    pub labels: Vec<(FactId, usize)>,
    /// Class display names, indexed by class id.
    pub class_names: Vec<&'static str>,
}

impl Dataset {
    /// Number of prediction samples.
    pub fn sample_count(&self) -> usize {
        self.labels.len()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.class_names.len()
    }

    /// The label of one prediction fact, if it is labelled.
    pub fn label_of(&self, fact: FactId) -> Option<usize> {
        self.labels
            .iter()
            .find(|(f, _)| *f == fact)
            .map(|(_, c)| *c)
    }

    /// Class distribution (counts per class id).
    pub fn class_distribution(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.class_count()];
        for (_, c) in &self.labels {
            counts[*c] += 1;
        }
        counts
    }

    /// Internal consistency check used by tests and the harness.
    pub fn validate(&self) -> Result<(), String> {
        self.db.check_all_fks().map_err(|e| e.to_string())?;
        // Prediction column must be hidden.
        for (id, fact) in self.db.facts(self.prediction_rel) {
            if !fact.get(self.class_attr).is_null() {
                return Err(format!("prediction column leaked in fact {id}"));
            }
        }
        // Labels cover exactly the prediction facts.
        let pred_count = self.db.live_count(self.prediction_rel);
        if pred_count != self.labels.len() {
            return Err(format!(
                "{} labels for {pred_count} prediction facts",
                self.labels.len()
            ));
        }
        for (f, c) in &self.labels {
            if self.db.fact(*f).is_none() {
                return Err(format!("label for dead fact {f}"));
            }
            if *c >= self.class_count() {
                return Err(format!("label {c} out of range"));
            }
        }
        Ok(())
    }
}

/// Generate all five datasets with the same parameters.
pub fn all_datasets(params: &DatasetParams) -> Vec<Dataset> {
    vec![
        hepatitis::generate(params),
        genes::generate(params),
        mutagenesis::generate(params),
        world::generate(params),
        mondial::generate(params),
    ]
}

/// Generate one dataset by (case-insensitive) name.
pub fn by_name(name: &str, params: &DatasetParams) -> Option<Dataset> {
    match name.to_ascii_lowercase().as_str() {
        "hepatitis" => Some(hepatitis::generate(params)),
        "genes" => Some(genes::generate(params)),
        "mutagenesis" => Some(mutagenesis::generate(params)),
        "world" => Some(world::generate(params)),
        "mondial" => Some(mondial::generate(params)),
        _ => None,
    }
}
