//! World-like database (the classic MySQL `world` sample).
//!
//! Table I shape: prediction relation `COUNTRY`, predicted attribute
//! `continent` (7 classes), 3 relations, 5,411 tuples, 24 attributes.
//! Signal: the country's own socio-economic descriptors correlate with the
//! continent (as in the real data, where e.g. region nearly determines it),
//! and cities/languages referencing the country carry additional
//! class-specific vocabulary.

use crate::synth::{DatasetParams, SynthCtx};
use crate::Dataset;
use reldb::{Database, Schema, SchemaBuilder, Value, ValueType};

fn schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.relation("COUNTRY")
        .attr("code", ValueType::Text)
        .attr("name", ValueType::Text)
        .attr("region", ValueType::Text)
        .attr("surface", ValueType::Float)
        .attr("indep", ValueType::Int)
        .attr("population", ValueType::Int)
        .attr("gnp", ValueType::Float)
        .attr("gnpold", ValueType::Float)
        .attr("lifeexp", ValueType::Float)
        .attr("govform", ValueType::Text)
        .attr("headofstate", ValueType::Text)
        .attr("capital", ValueType::Text)
        .attr("continent", ValueType::Text) // hidden prediction column
        .key(&["code"]);
    b.relation("CITY")
        .attr("cid", ValueType::Text)
        .attr("country", ValueType::Text)
        .attr("name", ValueType::Text)
        .attr("district", ValueType::Text)
        .attr("population", ValueType::Int)
        .attr("is_capital", ValueType::Bool)
        .key(&["cid"]);
    b.relation("LANG")
        .attr("lid", ValueType::Text)
        .attr("country", ValueType::Text)
        .attr("language", ValueType::Text)
        .attr("official", ValueType::Bool)
        .attr("percentage", ValueType::Float)
        .key(&["lid"]);
    b.foreign_key("CITY", &["country"], "COUNTRY");
    b.foreign_key("LANG", &["country"], "COUNTRY");
    b.build().expect("world schema is valid")
}

/// Generate the dataset.
pub fn generate(params: &DatasetParams) -> Dataset {
    let mut ctx = SynthCtx::new(params, 0x574c);
    let mut db = Database::new(schema());
    let pred = db.schema().relation_id("COUNTRY").unwrap();

    // Continent sizes roughly matching the real `world` database.
    let weights = [58.0, 51.0, 46.0, 36.0, 28.0, 14.0, 6.0];

    let n_countries = params.scaled(239, 35);
    let mut labels = Vec::with_capacity(n_countries);
    let mut countries: Vec<(String, usize)> = Vec::with_capacity(n_countries);
    for i in 0..n_countries {
        let class = ctx.class_from_weights(&weights);
        let code = format!("C{i:03}");
        let name = ctx.noise_token("country", 400);
        let region = ctx.class_token("region", class, 4);
        let surface = ctx.class_float(class, 300.0, 120.0, 250.0);
        let indep = Value::Int(ctx.int_in(1400, 2000));
        let population = ctx.class_int(class, 8_000.0, 4_000.0, 9_000.0);
        let gnp = ctx.class_float(class, 90.0, 60.0, 80.0);
        let gnpold = ctx.class_float(class, 80.0, 55.0, 85.0);
        let lifeexp = ctx.class_float(class, 55.0, 4.0, 6.0);
        let govform = ctx.class_token("gov", class, 3);
        let head = ctx.noise_token("head", 300);
        let capital = ctx.noise_token("cap", 400);
        let fact = db
            .insert_into(
                "COUNTRY",
                vec![
                    Value::Text(code.clone()),
                    ctx.maybe_null(name),
                    ctx.maybe_null(region),
                    ctx.maybe_null(surface),
                    ctx.maybe_null(indep),
                    ctx.maybe_null(population),
                    ctx.maybe_null(gnp),
                    ctx.maybe_null(gnpold),
                    ctx.maybe_null(lifeexp),
                    ctx.maybe_null(govform),
                    ctx.maybe_null(head),
                    ctx.maybe_null(capital),
                    Value::Null, // hidden class
                ],
            )
            .expect("country insert");
        labels.push((fact, class));
        countries.push((code, class));
    }

    // Cities: district vocabulary and population scale carry signal.
    for i in 0..params.scaled(4100, 80) {
        let (code, class) = if i < countries.len() {
            countries[i].clone()
        } else {
            countries[ctx.index(countries.len())].clone()
        };
        let name = ctx.noise_token("city", 2500);
        let district = ctx.class_token("dist", class, 5);
        let population = ctx.class_int(class, 120.0, 60.0, 150.0);
        let is_capital = Value::Bool(ctx.chance(0.06));
        db.insert_into(
            "CITY",
            vec![
                Value::Text(format!("ct{i:05}")),
                Value::Text(code),
                ctx.maybe_null(name),
                ctx.maybe_null(district),
                ctx.maybe_null(population),
                is_capital,
            ],
        )
        .expect("city insert");
    }

    // Languages: strongly continent-specific vocabularies.
    for i in 0..params.scaled(1072, 40) {
        let (code, class) = if i < countries.len() {
            countries[i].clone()
        } else {
            countries[ctx.index(countries.len())].clone()
        };
        let language = ctx.class_token("lang", class, 6);
        let official = Value::Bool(ctx.chance(0.5));
        let percentage = Value::Float(ctx.float_in(1.0, 100.0));
        db.insert_into(
            "LANG",
            vec![
                Value::Text(format!("ln{i:05}")),
                Value::Text(code),
                ctx.maybe_null(language),
                official,
                ctx.maybe_null(percentage),
            ],
        )
        .expect("lang insert");
    }

    Dataset {
        name: "World",
        db,
        prediction_rel: pred,
        class_attr: 12,
        labels,
        class_names: vec![
            "Asia",
            "Europe",
            "Africa",
            "NorthAmerica",
            "SouthAmerica",
            "Oceania",
            "Antarctica",
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_table_one_shape() {
        let ds = generate(&DatasetParams::default());
        ds.validate().unwrap();
        assert_eq!(ds.sample_count(), 239);
        assert_eq!(ds.db.schema().relation_count(), 3);
        assert_eq!(ds.db.schema().total_attributes(), 24);
        assert_eq!(ds.db.total_facts(), 5_411);
        assert_eq!(ds.class_count(), 7);
        // Majority ≈ 24%.
        let dist = ds.class_distribution();
        let majority = *dist.iter().max().unwrap() as f64 / ds.sample_count() as f64;
        assert!((0.15..0.35).contains(&majority), "majority {majority}");
    }

    #[test]
    fn every_country_has_a_city_and_language() {
        let ds = generate(&DatasetParams::tiny(4));
        ds.validate().unwrap();
        for rel_name in ["CITY", "LANG"] {
            let rel = ds.db.schema().relation_id(rel_name).unwrap();
            let mut seen: std::collections::HashSet<String> = Default::default();
            for (_, fact) in ds.db.facts(rel) {
                seen.insert(fact.get(1).as_text().unwrap().to_string());
            }
            assert_eq!(seen.len(), ds.sample_count(), "{rel_name} coverage");
        }
    }
}
