//! Wall-clock measurement helpers (Tables V and VI).

use std::time::Instant;

/// Time a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

/// Accumulates timing samples and reports simple statistics.
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    samples: Vec<f64>,
}

impl Stopwatch {
    /// Empty stopwatch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the runtime of a closure and return its result.
    pub fn measure<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let (out, secs) = timed(f);
        self.samples.push(secs);
        out
    }

    /// Record a duration measured elsewhere.
    pub fn push(&mut self, secs: f64) {
        self.samples.push(secs);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean seconds.
    pub fn mean(&self) -> f64 {
        linalg::mean(&self.samples)
    }

    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.samples.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (value, secs) = timed(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(value > 0);
        assert!(secs >= 0.0);
    }

    #[test]
    fn stopwatch_accumulates() {
        let mut sw = Stopwatch::new();
        sw.measure(|| ());
        sw.push(1.0);
        assert_eq!(sw.len(), 2);
        assert!(sw.total() >= 1.0);
        assert!(sw.mean() >= 0.5);
    }
}
