//! Reproduce **Figure 5**: dynamic accuracy as a function of the ratio of
//! new data (10%–90%), one-by-one extension, for Node2Vec, FoRWaRD and the
//! majority baseline — one panel per dataset, printed as aligned series.
//!
//! Usage:
//! `cargo run -p repro --release --bin fig5 [--full] [--dataset NAME]`

use repro::baselines::majority_accuracy;
use repro::report::{note, section};
use repro::{dynamic_experiment, DynamicSetup, ExperimentConfig, Method};

const DATASETS: [&str; 5] = ["Genes", "Hepatitis", "World", "Mondial", "Mutagenesis"];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let filter = ExperimentConfig::dataset_filter(&args);
    let ratios: Vec<f64> = if args.iter().any(|a| a == "--dense") {
        (1..=9).map(|r| r as f64 / 10.0).collect()
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    };

    section("Figure 5 — dynamic accuracy vs ratio of new data (one-by-one)");
    for name in DATASETS {
        if let Some(f) = &filter {
            if !name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let ds = datasets::by_name(name, &cfg.data).expect("known dataset");
        let baseline = majority_accuracy(&ds);
        println!("\n({}) {}", name.to_ascii_lowercase(), name);
        print!("{:<10}", "ratio");
        for r in &ratios {
            print!("{:>9.0}%", r * 100.0);
        }
        println!();
        for method in Method::all() {
            print!("{:<10}", method.name());
            for &ratio in &ratios {
                let out = dynamic_experiment(
                    &ds,
                    method,
                    DynamicSetup {
                        ratio,
                        one_by_one: true,
                    },
                    &cfg,
                );
                print!("{:>9.1}%", out.accuracy_mean * 100.0);
            }
            println!();
        }
        print!("{:<10}", "baseline");
        for _ in &ratios {
            print!("{:>9.1}%", baseline * 100.0);
        }
        println!();
    }
    note("shape expectations (paper Fig. 5): both methods stay well above the baseline;");
    note("accuracy decays slowly and the drop only becomes pronounced beyond ~50% new data.");
}
