//! Reproduce **Table III**: static classification accuracy ± std.
//!
//! Columns: FoRWaRD, Node2Vec (ours) — plus the paper's reported values for
//! both methods and the best general state-of-the-art, plus our majority
//! and flat-feature baselines to demonstrate that the signal genuinely
//! requires the relational structure.
//!
//! Usage:
//! `cargo run -p repro --release --bin table3 [--full] [--dataset NAME]`

use repro::baselines::{flat_baseline_accuracy, majority_accuracy};
use repro::report::{note, pm, section};
use repro::{static_experiment, ExperimentConfig, Method};

/// Paper Table III numbers: (dataset, FoRWaRD, N2V, S.o.A.).
const PAPER: [(&str, f64, f64, f64); 5] = [
    ("Hepatitis", 0.8420, 0.9360, 0.8400),
    ("Genes", 0.9791, 0.9719, 0.8500),
    ("Mutagenesis", 0.9000, 0.8823, 0.9100),
    ("World", 0.8583, 0.9400, 0.7700),
    ("Mondial", 0.8095, 0.7762, 0.8500),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let filter = ExperimentConfig::dataset_filter(&args);

    section("Table III — static classification accuracy");
    println!(
        "{:<12} {:>18} {:>18} | {:>8} {:>8} {:>8} | {:>9} {:>9}",
        "Task",
        "FoRWaRD (ours)",
        "N2V (ours)",
        "FWD-ppr",
        "N2V-ppr",
        "SoA-ppr",
        "majority",
        "flat-LR"
    );
    for (name, fwd_paper, n2v_paper, soa_paper) in PAPER {
        if let Some(f) = &filter {
            if !name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let ds = datasets::by_name(name, &cfg.data).expect("known dataset");
        let (fwd_m, fwd_s) = static_experiment(&ds, Method::Forward, &cfg, cfg.seed);
        let (n2v_m, n2v_s) = static_experiment(&ds, Method::Node2Vec, &cfg, cfg.seed);
        let maj = majority_accuracy(&ds);
        let (flat, _) = flat_baseline_accuracy(&ds, cfg.folds, cfg.seed);
        println!(
            "{:<12} {:>18} {:>18} | {:>7.1}% {:>7.1}% {:>7.1}% | {:>8.1}% {:>8.1}%",
            name,
            pm(fwd_m, fwd_s),
            pm(n2v_m, n2v_s),
            fwd_paper * 100.0,
            n2v_paper * 100.0,
            soa_paper * 100.0,
            maj * 100.0,
            flat * 100.0
        );
    }
    note(
        "shape expectations: both methods well above majority and flat baselines on every dataset;",
    );
    note("absolute values differ from the paper (synthetic datasets, CPU-scale configs).");
}
