//! Reproduce **Table I**: structural statistics of the five datasets.
//!
//! Usage: `cargo run -p repro --release --bin table1 [--full] [--scale X]`

use datasets::{all_datasets, table_one};
use repro::report::{note, section};
use repro::ExperimentConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);

    section("Table I — dataset structure (paper vs generated)");
    println!(
        "{:<12} {:<15} {:<13} {:>8} {:>10} {:>8} {:>11}",
        "Dataset",
        "Prediction Rel.",
        "Pred. Attr.",
        "#Samples",
        "#Relations",
        "#Tuples",
        "#Attributes"
    );
    let paper = datasets::stats::paper_table_one();
    for row in &paper {
        println!("{row}   (paper)");
    }
    println!("{}", "-".repeat(84));
    for ds in all_datasets(&cfg.data) {
        ds.validate().expect("generated dataset is well-formed");
        println!("{}   (generated)", table_one(&ds));
    }
    if (cfg.data.scale - 1.0).abs() > 1e-9 {
        note(&format!(
            "generated at scale {:.2}; run with --full (or --scale 1.0) to match the paper's counts exactly",
            cfg.data.scale
        ));
    } else {
        note("full scale: #Samples/#Relations/#Tuples/#Attributes match Table I exactly");
    }
}
