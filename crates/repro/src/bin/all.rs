//! Run every table and figure reproduction in sequence (quick mode by
//! default; all flags of the individual binaries apply).
//!
//! Usage: `cargo run -p repro --release --bin all [--full] [--scale X] …`

use repro::report::section;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    section("Reproducing every table and figure of the paper");
    println!("(equivalent to running table1…table6 and fig5 in sequence)");
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    for bin in [
        "table1", "table2", "table3", "table4", "table5", "table6", "fig5",
    ] {
        let path = dir.join(bin);
        let status = std::process::Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    section("Done");
    println!("See EXPERIMENTS.md for the shape criteria each table must satisfy.");
}
