//! Reproduce **Table IV**: dynamic accuracy at 10% new tuples, comparing
//! the *all-at-once* and *one-by-one* embedding extensions.
//!
//! Usage:
//! `cargo run -p repro --release --bin table4 [--full] [--dataset NAME]`

use repro::report::{note, pm, section};
use repro::{dynamic_experiment, DynamicSetup, ExperimentConfig, Method};

/// Paper Table IV: (dataset, N2V all-at-once, FWD all-at-once,
/// N2V one-by-one, FWD one-by-one).
const PAPER: [(&str, f64, f64, f64, f64); 5] = [
    ("Hepatitis", 0.9334, 0.8220, 0.9260, 0.8420),
    ("Genes", 0.9450, 0.9791, 0.9620, 0.9849),
    ("Mutagenesis", 0.8758, 0.9000, 0.8789, 0.8947),
    ("World", 0.9125, 0.8750, 0.9458, 0.7708),
    ("Mondial", 0.7762, 0.8000, 0.7667, 0.8047),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let filter = ExperimentConfig::dataset_filter(&args);

    section("Table IV — dynamic accuracy, 10% new tuples (paper values in parentheses)");
    println!(
        "{:<12} | {:>24} {:>24} | {:>24} {:>24}",
        "", "All-at-once N2V", "All-at-once FoRWaRD", "One-by-one N2V", "One-by-one FoRWaRD"
    );
    for (name, n2v_a, fwd_a, n2v_o, fwd_o) in PAPER {
        if let Some(f) = &filter {
            if !name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let ds = datasets::by_name(name, &cfg.data).expect("known dataset");
        let run = |method, one_by_one| {
            dynamic_experiment(
                &ds,
                method,
                DynamicSetup {
                    ratio: 0.10,
                    one_by_one,
                },
                &cfg,
            )
        };
        let aa_n2v = run(Method::Node2Vec, false);
        let aa_fwd = run(Method::Forward, false);
        let oo_n2v = run(Method::Node2Vec, true);
        let oo_fwd = run(Method::Forward, true);
        println!(
            "{:<12} | {:>15} ({:>4.1}) {:>15} ({:>4.1}) | {:>15} ({:>4.1}) {:>15} ({:>4.1})",
            name,
            pm(aa_n2v.accuracy_mean, aa_n2v.accuracy_std),
            n2v_a * 100.0,
            pm(aa_fwd.accuracy_mean, aa_fwd.accuracy_std),
            fwd_a * 100.0,
            pm(oo_n2v.accuracy_mean, oo_n2v.accuracy_std),
            n2v_o * 100.0,
            pm(oo_fwd.accuracy_mean, oo_fwd.accuracy_std),
            fwd_o * 100.0
        );
    }
    note("shape expectation (paper §VI-E2): one-by-one ≈ all-at-once for both methods —");
    note("recomputing old walks buys surprisingly little.");
}
