//! Reproduce **Table V**: wall-clock seconds to compute the static
//! embeddings.
//!
//! Usage: `cargo run -p repro --release --bin table5 [--full]`

use repro::harness::static_training_time;
use repro::report::{note, secs, section};
use repro::{ExperimentConfig, Method};

/// Paper Table V: (dataset, N2V seconds, FoRWaRD seconds).
const PAPER: [(&str, f64, f64); 5] = [
    ("Hepatitis", 189.0, 540.0),
    ("Genes", 78.0, 204.0),
    ("Mutagenesis", 166.0, 230.0),
    ("World", 219.0, 440.0),
    ("Mondial", 462.0, 810.0),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let filter = ExperimentConfig::dataset_filter(&args);

    section("Table V — static embedding wall-clock (ours vs paper, seconds)");
    println!(
        "{:<12} {:>12} {:>12} | {:>9} {:>9} | {:>6}",
        "Task", "N2V (ours)", "FWD (ours)", "N2V-ppr", "FWD-ppr", "ratio"
    );
    for (name, n2v_paper, fwd_paper) in PAPER {
        if let Some(f) = &filter {
            if !name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let ds = datasets::by_name(name, &cfg.data).expect("known dataset");
        let t_n2v = static_training_time(&ds, Method::Node2Vec, &cfg, cfg.seed);
        let t_fwd = static_training_time(&ds, Method::Forward, &cfg, cfg.seed);
        println!(
            "{:<12} {:>12} {:>12} | {:>8.0}s {:>8.0}s | {:>6.2}",
            name,
            secs(t_n2v),
            secs(t_fwd),
            n2v_paper,
            fwd_paper,
            t_fwd / t_n2v.max(1e-9)
        );
    }
    note("shape expectation: ratio column ≈ the paper's FWD/N2V ratio (1.4–2.9);");
    note("absolute seconds are incomparable (paper: RTX 2070 GPU; ours: CPU, scaled data).");
}
