//! Reproduce **Table II**: hyperparameters of the two methods.
//!
//! Prints the paper's values (which `ForwardConfig::paper()` /
//! `Node2VecConfig::default()` encode) next to the quick-mode values the
//! CPU experiments use.

use node2vec::Node2VecConfig;
use repro::report::{note, section};
use repro::ExperimentConfig;
use stembed_core::ForwardConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = ExperimentConfig::from_args(&args);
    let paper_fwd = ForwardConfig::paper();
    let paper_n2v = Node2VecConfig::default();

    section("Table II — hyperparameters (paper defaults vs this run)");
    println!("FoRWaRD");
    println!("  {:<22} {:>10} {:>10}", "parameter", "paper", "this-run");
    println!(
        "  {:<22} {:>10} {:>10}",
        "embedding dim (d)", paper_fwd.dim, quick.fwd.dim
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "#samples (nsamples)", paper_fwd.nsamples, quick.fwd.nsamples
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "batch size", paper_fwd.batch_size, quick.fwd.batch_size
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "max walk len (lmax)", paper_fwd.max_walk_len, quick.fwd.max_walk_len
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "#epochs", paper_fwd.epochs, quick.fwd.epochs
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "nnew_samples", paper_fwd.nnew_samples, quick.fwd.nnew_samples
    );
    println!("Node2Vec");
    println!(
        "  {:<22} {:>10} {:>10}",
        "embedding dim", paper_n2v.dim, quick.n2v.dim
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "#walks per node", paper_n2v.walks_per_node, quick.n2v.walks_per_node
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "#steps per walk", paper_n2v.walk_length, quick.n2v.walk_length
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "context window", paper_n2v.window, quick.n2v.window
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "#neg/#pos samples", paper_n2v.negatives, quick.n2v.negatives
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "#epochs", paper_n2v.epochs, quick.n2v.epochs
    );
    println!(
        "  {:<22} {:>10} {:>10}",
        "dynamic #epochs", paper_n2v.dynamic_epochs, quick.n2v.dynamic_epochs
    );
    note("Genes uses nsamples 1,000 / batch 10,000 / 10 epochs in the paper (ForwardConfig::paper_genes)");
    note("kernels: Gaussian (fitted variance) for numeric attributes, equality otherwise — paper §VI-C");
}
