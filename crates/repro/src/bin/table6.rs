//! Reproduce **Table VI**: average seconds to embed one newly arrived
//! tuple, for both re-insertion regimes.
//!
//! Usage:
//! `cargo run -p repro --release --bin table6 [--full] [--dataset NAME]`

use repro::report::{note, secs, section};
use repro::{dynamic_experiment, DynamicSetup, ExperimentConfig, Method};

/// Paper Table VI: (dataset, N2V all-at-once, FWD all-at-once,
/// N2V one-by-one, FWD one-by-one) — seconds per new tuple.
const PAPER: [(&str, f64, f64, f64, f64); 5] = [
    ("Hepatitis", 0.265, 0.620, 0.679, 0.111),
    ("Genes", 0.062, 0.176, 0.173, 0.079),
    ("Mutagenesis", 0.650, 0.280, 0.764, 0.134),
    ("World", 0.640, 0.733, 0.283, 0.149),
    ("Mondial", 1.550, 1.090, 1.710, 0.385),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = ExperimentConfig::from_args(&args);
    let filter = ExperimentConfig::dataset_filter(&args);

    section("Table VI — seconds to embed one new tuple (ours, paper in parentheses)");
    println!(
        "{:<12} | {:>18} {:>18} | {:>18} {:>18}",
        "", "AaO N2V", "AaO FoRWaRD", "1x1 N2V", "1x1 FoRWaRD"
    );
    for (name, n2v_a, fwd_a, n2v_o, fwd_o) in PAPER {
        if let Some(f) = &filter {
            if !name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let ds = datasets::by_name(name, &cfg.data).expect("known dataset");
        let run = |method, one_by_one| {
            dynamic_experiment(
                &ds,
                method,
                DynamicSetup {
                    ratio: 0.10,
                    one_by_one,
                },
                &cfg,
            )
            .per_tuple_secs
        };
        println!(
            "{:<12} | {:>10} ({:>5.3}) {:>10} ({:>5.3}) | {:>10} ({:>5.3}) {:>10} ({:>5.3})",
            name,
            secs(run(Method::Node2Vec, false)),
            n2v_a,
            secs(run(Method::Forward, false)),
            fwd_a,
            secs(run(Method::Node2Vec, true)),
            n2v_o,
            secs(run(Method::Forward, true)),
            fwd_o
        );
    }
    note("shape expectation (paper §VI-F): in the one-by-one setting FoRWaRD is consistently");
    note("faster than Node2Vec — a linear solve beats SGD retraining per tuple.");
}
