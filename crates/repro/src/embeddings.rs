//! Uniform access to the two embedding methods.

use crate::ExperimentConfig;
use datasets::Dataset;
use reldb::{Database, FactId};
use stembed_core::{
    embedder::ExtendMode, CoreError, ForwardEmbedder, Node2VecEmbedder, TupleEmbedder,
};

/// Which embedding algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The FoRWaRD algorithm (paper §V).
    Forward,
    /// The dynamic Node2Vec adaptation (paper §IV).
    Node2Vec,
}

impl Method {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::Forward => "FoRWaRD",
            Method::Node2Vec => "Node2Vec",
        }
    }

    /// Both methods, in the order the paper's tables list them.
    pub fn all() -> [Method; 2] {
        [Method::Node2Vec, Method::Forward]
    }
}

/// Type-erased embedder so the harness can treat both methods uniformly.
#[derive(Clone)]
pub enum AnyEmbedder {
    /// FoRWaRD.
    Forward(Box<ForwardEmbedder>),
    /// Node2Vec.
    Node2Vec(Box<Node2VecEmbedder>),
}

impl AnyEmbedder {
    /// Static phase on the dataset's current database state.
    pub fn train(
        method: Method,
        db: &Database,
        ds: &Dataset,
        cfg: &ExperimentConfig,
        seed: u64,
        mode: ExtendMode,
    ) -> Result<Self, CoreError> {
        match method {
            Method::Forward => Ok(AnyEmbedder::Forward(Box::new(ForwardEmbedder::train(
                db,
                ds.prediction_rel,
                &cfg.fwd,
                seed,
            )?))),
            Method::Node2Vec => Ok(AnyEmbedder::Node2Vec(Box::new(
                // Localized build: BFS node ids from the prediction
                // relation keep the dynamic phase's dirty sets clustered
                // (few negative-table buckets, contiguous arena rows).
                Node2VecEmbedder::train_localized(db, ds.prediction_rel, &cfg.n2v, seed)
                    .with_mode(mode),
            ))),
        }
    }

    /// The embedding of a fact (by value — see
    /// [`TupleEmbedder::embedding`]).
    pub fn embedding(&self, fact: FactId) -> Option<Vec<f64>> {
        match self {
            AnyEmbedder::Forward(e) => e.embedding(fact),
            AnyEmbedder::Node2Vec(e) => e.embedding(fact),
        }
    }

    /// Extend to newly inserted facts (stability guaranteed by both
    /// implementations).
    pub fn extend(
        &mut self,
        db: &Database,
        new_facts: &[FactId],
        seed: u64,
    ) -> Result<(), CoreError> {
        match self {
            AnyEmbedder::Forward(e) => e.extend(db, new_facts, seed),
            AnyEmbedder::Node2Vec(e) => e.extend(db, new_facts, seed),
        }
    }

    /// Feature matrix for the given labelled facts (order preserved).
    /// Panics if a fact has no embedding — the harness only requests facts
    /// it has embedded.
    pub fn features(&self, facts: &[FactId]) -> Vec<Vec<f64>> {
        facts
            .iter()
            .map(|&f| {
                self.embedding(f)
                    .unwrap_or_else(|| panic!("fact {f} has no embedding"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::DatasetParams;

    #[test]
    fn trains_both_methods_on_tiny_world() {
        let ds = datasets::world::generate(&DatasetParams::tiny(3));
        let cfg = ExperimentConfig::quick();
        for method in Method::all() {
            let emb =
                AnyEmbedder::train(method, &ds.db, &ds, &cfg, 1, ExtendMode::OneByOne).unwrap();
            let facts: Vec<FactId> = ds.labels.iter().map(|(f, _)| *f).collect();
            let x = emb.features(&facts);
            assert_eq!(x.len(), ds.sample_count());
            assert!(x.iter().all(|row| row.iter().all(|v| v.is_finite())));
        }
    }
}
