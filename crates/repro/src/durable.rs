//! The durable embedding pipeline: a [`reldb::Database`] plus both
//! embedders (FoRWaRD and dynamic Node2Vec) on top of `stembed-wal`'s
//! write-ahead log and snapshots, with deterministic crash recovery.
//!
//! ## What is logged
//!
//! * Every journalled database mutation — inserts, deletes, restores,
//!   **including every member of a cascade group** — is appended to the
//!   WAL *by the database itself* through the attached
//!   [`stembed_wal::WalHook`], in epoch order, before the pipeline
//!   regains control.
//! * Every completed embedding extension is appended by the pipeline as
//!   one `Extend{seed, facts}` frame. The frame does **not** carry the
//!   computed vectors: the workspace's determinism contract
//!   (`PRECISION.md` — bit-identical at any shard count, cached ≡
//!   uncached, retained ≡ fresh) means re-running
//!   `extend(db, facts, seed)` during replay reproduces them bit for
//!   bit, so the log stays proportional to the mutation stream, not to
//!   the embedding dimension.
//!
//! ## Recovery
//!
//! [`DurablePipeline::recover`] loads the newest valid snapshot (schema,
//! slot-exact facts, both embedding blobs — see `stembed_core::snapshot`),
//! replays the WAL tail in LSN order (mutations via
//! [`reldb::Database::apply_mutation`] with epoch verification, extends by
//! re-running both embedders), and reopens the log at the recovered LSN.
//! A recovered pipeline is **byte-identical** to the uninterrupted run at
//! the same LSN — `tests/crash_recovery.rs` kills the pipeline at every
//! single simulated I/O operation and asserts exactly that via
//! [`DurablePipeline::state_bytes`].
//!
//! ## Crash semantics inside a process
//!
//! `Database::record_mutation` cannot fail, so a WAL I/O error latches
//! inside the hook ([`stembed_wal::WalHook::check`]). The pipeline checks
//! after every operation and surfaces the latched error; callers must
//! treat it as a process death — drop the pipeline and `recover`.

use reldb::{Database, FactId};
use std::sync::Arc;
use stembed_core::embedder::{ForwardEmbedder, Node2VecEmbedder};
use stembed_core::snapshot::{
    decode_forward, decode_node2vec, encode_forward, encode_node2vec, FORWARD_BLOB, NODE2VEC_BLOB,
};
use stembed_core::TupleEmbedder;
use stembed_wal::frame::FramePayload;
use stembed_wal::{
    latest_snapshot, read_wal_tail, write_snapshot, Snapshot, Vfs, WalError, WalHook, WalStats,
    WalWriter,
};

/// Default fsync batching: frames per fsync. One fsync per cascade-sized
/// mutation group keeps the one-by-one protocol's WAL overhead in the
/// single-digit percent range (see `examples/profile_extend.rs`); crash
/// durability is still bounded — at most one batch of frames can be lost,
/// never torn mid-frame.
pub const DEFAULT_SYNC_EVERY: usize = 64;

/// A database + FoRWaRD + Node2Vec pipeline with a WAL underneath.
#[derive(Debug)]
pub struct DurablePipeline {
    vfs: Arc<dyn Vfs>,
    dir: String,
    sync_every: usize,
    hook: Arc<WalHook>,
    db: Database,
    fwd: ForwardEmbedder,
    n2v: Node2VecEmbedder,
}

impl DurablePipeline {
    /// Put a freshly trained pipeline under WAL protection: open the log
    /// in `dir` (which must be empty of segments), attach the durability
    /// hook, and commit the initial snapshot so recovery has a floor.
    ///
    /// The database must have journalling enabled
    /// ([`reldb::DbError::JournalDisabled`] otherwise — an unjournalled
    /// database would silently skip the WAL for every mutation).
    pub fn create(
        vfs: Arc<dyn Vfs>,
        dir: &str,
        mut db: Database,
        fwd: ForwardEmbedder,
        n2v: Node2VecEmbedder,
        sync_every: usize,
    ) -> Result<Self, WalError> {
        let writer = WalWriter::open(vfs.clone(), dir, sync_every, 0)?;
        let hook = Arc::new(WalHook::new(writer));
        db.attach_durability_hook(hook.clone())?;
        let mut this = DurablePipeline {
            vfs,
            dir: dir.to_string(),
            sync_every,
            hook,
            db,
            fwd,
            n2v,
        };
        this.snapshot()?;
        Ok(this)
    }

    /// The live database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The FoRWaRD embedder.
    pub fn forward(&self) -> &ForwardEmbedder {
        &self.fwd
    }

    /// The Node2Vec embedder.
    pub fn node2vec(&self) -> &Node2VecEmbedder {
        &self.n2v
    }

    /// Write-side WAL counters (frames, bytes, fsyncs).
    pub fn wal_stats(&self) -> WalStats {
        self.hook.stats()
    }

    /// LSN of the last appended frame.
    pub fn last_lsn(&self) -> Result<u64, WalError> {
        self.hook.last_lsn()
    }

    /// Run a database mutation under the WAL: the hook appends every
    /// journalled mutation the closure performs, and any latched WAL
    /// error surfaces here — after which the pipeline must be treated as
    /// dead (recover from `dir`).
    pub fn mutate<T>(
        &mut self,
        f: impl FnOnce(&mut Database) -> Result<T, reldb::DbError>,
    ) -> Result<T, WalError> {
        let out = f(&mut self.db)?;
        self.hook.check()?;
        Ok(out)
    }

    /// Extend both embedders to `facts` (which must already be live) and
    /// log one `Extend` frame. The frame is appended *after* the
    /// extensions succeed: a crash mid-extension recovers to the
    /// pre-extension state and the in-memory progress is discarded with
    /// the process, exactly as if the extension never ran.
    pub fn extend(&mut self, facts: &[FactId], seed: u64) -> Result<(), WalError> {
        self.fwd
            .extend(&self.db, facts, seed)
            .map_err(|e| WalError::Corrupt(format!("forward extend: {e}")))?;
        self.n2v
            .extend(&self.db, facts, seed)
            .map_err(|e| WalError::Corrupt(format!("node2vec extend: {e}")))?;
        self.hook.append_extend(seed, facts.to_vec())?;
        Ok(())
    }

    /// Force every appended frame durable (an explicit fsync outside the
    /// batching cadence).
    pub fn sync(&self) -> Result<(), WalError> {
        self.hook.sync()
    }

    /// Commit a snapshot of the complete pipeline state and rotate the
    /// WAL: sync the log, capture `(db, ϕ/ψ, SGNS)` at the current LSN,
    /// write it atomically (tmp → fsync → rename → dir fsync), then drop
    /// the now-superseded segments. Returns the snapshot LSN.
    pub fn snapshot(&mut self) -> Result<u64, WalError> {
        let cursor = self.hook.snapshot_cursor()?;
        let snap = Snapshot::capture(
            &self.db,
            cursor,
            vec![
                (FORWARD_BLOB.to_string(), encode_forward(&self.fwd)),
                (NODE2VEC_BLOB.to_string(), encode_node2vec(&self.n2v)),
            ],
        );
        write_snapshot(self.vfs.as_ref(), &self.dir, &snap)?;
        self.hook.rotate(cursor)?;
        Ok(cursor)
    }

    /// Size in bytes of the newest committed snapshot, if one exists.
    pub fn latest_snapshot_bytes(&self) -> Result<Option<u64>, WalError> {
        Ok(latest_snapshot(self.vfs.as_ref(), &self.dir)?.map(|s| s.encode().len() as u64))
    }

    /// Rebuild the pipeline from `dir`: newest valid snapshot, then
    /// deterministic replay of the WAL tail. The recovered pipeline is
    /// byte-identical (per [`DurablePipeline::state_bytes`]) to the
    /// pre-crash pipeline at the last durable LSN, and recovering twice
    /// from the same directory yields identical bytes.
    pub fn recover(vfs: Arc<dyn Vfs>, dir: &str, sync_every: usize) -> Result<Self, WalError> {
        let snap = latest_snapshot(vfs.as_ref(), dir)?.ok_or_else(|| {
            WalError::Corrupt(format!("no valid snapshot in {dir}; cannot recover"))
        })?;
        let mut db = snap.restore_database()?;
        let fwd_blob = snap
            .blob(FORWARD_BLOB)
            .ok_or_else(|| WalError::Corrupt("snapshot lacks the forward blob".into()))?;
        let n2v_blob = snap
            .blob(NODE2VEC_BLOB)
            .ok_or_else(|| WalError::Corrupt("snapshot lacks the node2vec blob".into()))?;
        let mut fwd = decode_forward(&db, fwd_blob)?;
        let mut n2v = decode_node2vec(&db, n2v_blob)?;

        for frame in read_wal_tail(vfs.as_ref(), dir, snap.lsn)? {
            match frame.payload {
                FramePayload::Mutation {
                    kind,
                    id,
                    epoch,
                    fact,
                } => {
                    db.apply_mutation(kind, id, &fact)?;
                    if db.epoch() != epoch {
                        return Err(WalError::Corrupt(format!(
                            "replay of lsn {} reached epoch {}, log recorded {epoch}",
                            frame.lsn,
                            db.epoch()
                        )));
                    }
                }
                FramePayload::Extend { seed, facts } => {
                    fwd.extend(&db, &facts, seed)
                        .map_err(|e| WalError::Corrupt(format!("replay forward extend: {e}")))?;
                    n2v.extend(&db, &facts, seed)
                        .map_err(|e| WalError::Corrupt(format!("replay node2vec extend: {e}")))?;
                }
            }
        }

        // Reopen the log — `open` rescans the newest segment, truncates
        // any torn tail, and resumes the LSN sequence after the last
        // intact frame.
        let writer = WalWriter::open(vfs.clone(), dir, sync_every, 0)?;
        let hook = Arc::new(WalHook::new(writer));
        db.attach_durability_hook(hook.clone())?;
        Ok(DurablePipeline {
            vfs,
            dir: dir.to_string(),
            sync_every,
            hook,
            db,
            fwd,
            n2v,
        })
    }

    /// Canonical byte serialization of the complete logical state —
    /// database (schema, slots, epoch) and both embedders — used by the
    /// fault-injection suite to compare a recovered pipeline against the
    /// uninterrupted reference with plain `==`. The WAL cursor is *not*
    /// part of the logical state and is pinned to 0 in the bytes.
    pub fn state_bytes(&self) -> Vec<u8> {
        Snapshot::capture(
            &self.db,
            0,
            vec![
                (FORWARD_BLOB.to_string(), encode_forward(&self.fwd)),
                (NODE2VEC_BLOB.to_string(), encode_node2vec(&self.n2v)),
            ],
        )
        .encode()
    }

    /// The configured fsync batching (frames per fsync).
    pub fn sync_every(&self) -> usize {
        self.sync_every
    }
}
