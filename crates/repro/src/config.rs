//! Experiment-scale presets.

use datasets::DatasetParams;
use node2vec::Node2VecConfig;
use stembed_core::kd::KdOptions;
use stembed_core::ForwardConfig;

/// Everything an experiment run needs to know.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Dataset generation parameters (scale, seed, signal).
    pub data: DatasetParams,
    /// FoRWaRD hyperparameters.
    pub fwd: ForwardConfig,
    /// Node2Vec hyperparameters.
    pub n2v: Node2VecConfig,
    /// Cross-validation folds for the static experiment (paper: 10).
    pub folds: usize,
    /// Repetitions of each dynamic setting (paper: 10).
    pub repetitions: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// CPU-budget preset: scaled-down datasets and model sizes. This is the
    /// default for the repro binaries — the full-scale protocol is
    /// identical, just bigger (pass `--full`).
    pub fn quick() -> Self {
        ExperimentConfig {
            data: DatasetParams {
                scale: 0.25,
                ..DatasetParams::default()
            },
            fwd: ForwardConfig {
                dim: 32,
                max_walk_len: 2,
                nsamples: 25, // per fact per target, as in the paper's §V-D
                epochs: 20,
                batch_size: 1, // pure SGD works best at this scale
                learning_rate: 0.1,
                nnew_samples: 12,
                kd: KdOptions {
                    exact_limit: 128,
                    mc_pairs: 24,
                    max_attempts: 6,
                },
                ..ForwardConfig::small()
            },
            n2v: Node2VecConfig {
                dim: 32,
                walks_per_node: 8,
                walk_length: 10,
                window: 4,
                negatives: 6,
                epochs: 3,
                dynamic_epochs: 2,
                ..Node2VecConfig::default()
            },
            folds: 4,
            repetitions: 3,
            seed: 2023,
        }
    }

    /// The paper's configuration (Table II): full-size datasets, d = 100,
    /// 10 folds, 10 repetitions. Expect long CPU runtimes.
    pub fn full() -> Self {
        ExperimentConfig {
            data: DatasetParams::default(),
            fwd: ForwardConfig::paper(),
            n2v: Node2VecConfig::default(),
            folds: 10,
            repetitions: 10,
            seed: 2023,
        }
    }

    /// Parse `--full` / `--seed N` / `--scale X` from CLI arguments.
    pub fn from_args(args: &[String]) -> Self {
        let mut cfg = if args.iter().any(|a| a == "--full") {
            Self::full()
        } else {
            Self::quick()
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--seed" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                    }
                }
                "--scale" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.data.scale = v;
                    }
                }
                "--folds" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.folds = v;
                    }
                }
                "--reps" => {
                    if let Some(v) = it.next().and_then(|s| s.parse().ok()) {
                        cfg.repetitions = v;
                    }
                }
                _ => {}
            }
        }
        cfg
    }

    /// The `--dataset NAME` filter, if present.
    pub fn dataset_filter(args: &[String]) -> Option<String> {
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if a == "--dataset" {
                return it.next().cloned();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_is_smaller_than_full() {
        let q = ExperimentConfig::quick();
        let f = ExperimentConfig::full();
        assert!(q.data.scale < f.data.scale);
        assert!(q.fwd.dim < f.fwd.dim);
        assert!(q.folds <= f.folds);
    }

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["--seed", "7", "--scale", "0.3", "--dataset", "genes"]
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let cfg = ExperimentConfig::from_args(&args);
        assert_eq!(cfg.seed, 7);
        assert!((cfg.data.scale - 0.3).abs() < 1e-12);
        assert_eq!(
            ExperimentConfig::dataset_filter(&args).as_deref(),
            Some("genes")
        );
        let full = ExperimentConfig::from_args(&["--full".to_string()]);
        assert_eq!(full.fwd.dim, 100);
    }
}
