//! The paper's two experimental protocols.
//!
//! **Static** (§VI-D): per CV fold, train a fresh embedding of the whole
//! database (the embedding never sees labels), train an RBF-SVM on the
//! embedded training tuples, report test accuracy — mean ± std over folds.
//!
//! **Dynamic** (§VI-E), five steps: (1) stratified partition of the
//! prediction relation into `F_old`/`F_new`; each new tuple is removed with
//! an *On Delete Cascade* deletion (journalled); (2) train the embedding on
//! the static part; (3) train the downstream classifier on the static
//! embeddings; (4) re-insert the removed tuples — one-by-one in inverse
//! deletion order, each with its cascade group, extending the embedding
//! after every insertion (or once at the end, in the *all-at-once* setup);
//! (5) evaluate the classifier **only on the new tuples**.

use crate::embeddings::{AnyEmbedder, Method};
use crate::ExperimentConfig;
use datasets::Dataset;
use ml::{accuracy, cross_validate, OneVsRest, RbfSvm, StandardScaler, SvmParams};

/// Downstream SVM parameters. `C = 10` rather than scikit-learn's default 1:
/// the simplified SMO solver needs the larger margin penalty to fully fit
/// the embedded classes (scikit-learn's libsvm solver optimises the C = 1
/// dual to convergence; simplified SMO stops earlier). The comparison
/// between embedding methods is unaffected — both use the same classifier.
fn svm_params(seed: u64) -> SvmParams {
    SvmParams {
        c: 10.0,
        max_passes: 5,
        max_iter: 400,
        seed,
        ..SvmParams::default()
    }
}
use reldb::{cascade_delete, restore_journal, DeletionJournal, FactId};
use std::time::Instant;
use stembed_core::embedder::ExtendMode;
use stembed_runtime::rng::DetRng;

/// Train an RBF-SVM (one-vs-rest) and return test accuracy.
fn svm_fold(
    x: &[Vec<f64>],
    y: &[usize],
    classes: usize,
    train: &[usize],
    test: &[usize],
    seed: u64,
) -> f64 {
    let xt: Vec<Vec<f64>> = train.iter().map(|&i| x[i].clone()).collect();
    let yt: Vec<usize> = train.iter().map(|&i| y[i]).collect();
    let model = OneVsRest::fit(&xt, &yt, classes, || RbfSvm::new(svm_params(seed)));
    let preds: Vec<usize> = test.iter().map(|&i| model.predict(&x[i])).collect();
    let truth: Vec<usize> = test.iter().map(|&i| y[i]).collect();
    accuracy(&preds, &truth)
}

/// Static experiment: embedding + SVM + stratified k-fold CV.
/// Returns `(mean, std)` over folds. A fresh embedding is trained per fold
/// (the paper does the same, to fold embedding randomness into the ± band).
pub fn static_experiment(
    ds: &Dataset,
    method: Method,
    cfg: &ExperimentConfig,
    seed: u64,
) -> (f64, f64) {
    let y: Vec<usize> = ds.labels.iter().map(|(_, c)| *c).collect();
    let facts: Vec<FactId> = ds.labels.iter().map(|(f, _)| *f).collect();
    let classes = ds.class_count();
    let folds = ml::stratified_kfold(&y, cfg.folds, seed);
    let mut scores = Vec::with_capacity(cfg.folds);
    for (fold_idx, test) in folds.iter().enumerate() {
        let emb = AnyEmbedder::train(
            method,
            &ds.db,
            ds,
            cfg,
            seed.wrapping_add(fold_idx as u64),
            ExtendMode::OneByOne,
        )
        .expect("static training");
        let raw = emb.features(&facts);
        let (_, x) = StandardScaler::fit_transform(&raw);
        let train: Vec<usize> = (0..facts.len()).filter(|i| !test.contains(i)).collect();
        scores.push(svm_fold(&x, &y, classes, &train, test, seed));
    }
    (linalg::mean(&scores), linalg::std_dev(&scores))
}

/// Static experiment timing only: seconds to train one embedding of the
/// whole database (Table V).
pub fn static_training_time(
    ds: &Dataset,
    method: Method,
    cfg: &ExperimentConfig,
    seed: u64,
) -> f64 {
    let t0 = Instant::now();
    let _ = AnyEmbedder::train(method, &ds.db, ds, cfg, seed, ExtendMode::OneByOne)
        .expect("static training");
    t0.elapsed().as_secs_f64()
}

/// One dynamic setting: the fraction of new tuples and the re-insertion
/// regime.
#[derive(Debug, Clone, Copy)]
pub struct DynamicSetup {
    /// Fraction of prediction tuples treated as newly arriving (0..1).
    pub ratio: f64,
    /// `true`: extend after every re-inserted prediction tuple (+ cascade
    /// group); `false`: insert everything, then extend once ("all at
    /// once", which for Node2Vec also recomputes walks over old data).
    pub one_by_one: bool,
}

/// Aggregated outcome of the repeated dynamic experiment.
#[derive(Debug, Clone, Copy)]
pub struct DynamicOutcome {
    /// Accuracy on the **new** tuples only, mean over repetitions.
    pub accuracy_mean: f64,
    /// Standard deviation over repetitions.
    pub accuracy_std: f64,
    /// Mean seconds to train the static embedding (Table V measurements
    /// reuse this).
    pub static_secs: f64,
    /// Mean seconds to embed one newly arrived prediction tuple, i.e. total
    /// extension time divided by the number of new prediction tuples
    /// (Table VI).
    pub per_tuple_secs: f64,
}

/// Stratified choice of the "new" tuples: per class, a `ratio` fraction.
fn stratified_new_set(
    labels: &[(FactId, usize)],
    classes: usize,
    ratio: f64,
    rng: &mut DetRng,
) -> Vec<FactId> {
    let mut per_class: Vec<Vec<FactId>> = vec![Vec::new(); classes];
    for (f, c) in labels {
        per_class[*c].push(*f);
    }
    let mut new_set = Vec::new();
    for bucket in &mut per_class {
        for i in (1..bucket.len()).rev() {
            let j = rng.random_range(0..=i);
            bucket.swap(i, j);
        }
        let take = ((bucket.len() as f64) * ratio).round() as usize;
        // Keep at least one old tuple per class when possible, so the
        // downstream classifier sees every class.
        let take = take.min(bucket.len().saturating_sub(1));
        new_set.extend(bucket.iter().take(take).copied());
    }
    new_set
}

/// Run the 5-step dynamic protocol `cfg.repetitions` times.
pub fn dynamic_experiment(
    ds: &Dataset,
    method: Method,
    setup: DynamicSetup,
    cfg: &ExperimentConfig,
) -> DynamicOutcome {
    let mut accuracies = Vec::with_capacity(cfg.repetitions);
    let mut static_secs = Vec::new();
    let mut per_tuple_secs = Vec::new();
    for rep in 0..cfg.repetitions {
        let seed = cfg
            .seed
            .wrapping_add(0x1000 * rep as u64)
            .wrapping_add((setup.ratio * 1000.0) as u64);
        let (acc, t_static, t_tuple) = dynamic_once(ds, method, setup, cfg, seed);
        accuracies.push(acc);
        static_secs.push(t_static);
        per_tuple_secs.push(t_tuple);
    }
    DynamicOutcome {
        accuracy_mean: linalg::mean(&accuracies),
        accuracy_std: linalg::std_dev(&accuracies),
        static_secs: linalg::mean(&static_secs),
        per_tuple_secs: linalg::mean(&per_tuple_secs),
    }
}

fn dynamic_once(
    ds: &Dataset,
    method: Method,
    setup: DynamicSetup,
    cfg: &ExperimentConfig,
    seed: u64,
) -> (f64, f64, f64) {
    let mut db = ds.db.clone();
    let mut rng = DetRng::seed_from_u64(seed);

    // Step 1: stratified partition + cascading removal (random order).
    let mut new_facts = stratified_new_set(&ds.labels, ds.class_count(), setup.ratio, &mut rng);
    for i in (1..new_facts.len()).rev() {
        let j = rng.random_range(0..=i);
        new_facts.swap(i, j);
    }
    let mut journals: Vec<(FactId, DeletionJournal)> = Vec::with_capacity(new_facts.len());
    for &f in &new_facts {
        let journal = cascade_delete(&mut db, f, true).expect("cascade delete");
        journals.push((f, journal));
    }

    // Step 2: static embedding of the reduced database.
    let mode = if setup.one_by_one {
        ExtendMode::OneByOne
    } else {
        ExtendMode::AllAtOnce
    };
    let t0 = Instant::now();
    let mut emb = AnyEmbedder::train(method, &db, ds, cfg, seed, mode)
        .expect("static training on the old partition");
    let t_static = t0.elapsed().as_secs_f64();

    // Step 3: downstream classifier on the old tuples.
    let old: Vec<(FactId, usize)> = ds
        .labels
        .iter()
        .filter(|(f, _)| !new_facts.contains(f))
        .copied()
        .collect();
    let old_ids: Vec<FactId> = old.iter().map(|(f, _)| *f).collect();
    let old_y: Vec<usize> = old.iter().map(|(_, c)| *c).collect();
    let raw = emb.features(&old_ids);
    let (scaler, x_old) = StandardScaler::fit_transform(&raw);
    let model = OneVsRest::fit(&x_old, &old_y, ds.class_count(), || {
        RbfSvm::new(svm_params(seed))
    });

    // Step 4: re-insert in inverse deletion order and extend. FoRWaRD's
    // `extend` runs on the embedding's persistent walk-distribution cache:
    // within one insertion round (one journal = prediction tuple + cascade
    // group) every exact distribution is computed once, and the round's
    // restores are caught up through the database's mutation journal —
    // the cache evicts only the entries the restored facts can reach
    // through the FK graph, so the next round starts *warm*, not cold
    // (the flagship win of the paper's one-by-one protocol; see
    // `one_by_one_rounds` in benches/dynamic_extend.rs). Round `i` gets
    // its own derived seed — reusing one seed for every round would
    // overlap the per-fact stream families across rounds.
    let mut extend_time = 0.0;
    if setup.one_by_one {
        for (round, (_, journal)) in journals.iter().rev().enumerate() {
            let restored = restore_journal(&mut db, journal).expect("restore");
            let t = Instant::now();
            emb.extend(
                &db,
                &restored,
                stembed_runtime::derive_seed(seed ^ 0xd1a, round as u64),
            )
            .expect("extend");
            extend_time += t.elapsed().as_secs_f64();
        }
    } else {
        let mut all_restored = Vec::new();
        for (_, journal) in journals.iter().rev() {
            all_restored.extend(restore_journal(&mut db, journal).expect("restore"));
        }
        let t = Instant::now();
        emb.extend(&db, &all_restored, seed ^ 0xd1a)
            .expect("extend");
        extend_time += t.elapsed().as_secs_f64();
    }

    // Step 5: evaluate on the new tuples only.
    let new_y: Vec<usize> = new_facts
        .iter()
        .map(|f| ds.label_of(*f).expect("new facts are labelled"))
        .collect();
    let raw_new = emb.features(&new_facts);
    let x_new: Vec<Vec<f64>> = raw_new
        .into_iter()
        .map(|mut row| {
            scaler.transform_row(&mut row);
            row
        })
        .collect();
    let preds: Vec<usize> = x_new.iter().map(|row| model.predict(row)).collect();
    let acc = accuracy(&preds, &new_y);
    let per_tuple = extend_time / new_facts.len().max(1) as f64;
    (acc, t_static, per_tuple)
}

/// One round of the FoRWaRD one-by-one re-insertion protocol, shared by
/// `benches/dynamic_extend.rs` and `examples/profile_extend.rs` so the
/// two always measure the *same* workload: restore one cascade journal
/// into `db`, then extend every restored fact of `prediction_rel`, fact
/// `i` of round `round` drawing from the derived stream family
/// `derive_seed(derive_seed(base_seed, round), i)`. Callers iterate the
/// recorded journals in inverse deletion order (`journals.iter().rev()`).
/// `reuse_cache = false` is the throwaway-cache reference path of
/// [`stembed_core::ExtendOptions`]. Returns the number of facts extended.
pub fn one_by_one_round(
    emb: &mut stembed_core::ForwardEmbedding,
    db: &mut reldb::Database,
    prediction_rel: reldb::RelationId,
    journal: &DeletionJournal,
    base_seed: u64,
    round: u64,
    reuse_cache: bool,
) -> usize {
    let restored = restore_journal(db, journal).expect("restore");
    let mut extended = 0;
    for (i, f) in restored
        .into_iter()
        .filter(|f| f.rel == prediction_rel)
        .enumerate()
    {
        emb.extend_with(
            db,
            f,
            stembed_runtime::derive_seed(stembed_runtime::derive_seed(base_seed, round), i as u64),
            stembed_core::ExtendOptions {
                nnew_samples: None,
                reuse_cache,
            },
        )
        .expect("extend");
        extended += 1;
    }
    extended
}

/// Static CV accuracy over precomputed features — shared by baseline
/// reporting and tests.
pub fn svm_cv_accuracy(
    x: &[Vec<f64>],
    y: &[usize],
    classes: usize,
    folds: usize,
    seed: u64,
) -> (f64, f64) {
    let scores = cross_validate(y, folds, seed, |train, test| {
        svm_fold(x, y, classes, train, test, seed)
    });
    (linalg::mean(&scores), linalg::std_dev(&scores))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::DatasetParams;

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.folds = 3;
        cfg.repetitions = 1;
        cfg.fwd.dim = 16;
        cfg.fwd.epochs = 10;
        cfg.fwd.nsamples = 15;
        cfg.fwd.nnew_samples = 6;
        cfg.n2v.dim = 12;
        cfg.n2v.epochs = 2;
        cfg.n2v.walks_per_node = 4;
        cfg
    }

    #[test]
    fn static_experiment_beats_majority_on_tiny_hepatitis() {
        // Binary task with strong FK-borne signal: even a tiny FoRWaRD
        // configuration must clearly beat the majority baseline. (The tiny
        // multi-class datasets — 35 samples over 7 classes — are too small
        // to assert on; the repro binaries cover them at real scales.)
        let ds = datasets::hepatitis::generate(&DatasetParams::tiny(1));
        let cfg = tiny_cfg();
        let majority = crate::baselines::majority_accuracy(&ds);
        let (acc, _std) = static_experiment(&ds, Method::Forward, &cfg, 5);
        assert!(
            acc > majority,
            "FoRWaRD static accuracy {acc} should beat majority {majority}"
        );
    }

    #[test]
    fn dynamic_experiment_runs_both_methods_and_setups() {
        let ds = datasets::genes::generate(&DatasetParams::tiny(2));
        let cfg = tiny_cfg();
        for method in Method::all() {
            for one_by_one in [true, false] {
                let out = dynamic_experiment(
                    &ds,
                    method,
                    DynamicSetup {
                        ratio: 0.2,
                        one_by_one,
                    },
                    &cfg,
                );
                assert!(
                    (0.0..=1.0).contains(&out.accuracy_mean),
                    "accuracy out of range"
                );
                assert!(out.per_tuple_secs >= 0.0);
                assert!(out.static_secs > 0.0);
            }
        }
    }

    #[test]
    fn stratified_new_set_respects_ratio_and_classes() {
        let ds = datasets::hepatitis::generate(&DatasetParams::tiny(3));
        let mut rng = DetRng::seed_from_u64(1);
        let new_set = stratified_new_set(&ds.labels, ds.class_count(), 0.3, &mut rng);
        let frac = new_set.len() as f64 / ds.sample_count() as f64;
        assert!((0.2..0.4).contains(&frac), "fraction {frac}");
        // Every class retains at least one old tuple.
        for class in 0..ds.class_count() {
            let total = ds.labels.iter().filter(|(_, c)| *c == class).count();
            let taken = new_set
                .iter()
                .filter(|f| ds.label_of(**f) == Some(class))
                .count();
            assert!(taken < total, "class {class} fully consumed");
        }
    }
}
