//! Minimal table-printing helpers for the repro binaries.

/// `84.20%`.
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// `84.20% ± 4.94`.
pub fn pm(mean: f64, std: f64) -> String {
    format!("{:.2}% ± {:.2}", mean * 100.0, std * 100.0)
}

/// `0.620s`.
pub fn secs(x: f64) -> String {
    if x >= 10.0 {
        format!("{x:.1}s")
    } else {
        format!("{x:.3}s")
    }
}

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("{}", "=".repeat(title.len().max(8)));
    println!("{title}");
    println!("{}", "=".repeat(title.len().max(8)));
}

/// Print a note line.
pub fn note(text: &str) {
    println!("  note: {text}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats() {
        assert_eq!(pct(0.842), "84.20%");
        assert_eq!(pm(0.842, 0.0494), "84.20% ± 4.94");
        assert_eq!(secs(0.62), "0.620s");
        assert_eq!(secs(540.0), "540.0s");
    }
}
