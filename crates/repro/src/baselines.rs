//! Baselines: majority class and flat (single-relation) features.

use datasets::Dataset;
use ml::{
    accuracy, cross_validate, BinaryClassifier, LogisticRegression, OneVsRest, StandardScaler,
};
use reldb::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Accuracy of always predicting the most common class (the paper's
/// "baseline" in Figure 5).
pub fn majority_accuracy(ds: &Dataset) -> f64 {
    let labels: Vec<usize> = ds.labels.iter().map(|(_, c)| *c).collect();
    ml::majority_class(&labels).1
}

/// Flat-feature representation of a prediction fact: numeric attributes as
/// values, categorical attributes as a few hashed indicator buckets. Sees
/// **only** the prediction relation — no foreign keys — so its CV accuracy
/// measures how much signal leaks into the prediction relation itself.
pub fn flat_features(ds: &Dataset) -> Vec<Vec<f64>> {
    const BUCKETS: usize = 8;
    let rel = ds.db.schema().relation(ds.prediction_rel);
    let mut rows = Vec::with_capacity(ds.labels.len());
    for (fact_id, _) in &ds.labels {
        let fact = ds.db.fact(*fact_id).expect("labelled facts are live");
        let mut row = Vec::new();
        for (attr, value) in fact.values().iter().enumerate() {
            if attr == ds.class_attr || rel.is_key_attr(attr) {
                continue;
            }
            match value {
                Value::Null => {
                    row.push(0.0);
                    row.extend(std::iter::repeat_n(0.0, BUCKETS));
                }
                v => {
                    row.push(v.as_f64().unwrap_or(0.0));
                    let mut one_hot = vec![0.0; BUCKETS];
                    if let Some(text) = v.as_text() {
                        let mut h = DefaultHasher::new();
                        text.hash(&mut h);
                        one_hot[(h.finish() as usize) % BUCKETS] = 1.0;
                    }
                    row.extend(one_hot);
                }
            }
        }
        if row.is_empty() {
            row.push(0.0); // bare prediction relations (Mondial) yield a constant feature
        }
        rows.push(row);
    }
    rows
}

/// Cross-validated accuracy of logistic regression over the flat features.
pub fn flat_baseline_accuracy(ds: &Dataset, folds: usize, seed: u64) -> (f64, f64) {
    let x = flat_features(ds);
    let (_, x) = StandardScaler::fit_transform(&x);
    let y: Vec<usize> = ds.labels.iter().map(|(_, c)| *c).collect();
    let classes = ds.class_count();
    let scores = cross_validate(&y, folds, seed, |train, test| {
        let xt: Vec<Vec<f64>> = train.iter().map(|&i| x[i].clone()).collect();
        let yt: Vec<usize> = train.iter().map(|&i| y[i]).collect();
        let model = OneVsRest::fit(&xt, &yt, classes, || {
            LogisticRegression::new(1e-4, 0.3, 30, seed)
        });
        let preds: Vec<usize> = test.iter().map(|&i| model.predict(&x[i])).collect();
        let truth: Vec<usize> = test.iter().map(|&i| y[i]).collect();
        accuracy(&preds, &truth)
    });
    (linalg::mean(&scores), linalg::std_dev(&scores))
}

// Re-exported for binaries that train the flat model directly.
pub use ml::LogisticRegression as FlatModel;

/// Sanity helper for tests: a model must implement `BinaryClassifier`.
pub fn _assert_binary<C: BinaryClassifier>(_c: &C) {}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::DatasetParams;

    #[test]
    fn majority_matches_distribution() {
        let ds = datasets::mondial::generate(&DatasetParams::tiny(1));
        let acc = majority_accuracy(&ds);
        let dist = ds.class_distribution();
        let expect = *dist.iter().max().unwrap() as f64 / ds.sample_count() as f64;
        assert!((acc - expect).abs() < 1e-12);
    }

    #[test]
    fn mondial_flat_baseline_is_near_majority() {
        // Mondial's prediction relation has no usable features: the flat
        // baseline cannot beat majority by much. This is the property that
        // makes the dataset a real test of FK-aware embeddings.
        let ds = datasets::mondial::generate(&DatasetParams::tiny(5));
        let (acc, _) = flat_baseline_accuracy(&ds, 4, 3);
        let majority = majority_accuracy(&ds);
        assert!(
            acc <= majority + 0.12,
            "flat baseline {acc} suspiciously beats majority {majority}"
        );
    }

    #[test]
    fn flat_features_have_consistent_width() {
        let ds = datasets::world::generate(&DatasetParams::tiny(2));
        let x = flat_features(&ds);
        assert_eq!(x.len(), ds.sample_count());
        let w = x[0].len();
        assert!(x.iter().all(|r| r.len() == w));
    }
}
