//! # repro — experiment harness regenerating the paper's tables and figures
//!
//! One binary per table/figure (see `src/bin/`); this library holds the
//! shared machinery:
//!
//! * [`config`] — experiment-scale presets (`quick` for CPU-budget runs,
//!   `full` for the paper's Table II settings),
//! * [`embeddings`] — uniform access to the two embedding methods,
//! * [`baselines`] — majority class and the flat-feature logistic baseline,
//! * [`harness`] — the static 10-fold protocol (§VI-D) and the 5-step
//!   dynamic protocol (§VI-E) including the stratified cascade partition,
//! * [`timing`] — wall-clock measurements behind Tables V and VI,
//! * [`report`] — paper-vs-measured table printing.
//!
//! Absolute numbers are **not** expected to match the paper (synthetic
//! datasets, CPU instead of GPU, scaled-down configs in quick mode); the
//! comparisons that must hold are the *shapes* listed in DESIGN.md §3.

pub mod baselines;
pub mod config;
pub mod durable;
pub mod embeddings;
pub mod harness;
pub mod report;
pub mod timing;

pub use config::ExperimentConfig;
pub use embeddings::{AnyEmbedder, Method};
pub use harness::{
    dynamic_experiment, one_by_one_round, static_experiment, DynamicOutcome, DynamicSetup,
};
