//! Fault-injection suite for the durable pipeline: kill the process at
//! **every** simulated I/O operation of the one-by-one insertion protocol
//! and assert that [`repro::durable::DurablePipeline::recover`] restores a
//! state **byte-identical** to the uninterrupted reference run at the
//! recovered LSN.
//!
//! The reference run is validated first: at every step boundary the live
//! pipeline's canonical state bytes must equal the state obtained by
//! replaying the captured WAL frames one at a time onto clones of the
//! initial (database, FoRWaRD, Node2Vec) trio — i.e. replay reproduces the
//! original execution exactly, so comparing a recovered pipeline against
//! the replayed per-LSN states is *not* a tautology.
//!
//! Crash models swept (see [`stembed_wal::FailPoint`]):
//! * `CrashBeforeOp(k)` — die before op `k` (e.g. before the fsync that
//!   would have made the tail durable), for every `k`;
//! * `CrashAfterOp(k)` — die right after op `k` (e.g. after a rename
//!   landed in the live image but before the directory sync), for every
//!   `k`;
//! * `ShortWrite{op, keep}` — tear op `k` mid-append, leaving a torn
//!   frame for open-time truncation to repair, with varying `keep`.
//!
//! Every crash is followed by *two* recoveries: both must succeed and
//! yield identical bytes (recovery is deterministic and non-destructive).

use reldb::{cascade_delete, movies, restore_journal, Database, DeletionJournal};
use repro::durable::DurablePipeline;
use std::sync::Arc;
use stembed_core::embedder::{ForwardEmbedder, Node2VecEmbedder};
use stembed_core::snapshot::{encode_forward, encode_node2vec, FORWARD_BLOB, NODE2VEC_BLOB};
use stembed_core::{ForwardConfig, TupleEmbedder};
use stembed_wal::{read_wal_tail, FailPoint, Frame, FramePayload, SimVfs, Snapshot, Vfs, WalError};

const DIR: &str = "crashdir";
/// Small enough that fsync boundaries fall *inside* cascade groups and
/// extend rounds, so crashes land between a frame and its fsync.
const SYNC_EVERY: usize = 2;

/// Trained starting point shared by every run: the labeled movies
/// database with two actors cascade-deleted, then both embedders trained
/// on the reduced instance. The journals are restored one-by-one by the
/// protocol (the paper's dynamic insertion setting).
struct Fixture {
    db: Database,
    fwd: ForwardEmbedder,
    n2v: Node2VecEmbedder,
    /// In inverse deletion order, ready to restore.
    journals: Vec<DeletionJournal>,
}

fn fixture() -> Fixture {
    let (mut db, ids) = movies::movies_database_labeled();
    let j_a5 = cascade_delete(&mut db, ids["a5"], true).unwrap();
    let j_a4 = cascade_delete(&mut db, ids["a4"], true).unwrap();
    assert!(j_a5.len() > 1, "a5 must cascade into CAST rows");
    let actors = db.schema().relation_id("ACTORS").unwrap();
    let fwd = ForwardEmbedder::train(&db, actors, &ForwardConfig::small(), 41).unwrap();
    let n2v = Node2VecEmbedder::train(&db, &node2vec::Node2VecConfig::small(), 43);
    Fixture {
        db,
        fwd,
        n2v,
        journals: vec![j_a4, j_a5],
    }
}

/// Canonical state bytes of a free-standing trio — must match
/// [`DurablePipeline::state_bytes`] exactly.
fn state_of(db: &Database, fwd: &ForwardEmbedder, n2v: &Node2VecEmbedder) -> Vec<u8> {
    Snapshot::capture(
        db,
        0,
        vec![
            (FORWARD_BLOB.to_string(), encode_forward(fwd)),
            (NODE2VEC_BLOB.to_string(), encode_node2vec(n2v)),
        ],
    )
    .encode()
}

/// What the reference run records as it goes.
#[derive(Default)]
struct Log {
    /// `(lsn, state bytes)` at every step boundary of the live pipeline.
    checkpoints: Vec<(u64, Vec<u8>)>,
    /// Every frame ever appended, captured *before* rotation deletes the
    /// superseded segments.
    frames: Vec<Frame>,
    /// `vfs.op_count()` at the moment `create` returned — before this
    /// point no snapshot is durably committed, so recovery may
    /// legitimately find nothing to recover.
    ops_after_create: u64,
}

/// Append the not-yet-captured WAL tail (reads the *live* image, so
/// frames not yet fsynced are visible too).
fn capture(vfs: &SimVfs, frames: &mut Vec<Frame>) -> Result<(), WalError> {
    let since = frames.last().map_or(0, |f| f.lsn);
    frames.extend(read_wal_tail(vfs, DIR, since)?);
    Ok(())
}

/// The full protocol: create (commits the initial snapshot), then per
/// journal a restore round (one mutation frame per cascaded fact) plus an
/// embedding extension, with a snapshot + WAL rotation after the first
/// round and an explicit sync at the end. Any `Err` is a simulated
/// process death; `log` keeps whatever was recorded up to that point.
fn run_protocol(vfs: &Arc<SimVfs>, fx: &Fixture, log: &mut Log) -> Result<(), WalError> {
    let generic: Arc<dyn Vfs> = vfs.clone();
    let mut pipe = DurablePipeline::create(
        generic,
        DIR,
        fx.db.clone(),
        fx.fwd.clone(),
        fx.n2v.clone(),
        SYNC_EVERY,
    )?;
    log.ops_after_create = vfs.op_count();
    log.checkpoints.push((pipe.last_lsn()?, pipe.state_bytes()));

    for (round, journal) in fx.journals.iter().enumerate() {
        let restored = pipe.mutate(|db| restore_journal(db, journal))?;
        assert_eq!(restored.len(), journal.len());
        log.checkpoints.push((pipe.last_lsn()?, pipe.state_bytes()));

        pipe.extend(&restored, 0xD15C + round as u64)?;
        log.checkpoints.push((pipe.last_lsn()?, pipe.state_bytes()));

        if round == 0 {
            // Capture the frames before `snapshot()` rotates them away.
            capture(vfs, &mut log.frames)?;
            pipe.snapshot()?;
            log.checkpoints.push((pipe.last_lsn()?, pipe.state_bytes()));
        }
    }
    capture(vfs, &mut log.frames)?;
    pipe.sync()?;
    Ok(())
}

/// Replay the captured frames one at a time onto clones of the fixture,
/// recording the canonical state after each — `states[lsn]` is the
/// reference state at that LSN (`states[0]` = the initial trio).
fn replay_states(fx: &Fixture, frames: &[Frame]) -> Vec<Vec<u8>> {
    let mut db = fx.db.clone();
    let mut fwd = fx.fwd.clone();
    let mut n2v = fx.n2v.clone();
    let mut states = vec![state_of(&db, &fwd, &n2v)];
    for (i, frame) in frames.iter().enumerate() {
        assert_eq!(frame.lsn, i as u64 + 1, "LSN sequence must be gap-free");
        match &frame.payload {
            FramePayload::Mutation {
                kind,
                id,
                epoch,
                fact,
            } => {
                db.apply_mutation(*kind, *id, fact).unwrap();
                assert_eq!(db.epoch(), *epoch, "replay must track the logged epoch");
            }
            FramePayload::Extend { seed, facts } => {
                fwd.extend(&db, facts, *seed).unwrap();
                n2v.extend(&db, facts, *seed).unwrap();
            }
        }
        states.push(state_of(&db, &fwd, &n2v));
    }
    states
}

/// Run the protocol against a fresh filesystem armed with `fp`, crash,
/// recover twice, and check both recoveries against the reference.
fn check_crash_point(fx: &Fixture, states: &[Vec<u8>], ops_after_create: u64, fp: FailPoint) {
    let vfs = Arc::new(SimVfs::new());
    vfs.set_fail_point(fp);
    let mut scratch = Log::default();
    // The run is deterministic, so it retraces the reference history
    // exactly until the fail point kills it (a fail point on the very
    // last op can even let it finish).
    let _ = run_protocol(&vfs, fx, &mut scratch);
    vfs.crash();

    let generic: Arc<dyn Vfs> = vfs.clone();
    let first = DurablePipeline::recover(generic.clone(), DIR, SYNC_EVERY);
    let op = match fp {
        FailPoint::CrashBeforeOp(k) | FailPoint::CrashAfterOp(k) => k,
        FailPoint::ShortWrite { op, .. } => op,
    };
    let pipe = match first {
        Ok(pipe) => pipe,
        Err(e) => {
            // Only acceptable before `create` durably committed the
            // initial snapshot — there is genuinely nothing on disk yet.
            assert!(
                op < ops_after_create,
                "{fp:?}: recovery failed ({e}) although create() had completed"
            );
            return;
        }
    };
    let lsn = pipe.last_lsn().unwrap() as usize;
    assert!(
        lsn < states.len(),
        "{fp:?}: recovered to lsn {lsn}, past the reference run"
    );
    assert_eq!(
        pipe.state_bytes(),
        states[lsn],
        "{fp:?}: recovered state diverges from the reference at lsn {lsn}"
    );
    drop(pipe);

    // Recovery must be deterministic and non-destructive: a second
    // recovery from the same directory yields byte-identical state.
    let again = DurablePipeline::recover(generic, DIR, SYNC_EVERY).unwrap();
    assert_eq!(again.last_lsn().unwrap() as usize, lsn, "{fp:?}");
    assert_eq!(
        again.state_bytes(),
        states[lsn],
        "{fp:?}: second recovery diverges from the first"
    );
}

/// Reference run + replay cross-validation, then the full crash sweep.
#[test]
fn every_crash_point_recovers_byte_identical_state() {
    let fx = fixture();

    // Uninterrupted reference run.
    let vfs = Arc::new(SimVfs::new());
    let mut log = Log::default();
    run_protocol(&vfs, &fx, &mut log).expect("reference run must complete");
    let total_ops = vfs.op_count();
    assert!(
        total_ops > 30,
        "sweep needs a non-trivial op count, got {total_ops}"
    );
    assert!(!log.frames.is_empty());

    // Replay ≡ original execution: the live pipeline's state at every
    // step boundary equals the frame-by-frame replay at the same LSN.
    let states = replay_states(&fx, &log.frames);
    assert_eq!(states.len(), log.frames.len() + 1);
    for (lsn, bytes) in &log.checkpoints {
        assert_eq!(
            &states[*lsn as usize], bytes,
            "live pipeline diverges from replay at lsn {lsn}"
        );
    }

    // The sweep: every op is a crash site, under each crash model.
    for k in 0..total_ops {
        check_crash_point(
            &fx,
            &states,
            log.ops_after_create,
            FailPoint::CrashBeforeOp(k),
        );
        check_crash_point(
            &fx,
            &states,
            log.ops_after_create,
            FailPoint::CrashAfterOp(k),
        );
        check_crash_point(
            &fx,
            &states,
            log.ops_after_create,
            // Vary the tear length with the op index: 1 byte up to 13 —
            // inside the length prefix, the CRC, and the payload.
            FailPoint::ShortWrite {
                op: k,
                keep: 1 + (k as usize * 7) % 13,
            },
        );
    }
}

/// A crash that fires *inside* `Database::record_mutation` (where errors
/// cannot surface) must poison the hook so the pipeline's next operation
/// reports the death instead of silently continuing with a skipped LSN.
#[test]
fn wal_failure_inside_a_mutation_surfaces_at_the_pipeline() {
    let fx = fixture();
    let vfs = Arc::new(SimVfs::new());
    let generic: Arc<dyn Vfs> = vfs.clone();
    let mut pipe = DurablePipeline::create(
        generic,
        DIR,
        fx.db.clone(),
        fx.fwd.clone(),
        fx.n2v.clone(),
        SYNC_EVERY,
    )
    .unwrap();

    // Arm the next mutating I/O op: the append for the first restored
    // fact dies, the hook latches, and `mutate` reports it.
    vfs.set_fail_point(FailPoint::CrashBeforeOp(vfs.op_count()));
    let err = pipe
        .mutate(|db| restore_journal(db, &fx.journals[0]))
        .unwrap_err();
    assert_eq!(err, WalError::Crashed);
    // Still latched: the pipeline stays dead until recovered.
    assert_eq!(pipe.sync().unwrap_err(), WalError::Crashed);
}
