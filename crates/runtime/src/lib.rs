//! # stembed-runtime — deterministic parallel execution for the workspace
//!
//! Every compute layer of the reproduction (walk corpora, Monte-Carlo
//! destination sampling, FoRWaRD SGD, dynamic linear-system assembly) draws
//! random numbers and iterates over large item sets. This crate gives all of
//! them one shared substrate with two guarantees:
//!
//! 1. **Seed determinism** — a single master seed fully determines every
//!    random decision. The vendored [`rng::DetRng`] (xoshiro256++ seeded via
//!    SplitMix64) replaces the external `rand` crate workspace-wide, so the
//!    exact bit stream is owned by this repository and can never drift under
//!    a dependency upgrade.
//! 2. **Shard invariance** — parallel work is expressed as an ordered map
//!    over items or over *fixed-size* chunks ([`Runtime::par_map_ordered`],
//!    [`Runtime::par_chunks_map`]). RNG streams are derived per logical item
//!    or chunk ([`seed::stream_rng`]), never per thread, and reductions
//!    happen in chunk order. Results are therefore **bit-identical** for any
//!    shard count, including 1 — a property `tests/determinism.rs` in the
//!    workspace root asserts for all three embedding pipelines.
//!
//! The shard count defaults to the machine's available parallelism and can
//! be pinned with the `STEMBED_SHARDS` environment variable (or explicitly
//! via [`Runtime::new`]).
//!
//! The crate also hosts the shared **O(1) discrete samplers**: the flat
//! [`alias::AliasTable`] (Walker 1977) for fixed distributions — one table
//! built up front, two array reads per draw instead of a binary search —
//! and the two-level [`bucket::BucketAlias`] for distributions that
//! *change* incrementally (dynamic negative sampling): same O(1) draws,
//! but updating `k` of `n` weights rebuilds only the affected fixed-size
//! buckets plus a top-level table over bucket masses, never the whole
//! structure.
//!
//! Finally, the crate hosts the workspace's **mixed-precision SGD
//! kernels** ([`kernel`]): f32-storage / f64-accumulate dot, axpy and
//! fused SGNS gradient steps with a fixed-lane, fixed-order accumulation
//! schedule, so the autovectorised wide path and the portable scalar
//! reference (`STEMBED_KERNEL=scalar`) are **bit-identical** — the
//! determinism guarantees above extend unchanged to the mixed-precision
//! hot loops.

pub mod alias;
pub mod bucket;
pub mod kernel;
pub mod par;
mod pool;
pub mod rng;
pub mod seed;

pub use alias::{AliasScratch, AliasTable};
pub use bucket::BucketAlias;
pub use par::Runtime;
pub use rng::{DetRng, Rng, SplitMix64};
pub use seed::{derive_seed, stream_rng};
