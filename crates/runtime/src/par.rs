//! Shard-based deterministic parallel maps on a persistent worker pool.
//!
//! The runtime never hands code a "thread id": work is expressed as a map
//! over items (or fixed-size chunks of items), results come back **in item
//! order**, and any shard count produces the same output. Threads only
//! decide *when* a chunk runs, never *what* it computes — combined with
//! [`crate::seed::stream_rng`] keyed on item indices, this is what makes
//! every parallel layer of the workspace bit-reproducible.
//!
//! Execution runs on the process-wide [`crate::pool`]: workers are spawned
//! once and parked between jobs, and the calling thread always participates
//! in the work, so small parallel regions cost microseconds (not the tens
//! of microseconds per worker that per-call `std::thread::scope` spawning
//! would) and sequential fallback is automatic whenever the pool is busy.

use crate::pool::Pool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Environment variable overriding the default shard count.
pub const SHARDS_ENV: &str = "STEMBED_SHARDS";

/// A parallel execution context with a fixed shard count.
///
/// Cheap to copy; holds no threads of its own. Work executes on the
/// process-wide persistent pool (plus the calling thread), with borrowed
/// closures joined before each call returns — so borrowing local data in
/// the map closure works naturally and no pool lifecycle management is
/// needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    shards: usize,
}

impl Runtime {
    /// Runtime with exactly `shards` workers (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Runtime {
            shards: shards.clamp(1, 1024),
        }
    }

    /// Sequential runtime (one shard). Handy for baselines and bisection.
    pub fn single() -> Self {
        Runtime::new(1)
    }

    /// Shard count from `STEMBED_SHARDS`, else the machine's available
    /// parallelism, else 1. A numeric `STEMBED_SHARDS` is clamped exactly
    /// like [`Runtime::new`] (so `0` means sequential, not "auto");
    /// non-numeric values fall back to the machine default.
    pub fn from_env() -> Self {
        let shards = std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| thread::available_parallelism().map_or(1, std::num::NonZero::get));
        Runtime::new(shards)
    }

    /// Number of shards this runtime schedules over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Threads that actually execute: requested shards, capped by the
    /// machine's parallelism — extra workers on an oversubscribed box only
    /// thrash. Output never depends on this (streams are keyed by item, not
    /// by thread), so the cap is a pure scheduling decision.
    fn effective_workers(&self, n_chunks: usize) -> usize {
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let cores = *CORES
            .get_or_init(|| thread::available_parallelism().map_or(1, std::num::NonZero::get));
        self.shards.min(cores).min(n_chunks.max(1))
    }

    /// Parallel map over `items`, returning per-item results **in item
    /// order**. `f` receives the item index and the item; it must depend
    /// only on those (derive RNG streams from the index), which makes the
    /// output independent of the shard count.
    pub fn par_map_ordered<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.effective_workers(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        // Small chunks give the atomic-counter scheduler room to balance
        // skewed item costs; per-item results make the chunking invisible.
        let chunk = n.div_ceil(workers * 4).max(1);
        let per_chunk = self.run_chunked(n, chunk, workers, |lo, hi| {
            (lo..hi).map(|i| f(i, &items[i])).collect::<Vec<R>>()
        });
        per_chunk.into_iter().flatten().collect()
    }

    /// Parallel map over **fixed-size** chunks of `items`: `f` receives the
    /// chunk index and the chunk slice, results come back in chunk order.
    ///
    /// Use this (with a `chunk_size` that is a constant of the algorithm,
    /// *not* derived from the shard count) when per-chunk results are merged
    /// by a non-associative reduction such as floating-point accumulation:
    /// fixed boundaries + ordered merge ⇒ bit-identical totals at any shard
    /// count.
    pub fn par_chunks_map<T, R, F>(&self, items: &[T], chunk_size: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let n = items.len();
        let chunk = chunk_size.max(1);
        let n_chunks = n.div_ceil(chunk);
        let workers = self.effective_workers(n_chunks);
        if workers <= 1 {
            return (0..n_chunks)
                .map(|c| f(c, &items[c * chunk..((c + 1) * chunk).min(n)]))
                .collect();
        }
        self.run_chunked(n, chunk, workers, |lo, hi| f(lo / chunk, &items[lo..hi]))
    }

    /// Shared scheduler: splits `0..n` into `chunk`-sized ranges, lets the
    /// calling thread plus `workers - 1` pool helpers claim ranges from an
    /// atomic counter, and returns the per-range results sorted back into
    /// range order.
    ///
    /// # Panics
    ///
    /// Propagates result-sink mutex poisoning: a participant that died
    /// mid-push already unwinds through [`Pool::run`], and the sink may
    /// hold a partial result set no caller should observe.
    fn run_chunked<R, F>(&self, n: usize, chunk: usize, workers: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        let n_chunks = n.div_ceil(chunk);
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n_chunks));
        let work = || loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let lo = c * chunk;
            let hi = (lo + chunk).min(n);
            let out = f(lo, hi);
            results.lock().expect("result sink poisoned").push((c, out));
        };
        Pool::global().run(workers - 1, &work);
        let mut results = results.into_inner().expect("result sink poisoned");
        results.sort_unstable_by_key(|(c, _)| *c);
        results.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::stream_rng;

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..1000).collect();
        let rt = Runtime::new(8);
        let out = rt.par_map_ordered(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn shard_count_does_not_change_output() {
        let items: Vec<u64> = (0..500).collect();
        let run = |shards: usize| {
            Runtime::new(shards).par_map_ordered(&items, |i, _| {
                let mut rng = stream_rng(99, i as u64);
                rng.next_u64()
            })
        };
        let base = run(1);
        for shards in [2, 3, 8, 16] {
            assert_eq!(run(shards), base, "shards={shards} diverged");
        }
    }

    #[test]
    fn chunked_map_has_fixed_boundaries() {
        let items: Vec<f64> = (0..1003).map(|i| (i as f64).sin()).collect();
        let run = |shards: usize| -> Vec<f64> {
            Runtime::new(shards).par_chunks_map(&items, 64, |_c, chunk| chunk.iter().sum::<f64>())
        };
        let base = run(1);
        for shards in [2, 4, 8] {
            let got = run(shards);
            assert_eq!(got.len(), base.len());
            // Bit-identical partial sums: same chunks, same order.
            for (a, b) in got.iter().zip(&base) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let rt = Runtime::new(8);
        let empty: Vec<u32> = Vec::new();
        assert!(rt.par_map_ordered(&empty, |_, &x| x).is_empty());
        assert_eq!(rt.par_map_ordered(&[7u32], |_, &x| x + 1), vec![8]);
        assert!(rt.par_chunks_map(&empty, 16, |_, c| c.len()).is_empty());
    }

    #[test]
    fn single_runtime_is_sequential() {
        assert_eq!(Runtime::single().shards(), 1);
        assert_eq!(Runtime::new(0).shards(), 1, "clamped to 1");
    }

    #[test]
    fn pooled_scheduler_is_exercised_regardless_of_core_count() {
        // `effective_workers` caps at the machine's parallelism, so on a
        // 1-core box the public API never reaches the pool. Drive the
        // scheduler directly with forced workers to keep the pooled path
        // covered everywhere.
        let rt = Runtime::new(4);
        let got = rt.run_chunked(100, 7, 4, |lo, hi| (lo, hi));
        let want: Vec<(usize, usize)> = (0..100usize.div_ceil(7))
            .map(|c| (c * 7, (c * 7 + 7).min(100)))
            .collect();
        assert_eq!(got, want);
    }
}
