//! Vendored deterministic random number generation.
//!
//! The workspace needs reproducible streams whose exact bits are owned by
//! this repository, not by an external crate's minor version. Two tiny,
//! well-studied generators cover everything:
//!
//! * [`SplitMix64`] — a 64-bit state mixer (Steele, Lea & Flood 2014) used
//!   to expand seeds and to derive independent sub-streams.
//! * [`DetRng`] — xoshiro256++ (Blackman & Vigna 2018), the workhorse
//!   generator, seeded from a single `u64` through SplitMix64 exactly as the
//!   reference implementation recommends.
//!
//! Sampling mirrors the small API surface the workspace uses: uniform
//! integers over half-open and inclusive ranges (via Lemire's unbiased
//! multiply-shift rejection) and uniform floats from 53 mantissa bits.

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny generator whose finalizer is also an excellent hash.
///
/// Used for seed expansion and sub-stream derivation; not meant as the
/// simulation generator itself.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

/// The SplitMix64 output finalizer: a strong 64-bit bijective mixer.
#[inline]
pub(crate) fn mix64(z: u64) -> u64 {
    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    let z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can produce uniform random bits — the workspace's stand-in
/// for `rand::Rng`, implemented by [`DetRng`] and usable as a `?Sized`
/// bound for generic helpers such as `Matrix::random_uniform`.
pub trait Rng {
    /// Next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from a supported range type; mirrors
    /// `rand::Rng::random_range`. Supported: `Range`/`RangeInclusive` over
    /// `usize` and `f64`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

/// Ranges [`Rng::random_range`] can draw from.
pub trait SampleRange<T> {
    /// Draw one uniform sample using `rng`.
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> usize {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_u64(rng, span) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = (hi - lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        lo + uniform_u64(rng, span + 1) as usize
    }
}

impl SampleRange<i64> for Range<i64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleRange<i64> for RangeInclusive<i64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi.wrapping_sub(lo) as u64;
        if span == u64::MAX {
            return rng.next_u64() as i64;
        }
        lo.wrapping_add(uniform_u64(rng, span + 1) as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + (self.end - self.start) * rng.next_f64();
        // Guard against rounding up to the excluded endpoint.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

/// Unbiased uniform draw from `[0, span)` (Lemire's multiply-shift with
/// rejection). `span` must be non-zero.
///
/// The expensive `% span` that defines the rejection threshold is only
/// computed when the low half of the product falls below `span` — the
/// branch taken with probability `span / 2^64` — so the common path is one
/// multiply. The accepted set and mapping are identical to the always-
/// compute-threshold formulation (threshold < span), so the output stream
/// is unchanged.
#[inline]
fn uniform_u64<G: Rng + ?Sized>(rng: &mut G, span: u64) -> u64 {
    debug_assert!(span > 0);
    let x = rng.next_u64();
    let mut m = (x as u128) * (span as u128);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            let x = rng.next_u64();
            m = (x as u128) * (span as u128);
        }
    }
    (m >> 64) as u64
}

/// The workspace's deterministic generator: xoshiro256++.
///
/// Fast, 256 bits of state, passes BigCrush; seeded from a single `u64`
/// through SplitMix64 (the reference seeding procedure), so
/// [`DetRng::seed_from_u64`] is a drop-in for the old
/// `StdRng::seed_from_u64` call sites.
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Deterministically expand `seed` into the full 256-bit state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        DetRng { s }
    }

    /// Next 64 uniform bits (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        Rng::next_f64(self)
    }

    /// Uniform sample from a supported range type (inherent mirror of
    /// [`Rng::random_range`], so call sites need no trait import).
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl Rng for DetRng {
    fn next_u64(&mut self) -> u64 {
        DetRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_streams_are_reproducible() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, b);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(0);
        assert_eq!(sm2.next_u64(), a);
        assert_eq!(sm2.next_u64(), b);
    }

    #[test]
    fn det_rng_is_deterministic_and_varies_by_seed() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        let mut c = DetRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn integer_ranges_cover_bounds() {
        let mut rng = DetRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 appear");
        for _ in 0..1000 {
            let v = rng.random_range(3..=4usize);
            assert!(v == 3 || v == 4);
        }
        // Single-point inclusive range.
        assert_eq!(rng.random_range(9..=9usize), 9);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.random_range(0.0..2.5f64);
            assert!((0.0..2.5).contains(&x));
            let y = rng.random_range(-0.3..=0.3f64);
            assert!((-0.3..=0.3).contains(&y));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        // Chi-square-ish sanity: 10 buckets, 10k draws; each bucket within
        // 30% of the expected 1000.
        let mut rng = DetRng::seed_from_u64(123);
        let mut hist = [0usize; 10];
        for _ in 0..10_000 {
            hist[rng.random_range(0..10usize)] += 1;
        }
        for (i, &h) in hist.iter().enumerate() {
            assert!((700..1300).contains(&h), "bucket {i} has {h}");
        }
    }

    #[test]
    fn trait_object_usability() {
        // `Rng + ?Sized` bound works through a &mut dyn reference path.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random_range(0.0..1.0)
        }
        let mut rng = DetRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
