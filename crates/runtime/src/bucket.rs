//! Two-level **bucketed** alias sampler: O(1) draws like a flat
//! [`AliasTable`], but with *incremental* maintenance — updating `k` of
//! `n` weights rebuilds only the buckets those weights live in plus one
//! top-level table over bucket masses, instead of the flat table's O(n)
//! reconstruction.
//!
//! Layout: the `n` outcomes are partitioned into buckets of `B`
//! consecutive indices (`B` a power of two; the last bucket is padded
//! with zero-weight outcomes, which the alias construction provably never
//! returns). Every bucket's acceptance/alias columns live in **two flat
//! arrays** shared by all buckets — no per-bucket allocation, no pointer
//! chasing on the sample path — and a small top-level table spans the
//! buckets' total masses. A sample costs **one** RNG draw, like the flat
//! table: the draw's low 32 bits drive a Lemire pick (+ acceptance) over
//! the buckets, its high 32 bits pick the in-bucket column (a shift,
//! thanks to the power-of-two padding) and decide column-vs-alias
//! against the column's threshold. Thresholds are stored as 32-bit
//! fixed-point fractions — acceptance granularity `2^log₂B`/2³², far
//! below statistical resolution, and half the cache footprint of the
//! flat table's 64-bit column. Alias entries are stored as *global*
//! column indices, so the miss branch is one array read.
//!
//! ## Determinism contract
//!
//! Every bucket's columns are a pure function of its (padded) weight
//! slice and the top table a pure function of the bucket masses (each
//! mass summed in index order by the bucket's own construction), so a
//! table maintained through any sequence of [`BucketAlias::update`] calls
//! is **byte-identical** to one built fresh from the final weights — the
//! property that lets a dynamically-extended model keep its
//! negative-sampling table warm without ever drifting from the
//! from-scratch reference.

use crate::alias::{AliasScratch, AliasTable};
use crate::rng::Rng;

/// Default outcomes per bucket, balancing the two update terms
/// (`dirty_buckets · B` bucket rebuilds vs `n / B` top-level rebuild).
/// Dirty sets of dynamic negative sampling are typically a few hundred
/// nodes scattered over the id space — the worst case for index-bucketing
/// — so a small bucket keeps the scattered-dirty cost near `dirty · B`
/// while the top table stays a sixty-fourth of `n`.
pub const DEFAULT_BUCKET_SIZE: usize = 64;

/// A two-level alias table over `len` outcomes with sub-linear updates.
#[derive(Debug, Clone)]
pub struct BucketAlias {
    /// Bucket size is `1 << log_bucket` (≥ 2 so the sample-path shifts
    /// stay in range).
    log_bucket: u32,
    len: usize,
    /// 32-bit acceptance thresholds, all buckets back to back (padded to
    /// a multiple of the bucket size).
    thresh: Vec<u32>,
    /// Alias fallback per column, as a **global** column index.
    alias: Vec<u32>,
    /// Total input mass per bucket.
    masses: Vec<f64>,
    /// 32-bit acceptance threshold per bucket (top level).
    top_thresh: Vec<u32>,
    /// Alias fallback per bucket (top level).
    top_alias: Vec<u32>,
    /// Top-level construction table over `masses`, downconverted into
    /// `top_thresh`/`top_alias` after every (re)build.
    top: AliasTable,
    /// Per-bucket construction table, reused across rebuilds.
    bucket_table: AliasTable,
    /// Padded per-bucket weight buffer for `bucket_table`.
    bucket_weights: Vec<f64>,
    /// Construction workspace shared by all (re)builds.
    scratch: AliasScratch,
    /// Reusable dirty-bucket worklist for [`BucketAlias::update`].
    dirty_buckets: Vec<usize>,
}

impl BucketAlias {
    /// Build from non-negative weights with the
    /// [default bucket size](DEFAULT_BUCKET_SIZE).
    pub fn new(weights: &[f64]) -> Self {
        Self::with_bucket_size(weights, DEFAULT_BUCKET_SIZE)
    }

    /// Build with an explicit bucket size (rounded up to a power of two,
    /// minimum 2; tests exercise tiny buckets).
    pub fn with_bucket_size(weights: &[f64], bucket_size: usize) -> Self {
        let size = bucket_size.next_power_of_two().max(2);
        let mut table = BucketAlias {
            log_bucket: size.trailing_zeros(),
            len: 0,
            thresh: Vec::new(),
            alias: Vec::new(),
            masses: Vec::new(),
            top_thresh: Vec::new(),
            top_alias: Vec::new(),
            top: AliasTable::new(&[]),
            bucket_table: AliasTable::new(&[]),
            bucket_weights: Vec::new(),
            scratch: AliasScratch::default(),
            dirty_buckets: Vec::new(),
        };
        table.rebuild(weights);
        table
    }

    fn bucket_size(&self) -> usize {
        1 << self.log_bucket
    }

    /// Full rebuild from scratch (the static-training path). Reuses all
    /// internal storage; byte-identical to a fresh construction.
    pub fn rebuild(&mut self, weights: &[f64]) {
        self.len = weights.len();
        let nb = weights.len().div_ceil(self.bucket_size());
        self.resize_storage(nb);
        for b in 0..nb {
            self.rebuild_bucket(b, weights);
        }
        self.rebuild_top();
    }

    /// Rebuild the top-level columns from the bucket masses, storing the
    /// 32-bit downconversion the sample path reads.
    fn rebuild_top(&mut self) {
        self.top.rebuild_in(&self.masses, &mut self.scratch);
        self.top_thresh.clear();
        self.top_thresh
            .extend(self.top.thresh_column().iter().map(|&t| (t >> 32) as u32));
        self.top_alias.clear();
        self.top_alias.extend_from_slice(self.top.alias_column());
    }

    /// Incrementally catch the table up with `weights`, of which only the
    /// indices in `dirty` changed since the last (re)build or update —
    /// plus any *appended* tail (`weights.len()` may have grown; shrinking
    /// is not supported). Only the dirty indices' buckets, the buckets
    /// covering the appended range, and the top-level table are rebuilt:
    /// O(dirty·B + n/B), sub-linear in `n` for small dirty sets.
    ///
    /// Returns the number of bucket rebuilds performed (diagnostics).
    /// The result is byte-identical to [`BucketAlias::rebuild`] over the
    /// same weights.
    pub fn update(&mut self, weights: &[f64], dirty: &[usize]) -> usize {
        let old_len = self.len;
        assert!(
            weights.len() >= old_len,
            "BucketAlias::update cannot shrink ({} -> {})",
            old_len,
            weights.len()
        );
        self.len = weights.len();
        let nb = weights.len().div_ceil(self.bucket_size());
        self.resize_storage(nb);
        let mut worklist = std::mem::take(&mut self.dirty_buckets);
        worklist.clear();
        for &i in dirty {
            debug_assert!(i < weights.len(), "dirty index {i} out of bounds");
            worklist.push(i >> self.log_bucket);
        }
        // Appended tail: every bucket gaining outcomes is dirty too.
        if weights.len() > old_len {
            worklist.extend(old_len >> self.log_bucket..nb);
        }
        worklist.sort_unstable();
        worklist.dedup();
        let rebuilt = worklist.len();
        for &b in &worklist {
            self.rebuild_bucket(b, weights);
        }
        if rebuilt > 0 {
            self.rebuild_top();
        }
        self.dirty_buckets = worklist;
        rebuilt
    }

    /// Size the flat columns and mass vector for `nb` buckets (grows for
    /// updates, truncates stale tail buckets when a full `rebuild`
    /// shrinks the table).
    fn resize_storage(&mut self, nb: usize) {
        let cols = nb * self.bucket_size();
        self.thresh.resize(cols, 0);
        self.alias.resize(cols, 0);
        self.masses.resize(nb, 0.0);
    }

    /// Rebuild bucket `b`'s columns from `weights`, padding the slice to
    /// the bucket size with zero weights (columns the alias construction
    /// never returns while any real weight is positive).
    fn rebuild_bucket(&mut self, b: usize, weights: &[f64]) {
        let size = self.bucket_size();
        let lo = b * size;
        let hi = ((b + 1) * size).min(weights.len());
        self.bucket_weights.clear();
        self.bucket_weights.extend_from_slice(&weights[lo..hi]);
        self.bucket_weights.resize(size, 0.0);
        self.bucket_table
            .rebuild_in(&self.bucket_weights, &mut self.scratch);
        self.masses[b] = self.bucket_table.total_weight();
        for (out, &t) in self.thresh[lo..lo + size]
            .iter_mut()
            .zip(self.bucket_table.thresh_column())
        {
            *out = (t >> 32) as u32;
        }
        for (out, &local) in self.alias[lo..lo + size]
            .iter_mut()
            .zip(self.bucket_table.alias_column())
        {
            *out = (lo as u32) + local;
        }
    }

    /// Number of outcomes (excluding the zero-weight padding).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` iff no outcome has positive mass.
    pub fn is_empty(&self) -> bool {
        self.top.is_empty()
    }

    /// Number of buckets currently backing the table.
    pub fn bucket_count(&self) -> usize {
        self.masses.len()
    }

    /// Total input mass (sum of bucket masses).
    pub fn total_weight(&self) -> f64 {
        self.top.total_weight()
    }

    /// Sample one outcome index proportional to weight, in O(1) with a
    /// **single** RNG draw (like the flat [`AliasTable`]): the draw's low
    /// 32 bits pick the bucket — a 32-bit Lemire product whose high bits
    /// select the top column and whose low bits are the (conditionally
    /// uniform) top acceptance fraction; a zero-mass bucket is never
    /// selected — and its high 32 bits pick the in-bucket column (top
    /// `log₂ B` bits, a shift) and decide column vs alias (the remaining
    /// bits against the column's 32-bit threshold).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(!self.is_empty(), "sampling from an empty bucket table");
        let r = rng.next_u64();
        let nb = self.masses.len() as u64;
        let m1 = (r & 0xffff_ffff) * nb;
        let b0 = (m1 >> 32) as usize;
        let b = if (m1 as u32) < self.top_thresh[b0] {
            b0
        } else {
            self.top_alias[b0] as usize
        };
        let hi = (r >> 32) as u32;
        let i = (hi >> (32 - self.log_bucket)) as usize;
        let col = (b << self.log_bucket) + i;
        if (hi << self.log_bucket) < self.thresh[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;
    use crate::seed::stream_rng;

    fn stream(table: &BucketAlias, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = DetRng::seed_from_u64(seed);
        (0..draws).map(|_| table.sample(&mut rng)).collect()
    }

    #[test]
    fn matches_weights_within_tolerance() {
        let weights: Vec<f64> = (0..40).map(|i| (i % 5) as f64).collect();
        let table = BucketAlias::with_bucket_size(&weights, 8);
        let mut hist = vec![0usize; weights.len()];
        for i in stream(&table, 60_000, 1) {
            hist[i] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = 60_000.0 * w / total;
            if w == 0.0 {
                assert_eq!(hist[i], 0, "zero-weight outcome {i} sampled");
            } else {
                assert!(
                    (hist[i] as f64 - expect).abs() < expect * 0.15 + 40.0,
                    "outcome {i}: {} vs {expect}",
                    hist[i]
                );
            }
        }
    }

    #[test]
    fn padding_columns_are_never_sampled() {
        // 5 outcomes in buckets of 4: the last bucket is 3/4 padding.
        let weights = [1.0, 1.0, 1.0, 1.0, 1.0];
        let table = BucketAlias::with_bucket_size(&weights, 4);
        for i in stream(&table, 40_000, 2) {
            assert!(i < weights.len(), "padding column {i} sampled");
        }
    }

    #[test]
    fn update_is_byte_identical_to_fresh_rebuild() {
        // Randomized sequences of point updates and appends: the updated
        // table must draw the exact same stream as a fresh one.
        for case in 0..8u64 {
            let mut rng = stream_rng(0xb0c4e7, case);
            let bucket_size = 1usize << rng.random_range(1..4usize);
            let n0 = rng.random_range(0..30usize);
            let mut weights: Vec<f64> = (0..n0)
                .map(|_| rng.random_range(0..6usize) as f64)
                .collect();
            let mut table = BucketAlias::with_bucket_size(&weights, bucket_size);
            for round in 0..6 {
                // Mutate a few indices and sometimes append.
                let mut dirty = Vec::new();
                for _ in 0..rng.random_range(0..5usize) {
                    if weights.is_empty() {
                        break;
                    }
                    let i = rng.random_range(0..weights.len());
                    weights[i] = rng.random_range(0..6usize) as f64;
                    dirty.push(i);
                }
                for _ in 0..rng.random_range(0..4usize) {
                    weights.push(rng.random_range(0..6usize) as f64);
                }
                table.update(&weights, &dirty);
                let fresh = BucketAlias::with_bucket_size(&weights, bucket_size);
                assert_eq!(table.len(), fresh.len());
                assert_eq!(table.bucket_count(), fresh.bucket_count());
                assert_eq!(table.thresh, fresh.thresh, "case {case} round {round}");
                assert_eq!(table.alias, fresh.alias, "case {case} round {round}");
                assert_eq!(
                    table.total_weight().to_bits(),
                    fresh.total_weight().to_bits(),
                    "case {case} round {round}: masses diverged"
                );
                assert_eq!(table.is_empty(), fresh.is_empty());
                if !table.is_empty() {
                    assert_eq!(
                        stream(&table, 500, case ^ round),
                        stream(&fresh, 500, case ^ round),
                        "case {case} round {round}: streams diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn update_touches_only_dirty_buckets() {
        let weights: Vec<f64> = vec![1.0; 64];
        let mut table = BucketAlias::with_bucket_size(&weights, 8);
        assert_eq!(table.bucket_count(), 8);
        let mut w2 = weights.clone();
        w2[3] = 5.0;
        w2[5] = 0.0;
        // Both dirty indices share bucket 0: exactly one bucket rebuild.
        assert_eq!(table.update(&w2, &[3, 5]), 1);
        // No-op update rebuilds nothing.
        assert_eq!(table.update(&w2, &[]), 0);
        // Appending 3 outcomes dirties only the new tail bucket.
        let mut w3 = w2.clone();
        w3.extend([2.0, 2.0, 2.0]);
        assert_eq!(table.update(&w3, &[]), 1);
        assert_eq!(table.bucket_count(), 9);
    }

    #[test]
    fn growth_from_empty_and_degenerate_masses() {
        let mut table = BucketAlias::with_bucket_size(&[], 4);
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        table.update(&[0.0, 0.0], &[]);
        assert!(table.is_empty(), "all-zero table stays empty");
        table.update(&[0.0, 3.0, 0.0], &[]);
        assert!(!table.is_empty());
        let mut rng = DetRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn zero_mass_buckets_are_never_selected() {
        // Bucket 1 (indices 4..8) is all-zero; every draw must avoid it.
        let weights = [1.0, 2.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 3.0];
        let table = BucketAlias::with_bucket_size(&weights, 4);
        for i in stream(&table, 20_000, 5) {
            assert!(weights[i] > 0.0, "zero-weight outcome {i} sampled");
        }
    }

    #[test]
    #[should_panic(expected = "cannot shrink")]
    fn update_rejects_shrinking() {
        let mut table = BucketAlias::with_bucket_size(&[1.0, 2.0, 3.0], 2);
        table.update(&[1.0], &[]);
    }
}
