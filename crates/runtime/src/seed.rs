//! Seed-derived independent RNG streams.
//!
//! Parallel determinism hinges on one rule: **streams are keyed by logical
//! identity, never by thread.** A layer that processes items `0..n` derives
//! `stream_rng(master, i)` for item `i`; whichever thread ends up running
//! item `i` draws exactly the same numbers. The derivation is two SplitMix64
//! finalizer rounds over `(master, stream)`, which decorrelates even
//! adjacent stream ids (a plain `master + i` would hand SplitMix64 seeds
//! whose sequences overlap after one step).

use crate::rng::{mix64, DetRng};

/// Derive an independent sub-seed for logical stream `stream` of `master`.
///
/// Properties relied on across the workspace:
/// * pure function — no global state, safe from any thread;
/// * `derive_seed(m, a) != derive_seed(m, b)` for `a != b` (bijective mixing
///   makes collisions as unlikely as random 64-bit collisions);
/// * changing `master` changes every stream.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    let z = mix64(master ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    mix64(z ^ stream)
}

/// A [`DetRng`] positioned at the start of logical stream `stream` of
/// `master`.
pub fn stream_rng(master: u64, stream: u64) -> DetRng {
    DetRng::seed_from_u64(derive_seed(master, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn streams_are_distinct() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(derive_seed(77, i)), "stream {i} collided");
        }
    }

    #[test]
    fn master_seed_changes_all_streams() {
        for i in 0..100u64 {
            assert_ne!(derive_seed(1, i), derive_seed(2, i));
        }
    }

    #[test]
    fn stream_rng_decorrelates_adjacent_streams() {
        let mut a = stream_rng(5, 0);
        let mut b = stream_rng(5, 1);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derivation_is_pure() {
        assert_eq!(derive_seed(3, 9), derive_seed(3, 9));
    }
}
