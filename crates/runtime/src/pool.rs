//! The persistent worker pool behind [`crate::Runtime`].
//!
//! Spawning OS threads per parallel call (`std::thread::scope`) costs tens
//! of microseconds per worker — more than many of the workspace's
//! fine-grained parallel regions (an eligibility probe over a small
//! relation, one minibatch's gradient chunks). The pool spawns workers
//! once, parks them on a condvar, and hands them type-erased jobs.
//!
//! Scheduling model, chosen so the *caller always makes progress*:
//!
//! 1. The submitting thread publishes a job asking for `helpers` assistants
//!    and then **runs the work closure itself**. The closure drains a shared
//!    chunk queue, so the caller alone can finish the whole job.
//! 2. Parked workers claim helper slots and run the same closure
//!    concurrently.
//! 3. When the caller's own run returns, it revokes all *unclaimed* helper
//!    slots and waits only for helpers that actually started. No worker
//!    availability is ever required for completion — nested parallel calls
//!    and a fully-busy pool degrade to sequential execution instead of
//!    deadlocking.
//!
//! Safety: the job holds a `&'static`-transmuted reference to the caller's
//! stack closure. The submitting thread does not return from
//! [`Pool::run`] until every claimed helper has finished (`active == 0`)
//! and the job is unpublished, so no worker can observe the reference after
//! the borrow ends — the same guarantee `std::thread::scope` provides,
//! amortised over one long-lived pool.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

type Work<'a> = dyn Fn() + Sync + 'a;

struct Job {
    /// Lifetime-erased pointer to the caller's work closure; valid until
    /// the job is removed from the queue (enforced by `Pool::run`).
    work: &'static Work<'static>,
    /// Helper slots still up for grabs.
    unclaimed: usize,
    /// Helpers currently inside `work`.
    active: usize,
    /// A helper's `work` invocation panicked.
    poisoned: bool,
}

#[derive(Default)]
struct State {
    /// Live jobs by id. Multiple jobs coexist when several threads (or
    /// nested regions) submit concurrently. Ordered map: idle workers scan
    /// for unclaimed work, and the oldest (lowest-id) job should win that
    /// scan rather than whichever bucket a hasher visits first.
    jobs: BTreeMap<u64, Job>,
    next_id: u64,
    /// Worker threads spawned so far.
    workers: usize,
    /// Workers currently parked on `work_cv`. New threads are spawned only
    /// when a job asks for more helpers than are parked, so the pool stops
    /// growing once it matches the steady-state demand.
    idle: usize,
}

/// Process-wide persistent worker pool.
pub(crate) struct Pool {
    state: Mutex<State>,
    /// Wakes parked workers when a job arrives.
    work_cv: Condvar,
    /// Wakes submitters when one of their helpers finishes.
    done_cv: Condvar,
}

/// Hard cap on pool threads; shard counts beyond this only affect chunk
/// scheduling, not worker count.
const MAX_WORKERS: usize = 256;

impl Pool {
    /// The process-wide pool.
    pub(crate) fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(State::default()),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    }

    /// Run `work` on the calling thread plus up to `helpers` pool workers;
    /// returns after every participant has finished. `work` must be safe to
    /// execute concurrently from several threads (it drains a shared queue).
    ///
    /// # Panics
    ///
    /// Panic behaviour matches `std::thread::scope`: if the caller's own
    /// `work` run panics, helpers are still joined before the unwind leaves
    /// this frame; if a helper panics, this function panics after joining.
    /// Pool-state mutex poisoning and worker-spawn failure also panic —
    /// a pool that lost a lock holder mid-update has no consistent state
    /// to continue from.
    pub(crate) fn run<'a>(&'static self, helpers: usize, work: &'a Work<'a>) {
        if helpers == 0 {
            work();
            return;
        }
        // SAFETY: the reference is only dereferenced by helpers between
        // claim and completion, and `JoinGuard` (even on unwind) does not
        // let this frame die until `active == 0` with the job unpublished.
        // The closure therefore outlives every use, exactly as under
        // `std::thread::scope`.
        let work_static: &'static Work<'static> = unsafe { std::mem::transmute(work) };
        let id;
        {
            let mut st = self.state.lock().expect("pool state");
            id = st.next_id;
            st.next_id += 1;
            st.jobs.insert(
                id,
                Job {
                    work: work_static,
                    unclaimed: helpers,
                    active: 0,
                    poisoned: false,
                },
            );
            // Reuse parked workers first; only spawn for the shortfall.
            let deficit = helpers
                .saturating_sub(st.idle)
                .min(MAX_WORKERS.saturating_sub(st.workers));
            for _ in 0..deficit {
                st.workers += 1;
                thread::Builder::new()
                    .name("stembed-runtime-worker".into())
                    .spawn(move || Pool::global().worker_loop())
                    .expect("spawn pool worker");
            }
            let wake = helpers.min(st.idle);
            drop(st);
            // Wake only as many parked workers as this job can seat —
            // notify_all would stampede the whole pool at every submission.
            for _ in 0..wake {
                self.work_cv.notify_one();
            }
        }

        let guard = JoinGuard { pool: self, id };
        // The caller works too — completion never depends on pool capacity.
        work();
        drop(guard); // joins helpers; re-raises a helper panic
    }

    /// Revoke unclaimed helper slots, wait for active helpers, unpublish
    /// the job. Returns whether any helper panicked.
    ///
    /// # Panics
    ///
    /// Propagates pool-state mutex poisoning, like [`Pool::run`].
    fn finish(&self, id: u64) -> bool {
        let mut st = self.state.lock().expect("pool state");
        // Revoke helper slots nobody claimed: the queue is drained, late
        // arrivals would find nothing to do.
        if let Some(job) = st.jobs.get_mut(&id) {
            job.unclaimed = 0;
        }
        loop {
            let done = st.jobs.get(&id).is_none_or(|job| job.active == 0);
            if done {
                return st.jobs.remove(&id).is_some_and(|job| job.poisoned);
            }
            st = self.done_cv.wait(st).expect("pool state");
        }
    }

    /// Body of every pool thread: claim work, run it, park when idle.
    ///
    /// # Panics
    ///
    /// Propagates pool-state mutex poisoning, like [`Pool::run`]. A dead
    /// worker takes the process with it rather than silently shrinking
    /// the pool (which would change chunk scheduling).
    fn worker_loop(&'static self) {
        let mut st = self.state.lock().expect("pool state");
        loop {
            if let Some((&id, job)) = st.jobs.iter_mut().find(|(_, job)| job.unclaimed > 0) {
                job.unclaimed -= 1;
                job.active += 1;
                let work = job.work;
                drop(st);
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
                st = self.state.lock().expect("pool state");
                if let Some(job) = st.jobs.get_mut(&id) {
                    job.active -= 1;
                    if outcome.is_err() {
                        job.poisoned = true;
                    }
                    if job.active == 0 && job.unclaimed == 0 {
                        self.done_cv.notify_all();
                    }
                }
            } else {
                st.idle += 1;
                st = self.work_cv.wait(st).expect("pool state");
                st.idle -= 1;
            }
        }
    }
}

/// Joins a job's helpers when dropped — on the normal path and on unwind.
struct JoinGuard {
    pool: &'static Pool,
    id: u64,
}

impl Drop for JoinGuard {
    fn drop(&mut self) {
        let poisoned = self.pool.finish(self.id);
        if poisoned && !thread::panicking() {
            // PANICS: deliberate — re-raises a helper panic on the
            // submitting thread, the `std::thread::scope` contract.
            panic!("stembed-runtime pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn caller_completes_even_with_zero_helpers() {
        let counter = AtomicUsize::new(0);
        Pool::global().run(0, &|| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn helpers_share_a_chunk_queue() {
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= 1000 {
                break;
            }
            done.fetch_add(1, Ordering::Relaxed);
        };
        Pool::global().run(3, &work);
        assert_eq!(done.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn concurrent_submitters_do_not_interfere() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                thread::spawn(|| {
                    let next = AtomicUsize::new(0);
                    let sum = AtomicUsize::new(0);
                    let work = || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= 100 {
                            break;
                        }
                        sum.fetch_add(i, Ordering::Relaxed);
                    };
                    Pool::global().run(2, &work);
                    sum.load(Ordering::Relaxed)
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99 * 100 / 2);
        }
    }

    #[test]
    fn nested_runs_make_progress() {
        let total = AtomicUsize::new(0);
        let outer_next = AtomicUsize::new(0);
        let outer = || loop {
            let i = outer_next.fetch_add(1, Ordering::Relaxed);
            if i >= 4 {
                break;
            }
            let inner_next = AtomicUsize::new(0);
            let inner = || loop {
                let j = inner_next.fetch_add(1, Ordering::Relaxed);
                if j >= 10 {
                    break;
                }
                total.fetch_add(1, Ordering::Relaxed);
            };
            Pool::global().run(2, &inner);
        };
        Pool::global().run(2, &outer);
        assert_eq!(total.load(Ordering::Relaxed), 40);
    }
}
