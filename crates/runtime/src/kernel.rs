//! Shared mixed-precision SGD kernels: **f32 storage, f64 accumulation**.
//!
//! Both embedding trainers bottom out in the same handful of dense row
//! operations — dot products, axpy updates and the fused SGNS gradient
//! step. This module is their single home. Embedding rows are stored as
//! `f32` (half the memory traffic, twice the SIMD lanes); every
//! **reduction** — the dot logit, the per-group center-gradient
//! accumulation — rounds its per-element product once in `f32` and
//! accumulates exactly in `f64`, while **elementwise** row updates run
//! in `f32` (no cross-element accumulation to protect, and the
//! per-element f64 round-trip measures slower than the old all-f64
//! rows). All reductions use a **fixed-lane, fixed-order** schedule so
//! results are bit-identical regardless of how the compiler vectorises
//! the loops:
//!
//! * element `i` always accumulates into lane `i % LANES`;
//! * within a lane, elements are added in increasing `i`;
//! * lanes are combined by one fixed binary reduction tree.
//!
//! Three implementations of every kernel exist: a **wide** path written
//! as `chunks_exact(LANES)` array loops (bounds-check-free, reliably
//! autovectorised — no intrinsics), an **AVX2** path that is the same
//! wide code compiled under `#[target_feature(enable = "avx2")]` and
//! picked by runtime CPU detection (256-bit registers double the lanes
//! per instruction; rustc never contracts `a*b + c` into FMA, so the
//! IEEE ops are unchanged), and a portable **scalar reference** written
//! as the plainest indexed loop that realises the same schedule. All
//! three perform the identical sequence of IEEE-754 operations, so
//! their outputs agree bit for bit — `scalar_and_wide_agree_bitwise`
//! in this module proves it across the awkward dimensions. The active
//! path is chosen once per process: `STEMBED_KERNEL=scalar` forces the
//! reference, `STEMBED_KERNEL=wide` the baseline-target wide loops, and
//! anything else (including unset) selects AVX2 when the CPU has it,
//! wide otherwise — so CI can run the whole test suite on the fallback.
//!
//! The determinism contract of the workspace (seed determinism, shard
//! invariance, retained ≡ fresh) is untouched: these kernels are pure
//! functions of their operands, and the fixed schedule means the shard
//! count and the dispatch path never change a single bit.

use std::sync::OnceLock;

/// Accumulator lanes. Eight f64 lanes = one AVX-512 register or two
/// AVX2 registers; also the widest chunk the f32→f64 convert-and-fma
/// loop fills exactly.
pub const LANES: usize = 8;

/// Which kernel implementation is active for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// `chunks_exact` array loops the compiler autovectorises, compiled
    /// for the build's baseline target (portable).
    Wide,
    /// The same wide loops compiled with AVX2 enabled, selected by
    /// runtime CPU detection (x86-64 only). Identical IEEE op sequence,
    /// so identical bits — just wider registers.
    Avx2,
    /// The portable indexed-loop reference (`STEMBED_KERNEL=scalar`).
    Scalar,
}

impl KernelPath {
    fn from_env() -> KernelPath {
        match std::env::var("STEMBED_KERNEL").as_deref() {
            Ok("scalar") => KernelPath::Scalar,
            // Explicit opt-out of ISA dispatch (the baseline wide path).
            Ok("wide") => KernelPath::Wide,
            _ => {
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    return KernelPath::Avx2;
                }
                KernelPath::Wide
            }
        }
    }
}

/// The dispatch decision, made once per process.
#[inline]
pub fn active_path() -> KernelPath {
    static PATH: OnceLock<KernelPath> = OnceLock::new();
    *PATH.get_or_init(KernelPath::from_env)
}

/// A concrete kernel implementation family, for callers that own a hot
/// loop and want dispatch **hoisted out of it**. The module-level
/// functions ([`dot_f32`] & co.) re-check [`active_path`] and cross a
/// non-inlinable `#[target_feature]` boundary on *every* call — fine
/// for coarse operations, measurable overhead at a few dozen
/// nanoseconds per call. A loop owner instead monomorphises its body
/// over a `Kernels` type, matches on [`active_path`] **once**, and —
/// for the AVX2 path — wraps the [`WideKernels`] instantiation in its
/// own `#[target_feature(enable = "avx2")]` function: the
/// `#[inline(always)]` kernel bodies then inline into that context and
/// revectorise at 256 bits, with no per-call dispatch left. (See
/// `SgnsModel::train` for the pattern.) Every implementation executes
/// the identical fixed-lane schedule, so the choice never changes bits.
pub trait Kernels {
    /// See [`dot`].
    fn dot(x: &[f64], y: &[f64]) -> f64;
    /// See [`axpy`].
    fn axpy(alpha: f64, x: &[f64], y: &mut [f64]);
    /// See [`dot_f32`].
    fn dot_f32(x: &[f32], y: &[f32]) -> f64;
    /// See [`axpy_f32`].
    fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]);
    /// See [`axpy_f32_acc`].
    fn axpy_f32_acc(alpha: f64, x: &[f32], acc: &mut [f64]);
    /// See [`sgns_pair_step`].
    fn sgns_pair_step(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]);
    /// See [`apply_center_grad`].
    fn apply_center_grad(cgrad: &[f64], row: &mut [f32]);
}

/// The autovectorised wide loops ([`KernelPath::Wide`]); also the
/// bodies the AVX2 path recompiles when instantiated under a caller's
/// `#[target_feature(enable = "avx2")]` function.
pub struct WideKernels;

/// The portable scalar reference loops ([`KernelPath::Scalar`]).
pub struct ScalarKernels;

macro_rules! impl_kernels {
    ($ty:ty: $dot:ident, $axpy:ident, $dot_f32:ident, $axpy_f32:ident,
     $axpy_f32_acc:ident, $sgns:ident, $apply:ident) => {
        impl Kernels for $ty {
            #[inline(always)]
            fn dot(x: &[f64], y: &[f64]) -> f64 {
                $dot(x, y)
            }
            #[inline(always)]
            fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
                $axpy(alpha, x, y);
            }
            #[inline(always)]
            fn dot_f32(x: &[f32], y: &[f32]) -> f64 {
                $dot_f32(x, y)
            }
            #[inline(always)]
            fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]) {
                $axpy_f32(alpha, x, y);
            }
            #[inline(always)]
            fn axpy_f32_acc(alpha: f64, x: &[f32], acc: &mut [f64]) {
                $axpy_f32_acc(alpha, x, acc);
            }
            #[inline(always)]
            fn sgns_pair_step(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]) {
                $sgns(g, in_row, out_row, cgrad);
            }
            #[inline(always)]
            fn apply_center_grad(cgrad: &[f64], row: &mut [f32]) {
                $apply(cgrad, row);
            }
        }
    };
}

impl_kernels!(WideKernels: dot_wide, axpy_wide, dot_f32_wide, axpy_f32_wide,
    axpy_f32_acc_wide, sgns_pair_step_wide, apply_center_grad_wide);
impl_kernels!(ScalarKernels: dot_scalar, axpy_scalar, dot_f32_scalar, axpy_f32_scalar,
    axpy_f32_acc_scalar, sgns_pair_step_scalar, apply_center_grad_scalar);

/// Fixed binary reduction tree over the lane accumulators. Shared by
/// both paths — this order is part of the kernel contract.
#[inline(always)]
fn reduce(acc: &[f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// The wide kernel bodies recompiled with AVX2 code generation. Each
/// wrapper just calls the corresponding `*_wide` function; `#[inline]`
/// lets it inline *into* the `#[target_feature]` wrapper, where LLVM
/// revectorises the same loops with 256-bit registers (packed `vmulps`,
/// `vcvtps2pd`, `vaddpd`). The IEEE operation sequence per element is
/// exactly the wide path's, so outputs are bit-identical — dispatch
/// only ever changes speed.
///
/// Safety: every function here requires AVX2; [`KernelPath::from_env`]
/// selects [`KernelPath::Avx2`] only after
/// `is_x86_feature_detected!("avx2")` succeeds, and the dispatchers are
/// the sole callers.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::*;

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        dot_wide(x, y)
    }

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        axpy_wide(alpha, x, y);
    }

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_f32(x: &[f32], y: &[f32]) -> f64 {
        dot_f32_wide(x, y)
    }

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]) {
        axpy_f32_wide(alpha, x, y);
    }

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_f32_acc(alpha: f64, x: &[f32], acc: &mut [f64]) {
        axpy_f32_acc_wide(alpha, x, acc);
    }

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn sgns_pair_step(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]) {
        sgns_pair_step_wide(g, in_row, out_row, cgrad);
    }

    // SAFETY: caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn apply_center_grad(cgrad: &[f64], row: &mut [f32]) {
        apply_center_grad_wide(cgrad, row);
    }
}

/// Non-x86-64 stand-in: [`KernelPath::Avx2`] is never selected on these
/// targets, but the dispatch arms still need a callee. Plain forwards to
/// the portable wide path (the `unsafe` mirrors the x86-64 signatures).
#[cfg(not(target_arch = "x86_64"))]
mod avx2 {
    use super::*;

    // SAFETY: no requirement — safe forward kept `unsafe` only to
    // mirror the x86-64 signature.
    pub unsafe fn dot(x: &[f64], y: &[f64]) -> f64 {
        dot_wide(x, y)
    }

    // SAFETY: no requirement — safe forward mirroring the x86-64 signature.
    pub unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        axpy_wide(alpha, x, y);
    }

    // SAFETY: no requirement — safe forward mirroring the x86-64 signature.
    pub unsafe fn dot_f32(x: &[f32], y: &[f32]) -> f64 {
        dot_f32_wide(x, y)
    }

    // SAFETY: no requirement — safe forward mirroring the x86-64 signature.
    pub unsafe fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]) {
        axpy_f32_wide(alpha, x, y);
    }

    // SAFETY: no requirement — safe forward mirroring the x86-64 signature.
    pub unsafe fn axpy_f32_acc(alpha: f64, x: &[f32], acc: &mut [f64]) {
        axpy_f32_acc_wide(alpha, x, acc);
    }

    // SAFETY: no requirement — safe forward mirroring the x86-64 signature.
    pub unsafe fn sgns_pair_step(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]) {
        sgns_pair_step_wide(g, in_row, out_row, cgrad);
    }

    // SAFETY: no requirement — safe forward mirroring the x86-64 signature.
    pub unsafe fn apply_center_grad(cgrad: &[f64], row: &mut [f32]) {
        apply_center_grad_wide(cgrad, row);
    }
}

// ---------------------------------------------------------------------
// f64 kernels (FoRWaRD rows, solver internals via linalg::vector)
// ---------------------------------------------------------------------

/// Dot product `xᵀy` over `f64` rows, fixed-lane accumulation.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot: length mismatch");
    match active_path() {
        KernelPath::Wide => dot_wide(x, y),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::dot(x, y) },
        KernelPath::Scalar => dot_scalar(x, y),
    }
}

/// Scalar reference for [`dot`]: element `i` into lane `i % LANES`.
#[inline(always)]
pub fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    for (i, (&a, &b)) in x.iter().zip(y).enumerate() {
        acc[i % LANES] += a * b;
    }
    reduce(&acc)
}

/// Wide path for [`dot`]: same schedule, chunked for vectorisation.
#[inline(always)]
pub fn dot_wide(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (cx, cy) in xc.zip(yc) {
        for j in 0..LANES {
            acc[j] += cx[j] * cy[j];
        }
    }
    // The remainder starts at a multiple of LANES, so its `j`-th element
    // belongs to lane `j` — identical to the reference schedule.
    for (j, (&a, &b)) in xr.iter().zip(yr).enumerate() {
        acc[j] += a * b;
    }
    reduce(&acc)
}

/// `y ← y + alpha·x` over `f64` rows (BLAS `axpy`).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    match active_path() {
        KernelPath::Wide => axpy_wide(alpha, x, y),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::axpy(alpha, x, y) },
        KernelPath::Scalar => axpy_scalar(alpha, x, y),
    }
}

/// Scalar reference for [`axpy`].
#[inline(always)]
pub fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yk, &xk) in y.iter_mut().zip(x) {
        *yk += alpha * xk;
    }
}

/// Wide path for [`axpy`]. Elementwise, so bit-identity to the
/// reference needs no lane schedule — each output is one independent
/// expression.
#[inline(always)]
pub fn axpy_wide(alpha: f64, x: &[f64], y: &mut [f64]) {
    let xc = x.chunks_exact(LANES);
    let xr = xc.remainder();
    let mut yc = y.chunks_exact_mut(LANES);
    for (cy, cx) in (&mut yc).zip(xc) {
        for j in 0..LANES {
            cy[j] += alpha * cx[j];
        }
    }
    for (yk, &xk) in yc.into_remainder().iter_mut().zip(xr) {
        *yk += alpha * xk;
    }
}

// ---------------------------------------------------------------------
// f32-storage kernels (SGNS embedding arenas)
// ---------------------------------------------------------------------

/// Dot product over `f32` rows with `f64` accumulators.
#[inline]
pub fn dot_f32(x: &[f32], y: &[f32]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dot_f32: length mismatch");
    match active_path() {
        KernelPath::Wide => dot_f32_wide(x, y),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::dot_f32(x, y) },
        KernelPath::Scalar => dot_f32_scalar(x, y),
    }
}

/// Scalar reference for [`dot_f32`]. The per-element product is an
/// **f32 multiply** widened into the f64 lane accumulator: one f32
/// rounding per element, exact accumulation across elements. (Widening
/// both operands and multiplying in f64 needs two converts per element,
/// and LLVM only emits packed `cvtps2pd` for the single post-multiply
/// convert — the two-convert form costs ~1.6× more per dot.)
#[inline(always)]
pub fn dot_f32_scalar(x: &[f32], y: &[f32]) -> f64 {
    let mut acc = [0.0f64; LANES];
    for (i, (&a, &b)) in x.iter().zip(y).enumerate() {
        acc[i % LANES] += f64::from(a * b);
    }
    reduce(&acc)
}

/// Wide path for [`dot_f32`]: the f32 products are staged through a
/// `[f32; LANES]` array (packed `mulps`), then widened and accumulated
/// (packed `cvtps2pd` + `addpd`). Identical op sequence per element to
/// the reference — multiply in f32, convert, add to lane — so
/// bit-identity is unaffected.
#[inline(always)]
pub fn dot_f32_wide(x: &[f32], y: &[f32]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let xc = x.chunks_exact(LANES);
    let yc = y.chunks_exact(LANES);
    let (xr, yr) = (xc.remainder(), yc.remainder());
    for (cx, cy) in xc.zip(yc) {
        let mut p = [0.0f32; LANES];
        for j in 0..LANES {
            p[j] = cx[j] * cy[j];
        }
        for j in 0..LANES {
            acc[j] += f64::from(p[j]);
        }
    }
    for (j, (&a, &b)) in xr.iter().zip(yr).enumerate() {
        acc[j] += f64::from(a * b);
    }
    reduce(&acc)
}

/// `y ← y + alpha·x` over `f32` rows, arithmetic in **f32** (`alpha`
/// narrowed once, exactly — negation and the narrow commute).
///
/// Elementwise row updates deliberately stay f32: there is no
/// cross-element accumulation to protect, SGD is insensitive to the
/// per-element rounding, and the f64 round-trip (widen, multiply, add,
/// narrow per element) measures ~3× slower than packed f32 — it costs
/// more than the old all-f64 rows did. The f64 accumulators live where
/// accumulation actually happens: [`dot_f32`], [`axpy_f32_acc`], and
/// the `cgrad` side of [`sgns_pair_step`].
#[inline]
pub fn axpy_f32(alpha: f64, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy_f32: length mismatch");
    match active_path() {
        KernelPath::Wide => axpy_f32_wide(alpha, x, y),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::axpy_f32(alpha, x, y) },
        KernelPath::Scalar => axpy_f32_scalar(alpha, x, y),
    }
}

/// Scalar reference for [`axpy_f32`].
#[inline(always)]
pub fn axpy_f32_scalar(alpha: f64, x: &[f32], y: &mut [f32]) {
    let a = alpha as f32;
    for (yk, &xk) in y.iter_mut().zip(x) {
        *yk += a * xk;
    }
}

/// Wide path for [`axpy_f32`].
#[inline(always)]
pub fn axpy_f32_wide(alpha: f64, x: &[f32], y: &mut [f32]) {
    let a = alpha as f32;
    let xc = x.chunks_exact(LANES);
    let xr = xc.remainder();
    let mut yc = y.chunks_exact_mut(LANES);
    for (cy, cx) in (&mut yc).zip(xc) {
        for j in 0..LANES {
            cy[j] += a * cx[j];
        }
    }
    for (yk, &xk) in yc.into_remainder().iter_mut().zip(xr) {
        *yk += a * xk;
    }
}

/// `acc ← acc + alpha·x` accumulating an `f32` row into an `f64`
/// gradient buffer. Like [`dot_f32`], the per-element product
/// `alpha_f32 · x[k]` rounds once in f32 and the cross-element (and
/// cross-pair) accumulation is exact in f64 — the buffer is the
/// accumulator.
#[inline]
pub fn axpy_f32_acc(alpha: f64, x: &[f32], acc: &mut [f64]) {
    debug_assert_eq!(x.len(), acc.len(), "axpy_f32_acc: length mismatch");
    match active_path() {
        KernelPath::Wide => axpy_f32_acc_wide(alpha, x, acc),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::axpy_f32_acc(alpha, x, acc) },
        KernelPath::Scalar => axpy_f32_acc_scalar(alpha, x, acc),
    }
}

/// Scalar reference for [`axpy_f32_acc`].
#[inline(always)]
pub fn axpy_f32_acc_scalar(alpha: f64, x: &[f32], acc: &mut [f64]) {
    let af = alpha as f32;
    for (ak, &xk) in acc.iter_mut().zip(x) {
        *ak += f64::from(af * xk);
    }
}

/// Wide path for [`axpy_f32_acc`]: f32 products staged like
/// [`dot_f32_wide`], one packed convert into the f64 buffer.
#[inline(always)]
pub fn axpy_f32_acc_wide(alpha: f64, x: &[f32], acc: &mut [f64]) {
    let af = alpha as f32;
    let xc = x.chunks_exact(LANES);
    let xr = xc.remainder();
    let mut ac = acc.chunks_exact_mut(LANES);
    for (ca, cx) in (&mut ac).zip(xc) {
        let mut p = [0.0f32; LANES];
        for j in 0..LANES {
            p[j] = af * cx[j];
        }
        for j in 0..LANES {
            ca[j] += f64::from(p[j]);
        }
    }
    for (ak, &xk) in ac.into_remainder().iter_mut().zip(xr) {
        *ak += f64::from(af * xk);
    }
}

/// The fused SGNS pair step for an unfrozen (center, context) pair with
/// sigmoid gradient `g`:
///
/// ```text
/// cgrad[k] += f64(gf · out[k])   (f32 product of the pre-update value,
///                                 f64 accumulation; gf = g as f32)
/// out[k]   −= gf · in[k]         (f32 elementwise)
/// ```
///
/// The center-gradient side is a true accumulator (summed over the
/// whole positive+negatives group): its products round once in f32 and
/// accumulate exactly in f64, matching [`axpy_f32_acc`] bit for bit.
/// The context-row update is elementwise f32 (see [`axpy_f32`]).
#[inline]
pub fn sgns_pair_step(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]) {
    debug_assert_eq!(in_row.len(), out_row.len(), "sgns_pair_step: length");
    debug_assert_eq!(in_row.len(), cgrad.len(), "sgns_pair_step: length");
    match active_path() {
        KernelPath::Wide => sgns_pair_step_wide(g, in_row, out_row, cgrad),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::sgns_pair_step(g, in_row, out_row, cgrad) },
        KernelPath::Scalar => sgns_pair_step_scalar(g, in_row, out_row, cgrad),
    }
}

/// Scalar reference for [`sgns_pair_step`].
#[inline(always)]
pub fn sgns_pair_step_scalar(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]) {
    let gf = g as f32;
    for ((ok, &ik), gk) in out_row.iter_mut().zip(in_row).zip(cgrad.iter_mut()) {
        *gk += f64::from(gf * *ok);
        *ok -= gf * ik;
    }
}

/// Wide path for [`sgns_pair_step`]. Per chunk: stage the f32 products
/// of the pre-update context values, widen-accumulate them into cgrad,
/// then the pure-f32 row update; per element the op sequence matches
/// the reference (cgrad sees the pre-update context value in both).
#[inline(always)]
pub fn sgns_pair_step_wide(g: f64, in_row: &[f32], out_row: &mut [f32], cgrad: &mut [f64]) {
    let gf = g as f32;
    let n = in_row.len();
    let split = n - n % LANES;
    let ic = in_row[..split].chunks_exact(LANES);
    let mut oc = out_row[..split].chunks_exact_mut(LANES);
    let mut gc = cgrad[..split].chunks_exact_mut(LANES);
    for ((co, ci), cg) in (&mut oc).zip(ic).zip(&mut gc) {
        let mut p = [0.0f32; LANES];
        for j in 0..LANES {
            p[j] = gf * co[j];
        }
        for j in 0..LANES {
            cg[j] += f64::from(p[j]);
        }
        for j in 0..LANES {
            co[j] -= gf * ci[j];
        }
    }
    for ((ok, &ik), gk) in out_row[split..]
        .iter_mut()
        .zip(&in_row[split..])
        .zip(cgrad[split..].iter_mut())
    {
        *gk += f64::from(gf * *ok);
        *ok -= gf * ik;
    }
}

/// Apply an accumulated `f64` center gradient to an `f32` row:
/// `row[k] −= cgrad[k] as f32` (the word2vec once-per-group center
/// write). The accumulation already happened in f64; the single
/// application per group is elementwise, so it narrows the gradient
/// once and subtracts in f32.
#[inline]
pub fn apply_center_grad(cgrad: &[f64], row: &mut [f32]) {
    debug_assert_eq!(cgrad.len(), row.len(), "apply_center_grad: length");
    match active_path() {
        KernelPath::Wide => apply_center_grad_wide(cgrad, row),
        // SAFETY: `Avx2` is only selected after runtime AVX2 detection.
        KernelPath::Avx2 => unsafe { avx2::apply_center_grad(cgrad, row) },
        KernelPath::Scalar => apply_center_grad_scalar(cgrad, row),
    }
}

/// Scalar reference for [`apply_center_grad`].
#[inline(always)]
pub fn apply_center_grad_scalar(cgrad: &[f64], row: &mut [f32]) {
    for (rk, &gk) in row.iter_mut().zip(cgrad) {
        *rk -= gk as f32;
    }
}

/// Wide path for [`apply_center_grad`] (staged narrow, f32 subtract).
#[inline(always)]
pub fn apply_center_grad_wide(cgrad: &[f64], row: &mut [f32]) {
    let gc = cgrad.chunks_exact(LANES);
    let gr = gc.remainder();
    let mut rc = row.chunks_exact_mut(LANES);
    for (cr, cg) in (&mut rc).zip(gc) {
        let mut gn = [0.0f32; LANES];
        for j in 0..LANES {
            gn[j] = cg[j] as f32;
        }
        for j in 0..LANES {
            cr[j] -= gn[j];
        }
    }
    for (rk, &gk) in rc.into_remainder().iter_mut().zip(gr) {
        *rk -= gk as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_rng;

    /// The dimensions the bit-identity properties run at: 1 (all
    /// remainder), 7 (sub-chunk), 8 (exactly one chunk), 33 (chunks +
    /// remainder), 64 (many chunks, no remainder).
    const DIMS: [usize; 5] = [1, 7, 8, 33, 64];
    const CASES: u64 = 64;

    fn rand_f64(rng: &mut crate::DetRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.random_range(-3.0..3.0)).collect()
    }

    fn rand_f32(rng: &mut crate::DetRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.random_range(-3.0..3.0) as f32).collect()
    }

    /// The core contract: for every kernel, the wide path and the scalar
    /// reference produce bit-identical outputs, across dims that cover
    /// every chunk/remainder shape.
    #[test]
    fn scalar_and_wide_agree_bitwise() {
        for &dim in &DIMS {
            for case in 0..CASES {
                let mut rng = stream_rng(xkernel_seed(), case * 131 + dim as u64);
                let a64 = rand_f64(&mut rng, dim);
                let b64 = rand_f64(&mut rng, dim);
                let a32 = rand_f32(&mut rng, dim);
                let b32 = rand_f32(&mut rng, dim);
                let g = rng.random_range(-0.5..0.5);

                assert_eq!(
                    dot_scalar(&a64, &b64).to_bits(),
                    dot_wide(&a64, &b64).to_bits(),
                    "dot dim={dim} case={case}"
                );
                assert_eq!(
                    dot_f32_scalar(&a32, &b32).to_bits(),
                    dot_f32_wide(&a32, &b32).to_bits(),
                    "dot_f32 dim={dim} case={case}"
                );

                let mut y1 = b64.clone();
                let mut y2 = b64.clone();
                axpy_scalar(g, &a64, &mut y1);
                axpy_wide(g, &a64, &mut y2);
                assert_eq!(bits64(&y1), bits64(&y2), "axpy dim={dim} case={case}");

                let mut z1 = b32.clone();
                let mut z2 = b32.clone();
                axpy_f32_scalar(g, &a32, &mut z1);
                axpy_f32_wide(g, &a32, &mut z2);
                assert_eq!(bits32(&z1), bits32(&z2), "axpy_f32 dim={dim} case={case}");

                let mut c1 = b64.clone();
                let mut c2 = b64.clone();
                axpy_f32_acc_scalar(g, &a32, &mut c1);
                axpy_f32_acc_wide(g, &a32, &mut c2);
                assert_eq!(
                    bits64(&c1),
                    bits64(&c2),
                    "axpy_f32_acc dim={dim} case={case}"
                );

                let (mut o1, mut g1) = (b32.clone(), b64.clone());
                let (mut o2, mut g2) = (b32.clone(), b64.clone());
                sgns_pair_step_scalar(g, &a32, &mut o1, &mut g1);
                sgns_pair_step_wide(g, &a32, &mut o2, &mut g2);
                assert_eq!(
                    (bits32(&o1), bits64(&g1)),
                    (bits32(&o2), bits64(&g2)),
                    "sgns_pair_step dim={dim} case={case}"
                );

                let mut r1 = a32.clone();
                let mut r2 = a32.clone();
                apply_center_grad_scalar(&b64, &mut r1);
                apply_center_grad_wide(&b64, &mut r2);
                assert_eq!(
                    bits32(&r1),
                    bits32(&r2),
                    "apply_center_grad dim={dim} case={case}"
                );

                // The AVX2 recompilation must realise the same schedule
                // bit for bit (only checkable where the CPU has AVX2).
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 presence checked just above.
                    unsafe {
                        assert_eq!(
                            dot_scalar(&a64, &b64).to_bits(),
                            avx2::dot(&a64, &b64).to_bits(),
                            "avx2 dot dim={dim} case={case}"
                        );
                        assert_eq!(
                            dot_f32_scalar(&a32, &b32).to_bits(),
                            avx2::dot_f32(&a32, &b32).to_bits(),
                            "avx2 dot_f32 dim={dim} case={case}"
                        );
                        let mut y3 = b64.clone();
                        avx2::axpy(g, &a64, &mut y3);
                        assert_eq!(bits64(&y1), bits64(&y3), "avx2 axpy dim={dim}");
                        let mut z3 = b32.clone();
                        avx2::axpy_f32(g, &a32, &mut z3);
                        assert_eq!(bits32(&z1), bits32(&z3), "avx2 axpy_f32 dim={dim}");
                        let mut c3 = b64.clone();
                        avx2::axpy_f32_acc(g, &a32, &mut c3);
                        assert_eq!(bits64(&c1), bits64(&c3), "avx2 axpy_f32_acc dim={dim}");
                        let (mut o3, mut g3) = (b32.clone(), b64.clone());
                        avx2::sgns_pair_step(g, &a32, &mut o3, &mut g3);
                        assert_eq!(
                            (bits32(&o1), bits64(&g1)),
                            (bits32(&o3), bits64(&g3)),
                            "avx2 sgns_pair_step dim={dim} case={case}"
                        );
                        let mut r3 = a32.clone();
                        avx2::apply_center_grad(&b64, &mut r3);
                        assert_eq!(bits32(&r1), bits32(&r3), "avx2 apply_center_grad dim={dim}");
                    }
                }
            }
        }
    }

    fn bits64(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    fn bits32(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    // A stable test-stream seed (no Date/random: determinism by design).
    fn xkernel_seed() -> u64 {
        0x6b65_726e_656c_5f31
    }

    /// Kernels agree with a naive plain-`f64` evaluation to within
    /// accumulation-order noise (sanity against a schedule bug that is
    /// internally consistent but wrong).
    #[test]
    fn dot_matches_naive_within_tolerance() {
        for &dim in &DIMS {
            let mut rng = stream_rng(99, dim as u64);
            let a = rand_f64(&mut rng, dim);
            let b = rand_f64(&mut rng, dim);
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = dot_wide(&a, &b);
            assert!(
                (got - naive).abs() <= 1e-12 * (1.0 + naive.abs()),
                "dim={dim}: {got} vs {naive}"
            );
        }
    }

    #[test]
    fn empty_rows_are_zero_or_noop() {
        assert_eq!(dot_wide(&[], &[]), 0.0);
        assert_eq!(dot_f32_scalar(&[], &[]), 0.0);
        let mut y: Vec<f64> = vec![];
        axpy_wide(2.0, &[], &mut y);
        let mut z: Vec<f32> = vec![];
        axpy_f32_wide(2.0, &[], &mut z);
    }

    #[test]
    fn axpy_variants_update_exact_cases() {
        // axpy_f32 is pure-f32 elementwise: alpha narrows once, then
        // y += alpha_f32 * x in f32. Exactly representable case:
        let x = [1.0f32];
        let mut y = [1.5f32];
        axpy_f32(0.25, &x, &mut y);
        assert_eq!(y[0], 1.75);
        // axpy_f32_acc keeps a true f64 accumulator (cgrad path).
        let mut acc = [0.1f64];
        axpy_f32_acc(0.5, &[2.0f32], &mut acc);
        assert!((acc[0] - 1.1).abs() < 1e-15);
    }

    #[test]
    fn sgns_pair_step_matches_unfused_ops() {
        let mut rng = stream_rng(7, 3);
        let dim = 33;
        let inr = rand_f32(&mut rng, dim);
        let out0 = rand_f32(&mut rng, dim);
        let g = 0.125f64;

        let mut out_fused = out0.clone();
        let mut grad_fused = vec![0.0f64; dim];
        sgns_pair_step(g, &inr, &mut out_fused, &mut grad_fused);

        let mut grad_ref = vec![0.0f64; dim];
        axpy_f32_acc(g, &out0, &mut grad_ref);
        let mut out_ref = out0;
        axpy_f32(-g, &inr, &mut out_ref);

        assert_eq!(bits64(&grad_fused), bits64(&grad_ref));
        assert_eq!(bits32(&out_fused), bits32(&out_ref));
    }

    #[test]
    fn dispatch_path_is_stable() {
        // Whatever the environment says, the answer must not change
        // between calls (OnceLock).
        assert_eq!(active_path(), active_path());
    }
}
