//! Walker's alias method (Walker 1977, Vose 1991): O(1) sampling from any
//! fixed discrete distribution.
//!
//! Construction is O(n): the weights are normalised to mean 1 and split
//! into "small" (< 1) and "large" (≥ 1) columns; each small column is
//! topped up to exactly 1 by an alias pointing at a large one. A sample is
//! then one uniform column draw plus one uniform float: return the column
//! itself with probability `prob[i]`, its alias otherwise. Compare the
//! O(log n) binary search of a CDF table — on hot paths (negative sampling
//! draws per SGNS pair) the alias table replaces a pointer-chasing search
//! with two array reads.
//!
//! Construction is fully deterministic (index-ordered worklists), so a
//! table built from the same weights is always byte-identical — a
//! prerequisite for the workspace's bit-reproducibility guarantee.

use crate::rng::Rng;

/// A prepared alias table over `weights.len()` outcomes.
///
/// Acceptance thresholds are stored as fixed-point `u64` fractions of
/// 2⁶⁴, which lets [`AliasTable::sample`] spend **one** RNG draw per
/// sample: the high bits of the Lemire product select the column and the
/// low bits are reused as the (conditionally uniform) acceptance
/// fraction, whose within-column granularity is `n`/2⁶⁴ — far under any
/// statistical resolution for realistic `n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per column: `round(prob · 2⁶⁴)`, saturated.
    thresh: Vec<u64>,
    /// Fallback outcome per column.
    alias: Vec<u32>,
    /// Total (unnormalised) input mass; zero means "nothing to sample".
    total: f64,
}

impl AliasTable {
    /// Build from non-negative weights. Outcomes with zero weight are never
    /// sampled (as long as any weight is positive). Panics on negative or
    /// non-finite weights.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            total += w;
        }
        let mut prob = vec![1.0; n];
        let mut alias: Vec<u32> = (0..n as u32).collect();
        if total <= 0.0 || n == 0 {
            // Degenerate: keep an identity table; `total` records emptiness.
            return AliasTable {
                thresh: vec![u64::MAX; n],
                alias,
                total,
            };
        }
        // Normalise to mean 1 and split into worklists, in index order for
        // determinism.
        let scale = n as f64 / total;
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            let (s, l) = (s as usize, l as usize);
            prob[s] = scaled[s];
            alias[s] = l as u32;
            // Move the donated mass out of the large column.
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l as u32);
            }
        }
        // Leftovers (rounding drift) saturate to probability 1. A column
        // with exactly zero input weight can never be left over: while it
        // sits in `small`, the remaining mean stays above 1, so `large`
        // cannot drain first.
        for &l in &large {
            prob[l as usize] = 1.0;
        }
        for &s in &small {
            prob[s as usize] = 1.0;
        }
        // Fixed-point thresholds; prob 1.0 saturates to u64::MAX, whose
        // 2⁻⁶⁴ alias branch is safe (the alias is the column itself unless
        // it was explicitly paired).
        let thresh = prob
            .iter()
            .map(|&p| {
                if p >= 1.0 {
                    u64::MAX
                } else {
                    (p * (u64::MAX as f64)) as u64
                }
            })
            .collect();
        AliasTable {
            thresh,
            alias,
            total,
        }
    }

    /// Number of outcomes (including zero-weight ones).
    pub fn len(&self) -> usize {
        self.thresh.len()
    }

    /// `true` iff the table has no outcome with positive mass.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Total input mass the table was built from.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Sample one outcome index in O(1) with a **single** RNG draw: the
    /// Lemire product's high bits pick the column, its low bits (uniform
    /// within the column up to n/2⁶⁴) decide column vs alias.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(!self.is_empty(), "sampling from an empty alias table");
        let n = self.thresh.len() as u64;
        let m = (rng.next_u64() as u128) * (n as u128);
        let i = (m >> 64) as usize;
        if (m as u64) < self.thresh[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn histogram(table: &AliasTable, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut hist = vec![0usize; table.len()];
        for _ in 0..draws {
            hist[table.sample(&mut rng)] += 1;
        }
        hist
    }

    #[test]
    fn matches_weights_within_tolerance() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let hist = histogram(&table, 40_000, 1);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = 40_000.0 * w / total;
            let got = hist[i] as f64;
            assert!(
                (got - expect).abs() < expect * 0.1 + 30.0,
                "outcome {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let table = AliasTable::new(&[0.0, 5.0, 0.0, 1.0, 0.0]);
        let hist = histogram(&table, 20_000, 2);
        assert_eq!(hist[0], 0);
        assert_eq!(hist[2], 0);
        assert_eq!(hist[4], 0);
        assert!(hist[1] > hist[3]);
    }

    #[test]
    fn single_and_empty_tables() {
        let one = AliasTable::new(&[3.5]);
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(one.sample(&mut rng), 0);
        }
        assert!(AliasTable::new(&[]).is_empty());
        assert!(AliasTable::new(&[0.0, 0.0]).is_empty());
        assert!(!AliasTable::new(&[0.0, 0.1]).is_empty());
    }

    #[test]
    fn construction_is_deterministic() {
        let w = [0.3, 0.0, 2.0, 1.0, 0.7];
        let a = AliasTable::new(&w);
        let b = AliasTable::new(&w);
        assert_eq!(a.thresh, b.thresh);
        assert_eq!(a.alias, b.alias);
    }

    #[test]
    fn extreme_skew_keeps_all_positive_outcomes_reachable() {
        let table = AliasTable::new(&[1e-9, 1e9]);
        let hist = histogram(&table, 50_000, 3);
        // The heavy outcome dominates; the light one just must not panic
        // and the probabilities must stay normalised.
        assert!(hist[1] > 49_000);
        assert_eq!(hist[0] + hist[1], 50_000);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weights() {
        let _ = AliasTable::new(&[1.0, f64::NAN]);
    }
}
