//! Walker's alias method (Walker 1977, Vose 1991): O(1) sampling from any
//! fixed discrete distribution.
//!
//! Construction is O(n): the weights are normalised to mean 1 and split
//! into "small" (< 1) and "large" (≥ 1) columns; each small column is
//! topped up to exactly 1 by an alias pointing at a large one. A sample is
//! then one uniform column draw plus one uniform float: return the column
//! itself with probability `prob[i]`, its alias otherwise. Compare the
//! O(log n) binary search of a CDF table — on hot paths (negative sampling
//! draws per SGNS pair) the alias table replaces a pointer-chasing search
//! with two array reads.
//!
//! Construction is fully deterministic (index-ordered worklists), so a
//! table built from the same weights is always byte-identical — a
//! prerequisite for the workspace's bit-reproducibility guarantee.

use crate::rng::Rng;

/// Reusable construction workspace for [`AliasTable::rebuild_in`]: the
/// normalised weight column and the small/large worklists. Callers that
/// rebuild a table repeatedly (e.g. negative sampling across dynamic
/// extension rounds) keep one of these alive so construction allocates
/// nothing after the first round.
#[derive(Debug, Clone, Default)]
pub struct AliasScratch {
    scaled: Vec<f64>,
    small: Vec<u32>,
    large: Vec<u32>,
}

/// A prepared alias table over `weights.len()` outcomes.
///
/// Acceptance thresholds are stored as fixed-point `u64` fractions of
/// 2⁶⁴, which lets [`AliasTable::sample`] spend **one** RNG draw per
/// sample: the high bits of the Lemire product select the column and the
/// low bits are reused as the (conditionally uniform) acceptance
/// fraction, whose within-column granularity is `n`/2⁶⁴ — far under any
/// statistical resolution for realistic `n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance threshold per column: `round(prob · 2⁶⁴)`, saturated.
    thresh: Vec<u64>,
    /// Fallback outcome per column.
    alias: Vec<u32>,
    /// Total (unnormalised) input mass; zero means "nothing to sample".
    total: f64,
}

impl AliasTable {
    /// Build from non-negative weights. Outcomes with zero weight are never
    /// sampled (as long as any weight is positive). Panics on negative or
    /// non-finite weights.
    pub fn new(weights: &[f64]) -> Self {
        let mut table = AliasTable {
            thresh: Vec::new(),
            alias: Vec::new(),
            total: 0.0,
        };
        table.rebuild_in(weights, &mut AliasScratch::default());
        table
    }

    /// Rebuild this table in place from new weights, reusing its own
    /// storage and the caller's [`AliasScratch`]. Byte-identical to
    /// [`AliasTable::new`] over the same weights (construction is fully
    /// deterministic); after the first build of a given size no
    /// allocation happens.
    pub fn rebuild_in(&mut self, weights: &[f64], scratch: &mut AliasScratch) {
        let n = weights.len();
        let mut total = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
            total += w;
        }
        self.total = total;
        self.alias.clear();
        self.alias.extend(0..n as u32);
        self.thresh.clear();
        // Saturated acceptance is the default; only explicitly paired small
        // columns overwrite it below. The u64::MAX threshold's 2⁻⁶⁴ alias
        // branch is safe (the alias is the column itself unless paired).
        self.thresh.resize(n, u64::MAX);
        if total <= 0.0 || n == 0 {
            // Degenerate: identity table; `total` records emptiness.
            return;
        }
        // Normalise to mean 1 and split into worklists, in index order for
        // determinism.
        let scale = n as f64 / total;
        scratch.scaled.clear();
        scratch.scaled.extend(weights.iter().map(|&w| w * scale));
        scratch.small.clear();
        scratch.large.clear();
        for (i, &s) in scratch.scaled.iter().enumerate() {
            if s < 1.0 {
                scratch.small.push(i as u32);
            } else {
                scratch.large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (scratch.small.last(), scratch.large.last()) {
            scratch.small.pop();
            let (s, l) = (s as usize, l as usize);
            // Fixed-point acceptance threshold of the paired small column
            // (scaled[s] < 1.0 here by construction).
            self.thresh[s] = (scratch.scaled[s] * (u64::MAX as f64)) as u64;
            self.alias[s] = l as u32;
            // Move the donated mass out of the large column.
            scratch.scaled[l] = (scratch.scaled[l] + scratch.scaled[s]) - 1.0;
            if scratch.scaled[l] < 1.0 {
                scratch.large.pop();
                scratch.small.push(l as u32);
            }
        }
        // Leftovers (rounding drift) keep the saturated default. A column
        // with exactly zero input weight can never be left over: while it
        // sits in `small`, the remaining mean stays above 1, so `large`
        // cannot drain first.
    }

    /// Number of outcomes (including zero-weight ones).
    pub fn len(&self) -> usize {
        self.thresh.len()
    }

    /// The acceptance-threshold column (crate-internal: the bucketed
    /// sampler copies freshly built bucket tables into its flat storage).
    pub(crate) fn thresh_column(&self) -> &[u64] {
        &self.thresh
    }

    /// The alias column (see [`AliasTable::thresh_column`]).
    pub(crate) fn alias_column(&self) -> &[u32] {
        &self.alias
    }

    /// `true` iff the table has no outcome with positive mass.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Total input mass the table was built from.
    pub fn total_weight(&self) -> f64 {
        self.total
    }

    /// Sample one outcome index in O(1) with a **single** RNG draw: the
    /// Lemire product's high bits pick the column, its low bits (uniform
    /// within the column up to n/2⁶⁴) decide column vs alias.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        debug_assert!(!self.is_empty(), "sampling from an empty alias table");
        let n = self.thresh.len() as u64;
        let m = (rng.next_u64() as u128) * (n as u128);
        let i = (m >> 64) as usize;
        if (m as u64) < self.thresh[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    fn histogram(table: &AliasTable, draws: usize, seed: u64) -> Vec<usize> {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut hist = vec![0usize; table.len()];
        for _ in 0..draws {
            hist[table.sample(&mut rng)] += 1;
        }
        hist
    }

    #[test]
    fn matches_weights_within_tolerance() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let hist = histogram(&table, 40_000, 1);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = 40_000.0 * w / total;
            let got = hist[i] as f64;
            assert!(
                (got - expect).abs() < expect * 0.1 + 30.0,
                "outcome {i}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn zero_weight_outcomes_never_sampled() {
        let table = AliasTable::new(&[0.0, 5.0, 0.0, 1.0, 0.0]);
        let hist = histogram(&table, 20_000, 2);
        assert_eq!(hist[0], 0);
        assert_eq!(hist[2], 0);
        assert_eq!(hist[4], 0);
        assert!(hist[1] > hist[3]);
    }

    #[test]
    fn single_and_empty_tables() {
        let one = AliasTable::new(&[3.5]);
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(one.sample(&mut rng), 0);
        }
        assert!(AliasTable::new(&[]).is_empty());
        assert!(AliasTable::new(&[0.0, 0.0]).is_empty());
        assert!(!AliasTable::new(&[0.0, 0.1]).is_empty());
    }

    #[test]
    fn construction_is_deterministic() {
        let w = [0.3, 0.0, 2.0, 1.0, 0.7];
        let a = AliasTable::new(&w);
        let b = AliasTable::new(&w);
        assert_eq!(a.thresh, b.thresh);
        assert_eq!(a.alias, b.alias);
    }

    #[test]
    fn rebuild_in_matches_fresh_construction() {
        // A table rebuilt in place (including across size changes and
        // through degenerate all-zero rounds) must be byte-identical to a
        // fresh one over the same weights.
        let rounds: [&[f64]; 5] = [
            &[1.0, 2.0, 3.0, 4.0],
            &[0.0, 5.0, 0.0, 1.0, 0.0],
            &[0.0, 0.0],
            &[2.5],
            &[0.3, 0.0, 2.0, 1.0, 0.7, 9.0, 0.25],
        ];
        let mut table = AliasTable::new(&[1.0]);
        let mut scratch = AliasScratch::default();
        for weights in rounds {
            table.rebuild_in(weights, &mut scratch);
            let fresh = AliasTable::new(weights);
            assert_eq!(table.thresh, fresh.thresh);
            assert_eq!(table.alias, fresh.alias);
            assert_eq!(table.total.to_bits(), fresh.total.to_bits());
            assert_eq!(table.is_empty(), fresh.is_empty());
        }
    }

    #[test]
    fn extreme_skew_keeps_all_positive_outcomes_reachable() {
        let table = AliasTable::new(&[1e-9, 1e9]);
        let hist = histogram(&table, 50_000, 3);
        // The heavy outcome dominates; the light one just must not panic
        // and the probabilities must stay normalised.
        assert!(hist[1] > 49_000);
        assert_eq!(hist[0] + hist[1], 50_000);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_weights() {
        let _ = AliasTable::new(&[1.0, f64::NAN]);
    }
}
