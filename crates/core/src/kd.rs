//! Expected kernel distance `KD` (paper §V-B, Eq. 2).
//!
//! For two random variables `X ~ d_{s,f}[A]` and `Y ~ d_{s,f′}[A]` over a
//! kernelized domain, `KD = E[κ_A(X, Y)]` with `X, Y` independent. The
//! static trainer estimates it stochastically with a single sampled pair per
//! SGD step (Eq. 5); the dynamic phase needs the value itself for the
//! right-hand side `b` of the linear system (Eq. 8) and computes it either
//! exactly (small supports) or by Monte-Carlo averaging.

use crate::kernel::KernelAssignment;
use crate::schemes::WalkScheme;
use crate::walkdist::{destination_value_distribution, DestinationSampler, ValueDistribution};
use reldb::{Database, FactId, RelationId};
use stembed_runtime::rng::DetRng;

/// How `KD` values are computed.
#[derive(Debug, Clone, Copy)]
pub struct KdOptions {
    /// Support cap for the exact path; above it we sample.
    pub exact_limit: usize,
    /// Number of sampled pairs for the Monte-Carlo path.
    pub mc_pairs: usize,
    /// Per-walk retry budget when sampling values.
    pub max_attempts: usize,
}

impl Default for KdOptions {
    fn default() -> Self {
        KdOptions {
            exact_limit: 256,
            mc_pairs: 48,
            max_attempts: 8,
        }
    }
}

/// Exact `E[κ(X,Y)]` between two explicit value distributions.
pub fn kd_exact(
    kernels: &KernelAssignment,
    end_rel: RelationId,
    attr: usize,
    p: &ValueDistribution,
    q: &ValueDistribution,
) -> f64 {
    let mut acc = 0.0;
    for (x, px) in &p.support {
        for (y, qy) in &q.support {
            acc += px * qy * kernels.eval(end_rel, attr, x, y);
        }
    }
    acc
}

/// Monte-Carlo `E[κ(X,Y)]` with `pairs` independent draws; `None` when
/// either variable turns out to be nonexistent (all attempted walks dead-end
/// or land on nulls).
#[allow(clippy::too_many_arguments)]
pub fn kd_monte_carlo(
    db: &Database,
    kernels: &KernelAssignment,
    scheme: &WalkScheme,
    attr: usize,
    f1: FactId,
    f2: FactId,
    opts: &KdOptions,
    rng: &mut DetRng,
) -> Option<f64> {
    let sampler = DestinationSampler::new(db);
    let end_rel = scheme.end(db.schema());
    let mut acc = 0.0;
    let mut n = 0usize;
    for _ in 0..opts.mc_pairs {
        let x = sampler.sample_value(scheme, attr, f1, opts.max_attempts, rng)?;
        let y = sampler.sample_value(scheme, attr, f2, opts.max_attempts, rng)?;
        acc += kernels.eval(end_rel, attr, &x, &y);
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(acc / n as f64)
    }
}

/// `KD(d_{s,f1}[A], d_{s,f2}[A])`: exact when both supports fit under
/// `opts.exact_limit`, Monte-Carlo otherwise; `None` when either
/// distribution does not exist.
#[allow(clippy::too_many_arguments)]
pub fn kd(
    db: &Database,
    kernels: &KernelAssignment,
    scheme: &WalkScheme,
    attr: usize,
    f1: FactId,
    f2: FactId,
    opts: &KdOptions,
    rng: &mut DetRng,
) -> Option<f64> {
    let end_rel = scheme.end(db.schema());
    let p = destination_value_distribution(db, scheme, attr, f1, opts.exact_limit);
    let q = destination_value_distribution(db, scheme, attr, f2, opts.exact_limit);
    match (p, q) {
        (Some(p), Some(q)) => Some(kd_exact(kernels, end_rel, attr, &p, &q)),
        // At least one support is too large (or nonexistent): decide by
        // sampling, which also returns None for genuinely nonexistent ones.
        _ => kd_monte_carlo(db, kernels, scheme, attr, f1, f2, opts, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::enumerate_schemes;
    use reldb::movies::movies_database_labeled;
    use reldb::Value;
    use stembed_runtime::rng::DetRng;

    fn scheme_named(db: &Database, text: &str) -> WalkScheme {
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| s.display(schema).to_string() == text)
            .expect("scheme exists")
    }

    #[test]
    fn kd_of_identical_point_masses_is_one_under_equality() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let trivial = WalkScheme::trivial(actors);
        // name is an equality-kernel attribute; d is a point mass per fact.
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(1);
        let same = kd(
            &db, &kernels, &trivial, 1, ids["a1"], ids["a1"], &opts, &mut rng,
        )
        .unwrap();
        assert!((same - 1.0).abs() < 1e-12);
        let diff = kd(
            &db, &kernels, &trivial, 1, ids["a1"], ids["a2"], &opts, &mut rng,
        )
        .unwrap();
        assert!(diff.abs() < 1e-12);
    }

    #[test]
    fn kd_exact_known_value() {
        // KD between a1's and a4's budget distributions along s5.
        // a1 via s5 → {150: .5, 100: .5}; a4 is actor2 only of c4 → walks
        // via actor2 … let's use a known pair instead: a1 vs a1 gives
        // E[κ(X,X')] with X,X' iid ∈ {150,100}: 0.5·κ(150,150) + ... all
        // with the fitted Gaussian kernel. Just verify against a direct
        // computation from the distribution.
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s5 = scheme_named(
            &db,
            "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]",
        );
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let p = destination_value_distribution(&db, &s5, 4, ids["a1"], 256).unwrap();
        let expect = {
            let mut acc = 0.0;
            for (x, px) in &p.support {
                for (y, qy) in &p.support {
                    acc += px * qy * kernels.eval(movies, 4, x, y);
                }
            }
            acc
        };
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(3);
        let got = kd(&db, &kernels, &s5, 4, ids["a1"], ids["a1"], &opts, &mut rng).unwrap();
        assert!((got - expect).abs() < 1e-12);
        // Sanity: mixture of equal and unequal pairs keeps KD in (κ_min, 1).
        assert!(got < 1.0 && got > 0.0);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s5 = scheme_named(
            &db,
            "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]",
        );
        let opts = KdOptions {
            exact_limit: 256,
            mc_pairs: 3000,
            max_attempts: 8,
        };
        let mut rng = DetRng::seed_from_u64(5);
        let exact = kd(&db, &kernels, &s5, 4, ids["a1"], ids["a1"], &opts, &mut rng).unwrap();
        let mc =
            kd_monte_carlo(&db, &kernels, &s5, 4, ids["a1"], ids["a1"], &opts, &mut rng).unwrap();
        assert!((mc - exact).abs() < 0.05, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn nonexistent_distribution_yields_none() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s1_actor1 = scheme_named(&db, "ACTORS[aid]—COLLABORATIONS[actor1]");
        // COLLABORATIONS has only FK attributes; pick attr 0 anyway — from
        // a3 there are no walks at all, so KD must be None.
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(7);
        assert!(kd(&db, &kernels, &s1_actor1, 0, ids["a3"], ids["a1"], &opts, &mut rng).is_none());
    }

    #[test]
    fn kd_is_symmetric() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s5 = scheme_named(
            &db,
            "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]",
        );
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(11);
        // a1 and a4 both have s5-walks (a4 is actor1 of c2/c3).
        let ab = kd(&db, &kernels, &s5, 4, ids["a1"], ids["a4"], &opts, &mut rng);
        let ba = kd(&db, &kernels, &s5, 4, ids["a4"], ids["a1"], &opts, &mut rng);
        let (ab, ba) = (ab.unwrap(), ba.unwrap());
        assert!((ab - ba).abs() < 1e-12, "exact KD is symmetric");
        let _ = Value::Null; // silence unused import in cfg(test) builds
    }
}
