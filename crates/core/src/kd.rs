//! Expected kernel distance `KD` (paper §V-B, Eq. 2).
//!
//! For two random variables `X ~ d_{s,f}[A]` and `Y ~ d_{s,f′}[A]` over a
//! kernelized domain, `KD = E[κ_A(X, Y)]` with `X, Y` independent. The
//! static trainer estimates it stochastically with a single sampled pair per
//! SGD step (Eq. 5); the dynamic phase needs the value itself for the
//! right-hand side `b` of the linear system (Eq. 8) and computes it either
//! exactly (small supports) or by Monte-Carlo averaging.

use crate::distcache::{CachedValueDist, DistCacheView};
use crate::kernel::KernelAssignment;
use crate::schemes::WalkScheme;
use crate::walkdist::{
    destination_value_distribution_status, DestinationSampler, DistStatus, ValueDistribution,
};
use reldb::{Database, FactId, RelationId};
use stembed_runtime::rng::DetRng;

/// How `KD` values are computed.
#[derive(Debug, Clone, Copy)]
pub struct KdOptions {
    /// Support cap for the exact path; above it we sample.
    pub exact_limit: usize,
    /// Number of sampled pairs for the Monte-Carlo path.
    pub mc_pairs: usize,
    /// Per-walk retry budget when sampling values.
    pub max_attempts: usize,
}

impl Default for KdOptions {
    fn default() -> Self {
        KdOptions {
            exact_limit: 256,
            mc_pairs: 48,
            max_attempts: 8,
        }
    }
}

/// Exact `E[κ(X,Y)]` between two explicit value distributions.
pub fn kd_exact(
    kernels: &KernelAssignment,
    end_rel: RelationId,
    attr: usize,
    p: &ValueDistribution,
    q: &ValueDistribution,
) -> f64 {
    let mut acc = 0.0;
    for (x, px) in &p.support {
        for (y, qy) in &q.support {
            acc += px * qy * kernels.eval(end_rel, attr, x, y);
        }
    }
    acc
}

/// Monte-Carlo `E[κ(X,Y)]` with up to `pairs` independent draws; `None`
/// only when **no** pair completes — i.e. either variable is (very likely)
/// nonexistent for its start fact.
///
/// A pair whose `sample_value` exhausts its retry budget is **skipped**,
/// not fatal: a reachable-but-sparse distribution (many dead-ending walk
/// prefixes or null destinations) intermittently loses individual samples,
/// and aborting on the first loss used to discard every accumulated pair
/// and bias such distributions toward `None`. The estimate simply averages
/// over the pairs that did complete.
#[allow(clippy::too_many_arguments)]
pub fn kd_monte_carlo(
    db: &Database,
    kernels: &KernelAssignment,
    scheme: &WalkScheme,
    attr: usize,
    f1: FactId,
    f2: FactId,
    opts: &KdOptions,
    rng: &mut DetRng,
) -> Option<f64> {
    let sampler = DestinationSampler::new(db);
    let end_rel = scheme.end(db.schema());
    let mut acc = 0.0;
    let mut n = 0usize;
    for _ in 0..opts.mc_pairs {
        let Some(x) = sampler.sample_value(scheme, attr, f1, opts.max_attempts, rng) else {
            continue;
        };
        let Some(y) = sampler.sample_value(scheme, attr, f2, opts.max_attempts, rng) else {
            continue;
        };
        acc += kernels.eval(end_rel, attr, &x, &y);
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(acc / n as f64)
    }
}

/// `KD(d_{s,f1}[A], d_{s,f2}[A])`: exact when both supports fit under
/// `opts.exact_limit`; `None` without touching the RNG when either side is
/// **exactly** known not to exist (the BFS proves there is no complete
/// walk, or every destination is null — sampling could only rediscover
/// that, at full pair-budget cost); Monte-Carlo only when a support is too
/// large to compute exactly.
#[allow(clippy::too_many_arguments)]
pub fn kd(
    db: &Database,
    kernels: &KernelAssignment,
    scheme: &WalkScheme,
    attr: usize,
    f1: FactId,
    f2: FactId,
    opts: &KdOptions,
    rng: &mut DetRng,
) -> Option<f64> {
    let end_rel = scheme.end(db.schema());
    let p = destination_value_distribution_status(db, scheme, attr, f1, opts.exact_limit);
    let q = destination_value_distribution_status(db, scheme, attr, f2, opts.exact_limit);
    match (p, q) {
        (DistStatus::Exists(p), DistStatus::Exists(q)) => {
            Some(kd_exact(kernels, end_rel, attr, &p, &q))
        }
        (p, q) if p.is_nonexistent() || q.is_nonexistent() => None,
        // A support too large for the exact path (but not nonexistent):
        // estimate by sampling.
        _ => kd_monte_carlo(db, kernels, scheme, attr, f1, f2, opts, rng),
    }
}

/// [`kd`] with memoised exact distributions: the `f1` side is resolved
/// through a [`DistCacheView`], the `f2` side is handed in precomputed
/// (`q2`, typically hoisted once per target for a shared `f2 = f_new`).
///
/// Bit-identical to [`kd`] by construction — cached distributions equal
/// recomputed ones (canonical support order), the `Nonexistent` short
/// circuit fires under exactly the same conditions, and the Monte-Carlo
/// fallback consumes the RNG exactly as the uncached path does; no RNG is
/// touched outside of it.
///
/// Exact values are additionally memoised in the view's KD tier under the
/// directional `(scheme, attr, f1, f2)` key (paper's all-at-once path,
/// ROADMAP item 5's value cache): a repeated equation serves `y` without
/// re-running the double loop. The Monte-Carlo fallback is **never**
/// cached — it consumes RNG, and serving a stale estimate would shift
/// every later stream.
#[allow(clippy::too_many_arguments)]
pub fn kd_cached(
    db: &Database,
    kernels: &KernelAssignment,
    scheme: &WalkScheme,
    attr: usize,
    f1: FactId,
    f2: FactId,
    q2: &CachedValueDist,
    opts: &KdOptions,
    rng: &mut DetRng,
    view: &mut DistCacheView<'_>,
) -> Option<f64> {
    if q2.is_nonexistent() {
        return None; // no point even resolving the f1 side
    }
    let p1 = view.value_distribution(db, scheme, attr, f1);
    match (p1, q2) {
        (DistStatus::Exists(p), DistStatus::Exists(q)) => {
            if let Some(y) = view.kd_value(scheme, attr, f1, f2) {
                return Some(y);
            }
            let y = kd_exact(kernels, scheme.end(db.schema()), attr, &p, q);
            view.store_kd_value(scheme, attr, f1, f2, y);
            Some(y)
        }
        (p1, _) if p1.is_nonexistent() => None,
        _ => kd_monte_carlo(db, kernels, scheme, attr, f1, f2, opts, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::enumerate_schemes;
    use crate::walkdist::destination_value_distribution;
    use reldb::movies::movies_database_labeled;
    use reldb::Value;
    use stembed_runtime::rng::DetRng;

    fn scheme_named(db: &Database, text: &str) -> WalkScheme {
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| s.display(schema).to_string() == text)
            .expect("scheme exists")
    }

    #[test]
    fn kd_of_identical_point_masses_is_one_under_equality() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let trivial = WalkScheme::trivial(actors);
        // name is an equality-kernel attribute; d is a point mass per fact.
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(1);
        let same = kd(
            &db, &kernels, &trivial, 1, ids["a1"], ids["a1"], &opts, &mut rng,
        )
        .unwrap();
        assert!((same - 1.0).abs() < 1e-12);
        let diff = kd(
            &db, &kernels, &trivial, 1, ids["a1"], ids["a2"], &opts, &mut rng,
        )
        .unwrap();
        assert!(diff.abs() < 1e-12);
    }

    #[test]
    fn kd_exact_known_value() {
        // KD between a1's and a4's budget distributions along s5.
        // a1 via s5 → {150: .5, 100: .5}; a4 is actor2 only of c4 → walks
        // via actor2 … let's use a known pair instead: a1 vs a1 gives
        // E[κ(X,X')] with X,X' iid ∈ {150,100}: 0.5·κ(150,150) + ... all
        // with the fitted Gaussian kernel. Just verify against a direct
        // computation from the distribution.
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s5 = scheme_named(
            &db,
            "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]",
        );
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let p = destination_value_distribution(&db, &s5, 4, ids["a1"], 256).unwrap();
        let expect = {
            let mut acc = 0.0;
            for (x, px) in &p.support {
                for (y, qy) in &p.support {
                    acc += px * qy * kernels.eval(movies, 4, x, y);
                }
            }
            acc
        };
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(3);
        let got = kd(&db, &kernels, &s5, 4, ids["a1"], ids["a1"], &opts, &mut rng).unwrap();
        assert!((got - expect).abs() < 1e-12);
        // Sanity: mixture of equal and unequal pairs keeps KD in (κ_min, 1).
        assert!(got < 1.0 && got > 0.0);
    }

    #[test]
    fn monte_carlo_converges_to_exact() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s5 = scheme_named(
            &db,
            "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]",
        );
        let opts = KdOptions {
            exact_limit: 256,
            mc_pairs: 3000,
            max_attempts: 8,
        };
        let mut rng = DetRng::seed_from_u64(5);
        let exact = kd(&db, &kernels, &s5, 4, ids["a1"], ids["a1"], &opts, &mut rng).unwrap();
        let mc =
            kd_monte_carlo(&db, &kernels, &s5, 4, ids["a1"], ids["a1"], &opts, &mut rng).unwrap();
        assert!((mc - exact).abs() < 0.05, "MC {mc} vs exact {exact}");
    }

    #[test]
    fn monte_carlo_skips_failed_pairs_instead_of_aborting() {
        // Regression: a single exhausted retry budget used to abort the
        // whole estimate via `?`, discarding every accumulated pair — a
        // reachable-but-sparse distribution intermittently came back `None`.
        //
        // Build A(aid) ← S(sid, a_ref, v) where half the S-rows carry a
        // null `v`: the backward walk A—S from a1 dead-ends (lands on ⊥)
        // about 50% of the time, so with `max_attempts = 1` individual
        // samples routinely fail even though the distribution exists.
        use crate::schemes::Step;
        use reldb::{SchemaBuilder, ValueType};
        let mut b = SchemaBuilder::new();
        b.relation("A").attr("aid", ValueType::Text).key(&["aid"]);
        b.relation("S")
            .attr("sid", ValueType::Text)
            .attr("a_ref", ValueType::Text)
            .attr("v", ValueType::Int)
            .key(&["sid"]);
        b.foreign_key("S", &["a_ref"], "A");
        let mut db = Database::new(b.build().unwrap());
        let a1 = db.insert_into("A", vec!["a1".into()]).unwrap();
        for i in 0..8 {
            let v = if i % 2 == 0 {
                Value::Int(7)
            } else {
                Value::Null
            };
            db.insert_into("S", vec![format!("s{i}").into(), "a1".into(), v])
                .unwrap();
        }
        let rel_a = db.schema().relation_id("A").unwrap();
        let fk = db.schema().fks_to(rel_a)[0];
        let scheme = WalkScheme {
            start: rel_a,
            steps: vec![Step { fk, forward: false }],
        };
        let kernels = KernelAssignment::defaults(&db);
        let opts = KdOptions {
            exact_limit: 1, // support of 8 facts > 1 ⇒ kd() must fall to MC
            mc_pairs: 48,
            max_attempts: 1,
        };
        let mut rng = DetRng::seed_from_u64(2024);
        let mc = kd_monte_carlo(&db, &kernels, &scheme, 2, a1, a1, &opts, &mut rng)
            .expect("sparse-but-reachable distribution must yield an estimate");
        // Every completed pair compares Int(7) with itself: κ = 1 exactly.
        assert!((mc - 1.0).abs() < 1e-12, "estimate {mc}");
        // And kd() (forced onto the MC path by the tiny exact limit) agrees.
        let via_kd = kd(&db, &kernels, &scheme, 2, a1, a1, &opts, &mut rng).unwrap();
        assert!((via_kd - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonexistent_distribution_yields_none() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s1_actor1 = scheme_named(&db, "ACTORS[aid]—COLLABORATIONS[actor1]");
        // COLLABORATIONS has only FK attributes; pick attr 0 anyway — from
        // a3 there are no walks at all, so KD must be None.
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(7);
        assert!(kd(&db, &kernels, &s1_actor1, 0, ids["a3"], ids["a1"], &opts, &mut rng).is_none());
    }

    #[test]
    fn kd_is_symmetric() {
        let (db, ids) = movies_database_labeled();
        let kernels = KernelAssignment::defaults(&db);
        let s5 = scheme_named(
            &db,
            "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]",
        );
        let opts = KdOptions::default();
        let mut rng = DetRng::seed_from_u64(11);
        // a1 and a4 both have s5-walks (a4 is actor1 of c2/c3).
        let ab = kd(&db, &kernels, &s5, 4, ids["a1"], ids["a4"], &opts, &mut rng);
        let ba = kd(&db, &kernels, &s5, 4, ids["a4"], ids["a1"], &opts, &mut rng);
        let (ab, ba) = (ab.unwrap(), ba.unwrap());
        assert!((ab - ba).abs() < 1e-12, "exact KD is symmetric");
        let _ = Value::Null; // silence unused import in cfg(test) builds
    }
}
