//! Kernelized attribute domains (paper §V-B).
//!
//! A kernel `κ_A : dom(A) × dom(A) → R≥0` measures the similarity of two
//! attribute values; formally it is an inner product in an implicit Hilbert
//! space, but the algorithms only ever evaluate `κ_A(a, b)`. The defaults
//! follow the paper's experimental setup exactly: a **Gaussian kernel**
//! `exp(−(a−b)²/2υ)` for numeric attributes and the **equality kernel**
//! (`1` iff equal) for everything else. The **edit-distance kernel**
//! `exp(−levenshtein(a,b)/λ)` is the paper's suggested smoothing for noisy
//! text and is available as an opt-in.

use reldb::{Database, RelationId, Value, ValueType};

/// A similarity kernel over attribute values.
///
/// Implementations must be symmetric (`κ(a,b) = κ(b,a)`), nonnegative, and
/// bounded by `κ(a,a) ≤ 1` for the loss scales used here. Null values never
/// reach a kernel: walk destinations are conditioned on being non-null.
pub trait Kernel: Send + Sync + std::fmt::Debug {
    /// Evaluate `κ(a, b)`.
    fn eval(&self, a: &Value, b: &Value) -> f64;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Clone into a box (kernels are small `Copy`-ish structs; this lets
    /// [`KernelAssignment`] — and everything holding one — be `Clone`).
    fn clone_box(&self) -> Box<dyn Kernel>;

    /// The serializable description of this kernel. Snapshots store kernel
    /// *kinds* rather than re-fitting from data on recovery: a Gaussian
    /// variance was fitted to the active domain **at training time**, and
    /// the domain may have shifted since — recovery must reproduce the
    /// trained kernel bit for bit, not a re-fitted lookalike.
    fn kind(&self) -> KernelKind;
}

/// Closed, serializable enumeration of the kernels a [`KernelAssignment`]
/// can hold (see [`Kernel::kind`]). Parameters are carried by value so
/// [`KernelKind::instantiate`] rebuilds the exact kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelKind {
    /// [`EqualityKernel`].
    Equality,
    /// [`GaussianKernel`] with its (possibly data-fitted) variance.
    Gaussian {
        /// The "variance" `υ`.
        variance: f64,
    },
    /// [`EditDistanceKernel`] with its length scale.
    EditDistance {
        /// Length scale `λ`.
        scale: f64,
    },
}

impl KernelKind {
    /// Rebuild the kernel this kind describes.
    pub fn instantiate(self) -> Box<dyn Kernel> {
        match self {
            KernelKind::Equality => Box::new(EqualityKernel),
            // Construct directly instead of through the clamping `new`
            // constructors: the stored parameter was already clamped when
            // the original kernel was built, and round-tripping must not
            // re-interpret it.
            KernelKind::Gaussian { variance } => Box::new(GaussianKernel { variance }),
            KernelKind::EditDistance { scale } => Box::new(EditDistanceKernel { scale }),
        }
    }
}

impl Clone for Box<dyn Kernel> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// `κ(a,b) = 1` iff `a == b`, else `0`. The fallback kernel for categorical
/// domains and identifiers.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualityKernel;

impl Kernel for EqualityKernel {
    fn eval(&self, a: &Value, b: &Value) -> f64 {
        if a == b {
            1.0
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "equality"
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(*self)
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Equality
    }
}

/// Gaussian kernel `exp(−(a−b)² / 2υ)` over numeric values.
///
/// Non-numeric inputs fall back to equality semantics (defensive; the
/// assignment logic never routes text through a Gaussian kernel).
#[derive(Debug, Clone, Copy)]
pub struct GaussianKernel {
    /// The "variance" `υ > 0`.
    pub variance: f64,
}

impl GaussianKernel {
    /// Kernel with explicit variance; `υ` is clamped to a small positive
    /// minimum so degenerate attributes cannot divide by zero.
    pub fn new(variance: f64) -> Self {
        GaussianKernel {
            variance: variance.max(1e-9),
        }
    }

    /// Variance fitted to the active domain of `rel.attr`: the empirical
    /// variance of the attribute's non-null values (falling back to 1 when
    /// the domain is constant or empty). This makes the kernel's length
    /// scale track the data, which is what the paper's "variance υ"
    /// hyperparameter is tuned to.
    pub fn fitted(db: &Database, rel: RelationId, attr: usize) -> Self {
        // `active_domain` yields canonical `Value` order, so the variance
        // sums below run over a fixed lane order — the fitted υ is
        // bit-identical across runs and hasher states.
        let values: Vec<f64> = db
            .active_domain(rel, attr)
            .into_iter()
            .filter_map(reldb::Value::as_f64)
            .collect();
        if values.len() < 2 {
            return GaussianKernel::new(1.0);
        }
        let var = linalg::stats::variance(&values);
        if var <= 0.0 {
            GaussianKernel::new(1.0)
        } else {
            GaussianKernel::new(var)
        }
    }
}

impl Kernel for GaussianKernel {
    fn eval(&self, a: &Value, b: &Value) -> f64 {
        match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => {
                let d = x - y;
                (-(d * d) / (2.0 * self.variance)).exp()
            }
            _ => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(*self)
    }

    fn kind(&self) -> KernelKind {
        KernelKind::Gaussian {
            variance: self.variance,
        }
    }
}

/// Edit-distance kernel `exp(−lev(a,b)/λ)` over text values; smooths out
/// typos (paper §V-B). Non-text falls back to equality.
#[derive(Debug, Clone, Copy)]
pub struct EditDistanceKernel {
    /// Length scale `λ > 0`; larger = more tolerant.
    pub scale: f64,
}

impl EditDistanceKernel {
    /// Kernel with the given length scale.
    pub fn new(scale: f64) -> Self {
        EditDistanceKernel {
            scale: scale.max(1e-9),
        }
    }
}

/// Classic two-row Levenshtein distance.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        // PANICS: in bounds — both rows have length b.len() + 1 ≥ 1.
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

impl Kernel for EditDistanceKernel {
    fn eval(&self, a: &Value, b: &Value) -> f64 {
        match (a.as_text(), b.as_text()) {
            (Some(x), Some(y)) => (-(levenshtein(x, y) as f64) / self.scale).exp(),
            _ => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "edit-distance"
    }

    fn clone_box(&self) -> Box<dyn Kernel> {
        Box::new(*self)
    }

    fn kind(&self) -> KernelKind {
        KernelKind::EditDistance { scale: self.scale }
    }
}

/// Which kernel each attribute of each relation uses.
///
/// Built once per database; the default assignment is the paper's: Gaussian
/// (data-fitted variance) for `Int`/`Float`, equality for `Text`/`Bool`.
#[derive(Debug, Clone)]
pub struct KernelAssignment {
    /// `kernels[rel][attr]`.
    kernels: Vec<Vec<Box<dyn Kernel>>>,
}

impl KernelAssignment {
    /// The paper's default assignment, with Gaussian variances fitted to the
    /// current active domains.
    pub fn defaults(db: &Database) -> Self {
        let mut kernels: Vec<Vec<Box<dyn Kernel>>> = Vec::new();
        for rel_id in db.schema().relation_ids() {
            let rel = db.schema().relation(rel_id);
            let mut per_attr: Vec<Box<dyn Kernel>> = Vec::with_capacity(rel.arity());
            for (attr, a) in rel.attributes.iter().enumerate() {
                let k: Box<dyn Kernel> = match a.ty {
                    ValueType::Int | ValueType::Float => {
                        Box::new(GaussianKernel::fitted(db, rel_id, attr))
                    }
                    ValueType::Text | ValueType::Bool => Box::new(EqualityKernel),
                };
                per_attr.push(k);
            }
            kernels.push(per_attr);
        }
        KernelAssignment { kernels }
    }

    /// Replace the kernel of one attribute (e.g. opt into the edit-distance
    /// kernel for a noisy text column).
    pub fn set(&mut self, rel: RelationId, attr: usize, kernel: Box<dyn Kernel>) {
        self.kernels[rel.index()][attr] = kernel;
    }

    /// The kernel of `rel.attr`.
    pub fn kernel(&self, rel: RelationId, attr: usize) -> &dyn Kernel {
        self.kernels[rel.index()][attr].as_ref()
    }

    /// Evaluate `κ_{rel.attr}(a, b)`.
    pub fn eval(&self, rel: RelationId, attr: usize, a: &Value, b: &Value) -> f64 {
        self.kernels[rel.index()][attr].eval(a, b)
    }

    /// The serializable kind of every kernel, `kinds[rel][attr]`
    /// (snapshot encoding; see [`Kernel::kind`]).
    pub fn kinds(&self) -> Vec<Vec<KernelKind>> {
        self.kernels
            .iter()
            .map(|per_attr| per_attr.iter().map(|k| k.kind()).collect())
            .collect()
    }

    /// Rebuild an assignment from snapshotted kinds (the inverse of
    /// [`KernelAssignment::kinds`]).
    pub fn from_kinds(kinds: &[Vec<KernelKind>]) -> Self {
        KernelAssignment {
            kernels: kinds
                .iter()
                .map(|per_attr| per_attr.iter().map(|k| k.instantiate()).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::movies::movies_database;

    #[test]
    fn equality_kernel() {
        let k = EqualityKernel;
        assert_eq!(k.eval(&Value::Int(3), &Value::Int(3)), 1.0);
        assert_eq!(k.eval(&Value::Int(3), &Value::Int(4)), 0.0);
        assert_eq!(
            k.eval(&Value::Text("a".into()), &Value::Text("a".into())),
            1.0
        );
    }

    #[test]
    fn gaussian_kernel_shape() {
        let k = GaussianKernel::new(2.0);
        assert!((k.eval(&Value::Float(1.0), &Value::Float(1.0)) - 1.0).abs() < 1e-12);
        let near = k.eval(&Value::Float(1.0), &Value::Float(1.5));
        let far = k.eval(&Value::Float(1.0), &Value::Float(5.0));
        assert!(near > far);
        assert!(far > 0.0);
        // Symmetry.
        assert_eq!(
            k.eval(&Value::Float(1.0), &Value::Float(3.0)),
            k.eval(&Value::Float(3.0), &Value::Float(1.0))
        );
        // Mixed int/float numerics compare numerically.
        assert!((k.eval(&Value::Int(2), &Value::Float(2.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_fitted_tracks_spread() {
        let db = movies_database();
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let k = GaussianKernel::fitted(&db, movies, 4); // budget
                                                        // Budgets are 90..200 (millions): fitted variance must be large, so
                                                        // 160 vs 150 are fairly similar.
        let sim = k.eval(&Value::Int(160), &Value::Int(150));
        assert!(sim > 0.9, "sim = {sim}, variance = {}", k.variance);
        let dissim = k.eval(&Value::Int(200), &Value::Int(90));
        assert!(dissim < sim);
    }

    #[test]
    fn levenshtein_known_distances() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn edit_distance_kernel_smooths_typos() {
        let k = EditDistanceKernel::new(2.0);
        let exact = k.eval(
            &Value::Text("Titanic".into()),
            &Value::Text("Titanic".into()),
        );
        let typo = k.eval(
            &Value::Text("Titanic".into()),
            &Value::Text("Titanik".into()),
        );
        let other = k.eval(
            &Value::Text("Titanic".into()),
            &Value::Text("Godzilla".into()),
        );
        assert!((exact - 1.0).abs() < 1e-12);
        assert!(typo > 0.5);
        assert!(other < typo);
    }

    #[test]
    fn default_assignment_matches_types() {
        let db = movies_database();
        let ka = KernelAssignment::defaults(&db);
        let movies = db.schema().relation_id("MOVIES").unwrap();
        assert_eq!(ka.kernel(movies, 2).name(), "equality"); // title
        assert_eq!(ka.kernel(movies, 4).name(), "gaussian"); // budget
    }

    #[test]
    fn assignment_override() {
        let db = movies_database();
        let mut ka = KernelAssignment::defaults(&db);
        let movies = db.schema().relation_id("MOVIES").unwrap();
        ka.set(movies, 2, Box::new(EditDistanceKernel::new(2.0)));
        assert_eq!(ka.kernel(movies, 2).name(), "edit-distance");
        let v = ka.eval(
            movies,
            2,
            &Value::Text("Titanic".into()),
            &Value::Text("Titanik".into()),
        );
        assert!(v > 0.0);
    }
}
