//! Training-sample generation for FoRWaRD's static phase (paper §V-D).
//!
//! The SGD objective (Eq. 5) is driven by tuples `(f, f′, s, A, g, g′)`:
//! two distinct facts of the embedded relation, a target pair `(s, A)`, and
//! sampled walk destinations `g`, `g′` whose kernel similarity
//! `κ(g[A], g′[A])` serves as the stochastic estimate of
//! `KD(d_{s,f}[A], d_{s,f′}[A])`. We materialise each tuple as a
//! [`TrainingSample`] carrying the precomputed kernel value `y`.
//!
//! Both probing and generation are sharded over the
//! [`stembed_runtime::Runtime`]: eligibility probes parallelise over facts
//! (per-fact streams inside each target), sample generation parallelises
//! over targets (one derived stream per target). All streams are keyed by
//! logical indices, so the output is bit-identical at every shard count.

use crate::kernel::KernelAssignment;
use crate::schemes::Target;
use crate::walkdist::DestinationSampler;
use reldb::{Database, FactId};
use stembed_runtime::{derive_seed, stream_rng, Runtime};

/// One SGD sample: predict `ϕ(f)ᵀ ψ_t ϕ(f′) ≈ y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingSample {
    /// First fact.
    pub f: FactId,
    /// Second fact (`≠ f`).
    pub f_prime: FactId,
    /// Index into the target list.
    pub target: usize,
    /// `κ(g[A], g′[A])` for the sampled destinations.
    pub y: f64,
}

/// For each target, the facts whose destination distribution `d_{s,f}[A]`
/// exists (probed by sampling). Facts outside a target's eligible set never
/// appear in its samples — the paper skips nonexistent `d_{s,f}[A]`.
#[derive(Debug, Clone)]
pub struct EligibilityIndex {
    /// `eligible[t]` = facts with existing `d_{s_t, f}[A_t]`.
    pub eligible: Vec<Vec<FactId>>,
}

impl EligibilityIndex {
    /// Probe every (fact, target) combination with a few sampled walks.
    ///
    /// A fact is eligible for a target when at least one of
    /// `probe_attempts` sampled walks completes with a non-null target
    /// value. (For the trivial scheme this is exact; for longer schemes a
    /// false negative merely drops a sample source.) Target `t` probes its
    /// facts under master stream `derive_seed(master_seed, t)`, facts in
    /// parallel via [`DestinationSampler::sample_values_batch`].
    pub fn probe(
        db: &Database,
        facts: &[FactId],
        targets: &[Target],
        probe_attempts: usize,
        master_seed: u64,
        runtime: &Runtime,
    ) -> Self {
        let sampler = DestinationSampler::new(db);
        let eligible = targets
            .iter()
            .enumerate()
            .map(|(t_idx, target)| {
                let values = sampler.sample_values_batch(
                    runtime,
                    &target.scheme,
                    target.attr,
                    facts,
                    probe_attempts,
                    derive_seed(master_seed, t_idx as u64),
                );
                facts
                    .iter()
                    .zip(&values)
                    .filter(|(_, v)| v.is_some())
                    .map(|(&f, _)| f)
                    .collect()
            })
            .collect();
        EligibilityIndex { eligible }
    }
}

/// Generate one epoch's worth of training samples: `nsamples_per_fact`
/// samples **per eligible fact** of each target pair, as in the paper's
/// §V-D ("for each R-fact f and each (s,A) … we uniformly sample nsamples
/// of the form (f, f′, s, A, g, g′)"). Keeping the per-fact budget constant
/// is what makes training quality independent of the relation's size.
///
/// Targets are generated in parallel, each on its own derived stream; the
/// flattened output is ordered by target and deterministic for any shard
/// count.
#[allow(clippy::too_many_arguments)]
pub fn generate_samples(
    db: &Database,
    targets: &[Target],
    index: &EligibilityIndex,
    kernels: &KernelAssignment,
    nsamples_per_fact: usize,
    max_attempts: usize,
    master_seed: u64,
    runtime: &Runtime,
) -> Vec<TrainingSample> {
    let sampler = DestinationSampler::new(db);
    let schema = db.schema();
    let per_target = runtime.par_map_ordered(targets, |t_idx, target| {
        let eligible = &index.eligible[t_idx];
        let mut out = Vec::new();
        if eligible.len() < 2 {
            return out;
        }
        let mut rng = stream_rng(master_seed, t_idx as u64);
        let end_rel = target.scheme.end(schema);
        for _ in 0..nsamples_per_fact * eligible.len() {
            let f = eligible[rng.random_range(0..eligible.len())];
            // Rejection-sample a distinct partner.
            let mut f_prime = f;
            for _ in 0..8 {
                let cand = eligible[rng.random_range(0..eligible.len())];
                if cand != f {
                    f_prime = cand;
                    break;
                }
            }
            if f_prime == f {
                continue;
            }
            let Some(g) =
                sampler.sample_value(&target.scheme, target.attr, f, max_attempts, &mut rng)
            else {
                continue;
            };
            let Some(g_prime) =
                sampler.sample_value(&target.scheme, target.attr, f_prime, max_attempts, &mut rng)
            else {
                continue;
            };
            let y = kernels.eval(end_rel, target.attr, &g, &g_prime);
            out.push(TrainingSample {
                f,
                f_prime,
                target: t_idx,
                y,
            });
        }
        out
    });
    per_target.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::target_pairs;
    use reldb::movies::movies_database_labeled;

    #[test]
    fn eligibility_respects_walk_existence() {
        let (db, ids) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let facts = db.fact_ids(actors);
        let targets = target_pairs(db.schema(), actors, 3);
        let rt = Runtime::from_env();
        let index = EligibilityIndex::probe(&db, &facts, &targets, 16, 1, &rt);
        // Trivial-scheme targets: every actor is eligible (name and worth
        // are never null in Figure 2).
        for (t_idx, t) in targets.iter().enumerate() {
            if t.scheme.is_empty() {
                assert_eq!(index.eligible[t_idx].len(), facts.len());
            }
        }
        // a3 (Cruise) is never actor1, so targets whose scheme starts with
        // the actor1-backward step exclude it.
        let schema = db.schema();
        for (t_idx, t) in targets.iter().enumerate() {
            if t.scheme.len() >= 2 {
                let first = t.scheme.steps[0];
                let arrive = first.arrive_attrs(schema);
                let collabs = schema.relation_id("COLLABORATIONS").unwrap();
                let actor1_pos = schema.relation(collabs).attr_index("actor1").unwrap();
                if arrive == [actor1_pos] {
                    assert!(
                        !index.eligible[t_idx].contains(&ids["a3"]),
                        "a3 must be ineligible for actor1-start schemes"
                    );
                }
            }
        }
    }

    #[test]
    fn samples_are_valid() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let facts = db.fact_ids(actors);
        let targets = target_pairs(db.schema(), actors, 3);
        let kernels = KernelAssignment::defaults(&db);
        let rt = Runtime::from_env();
        let index = EligibilityIndex::probe(&db, &facts, &targets, 16, 3, &rt);
        let samples = generate_samples(&db, &targets, &index, &kernels, 25, 8, 3, &rt);
        assert!(!samples.is_empty());
        for s in &samples {
            assert_ne!(s.f, s.f_prime);
            assert!(s.target < targets.len());
            assert!(s.y >= 0.0 && s.y <= 1.0 + 1e-12, "kernels are in [0,1]");
            assert!(index.eligible[s.target].contains(&s.f));
            assert!(index.eligible[s.target].contains(&s.f_prime));
        }
        // Trivial-scheme equality targets (e.g. ACTORS.name) always compare
        // distinct facts, so y = 0 there.
        for (t_idx, t) in targets.iter().enumerate() {
            if t.scheme.is_empty() {
                let schema = db.schema();
                let name_attr = schema.relation(actors).attr_index("name").unwrap();
                if t.attr == name_attr {
                    for s in samples.iter().filter(|s| s.target == t_idx) {
                        assert_eq!(s.y, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_with_seed_and_shard_invariant() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let facts = db.fact_ids(actors);
        let targets = target_pairs(db.schema(), actors, 2);
        let kernels = KernelAssignment::defaults(&db);
        let run = |seed: u64, shards: usize| {
            let rt = Runtime::new(shards);
            let index = EligibilityIndex::probe(&db, &facts, &targets, 8, seed, &rt);
            generate_samples(&db, &targets, &index, &kernels, 10, 8, seed, &rt)
        };
        assert_eq!(run(7, 1), run(7, 1));
        assert_eq!(run(7, 1), run(7, 4), "shard count changed the samples");
        assert_ne!(run(7, 1), run(8, 1), "seed must matter");
    }
}
