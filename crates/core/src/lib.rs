//! # stembed-core — stable tuple embeddings (FoRWaRD + dynamic Node2Vec)
//!
//! The primary contribution of *"Stable Tuple Embeddings for Dynamic
//! Databases"* (Tönshoff, Friedman, Grohe, Kimelfeld — ICDE 2023,
//! [arXiv:2103.06766](https://arxiv.org/abs/2103.06766)), implemented from
//! scratch:
//!
//! * **Walk schemes** (§V-A): sequences of forward/backward foreign-key
//!   steps, enumerated from the schema up to a maximum length
//!   ([`schemes`]).
//! * **Kernelized domains** (§V-B): per-attribute similarity kernels —
//!   Gaussian for numbers, equality for categoricals, and an edit-distance
//!   kernel for noisy text ([`kernel`]).
//! * **Destination distributions** `d_{s,f}[A]` (§V-A): the distribution of
//!   the walk destination's attribute value, computed exactly by
//!   probability-propagating BFS or estimated by Monte-Carlo sampling
//!   ([`walkdist`]), with null values conditioned away.
//! * **Expected kernel distance** `KD` (§V-B, Eq. 2) ([`kd`]).
//! * **FoRWaRD static training** (§V-C/D): fact vectors `ϕ` and symmetric
//!   per-(scheme, attribute) matrices `ψ` jointly trained with SGD on the
//!   bilinear ℓ2 objective of Eq. 5 ([`train`]).
//! * **FoRWaRD dynamic extension** (§V-E): embedding a newly inserted fact
//!   by solving the overdetermined linear system `C·ϕ(f_new) = b` of Eq. 9
//!   with the SVD pseudoinverse ([`dynamic`]).
//! * A **walk-distribution cache** under the KD/dynamic stack
//!   ([`distcache`]): exact distributions are memoised by
//!   `(scheme, start)` / `(scheme, attr, start)`, resumable BFS frontiers
//!   by `(prefix, start)`, and exact KD values by
//!   `(scheme, attr, f1, f2)` — all invalidated through `reldb`'s
//!   mutation journal, scoped by each scheme's (or prefix's)
//!   FK-reachability ([`schemes::SchemeReach`]) — a mutation evicts only
//!   the entries it can actually influence, so the cache stays warm
//!   across the one-by-one insertion protocol and one insert costs one
//!   linear solve, not thousands of repeated BFS runs. The cache is
//!   **invisible semantically**: results are bit-identical with and
//!   without it, at any shard count (`tests/determinism.rs` asserts
//!   both).
//! * **Scheme plans** ([`plan`]): a target set's walk schemes factored
//!   into a shared prefix trie ([`plan::SchemePlan`]); evaluated in
//!   deterministic DFS order, every scheme's BFS resumes its parent's
//!   cached frontier ([`walkdist::frontier_step`]) instead of starting
//!   from scratch.
//! * A unified [`TupleEmbedder`] trait implemented by both FoRWaRD and the
//!   Node2Vec adaptation, which the experiment harness trains and extends
//!   interchangeably ([`embedder`]).
//!
//! ## Cache + journal invalidation contract
//!
//! Exact walk distributions are pure functions of
//! `(database content, scheme, start, support_limit)`, and their supports
//! are kept in a canonical order — so caching them can never change a
//! result, only skip recomputation. Validity is tracked through
//! [`reldb::Database::db_id`] (process-unique lineage, fresh per clone),
//! [`reldb::Database::epoch`] (bumped by every insert/restore/delete), and
//! [`reldb::Database::journal_since`] (the bounded ring of what each
//! epoch bump did): a [`DistCache`] binds against the database before
//! every batch of lookups, replays the mutations it missed, and evicts
//! only the entries those mutations can reach through the FK structure of
//! the cached walk schemes — falling back to a full clear when the
//! lineage changed or the journal wrapped. Monte-Carlo estimates are
//! never cached — they consume seeded RNG streams, and caching them would
//! make results depend on cache history.

pub mod config;
pub mod distcache;
pub mod dynamic;
pub mod embedder;
pub mod kd;
pub mod kernel;
pub mod plan;
pub mod sampler;
pub mod schemes;
pub mod snapshot;
pub mod train;
pub mod walkdist;

pub use config::ForwardConfig;
pub use distcache::{CacheStats, DistCache, DistCacheStats};
pub use dynamic::ExtendOptions;
pub use embedder::{ForwardEmbedder, Node2VecEmbedder, TupleEmbedder};
pub use kernel::{
    EditDistanceKernel, EqualityKernel, GaussianKernel, Kernel, KernelAssignment, KernelKind,
};
pub use plan::{PlanNode, SchemePlan};
pub use schemes::{
    enumerate_schemes, target_pairs, ReachScope, SchemeReach, Step, Target, WalkScheme,
};
pub use train::ForwardEmbedding;
pub use walkdist::{DestinationSampler, FrontierState, ValueDistribution};

/// Errors surfaced by the embedding algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The relation has too few facts to embed (need at least two).
    NotEnoughFacts {
        /// Relation name.
        relation: String,
        /// Live fact count.
        got: usize,
    },
    /// No usable target pair `(s, A)` exists for the relation — every
    /// reachable attribute participates in a foreign key or all destination
    /// distributions are empty.
    NoTargets {
        /// Relation name.
        relation: String,
    },
    /// The fact to extend is not live in the database.
    UnknownFact(reldb::FactId),
    /// A fact handed to `extend` does not belong to the embedded relation.
    WrongRelation(reldb::FactId),
    /// The dynamic linear system could not be assembled (no old fact yields
    /// a computable `KD` row).
    NoEquations(reldb::FactId),
    /// Numerical failure in the linear solve.
    Linalg(linalg::LinalgError),
    /// Snapshotted embedding state does not fit the database it is being
    /// restored against (wrong schema, config, or dimension).
    SnapshotMismatch(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::NotEnoughFacts { relation, got } => {
                write!(f, "relation {relation} has {got} facts; need at least 2")
            }
            CoreError::NoTargets { relation } => {
                write!(f, "no target (scheme, attribute) pairs for {relation}")
            }
            CoreError::UnknownFact(id) => write!(f, "fact {id} is not live"),
            CoreError::WrongRelation(id) => {
                write!(f, "fact {id} is not in the embedded relation")
            }
            CoreError::NoEquations(id) => {
                write!(f, "no KD equations could be built for new fact {id}")
            }
            CoreError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            CoreError::SnapshotMismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<linalg::LinalgError> for CoreError {
    fn from(e: linalg::LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}
