//! Walk schemes over foreign keys (paper §V-A, Figure 4).
//!
//! A walk scheme is a sequence
//! `R₀[A₀]—R₁[B₁], R₁[A₁]—R₂[B₂], …, R_{ℓ−1}[A_{ℓ−1}]—R_ℓ[B_ℓ]` where each
//! step follows a foreign key either **forward** (from the referencing
//! relation to the referenced one: `A = from_attrs`, `B = key`) or
//! **backward** (`A = key`, `B = from_attrs`).
//!
//! ## The non-backtracking rule
//!
//! The paper's formal definition (1) places no restriction on consecutive
//! steps, which would yield 21 schemes of length ≤ 3 from `ACTORS` in the
//! movie schema — but Example 5.1 / Figure 4 say there are nine, so the
//! authors' enumeration is clearly pruned. We enumerate under the standard
//! **non-backtracking** rule: a step may not be the exact inverse (same
//! foreign key, opposite direction) of the step before it — walking
//! `ACTORS[aid]—COLLAB[actor1]` and then immediately
//! `COLLAB[actor1]—ACTORS[aid]` returns to the start fact and carries no
//! information. This gives 10 non-trivial schemes (+ the length-0 scheme)
//! for the movie schema; the figure draws 9, merging the two symmetric
//! `…—MOVIES[mid], MOVIES[studio]—STUDIOS[sid]` branches into one (the
//! figure's token counts show a single STUDIOS node). We keep both — the
//! stricter alternative of forbidding *any* re-exit through the entry
//! attributes would make the satellite walks that the paper's Mondial
//! results depend on (`TARGET→COUNTRY→RELIGION`, entering and leaving
//! `COUNTRY` through its key) impossible, so it cannot be what the authors
//! ran. The unrestricted variant stays available behind a flag for
//! ablations.

use reldb::{FkId, RelationId, Schema};
use std::fmt;

/// One step of a walk scheme: a foreign key and a direction.
///
/// `Ord` (fk id, then direction) exists so schemes can key ordered maps —
/// caches iterate their entries and must do so in a deterministic order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Step {
    /// The foreign key being traversed.
    pub fk: FkId,
    /// `true`: referencing → referenced (follow the pointer).
    /// `false`: referenced → referencing (find who points here).
    pub forward: bool,
}

impl Step {
    /// Relation this step departs from.
    pub fn source(&self, schema: &Schema) -> RelationId {
        let fk = schema.foreign_key(self.fk);
        if self.forward {
            fk.from_rel
        } else {
            fk.to_rel
        }
    }

    /// Relation this step arrives at.
    pub fn destination(&self, schema: &Schema) -> RelationId {
        let fk = schema.foreign_key(self.fk);
        if self.forward {
            fk.to_rel
        } else {
            fk.from_rel
        }
    }

    /// The attribute tuple `A` used on the departure side.
    pub fn depart_attrs<'s>(&self, schema: &'s Schema) -> &'s [usize] {
        let fk = schema.foreign_key(self.fk);
        if self.forward {
            &fk.from_attrs
        } else {
            &fk.to_attrs
        }
    }

    /// The attribute tuple `B` used on the arrival side.
    pub fn arrive_attrs<'s>(&self, schema: &'s Schema) -> &'s [usize] {
        let fk = schema.foreign_key(self.fk);
        if self.forward {
            &fk.to_attrs
        } else {
            &fk.from_attrs
        }
    }
}

/// A walk scheme: start relation plus steps (possibly none).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WalkScheme {
    /// The start relation `R₀`.
    pub start: RelationId,
    /// The steps, in order.
    pub steps: Vec<Step>,
}

impl WalkScheme {
    /// The length-0 scheme on `rel` (walks `(f₀)` ending at the start fact).
    pub fn trivial(rel: RelationId) -> Self {
        WalkScheme {
            start: rel,
            steps: Vec::new(),
        }
    }

    /// Scheme length `ℓ`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for the length-0 scheme.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The relation the scheme ends with.
    pub fn end(&self, schema: &Schema) -> RelationId {
        self.steps
            .last()
            .map_or(self.start, |s| s.destination(schema))
    }

    /// Paper notation, e.g.
    /// `ACTORS[aid]—COLLABORATIONS[actor2], COLLABORATIONS[movie]—MOVIES[mid]`.
    pub fn display<'s>(&'s self, schema: &'s Schema) -> SchemeDisplay<'s> {
        SchemeDisplay {
            scheme: self,
            schema,
        }
    }
}

/// `Display` adapter for [`WalkScheme`].
pub struct SchemeDisplay<'s> {
    scheme: &'s WalkScheme,
    schema: &'s Schema,
}

impl fmt::Display for SchemeDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let schema = self.schema;
        if self.scheme.is_empty() {
            return write!(f, "{}[·]", schema.relation(self.scheme.start).name);
        }
        for (i, step) in self.scheme.steps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let src = step.source(schema);
            let dst = step.destination(schema);
            let a_names: Vec<&str> = step
                .depart_attrs(schema)
                .iter()
                .map(|&a| schema.relation(src).attributes[a].name.as_str())
                .collect();
            let b_names: Vec<&str> = step
                .arrive_attrs(schema)
                .iter()
                .map(|&a| schema.relation(dst).attributes[a].name.as_str())
                .collect();
            write!(
                f,
                "{}[{}]—{}[{}]",
                schema.relation(src).name,
                a_names.join(","),
                schema.relation(dst).name,
                b_names.join(",")
            )?;
        }
        Ok(())
    }
}

/// How far a mutation in one relation can reach into the cached walk
/// distributions of one scheme (see [`SchemeReach::scope`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachScope {
    /// The relation is never visited: no `(scheme, start)` entry changes.
    Unreachable,
    /// The relation is the scheme's start and is never re-entered: only
    /// the entry whose start *is* the mutated fact changes (a walk from
    /// any other start fact never reads it).
    StartOnly,
    /// The relation is visited after the start: the mutated fact may sit
    /// on (or open/close) a walk from **any** start fact.
    AllStarts,
}

/// FK-reachability of one walk scheme, precomputed from the schema alone:
/// for every relation, which cached `(scheme, start)` destination
/// distributions a mutation there can influence.
///
/// The exact BFS ([`crate::walkdist::destination_distribution_status`])
/// reads only facts along the scheme's relation sequence `R₀, R₁, …, R_ℓ`:
/// the start fact itself at position 0, key lookups / referencing-slot
/// scans in `R₁..R_ℓ`, and (for the value marginal) attribute values of
/// the end relation `R_ℓ` — which is on the sequence. A mutation anywhere
/// else is therefore provably invisible to every entry of the scheme, and
/// a mutation in a start-only relation is visible exactly to the entry
/// keyed by the mutated fact. This is the index behind the distribution
/// cache's journal-replay invalidation.
#[derive(Debug, Clone)]
pub struct SchemeReach {
    start: RelationId,
    /// `interior[r]` ⇔ relation `r` is visited at some step position ≥ 1.
    interior: Vec<bool>,
}

impl SchemeReach {
    /// Precompute the reachability of `scheme` under `schema`.
    pub fn of(schema: &Schema, scheme: &WalkScheme) -> Self {
        let mut interior = vec![false; schema.relations().len()];
        for step in &scheme.steps {
            interior[step.destination(schema).index()] = true;
        }
        SchemeReach {
            start: scheme.start,
            interior,
        }
    }

    /// The invalidation scope of a mutation in `rel` for this scheme.
    pub fn scope(&self, rel: RelationId) -> ReachScope {
        if self.interior.get(rel.index()).copied().unwrap_or(false) {
            ReachScope::AllStarts
        } else if rel == self.start {
            ReachScope::StartOnly
        } else {
            ReachScope::Unreachable
        }
    }
}

/// A training target: a walk scheme paired with an attribute of its end
/// relation that is not involved in any foreign key — the `(s, A)` pairs of
/// `T(R, ℓmax)` (paper §V-C).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Target {
    /// The walk scheme `s`.
    pub scheme: WalkScheme,
    /// Attribute position `A` within the scheme's end relation.
    pub attr: usize,
}

/// Enumerate all walk schemes of length ≤ `max_len` starting from `start`,
/// including the length-0 scheme.
///
/// With `allow_backtracking = false` (the default used everywhere), a step
/// may not be the exact inverse of its predecessor (same FK, opposite
/// direction) — see the module docs.
pub fn enumerate_schemes(
    schema: &Schema,
    start: RelationId,
    max_len: usize,
    allow_backtracking: bool,
) -> Vec<WalkScheme> {
    let mut out = vec![WalkScheme::trivial(start)];
    let mut frontier = vec![WalkScheme::trivial(start)];
    for _ in 0..max_len {
        let mut next_frontier = Vec::new();
        for scheme in &frontier {
            let cur = scheme.end(schema);
            for step in steps_from(schema, cur) {
                if !allow_backtracking {
                    if let Some(last) = scheme.steps.last() {
                        // Disallow the exact inverse of the previous step.
                        if last.fk == step.fk && last.forward != step.forward {
                            continue;
                        }
                    }
                }
                let mut extended = scheme.clone();
                extended.steps.push(step);
                out.push(extended.clone());
                next_frontier.push(extended);
            }
        }
        frontier = next_frontier;
    }
    out
}

/// All single steps departing from `rel`: forward along each FK out of it,
/// backward along each FK into it.
pub fn steps_from(schema: &Schema, rel: RelationId) -> Vec<Step> {
    let mut steps = Vec::new();
    for &fk in schema.fks_from(rel) {
        steps.push(Step { fk, forward: true });
    }
    for &fk in schema.fks_to(rel) {
        steps.push(Step { fk, forward: false });
    }
    steps
}

/// The target set `T(R, ℓmax)`: every `(scheme, attribute)` pair where the
/// scheme starts at `rel` (length ≤ `max_len`, non-returning) and the
/// attribute belongs to the scheme's end relation and participates in **no**
/// foreign key (paper §V-C — FK attributes are opaque identifiers whose
/// kernel similarity carries no signal).
pub fn target_pairs(schema: &Schema, rel: RelationId, max_len: usize) -> Vec<Target> {
    let mut out = Vec::new();
    for scheme in enumerate_schemes(schema, rel, max_len, false) {
        let end = scheme.end(schema);
        for attr in 0..schema.relation(end).arity() {
            if !schema.attr_in_any_fk(end, attr) {
                out.push(Target {
                    scheme: scheme.clone(),
                    attr,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::movies::movies_schema;

    #[test]
    fn figure_4_schemes_from_actors() {
        // Figure 4 draws nine schemes; non-backtracking enumeration yields
        // ten non-trivial ones (the figure merges the two symmetric
        // …—MOVIES—STUDIOS branches) plus the length-0 scheme the paper
        // explicitly allows.
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        assert_eq!(
            schemes.len(),
            11,
            "got: {:#?}",
            schemes
                .iter()
                .map(|s| s.display(&schema).to_string())
                .collect::<Vec<_>>()
        );
        // Breakdown: 1 trivial + 2 of length 1 + 4 of length 2 + 4 of length 3.
        let by_len = |l: usize| schemes.iter().filter(|s| s.len() == l).count();
        assert_eq!(by_len(0), 1);
        assert_eq!(by_len(1), 2);
        assert_eq!(by_len(2), 4);
        assert_eq!(by_len(3), 4);
        // No scheme ever backtracks.
        for s in &schemes {
            for w in s.steps.windows(2) {
                assert!(!(w[0].fk == w[1].fk && w[0].forward != w[1].forward));
            }
        }
    }

    #[test]
    fn example_5_1_s5_exists_and_displays_correctly() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        let wanted = "ACTORS[aid]—COLLABORATIONS[actor2], COLLABORATIONS[movie]—MOVIES[mid]";
        assert!(
            schemes
                .iter()
                .any(|s| s.display(&schema).to_string() == wanted),
            "scheme s5 of Example 5.1 must be enumerated"
        );
        // s1: length 1 ending with COLLABORATIONS.
        let collabs = schema.relation_id("COLLABORATIONS").unwrap();
        assert!(schemes
            .iter()
            .any(|s| s.len() == 1 && s.end(&schema) == collabs));
    }

    #[test]
    fn unrestricted_enumeration_is_larger() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let restricted = enumerate_schemes(&schema, actors, 3, false);
        let unrestricted = enumerate_schemes(&schema, actors, 3, true);
        assert!(unrestricted.len() > restricted.len());
        // Unrestricted count: 1 + 2 + 6 + 12 = 21.
        assert_eq!(unrestricted.len(), 21);
    }

    #[test]
    fn scheme_end_relations() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let studios = schema.relation_id("STUDIOS").unwrap();
        let collabs = schema.relation_id("COLLABORATIONS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        // Length-3 schemes: two end at STUDIOS (…—MOVIES—STUDIOS), two end
        // at COLLABORATIONS (ACTORS—COLLAB—ACTORS—COLLAB via the other
        // actor role).
        let l3: Vec<_> = schemes.iter().filter(|s| s.len() == 3).collect();
        assert_eq!(l3.iter().filter(|s| s.end(&schema) == studios).count(), 2);
        assert_eq!(l3.iter().filter(|s| s.end(&schema) == collabs).count(), 2);
        // Trivial scheme ends at the start.
        assert_eq!(WalkScheme::trivial(actors).end(&schema), actors);
    }

    #[test]
    fn target_pairs_exclude_fk_attributes() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let targets = target_pairs(&schema, actors, 3);
        // No target may use an FK-involved attribute.
        for t in &targets {
            let end = t.scheme.end(&schema);
            assert!(
                !schema.attr_in_any_fk(end, t.attr),
                "target attribute {} of {} is in an FK",
                schema.relation(end).attributes[t.attr].name,
                schema.relation(end).name
            );
        }
        // Trivial scheme contributes ACTORS.name and ACTORS.worth (aid is a
        // referenced key); COLLABORATIONS has *no* non-FK attribute, so
        // length-1 schemes contribute nothing.
        let trivial_targets = targets.iter().filter(|t| t.scheme.is_empty()).count();
        assert_eq!(trivial_targets, 2);
        let len1_targets = targets.iter().filter(|t| t.scheme.len() == 1).count();
        assert_eq!(len1_targets, 0);
        // Length-2 schemes ending at MOVIES contribute title, genre, budget
        // each (mid and studio are FK attrs): 2 schemes × 3 attrs. Length-2
        // schemes ending at ACTORS contribute name, worth: 2 × 2.
        let len2_targets = targets.iter().filter(|t| t.scheme.len() == 2).count();
        assert_eq!(len2_targets, 10);
        // Length-3 (STUDIOS): name, loc (sid is referenced): 2 × 2.
        let len3_targets = targets.iter().filter(|t| t.scheme.len() == 3).count();
        assert_eq!(len3_targets, 4);
        assert_eq!(targets.len(), 16);
    }

    #[test]
    fn scheme_reach_classifies_relations() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let collabs = schema.relation_id("COLLABORATIONS").unwrap();
        let movies = schema.relation_id("MOVIES").unwrap();
        let studios = schema.relation_id("STUDIOS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);

        // Trivial scheme: only the start fact itself matters.
        let trivial = SchemeReach::of(&schema, &WalkScheme::trivial(actors));
        assert_eq!(trivial.scope(actors), ReachScope::StartOnly);
        assert_eq!(trivial.scope(collabs), ReachScope::Unreachable);

        // s5 (ACTORS—COLLAB—MOVIES): interior = {COLLAB, MOVIES}; STUDIOS
        // is unreachable, other actors cannot influence a1's walks.
        let s5 = schemes
            .iter()
            .find(|s| {
                s.display(&schema).to_string()
                    == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
            })
            .unwrap();
        let reach = SchemeReach::of(&schema, s5);
        assert_eq!(reach.scope(actors), ReachScope::StartOnly);
        assert_eq!(reach.scope(collabs), ReachScope::AllStarts);
        assert_eq!(reach.scope(movies), ReachScope::AllStarts);
        assert_eq!(reach.scope(studios), ReachScope::Unreachable);

        // A scheme re-entering ACTORS (ACTORS—COLLAB[actor1],
        // COLLAB[actor2]—ACTORS) puts the start relation in the interior:
        // any actor mutation can now change any start's distribution.
        let reentrant = schemes
            .iter()
            .find(|s| s.len() == 2 && s.end(&schema) == actors)
            .unwrap();
        let reach = SchemeReach::of(&schema, reentrant);
        assert_eq!(reach.scope(actors), ReachScope::AllStarts);
    }

    #[test]
    fn steps_from_covers_both_directions() {
        let schema = movies_schema();
        let movies = schema.relation_id("MOVIES").unwrap();
        let steps = steps_from(&schema, movies);
        // MOVIES: forward via studio-FK, backward via COLLAB.movie-FK.
        assert_eq!(steps.len(), 2);
        assert!(steps.iter().any(|s| s.forward));
        assert!(steps.iter().any(|s| !s.forward));
        let fwd = steps.iter().find(|s| s.forward).unwrap();
        assert_eq!(
            fwd.destination(&schema),
            schema.relation_id("STUDIOS").unwrap()
        );
    }
}
