//! Walk-distribution cache for the KD/dynamic stack.
//!
//! The dynamic phase (paper §V-E) prices one equation `cᵀ ϕ(f_new) = y`
//! per `(f_old, s, A)` triple, and every `y` is a `KD` value whose exact
//! path needs two destination distributions. Uncached, `solve_new_vector`
//! used to re-run the **same** probability-propagating BFS
//! ([`destination_distribution`]) once per equation for the `f_new` side
//! (`per_target × targets` times per insert) and once per attribute for
//! targets sharing a scheme. Both are pure functions of
//! `(database, scheme, start)` — this module memoises them.
//!
//! ## Keys and invalidation
//!
//! * [`FactDistribution`] is keyed by `(scheme, start)`;
//! * [`ValueDistribution`] by `(scheme, attr, start)`;
//! * [`FrontierState`] (the **prefix tier**) by `(prefix, start)` where
//!   `prefix` is a step sequence shared by several schemes;
//! * exact KD values (the **KD tier**) by `(scheme, attr, f1, f2)` —
//!   the key is *directional* because [`crate::kd::kd_exact`] iterates
//!   `p` then `q` and float addition does not reassociate, so `(f1, f2)`
//!   and `(f2, f1)` are distinct cache lines by design;
//! * all four are valid only for one `(db_id, epoch, support_limit)`
//!   triple. KD entries are additionally valid only under the kernel
//!   assignment of the embedding that computed them — which holds
//!   because kernels are fixed at train time and each embedding owns its
//!   cache.
//!
//! The prefix tier is what makes the scheme plan
//! ([`crate::plan::SchemePlan`]) pay off: walk schemes share step
//! prefixes heavily (enumeration is prefix-closed), and a frontier
//! cached after a shared prefix turns every sibling scheme's BFS into
//! "cached parent frontier + 1 [`crate::walkdist::frontier_step`]".
//! Negative prefix entries ([`DistStatus::TooLarge`] /
//! [`DistStatus::Nonexistent`]) are keyed by the **exact failing
//! prefix**, so they can never poison sibling schemes that diverge
//! before the failing step — a sibling probes a different key.
//!
//! `reldb::Database` carries a **mutation epoch** (bumped by every insert,
//! restore, and delete), a process-unique **lineage id** (fresh per
//! constructor *and per clone*), and a bounded **mutation journal**
//! recording what each epoch bump did. [`DistCache::ensure_bound`]
//! compares the cache's binding against the database about to be read:
//!
//! * same lineage, same epoch — nothing to do;
//! * same lineage, newer epoch — **replay** the journal records the cache
//!   missed and evict only the entries those mutations can reach. Each
//!   cached scheme carries a precomputed [`SchemeReach`]: a mutation in a
//!   relation the scheme never visits evicts nothing, one in the scheme's
//!   (non-re-entered) start relation evicts exactly the mutated fact's
//!   entry, and one in an interior relation evicts the `(scheme, start)`
//!   entries found by walking the scheme **backwards** from the mutated
//!   fact — inserts/restores from the live fact, deletes from the
//!   journalled payload ([`reldb::MutationRecord::removed`]) that stands
//!   in for the tombstone. This is what keeps the cache warm across the
//!   paper's one-by-one insertion protocol (§VI-E), where every round
//!   mutates a handful of relations and leaves most schemes untouched —
//!   and now also across workloads that interleave deletes with the
//!   insert stream;
//! * different lineage, changed support limit, or a journal that has
//!   wrapped (the cache fell behind by more than the ring holds) — **full
//!   clear**, the pre-journal behaviour and the unconditional fallback.
//!
//! Either way a bound cache can never serve entries computed against a
//! different database object that happens to share an epoch number.
//!
//! ## Determinism contract
//!
//! Cached and recomputed lookups are interchangeable **bit for bit**: the
//! distributions are deterministic in their key (supports are canonically
//! ordered — see [`FactDistribution::support`]), and no RNG is ever
//! consumed on the exact path, so a cache hit cannot shift any random
//! stream. Sharded callers take a read-only [`DistCache::view`] per work
//! item, record misses in a private [`DistCacheDelta`], and
//! [`DistCache::absorb`] the deltas **in item order** after the parallel
//! section — the shard count decides only *when* a miss is computed, never
//! *what* any caller observes.

use crate::schemes::{ReachScope, SchemeReach, Step, WalkScheme};
use crate::walkdist::{
    destination_distribution_status, frontier_finish, frontier_start, frontier_step,
    step_predecessors, step_predecessors_of, value_distribution, DistStatus, FactDistribution,
    FrontierState, ValueDistribution,
};
use reldb::{Database, Fact, FactId, MutationKind, MutationRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cached fact-level entry: the distribution behind an [`Arc`], or the
/// exact reason there is none ([`DistStatus::TooLarge`] /
/// [`DistStatus::Nonexistent`] are cached as negative entries).
pub type CachedFactDist = DistStatus<Arc<FactDistribution>>;
/// Cached value-level entry (see [`CachedFactDist`]).
pub type CachedValueDist = DistStatus<Arc<ValueDistribution>>;
/// Cached prefix-tier entry: the resumable BFS frontier after a step
/// prefix, or the exact reason the prefix already failed (see
/// [`CachedFactDist`] — negative entries bind to the failing prefix
/// only).
pub type CachedFrontier = DistStatus<Arc<FrontierState>>;

// Two-level maps, outer-keyed by scheme: lookups compare the (cheap)
// borrowed scheme without cloning it and the inner key is `Copy` — the
// flat `(WalkScheme, FactId)`-keyed alternative would clone the scheme's
// step vector on every probe just to build a key. `BTreeMap` (not
// `HashMap`) because replay and eviction iterate these maps: the scheme
// order — and with it the stats counters and any eviction tie-breaks —
// must not depend on hasher state.
type FactMap = BTreeMap<WalkScheme, BTreeMap<FactId, CachedFactDist>>;
type ValueMap = BTreeMap<WalkScheme, BTreeMap<(usize, FactId), CachedValueDist>>;
// The prefix tier is keyed by the bare step sequence: `steps[0]` pins the
// start relation, so the key is unambiguous without the `WalkScheme`
// wrapper, and lookups probe with a borrowed `&[Step]` slice of the
// scheme being assembled (no allocation per probe). The empty prefix is
// never cached — rebuilding it is one `frontier_start`.
type PrefixMap = BTreeMap<Vec<Step>, BTreeMap<FactId, CachedFrontier>>;
// KD tier: directional `(attr, f1, f2)` under the scheme (see module
// docs). Only *exact* KD values land here — the Monte-Carlo fallback
// consumes RNG and is never cached.
type KdMap = BTreeMap<WalkScheme, BTreeMap<(usize, FactId, FactId), f64>>;

fn map_len<K, K2, V>(map: &BTreeMap<K, BTreeMap<K2, V>>) -> usize {
    map.values().map(std::collections::BTreeMap::len).sum()
}

fn put<K2: Ord, V>(
    map: &mut BTreeMap<WalkScheme, BTreeMap<K2, V>>,
    scheme: &WalkScheme,
    key: K2,
    value: V,
) {
    match map.get_mut(scheme) {
        Some(inner) => {
            inner.insert(key, value);
        }
        None => {
            // Only the first entry of a scheme pays for cloning it.
            map.entry(scheme.clone()).or_default().insert(key, value);
        }
    }
}

/// Hit/miss/eviction counters of a [`DistCache`] (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistCacheStats {
    /// Fact/value-tier lookups answered from the cache (including
    /// negative entries).
    pub hits: u64,
    /// Fact/value-tier lookups that had to compute (and then stored)
    /// their result.
    pub misses: u64,
    /// Times the whole cache was dropped: lineage change, support-limit
    /// change, or a wrapped journal (fell too far behind to replay).
    pub invalidations: u64,
    /// Journal replays applied (fine-grained catch-ups instead of clears).
    pub replays: u64,
    /// Fact/value/KD-tier entries evicted by journal replays (full clears
    /// are counted in `invalidations`, not here; prefix-tier evictions in
    /// [`DistCacheStats::prefix_evicted`]).
    pub evicted: u64,
    /// Fact-tier BFS assemblies that resumed from a cached prefix
    /// frontier (including negative prefix entries, which settle the
    /// status outright).
    pub prefix_hits: u64,
    /// Fact-tier BFS assemblies that found no usable prefix and started
    /// from scratch.
    pub prefix_misses: u64,
    /// Prefix-tier entries evicted by journal replays.
    pub prefix_evicted: u64,
    /// Exact KD values served from the KD tier.
    pub kd_hits: u64,
    /// Exact KD evaluations that had to compute (and then stored) their
    /// value.
    pub kd_misses: u64,
}

impl DistCacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    ///
    /// Covers the **fact and value tiers only** — prefix-frontier reuse is
    /// [`DistCacheStats::prefix_hit_rate`], KD-value reuse is
    /// `kd_hits / (kd_hits + kd_misses)`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Fraction of fact-tier BFS assemblies that resumed from a cached
    /// prefix frontier (0 when none happened). A fact-tier *hit* never
    /// reaches the prefix tier, so this measures reuse among the lookups
    /// that actually had to compute.
    pub fn prefix_hit_rate(&self) -> f64 {
        let total = self.prefix_hits + self.prefix_misses;
        if total == 0 {
            0.0
        } else {
            self.prefix_hits as f64 / total as f64
        }
    }
}

/// Former name of [`DistCacheStats`].
pub type CacheStats = DistCacheStats;

/// Memo table for exact walk distributions, bound to one
/// `(db_id, epoch, support_limit)` snapshot at a time.
///
/// Negative results are cached too — with their exact reason: a
/// [`DistStatus::Nonexistent`] entry lets `KD` skip Monte-Carlo sampling
/// entirely (the value is exactly `None`), while [`DistStatus::TooLarge`]
/// routes to the sampling fallback. Both are as expensive to rediscover as
/// a real distribution.
#[derive(Debug, Clone, Default)]
pub struct DistCache {
    /// Lineage of the database the entries were computed against
    /// (`0` = not yet bound).
    db_id: u64,
    epoch: u64,
    support_limit: usize,
    facts: FactMap,
    values: ValueMap,
    prefixes: PrefixMap,
    kd_values: KdMap,
    /// Per-scheme FK-reachability, computed once per scheme (the schema is
    /// immutable within a lineage) and consulted by every journal replay.
    scopes: BTreeMap<WalkScheme, SchemeReach>,
    /// When set, the prefix tier only **stores** frontiers at these
    /// prefixes (probing is unrestricted). `None` stores everything.
    persist: Option<Arc<BTreeSet<Vec<Step>>>>,
    stats: DistCacheStats,
}

impl DistCache {
    /// Empty, unbound cache. The first [`DistCache::ensure_bound`] binds
    /// it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restrict the prefix tier to **storing** frontiers only at
    /// `prefixes` — typically [`crate::plan::SchemePlan::persist_prefixes`],
    /// the prefixes some other scheme's evaluation will actually resume.
    /// Lookups still probe every length, and values are unaffected either
    /// way (a frontier is a pure function of its key); this only trims
    /// the insert-per-step bookkeeping that plain-BFS evaluation never
    /// pays, which otherwise makes low-sharing plans *slower* through the
    /// cache than without it. Survives rebinds and replays.
    pub fn set_persist_prefixes(&mut self, prefixes: Arc<BTreeSet<Vec<Step>>>) {
        self.persist = Some(prefixes);
    }

    /// `true` when a frontier at `prefix` should be stored (see
    /// [`DistCache::set_persist_prefixes`]).
    fn should_store(&self, prefix: &[Step]) -> bool {
        match &self.persist {
            None => true,
            Some(set) => set.contains(prefix),
        }
    }

    /// `true` when the cache is bound to `db`'s current state and `limit`.
    fn current_for(&self, db: &Database, limit: usize) -> bool {
        self.db_id == db.db_id() && self.epoch == db.epoch() && self.support_limit == limit
    }

    /// Bind the cache to `db`'s current `(db_id, epoch)` under the exact
    /// support cap `limit`. Call before a batch of lookups; a no-op while
    /// the database is unmutated.
    ///
    /// When the database has mutated within the same lineage and the
    /// mutation journal still covers the gap, the missed records are
    /// **replayed**: only entries whose scheme can reach a mutated fact
    /// (see [`SchemeReach`]) are evicted, everything else stays warm.
    /// A lineage change, a support-limit change, or a wrapped journal
    /// drops every entry (the journal is an optimisation channel, never a
    /// correctness requirement).
    pub fn ensure_bound(&mut self, db: &Database, limit: usize) {
        if self.db_id == db.db_id() && self.support_limit == limit {
            if self.epoch == db.epoch() {
                return;
            }
            let missed: Option<Vec<MutationRecord>> = db
                .journal_since(self.epoch)
                .map(|records| records.cloned().collect());
            if let Some(records) = missed {
                self.replay(db, &records);
                self.epoch = db.epoch();
                return;
            }
        }
        if !self.is_empty() {
            self.stats.invalidations += 1;
            self.facts.clear();
            self.values.clear();
            self.prefixes.clear();
            self.kd_values.clear();
        }
        // Scopes are schema-derived; a different lineage may carry a
        // different schema, so they go too (cheap to recompute).
        self.scopes.clear();
        self.db_id = db.db_id();
        self.epoch = db.epoch();
        self.support_limit = limit;
    }

    /// Apply missed journal records: per cached scheme, work out which
    /// `(scheme, start)` entries the records can influence and evict
    /// exactly those.
    ///
    /// Per record and scheme, three precision tiers:
    ///
    /// * relation unreachable for the scheme — nothing;
    /// * relation is the (non-re-entered) start — the mutated fact's own
    ///   entry;
    /// * relation interior — walk the scheme backwards from the mutated
    ///   fact ([`step_predecessors`]) to enumerate the start facts that
    ///   can reach it; only their entries go. For **inserts/restores**
    ///   the fact is live and read from the database; for **deletes** the
    ///   record's journalled payload ([`MutationRecord::removed`]) stands
    ///   in for the tombstoned fact — the indexes behind the first reverse
    ///   step live on the predecessor side, so they answer for a dead
    ///   arrival fact exactly as for a live one.
    ///
    /// Soundness against the *current* (post-batch) database: for any
    /// start `s` whose cached entry a batch mutation can influence, there
    /// was a walk `s → f₁ → … → f_j = mutated fact` valid at the
    /// mutation's epoch. Let `f_i` be the walk's first fact that a later
    /// record of the same batch deleted (possibly none). Every fact before
    /// `f_i` is live now, and `f_i`'s own delete record carries its
    /// values — so the reverse walk from *that* record reaches `s` over
    /// live facts. Every record of the gap is replayed (a wrapped journal
    /// falls back to a full clear), so no affected start escapes. A delete
    /// record without payload (not produced by this `reldb`, but the type
    /// permits it) and a reverse frontier exceeding the cap fall back to
    /// wholesale eviction of the scheme.
    ///
    /// The **prefix tier** replays under the same machinery: a cached
    /// prefix is a walk scheme in its own right (its BFS reads exactly
    /// the facts along its own relation sequence), so [`SchemeReach`] of
    /// the prefix-as-scheme scopes its evictions with no generalisation
    /// needed. The **KD tier** is a pure function of the two value
    /// distributions under its scheme, so an entry goes exactly when
    /// `f1` or `f2` lands in the scheme's affected-start set.
    fn replay(&mut self, db: &Database, records: &[MutationRecord]) {
        self.stats.replays += 1;
        if records.is_empty() || self.is_empty() {
            return;
        }
        let schema = db.schema();
        let schemes: Vec<WalkScheme> = {
            let mut seen: Vec<&WalkScheme> = self.facts.keys().collect();
            for s in self.values.keys().chain(self.kd_values.keys()) {
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            seen.into_iter().cloned().collect()
        };
        // Reverse frontiers larger than this fall back to wholesale
        // eviction (a hub fact touches "everything" anyway). The forward
        // support cap is the natural yardstick.
        let reverse_cap = self.support_limit.max(64);
        for scheme in schemes {
            let reach = self
                .scopes
                .entry(scheme.clone())
                .or_insert_with(|| SchemeReach::of(schema, &scheme));
            match affected_starts(db, &scheme, reach, records, reverse_cap) {
                None => {
                    if let Some(inner) = self.facts.remove(&scheme) {
                        self.stats.evicted += inner.len() as u64;
                    }
                    if let Some(inner) = self.values.remove(&scheme) {
                        self.stats.evicted += inner.len() as u64;
                    }
                    if let Some(inner) = self.kd_values.remove(&scheme) {
                        self.stats.evicted += inner.len() as u64;
                    }
                }
                Some(starts) if !starts.is_empty() => {
                    if let Some(inner) = self.facts.get_mut(&scheme) {
                        for f in &starts {
                            if inner.remove(f).is_some() {
                                self.stats.evicted += 1;
                            }
                        }
                        if inner.is_empty() {
                            self.facts.remove(&scheme);
                        }
                    }
                    if let Some(inner) = self.values.get_mut(&scheme) {
                        let before = inner.len();
                        inner.retain(|(_, start), _| starts.binary_search(start).is_err());
                        self.stats.evicted += (before - inner.len()) as u64;
                        if inner.is_empty() {
                            self.values.remove(&scheme);
                        }
                    }
                    if let Some(inner) = self.kd_values.get_mut(&scheme) {
                        let before = inner.len();
                        inner.retain(|(_, f1, f2), _| {
                            starts.binary_search(f1).is_err() && starts.binary_search(f2).is_err()
                        });
                        self.stats.evicted += (before - inner.len()) as u64;
                        if inner.is_empty() {
                            self.kd_values.remove(&scheme);
                        }
                    }
                }
                Some(_) => {}
            }
        }
        // Prefix tier: each cached prefix scopes independently as a scheme
        // of its own (`steps[0]` pins the start relation).
        let prefix_keys: Vec<Vec<Step>> = self.prefixes.keys().cloned().collect();
        for key in prefix_keys {
            let scheme = WalkScheme {
                // PANICS: in bounds — cached prefixes are non-empty.
                start: key[0].source(schema),
                steps: key.clone(),
            };
            let reach = self
                .scopes
                .entry(scheme.clone())
                .or_insert_with(|| SchemeReach::of(schema, &scheme));
            match affected_starts(db, &scheme, reach, records, reverse_cap) {
                None => {
                    if let Some(inner) = self.prefixes.remove(&key) {
                        self.stats.prefix_evicted += inner.len() as u64;
                    }
                }
                Some(starts) if !starts.is_empty() => {
                    if let Some(inner) = self.prefixes.get_mut(&key) {
                        for f in &starts {
                            if inner.remove(f).is_some() {
                                self.stats.prefix_evicted += 1;
                            }
                        }
                        if inner.is_empty() {
                            self.prefixes.remove(&key);
                        }
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Memoised [`destination_distribution_status`] of `(scheme, start)`.
    ///
    /// The cache must be [bound](DistCache::ensure_bound) against `db`
    /// first (debug-asserted).
    pub fn fact_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        start: FactId,
    ) -> CachedFactDist {
        debug_assert!(
            self.current_for(db, self.support_limit),
            "DistCache used without ensure_bound()"
        );
        if let Some(hit) = self.facts.get(scheme).and_then(|m| m.get(&start)) {
            self.stats.hits += 1;
            return hit.clone();
        }
        self.stats.misses += 1;
        let computed = self.assemble_from_prefixes(db, scheme, start).map(Arc::new);
        put(&mut self.facts, scheme, start, computed.clone());
        computed
    }

    /// Compute a fact-level miss by resuming from the **longest cached
    /// prefix frontier**, extending it one [`frontier_step`] at a time and
    /// caching the intermediate frontiers another scheme can resume (all
    /// of them, unless narrowed by
    /// [`DistCache::set_persist_prefixes`]). Bitwise
    /// identical to [`destination_distribution_status`]: both run the
    /// same `frontier_start → frontier_step* → frontier_finish`
    /// composition, and a cached frontier is a pure function of
    /// `(db content, prefix, start, limit)`.
    ///
    /// A cached *negative* prefix settles the status outright — the
    /// from-scratch BFS would fail at that exact step with that exact
    /// status. Schemes diverging before the failing step probe different
    /// keys and are untouched.
    fn assemble_from_prefixes(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        start: FactId,
    ) -> DistStatus<FactDistribution> {
        if scheme.is_empty() || db.fact(start).is_none() {
            // Nothing shareable: the empty prefix is one `frontier_start`,
            // and a dead start fails before any step.
            return destination_distribution_status(db, scheme, start, self.support_limit);
        }
        let mut found: Option<(usize, CachedFrontier)> = None;
        for k in (1..=scheme.len()).rev() {
            if let Some(entry) = self
                .prefixes
                .get(&scheme.steps[..k])
                .and_then(|m| m.get(&start))
            {
                found = Some((k, entry.clone()));
                break;
            }
        }
        let (mut depth, mut state) = match found {
            Some((k, entry)) => {
                self.stats.prefix_hits += 1;
                match entry {
                    DistStatus::Exists(arc) => (k, arc),
                    DistStatus::TooLarge => return DistStatus::TooLarge,
                    DistStatus::Nonexistent => return DistStatus::Nonexistent,
                }
            }
            None => {
                self.stats.prefix_misses += 1;
                match frontier_start(db, start) {
                    DistStatus::Exists(s) => (0, Arc::new(s)),
                    _ => return DistStatus::Nonexistent,
                }
            }
        };
        while depth < scheme.len() {
            let stepped =
                frontier_step(db, &scheme.steps[depth], &state, self.support_limit).map(Arc::new);
            depth += 1;
            if self.should_store(&scheme.steps[..depth]) {
                store_prefix(
                    &mut self.prefixes,
                    &scheme.steps[..depth],
                    start,
                    stepped.clone(),
                );
            }
            match stepped {
                DistStatus::Exists(next) => state = next,
                DistStatus::TooLarge => return DistStatus::TooLarge,
                DistStatus::Nonexistent => return DistStatus::Nonexistent,
            }
        }
        frontier_finish(&state)
    }

    /// Memoised `d_{start,scheme}[attr]` (via the fact-level entry, which
    /// is shared by all attributes of the same scheme).
    pub fn value_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        attr: usize,
        start: FactId,
    ) -> CachedValueDist {
        debug_assert!(
            self.current_for(db, self.support_limit),
            "DistCache used without ensure_bound()"
        );
        if let Some(hit) = self.values.get(scheme).and_then(|m| m.get(&(attr, start))) {
            self.stats.hits += 1;
            return hit.clone();
        }
        // A value-level miss is its own miss (the marginalisation work),
        // on top of whatever the fact-level lookup below records.
        self.stats.misses += 1;
        let computed = marginalise(db, self.fact_distribution(db, scheme, start), attr);
        put(&mut self.values, scheme, (attr, start), computed.clone());
        computed
    }

    /// Read-only snapshot handle for one work item of a sharded section.
    /// Requires the cache to be bound against the database the view will
    /// read (debug-asserted at lookup time).
    pub fn view(&self) -> DistCacheView<'_> {
        DistCacheView {
            base: self,
            delta: DistCacheDelta::default(),
        }
    }

    /// Merge a view's privately computed entries back. Call once per work
    /// item, **in item order** — with that discipline the cache contents
    /// after a sharded section are independent of the shard count (entry
    /// values are pure in their key, so collisions carry equal data and
    /// "first item wins" is well defined).
    pub fn absorb(&mut self, delta: DistCacheDelta) {
        for (scheme, inner) in delta.facts {
            let target = self.facts.entry(scheme).or_default();
            for (k, v) in inner {
                target.entry(k).or_insert(v);
            }
        }
        for (scheme, inner) in delta.values {
            let target = self.values.entry(scheme).or_default();
            for (k, v) in inner {
                target.entry(k).or_insert(v);
            }
        }
        for (prefix, inner) in delta.prefixes {
            let target = self.prefixes.entry(prefix).or_default();
            for (k, v) in inner {
                target.entry(k).or_insert(v);
            }
        }
        for (scheme, inner) in delta.kd {
            let target = self.kd_values.entry(scheme).or_default();
            for (k, v) in inner {
                target.entry(k).or_insert(v);
            }
        }
        self.stats.hits += delta.hits;
        self.stats.misses += delta.misses;
        self.stats.prefix_hits += delta.prefix_hits;
        self.stats.prefix_misses += delta.prefix_misses;
        self.stats.kd_hits += delta.kd_hits;
        self.stats.kd_misses += delta.kd_misses;
    }

    /// Lifetime hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> DistCacheStats {
        self.stats
    }

    /// Number of memoised entries across all four tiers (fact, value,
    /// prefix-frontier, KD).
    pub fn len(&self) -> usize {
        map_len(&self.facts)
            + map_len(&self.values)
            + map_len(&self.prefixes)
            + map_len(&self.kd_values)
    }

    /// `true` when nothing is memoised in any tier.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
            && self.values.is_empty()
            && self.prefixes.is_empty()
            && self.kd_values.is_empty()
    }
}

/// The start facts of `scheme` whose cached entries `records` can
/// influence, sorted and deduplicated — or `None` when scoping is
/// impossible (payload-less delete, reverse frontier over `reverse_cap`)
/// and the caller must evict the scheme wholesale. The per-record logic
/// is documented on [`DistCache::replay`]; this is shared by the
/// fact/value/KD pass and the prefix pass.
fn affected_starts(
    db: &Database,
    scheme: &WalkScheme,
    reach: &SchemeReach,
    records: &[MutationRecord],
    reverse_cap: usize,
) -> Option<Vec<FactId>> {
    // Start facts whose entries the records touch.
    let mut starts: Vec<FactId> = Vec::new();
    for record in records {
        match reach.scope(record.rel) {
            ReachScope::AllStarts => {
                // A delete's reverse walk runs from the journalled
                // payload (the slot is a tombstone); a payload-less
                // delete record cannot be scoped and goes coarse.
                let removed = match record.kind {
                    MutationKind::Insert | MutationKind::Restore => None,
                    MutationKind::Delete => match &record.removed {
                        Some(fact) => Some(fact.as_ref()),
                        None => return None,
                    },
                };
                if record.rel == scheme.start {
                    // The scheme re-enters its start relation:
                    // position 0 is affected for this fact …
                    starts.push(record.fact);
                }
                // … and interior positions via reverse walks.
                if !reverse_reachable_starts(
                    db,
                    scheme,
                    record.fact,
                    removed,
                    reverse_cap,
                    &mut starts,
                ) {
                    return None;
                }
            }
            ReachScope::StartOnly => starts.push(record.fact),
            ReachScope::Unreachable => {}
        }
    }
    // Records and reverse walks routinely rediscover the same start;
    // dedup once so the evictions are O(starts + entries·log(starts)),
    // not O(entries·starts).
    starts.sort_unstable();
    starts.dedup();
    Some(starts)
}

/// Insert a prefix-tier entry, cloning the key only for a prefix's first
/// entry (the `&[Step]` analogue of [`put`]).
fn store_prefix(map: &mut PrefixMap, prefix: &[Step], start: FactId, entry: CachedFrontier) {
    match map.get_mut(prefix) {
        Some(inner) => {
            inner.insert(start, entry);
        }
        None => {
            map.entry(prefix.to_vec()).or_default().insert(start, entry);
        }
    }
}

/// Collect into `out` every start fact of `scheme` from which a walk can
/// reach `fact` at one of the scheme's interior positions, by walking the
/// steps backwards over the database's current content. When `removed` is
/// given, the fact is a tombstone and the first reverse step runs from
/// those recorded values instead of the (dead) slot; everything further
/// back is live. Returns `false` when a reverse frontier exceeds `cap` —
/// the caller then treats the mutation as touching every start.
fn reverse_reachable_starts(
    db: &Database,
    scheme: &WalkScheme,
    fact: FactId,
    removed: Option<&Fact>,
    cap: usize,
    out: &mut Vec<FactId>,
) -> bool {
    let schema = db.schema();
    for j in 1..=scheme.len() {
        if scheme.steps[j - 1].destination(schema) != fact.rel {
            continue;
        }
        // Walk back from position j to position 0.
        let (mut frontier, walked) = match removed {
            None => (vec![fact], 0),
            Some(values) => {
                // First step from the recorded payload, then live facts.
                let mut first = step_predecessors_of(db, &scheme.steps[j - 1], values);
                first.sort_unstable();
                first.dedup();
                if first.len() > cap {
                    return false;
                }
                (first, 1)
            }
        };
        let mut next: Vec<FactId> = Vec::new();
        for step in scheme.steps[..j - walked].iter().rev() {
            if frontier.is_empty() {
                break;
            }
            next.clear();
            for &g in &frontier {
                next.extend(step_predecessors(db, step, g));
            }
            next.sort_unstable();
            next.dedup();
            if next.len() > cap {
                return false;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        out.extend(frontier);
    }
    true
}

/// Marginalise a cached fact-level entry to `attr` ("all destinations
/// null/dead" is exact [`DistStatus::Nonexistent`] knowledge, like an
/// empty walk set).
fn marginalise(db: &Database, facts: CachedFactDist, attr: usize) -> CachedValueDist {
    match facts {
        DistStatus::Exists(fd) => match value_distribution(db, &fd, attr) {
            Some(values) => DistStatus::Exists(Arc::new(values)),
            None => DistStatus::Nonexistent,
        },
        DistStatus::TooLarge => DistStatus::TooLarge,
        DistStatus::Nonexistent => DistStatus::Nonexistent,
    }
}

/// Per-work-item overlay over a shared [`DistCache`] snapshot: reads hit
/// the base first, misses are computed into a private delta. Safe to use
/// from any shard because the base is never written.
pub struct DistCacheView<'a> {
    base: &'a DistCache,
    delta: DistCacheDelta,
}

/// The privately computed entries of one [`DistCacheView`], to be
/// [absorbed](DistCache::absorb) in item order.
#[derive(Debug, Default)]
pub struct DistCacheDelta {
    facts: FactMap,
    values: ValueMap,
    prefixes: PrefixMap,
    kd: KdMap,
    hits: u64,
    misses: u64,
    prefix_hits: u64,
    prefix_misses: u64,
    kd_hits: u64,
    kd_misses: u64,
}

impl DistCacheView<'_> {
    /// [`DistCache::fact_distribution`] against base-then-delta.
    pub fn fact_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        start: FactId,
    ) -> CachedFactDist {
        debug_assert!(
            self.base.current_for(db, self.base.support_limit),
            "DistCacheView used against a database the base was not bound for"
        );
        if let Some(hit) = self
            .base
            .facts
            .get(scheme)
            .and_then(|m| m.get(&start))
            .or_else(|| self.delta.facts.get(scheme).and_then(|m| m.get(&start)))
        {
            self.delta.hits += 1;
            return hit.clone();
        }
        self.delta.misses += 1;
        let computed = self.assemble_from_prefixes(db, scheme, start).map(Arc::new);
        put(&mut self.delta.facts, scheme, start, computed.clone());
        computed
    }

    /// [`DistCache::assemble_from_prefixes`] against base-then-delta:
    /// prefix probes check the shared base first, then the private delta;
    /// newly produced frontiers land in the delta.
    fn assemble_from_prefixes(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        start: FactId,
    ) -> DistStatus<FactDistribution> {
        if scheme.is_empty() || db.fact(start).is_none() {
            return destination_distribution_status(db, scheme, start, self.base.support_limit);
        }
        let mut found: Option<(usize, CachedFrontier)> = None;
        'probe: for k in (1..=scheme.len()).rev() {
            for map in [&self.base.prefixes, &self.delta.prefixes] {
                if let Some(entry) = map.get(&scheme.steps[..k]).and_then(|m| m.get(&start)) {
                    found = Some((k, entry.clone()));
                    break 'probe;
                }
            }
        }
        let (mut depth, mut state) = match found {
            Some((k, entry)) => {
                self.delta.prefix_hits += 1;
                match entry {
                    DistStatus::Exists(arc) => (k, arc),
                    DistStatus::TooLarge => return DistStatus::TooLarge,
                    DistStatus::Nonexistent => return DistStatus::Nonexistent,
                }
            }
            None => {
                self.delta.prefix_misses += 1;
                match frontier_start(db, start) {
                    DistStatus::Exists(s) => (0, Arc::new(s)),
                    _ => return DistStatus::Nonexistent,
                }
            }
        };
        while depth < scheme.len() {
            let stepped = frontier_step(db, &scheme.steps[depth], &state, self.base.support_limit)
                .map(Arc::new);
            depth += 1;
            if self.base.should_store(&scheme.steps[..depth]) {
                store_prefix(
                    &mut self.delta.prefixes,
                    &scheme.steps[..depth],
                    start,
                    stepped.clone(),
                );
            }
            match stepped {
                DistStatus::Exists(next) => state = next,
                DistStatus::TooLarge => return DistStatus::TooLarge,
                DistStatus::Nonexistent => return DistStatus::Nonexistent,
            }
        }
        frontier_finish(&state)
    }

    /// Look up an exact KD value under its directional
    /// `(scheme, attr, f1, f2)` key, base-then-delta. The order of `f1`
    /// and `f2` matters: `kd_exact` iterates `p` then `q` and float
    /// addition does not reassociate.
    pub fn kd_value(
        &mut self,
        scheme: &WalkScheme,
        attr: usize,
        f1: FactId,
        f2: FactId,
    ) -> Option<f64> {
        let key = (attr, f1, f2);
        let hit = self
            .base
            .kd_values
            .get(scheme)
            .and_then(|m| m.get(&key))
            .or_else(|| self.delta.kd.get(scheme).and_then(|m| m.get(&key)))
            .copied();
        if hit.is_some() {
            self.delta.kd_hits += 1;
        } else {
            self.delta.kd_misses += 1;
        }
        hit
    }

    /// Record a freshly computed exact KD value in the private delta
    /// (see [`DistCacheView::kd_value`] for the key discipline).
    pub fn store_kd_value(
        &mut self,
        scheme: &WalkScheme,
        attr: usize,
        f1: FactId,
        f2: FactId,
        y: f64,
    ) {
        put(&mut self.delta.kd, scheme, (attr, f1, f2), y);
    }

    /// [`DistCache::value_distribution`] against base-then-delta.
    pub fn value_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        attr: usize,
        start: FactId,
    ) -> CachedValueDist {
        debug_assert!(
            self.base.current_for(db, self.base.support_limit),
            "DistCacheView used against a database the base was not bound for"
        );
        if let Some(hit) = self
            .base
            .values
            .get(scheme)
            .and_then(|m| m.get(&(attr, start)))
            .or_else(|| {
                self.delta
                    .values
                    .get(scheme)
                    .and_then(|m| m.get(&(attr, start)))
            })
        {
            self.delta.hits += 1;
            return hit.clone();
        }
        // Own value-level miss, on top of the fact-level lookup's count.
        self.delta.misses += 1;
        let computed = marginalise(db, self.fact_distribution(db, scheme, start), attr);
        put(
            &mut self.delta.values,
            scheme,
            (attr, start),
            computed.clone(),
        );
        computed
    }

    /// Finish the view, handing its private entries to the caller for an
    /// in-order [`DistCache::absorb`].
    pub fn into_delta(self) -> DistCacheDelta {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::enumerate_schemes;
    use reldb::movies::movies_database_labeled;
    use reldb::{cascade_delete, restore_journal, Value};

    fn s5(db: &Database) -> WalkScheme {
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| {
                s.display(schema).to_string()
                    == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
            })
            .unwrap()
    }

    #[test]
    fn caches_and_counts_hits() {
        let (db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        let a = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        let misses = cache.stats().misses;
        let b = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        let (a, b) = (a.exists().unwrap(), b.exists().unwrap());
        assert!(Arc::ptr_eq(a, b), "second lookup must be the same Arc");
        assert_eq!(cache.stats().misses, misses, "no new miss on a hit");
        assert!(cache.stats().hits >= 1);
        // A second attribute of the same scheme reuses the fact-level BFS.
        let fact_entries = map_len(&cache.facts);
        cache.value_distribution(&db, &scheme, 3, ids["a1"]);
        assert_eq!(
            map_len(&cache.facts),
            fact_entries,
            "fact BFS shared across attrs"
        );
    }

    #[test]
    fn negative_results_are_cached() {
        let (db, ids) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let s1 = enumerate_schemes(schema, actors, 1, false)
            .into_iter()
            .find(|s| s.display(schema).to_string() == "ACTORS[aid]—COLLABORATIONS[actor1]")
            .unwrap();
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        // a3 has no actor1 walks: a (cached) exact negative entry.
        assert!(cache
            .fact_distribution(&db, &s1, ids["a3"])
            .is_nonexistent());
        let misses = cache.stats().misses;
        assert!(cache
            .fact_distribution(&db, &s1, ids["a3"])
            .is_nonexistent());
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn mutation_epoch_invalidates() {
        let (mut db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        let before = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        let before = before.exists().unwrap().clone();
        assert_eq!(before.support.len(), 2);

        // Delete m6 (+ its collaboration c4): both mutations hit s5's
        // interior relations, and the reverse walk from c4's journalled
        // payload reaches exactly a1 — whose budget marginal collapses and
        // must not be served stale.
        let journal = cascade_delete(&mut db, ids["m6"], false).unwrap();
        cache.ensure_bound(&db, 256);
        assert!(
            cache.is_empty(),
            "an interior mutation must evict the affected scheme"
        );
        assert_eq!(cache.stats().replays, 1, "fine-grained path, not a clear");
        assert_eq!(cache.stats().invalidations, 0);
        assert!(cache.stats().evicted >= 2, "fact + value entries evicted");
        let during = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        assert_eq!(during.exists().unwrap().support.len(), 1);

        // Restore: a new epoch again; the original distribution comes back.
        restore_journal(&mut db, &journal).unwrap();
        cache.ensure_bound(&db, 256);
        let after = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        assert_eq!(after.exists().unwrap().support, before.support);
    }

    #[test]
    fn replay_keeps_unreachable_schemes_warm() {
        let (mut db, ids) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let s5 = s5(&db);
        // A length-3 scheme reaching STUDIOS: …—MOVIES[mid], MOVIES[studio]—STUDIOS[sid].
        let studios = schema.relation_id("STUDIOS").unwrap();
        let to_studios = enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| s.len() == 3 && s.end(schema) == studios)
            .unwrap();
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        let s5_arc = cache.value_distribution(&db, &s5, 4, ids["a1"]);
        cache.fact_distribution(&db, &to_studios, ids["a1"]);
        let len_before = cache.len();

        // Insert a brand-new studio. STUDIOS is interior to the studio
        // scheme, but the new fact is referenced by no movie: the reverse
        // walk finds no start that can reach it, so *nothing* is evicted —
        // not even the studio scheme's entries.
        db.insert_into("STUDIOS", vec!["s99".into(), "A24".into(), "NY".into()])
            .unwrap();
        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().replays, 1);
        assert_eq!(cache.stats().evicted, 0, "nobody reaches the new studio");
        assert_eq!(cache.len(), len_before);
        // The s5 entry survived — same Arc, no recompute.
        let misses = cache.stats().misses;
        let again = cache.value_distribution(&db, &s5, 4, ids["a1"]);
        assert_eq!(cache.stats().misses, misses, "must be a warm hit");
        assert!(Arc::ptr_eq(
            s5_arc.exists().unwrap(),
            again.exists().unwrap()
        ));

        // A *delete* in an interior relation is scoped the same way, via
        // the record's journalled payload: the loose studio was reachable
        // from no start, so deleting it evicts nothing either — both
        // schemes stay fully warm.
        let s99 = db.lookup_key(studios, &["s99".into()]).unwrap();
        db.delete(s99).unwrap();
        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().invalidations, 0);
        assert_eq!(cache.stats().evicted, 0, "nobody reached the studio");
        let misses = cache.stats().misses;
        cache.value_distribution(&db, &s5, 4, ids["a1"]);
        cache.fact_distribution(&db, &to_studios, ids["a1"]);
        assert_eq!(cache.stats().misses, misses, "both schemes still warm");
    }

    #[test]
    fn replay_scopes_interior_deletes_by_reverse_reachability() {
        // Deleting collaboration c3 (actor1 = a4) can only change walk
        // distributions of starts that reached it — the reverse walk runs
        // from the delete record's journalled payload, since the slot is a
        // tombstone by replay time. a4's entry goes, a1's stays warm.
        let (mut db, ids) = movies_database_labeled();
        let s5 = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        let a1_before = cache.fact_distribution(&db, &s5, ids["a1"]);
        let a4_before = cache.fact_distribution(&db, &s5, ids["a4"]);
        assert_eq!(a4_before.exists().unwrap().support.len(), 2, "m4 and m5");

        db.delete(ids["c3"]).unwrap();
        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().invalidations, 0, "replay, not a clear");
        assert_eq!(cache.stats().replays, 1);
        assert_eq!(cache.stats().evicted, 1, "exactly a4's fact entry");
        let misses = cache.stats().misses;
        let a1_after = cache.fact_distribution(&db, &s5, ids["a1"]);
        assert_eq!(cache.stats().misses, misses, "a1 must stay warm");
        assert!(Arc::ptr_eq(
            a1_before.exists().unwrap(),
            a1_after.exists().unwrap()
        ));
        // a4 recomputes — m5 is gone from its support.
        let a4 = cache.fact_distribution(&db, &s5, ids["a4"]);
        assert_eq!(cache.stats().misses, misses + 1);
        let support = &a4.exists().unwrap().support;
        assert_eq!(support.len(), 1);
        assert_eq!(support[0].0, ids["m4"]);
    }

    #[test]
    fn interleaved_insert_delete_restore_stays_scoped() {
        // A batch that mixes all three mutation kinds between two binds:
        // every record is replayed fine-grained (no full clear), only the
        // FK-reachable start entries go, and the recomputed values match
        // the database's final state.
        let (mut db, ids) = movies_database_labeled();
        let s5 = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        let a1_arc = cache.fact_distribution(&db, &s5, ids["a1"]);
        cache.fact_distribution(&db, &s5, ids["a4"]);
        let a4_supp_before = cache
            .fact_distribution(&db, &s5, ids["a4"])
            .exists()
            .unwrap()
            .support
            .clone();

        // One gap, three kinds: delete c3 (touches a4), restore it
        // (touches a4 again), insert a brand-new collaboration for a4,
        // and a delete+restore cycle of m6's cascade group (touches a1
        // through the deleted collaboration's payload and the restores).
        let c3_fact = db.delete(ids["c3"]).unwrap();
        db.restore(ids["c3"], c3_fact).unwrap();
        db.insert_into(
            "COLLABORATIONS",
            vec!["a04".into(), "a03".into(), "m01".into()],
        )
        .unwrap();
        let j_m6 = cascade_delete(&mut db, ids["m6"], false).unwrap();
        restore_journal(&mut db, &j_m6).unwrap();

        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().invalidations, 0, "no wholesale clear");
        assert_eq!(cache.stats().replays, 1);
        assert!(cache.stats().evicted >= 2, "a1 and a4 entries evicted");
        // Both recompute against the final state: a4 gained m1, a1 is
        // back to its original distribution (delete+restore cancelled).
        let a4 = cache.fact_distribution(&db, &s5, ids["a4"]);
        let a4_supp = &a4.exists().unwrap().support;
        assert_eq!(a4_supp.len(), a4_supp_before.len() + 1);
        assert!(a4_supp.iter().any(|(f, _)| *f == ids["m1"]));
        let a1 = cache.fact_distribution(&db, &s5, ids["a1"]);
        assert_eq!(
            a1.exists().unwrap().support,
            a1_arc.exists().unwrap().support,
            "a1's distribution must round-trip through the delete/restore"
        );
    }

    #[test]
    fn replay_scopes_interior_inserts_by_reverse_reachability() {
        let (mut db, ids) = movies_database_labeled();
        let s5 = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        let a1_before = cache.fact_distribution(&db, &s5, ids["a1"]);
        cache.fact_distribution(&db, &s5, ids["a4"]);

        // A new collaboration with actor1 = a4: walking s5 backwards from
        // it reaches exactly a4 — a4's entry goes, a1's survives (its
        // walks pass only through actor1 = a1 collaborations).
        db.insert_into(
            "COLLABORATIONS",
            vec!["a04".into(), "a03".into(), "m01".into()],
        )
        .unwrap();
        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().invalidations, 0);
        assert!(cache.stats().evicted >= 1, "a4's entry must be evicted");
        let misses = cache.stats().misses;
        let a1_after = cache.fact_distribution(&db, &s5, ids["a1"]);
        assert_eq!(cache.stats().misses, misses, "a1 must stay warm");
        assert!(Arc::ptr_eq(
            a1_before.exists().unwrap(),
            a1_after.exists().unwrap()
        ));
        // a4 recomputes — and now includes m1 as a destination.
        let a4 = cache.fact_distribution(&db, &s5, ids["a4"]);
        assert_eq!(cache.stats().misses, misses + 1);
        assert!(a4
            .exists()
            .unwrap()
            .support
            .iter()
            .any(|(f, _)| *f == ids["m1"]));
    }

    #[test]
    fn replay_scopes_start_relation_mutations_to_the_mutated_fact() {
        let (mut db, ids) = movies_database_labeled();
        let s5 = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        cache.value_distribution(&db, &s5, 4, ids["a1"]);

        // A new actor with no collaborations: ACTORS is s5's start relation
        // and never re-entered, so only the new fact's (nonexistent) entry
        // could be affected — a1's entries stay warm.
        let loner = db
            .insert_into("ACTORS", vec!["a99".into(), "Riva".into(), Value::Int(5)])
            .unwrap();
        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().invalidations, 0);
        let misses = cache.stats().misses;
        cache.value_distribution(&db, &s5, 4, ids["a1"]);
        assert_eq!(cache.stats().misses, misses, "a1 must stay warm");

        // Cache the loner's entry (exactly Nonexistent: no walks), then
        // delete the loner: replay must evict precisely that entry …
        assert!(cache.fact_distribution(&db, &s5, loner).is_nonexistent());
        let evicted_before = cache.stats().evicted;
        db.delete(loner).unwrap();
        cache.ensure_bound(&db, 256);
        assert_eq!(cache.stats().evicted, evicted_before + 1);
        // … while a1 is still served from the cache.
        let misses = cache.stats().misses;
        cache.value_distribution(&db, &s5, 4, ids["a1"]);
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn wrapped_journal_falls_back_to_a_full_clear() {
        let (mut db, ids) = movies_database_labeled();
        let s5 = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        cache.value_distribution(&db, &s5, 4, ids["a1"]);
        assert!(!cache.is_empty());

        // More mutations than the ring holds: the records the cache missed
        // are gone, so ensure_bound must drop everything.
        db.set_journal_capacity(2);
        for i in 0..3 {
            db.insert_into(
                "STUDIOS",
                vec![format!("sx{i}").into(), "X".into(), "LA".into()],
            )
            .unwrap();
        }
        cache.ensure_bound(&db, 256);
        assert!(cache.is_empty(), "wrap must clear the cache");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.stats().replays, 0);
    }

    #[test]
    fn clone_lineage_and_limit_changes_invalidate() {
        let (db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        assert!(!cache.is_empty());
        // Same content, but a clone is a different lineage.
        let clone = db.clone();
        cache.ensure_bound(&clone, 256);
        assert!(cache.is_empty());
        cache.value_distribution(&clone, &scheme, 4, ids["a1"]);
        // A different support limit changes what "over the cap" means.
        cache.ensure_bound(&clone, 1);
        assert!(cache.is_empty());
        assert_eq!(
            cache.fact_distribution(&clone, &scheme, ids["a1"]),
            DistStatus::TooLarge
        );
    }

    #[test]
    fn prefix_assembled_distributions_match_direct_bfs_bitwise() {
        // Evaluating every scheme in plan-DFS order must produce, for every
        // start, byte-identical distributions to the independent
        // from-scratch BFS — and actually reuse parent frontiers doing it.
        let (db, _) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let schemes = enumerate_schemes(schema, actors, 3, false);
        let plan = crate::plan::SchemePlan::build(actors, &schemes);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        for &start in &db.fact_ids(actors) {
            for idx in plan.dfs() {
                let scheme = plan.node(idx).prefix();
                let cached = cache.fact_distribution(&db, scheme, start);
                let direct = destination_distribution_status(&db, scheme, start, 256);
                match (cached, direct) {
                    (DistStatus::Exists(c), DistStatus::Exists(d)) => {
                        assert_eq!(c.support.len(), d.support.len());
                        for ((cf, cp), (df, dp)) in c.support.iter().zip(d.support.iter()) {
                            assert_eq!(cf, df, "{scheme:?} from {start}: support order");
                            assert_eq!(
                                cp.to_bits(),
                                dp.to_bits(),
                                "{scheme:?} from {start}: probability bits"
                            );
                        }
                    }
                    (c, d) => assert_eq!(c.is_too_large(), d.is_too_large()),
                }
            }
        }
        let stats = cache.stats();
        assert!(
            stats.prefix_hits > 0,
            "plan-order evaluation must resume cached parent frontiers"
        );
        // Each non-trivial scheme is one step past an already-evaluated
        // parent: after the trivial root, every deeper scheme's assembly
        // should hit, never re-run the full BFS.
        assert!(
            stats.prefix_hits >= stats.prefix_misses,
            "hits {} vs misses {}",
            stats.prefix_hits,
            stats.prefix_misses
        );
    }

    #[test]
    fn too_large_prefix_does_not_poison_siblings() {
        // Regression (tri-state `DistStatus` through the prefix tier): a
        // `TooLarge` frontier after prefix P must fail exactly the schemes
        // routed through P — as TooLarge, never Nonexistent — while sibling
        // schemes diverging before the failing step stay fully usable.
        use crate::schemes::Step;
        use reldb::{SchemaBuilder, ValueType};
        let mut b = SchemaBuilder::new();
        b.relation("A").attr("aid", ValueType::Text).key(&["aid"]);
        b.relation("M")
            .attr("mid", ValueType::Text)
            .attr("v", ValueType::Int)
            .key(&["mid"]);
        b.relation("J1")
            .attr("jid", ValueType::Text)
            .attr("a_ref", ValueType::Text)
            .attr("m_ref", ValueType::Text)
            .key(&["jid"]);
        b.relation("J2")
            .attr("kid", ValueType::Text)
            .attr("a_ref", ValueType::Text)
            .attr("m_ref", ValueType::Text)
            .key(&["kid"]);
        b.foreign_key("J1", &["a_ref"], "A");
        b.foreign_key("J1", &["m_ref"], "M");
        b.foreign_key("J2", &["a_ref"], "A");
        b.foreign_key("J2", &["m_ref"], "M");
        let mut db = Database::new(b.build().unwrap());
        let a1 = db.insert_into("A", vec!["a1".into()]).unwrap();
        for i in 0..2 {
            db.insert_into("M", vec![format!("m{i}").into(), reldb::Value::Int(i)])
                .unwrap();
        }
        // 5 J1 rows: the backward A—J1 frontier blows a limit of 3.
        for i in 0..5 {
            db.insert_into(
                "J1",
                vec![
                    format!("j{i}").into(),
                    "a1".into(),
                    format!("m{}", i % 2).into(),
                ],
            )
            .unwrap();
        }
        // 2 J2 rows: the sibling branch stays under the limit.
        for i in 0..2 {
            db.insert_into(
                "J2",
                vec![format!("k{i}").into(), "a1".into(), format!("m{i}").into()],
            )
            .unwrap();
        }
        let schema = db.schema();
        let rel_a = schema.relation_id("A").unwrap();
        let rel_j1 = schema.relation_id("J1").unwrap();
        let rel_m = schema.relation_id("M").unwrap();
        let back = |from_rel| {
            let fk = *schema
                .fks_to(rel_a)
                .iter()
                .find(|&&fk| schema.foreign_key(fk).from_rel == from_rel)
                .unwrap();
            Step { fk, forward: false }
        };
        let to_m = |from_rel| {
            let fk = *schema
                .fks_to(rel_m)
                .iter()
                .find(|&&fk| schema.foreign_key(fk).from_rel == from_rel)
                .unwrap();
            Step { fk, forward: true }
        };
        let rel_j2 = schema.relation_id("J2").unwrap();
        let via_j1 = WalkScheme {
            start: rel_a,
            steps: vec![back(rel_j1), to_m(rel_j1)],
        };
        let via_j1_short = WalkScheme {
            start: rel_a,
            steps: vec![back(rel_j1)],
        };
        let via_j2 = WalkScheme {
            start: rel_a,
            steps: vec![back(rel_j2), to_m(rel_j2)],
        };

        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 3);
        // The short scheme fails TooLarge and plants a negative prefix.
        assert!(cache
            .fact_distribution(&db, &via_j1_short, a1)
            .is_too_large());
        // The longer scheme through the same prefix reuses the negative
        // entry (a prefix hit, no fresh BFS) and fails the same way —
        // TooLarge, routing to sampling, not Nonexistent.
        let hits = cache.stats().prefix_hits;
        let status = cache.fact_distribution(&db, &via_j1, a1);
        assert!(status.is_too_large(), "must stay tri-state: {status:?}");
        assert!(!status.is_nonexistent());
        assert_eq!(cache.stats().prefix_hits, hits + 1, "negative entry reused");
        // The sibling diverging at step 1 probes a different prefix key:
        // fully usable, with a 2-fact support.
        let sibling = cache.fact_distribution(&db, &via_j2, a1);
        assert_eq!(sibling.exists().unwrap().support.len(), 2);
        // Every status equals the direct BFS's.
        for scheme in [&via_j1_short, &via_j1, &via_j2] {
            let direct = destination_distribution_status(&db, scheme, a1, 3);
            let cached = cache.fact_distribution(&db, scheme, a1);
            assert_eq!(cached.is_too_large(), direct.is_too_large());
            assert_eq!(cached.is_nonexistent(), direct.is_nonexistent());
        }
    }

    #[test]
    fn kd_tier_serves_and_evicts_directionally() {
        use crate::kd::{kd, kd_cached, KdOptions};
        use crate::kernel::KernelAssignment;
        use stembed_runtime::rng::DetRng;
        let (mut db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let kernels = KernelAssignment::defaults(&db);
        let opts = KdOptions::default();
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, opts.exact_limit);

        let solve = |cache: &mut DistCache, db: &Database, f1: FactId, f2: FactId| {
            let mut view = cache.view();
            let mut rng = DetRng::seed_from_u64(99);
            let q2 = view.value_distribution(db, &scheme, 4, f2);
            let y = kd_cached(
                db, &kernels, &scheme, 4, f1, f2, &q2, &opts, &mut rng, &mut view,
            );
            cache.absorb(view.into_delta());
            y.unwrap()
        };
        let first = solve(&mut cache, &db, ids["a1"], ids["a4"]);
        assert_eq!(cache.stats().kd_misses, 1);
        assert_eq!(cache.stats().kd_hits, 0);
        // Second identical query: served from the KD tier, same bits, and
        // equal to the uncached reference.
        let second = solve(&mut cache, &db, ids["a1"], ids["a4"]);
        assert_eq!(cache.stats().kd_hits, 1);
        assert_eq!(first.to_bits(), second.to_bits());
        let mut rng = DetRng::seed_from_u64(1);
        let reference = kd(
            &db, &kernels, &scheme, 4, ids["a1"], ids["a4"], &opts, &mut rng,
        )
        .unwrap();
        assert_eq!(first.to_bits(), reference.to_bits());
        // The key is directional: the swapped pair is its own entry (a
        // miss), even though exact KD is symmetric in value.
        solve(&mut cache, &db, ids["a4"], ids["a1"]);
        assert_eq!(cache.stats().kd_misses, 2);

        // Replay eviction: a mutation reaching a4 must drop every KD entry
        // with a4 on either side, while recomputation agrees with the new
        // database state.
        db.insert_into(
            "COLLABORATIONS",
            vec!["a04".into(), "a03".into(), "m01".into()],
        )
        .unwrap();
        cache.ensure_bound(&db, opts.exact_limit);
        let kd_misses = cache.stats().kd_misses;
        let after = solve(&mut cache, &db, ids["a1"], ids["a4"]);
        assert_eq!(cache.stats().kd_misses, kd_misses + 1, "entry must be gone");
        let mut rng = DetRng::seed_from_u64(1);
        let reference = kd(
            &db, &kernels, &scheme, 4, ids["a1"], ids["a4"], &opts, &mut rng,
        )
        .unwrap();
        assert_eq!(after.to_bits(), reference.to_bits());
        assert_ne!(after.to_bits(), first.to_bits(), "a4 gained a destination");
    }

    #[test]
    fn views_overlay_and_absorb_in_order() {
        let (db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.ensure_bound(&db, 256);
        cache.value_distribution(&db, &scheme, 4, ids["a1"]);

        let deltas: Vec<DistCacheDelta> = (0..2)
            .map(|i| {
                let mut view = cache.view();
                // Base hit for a1, private miss for a4.
                assert!(view
                    .value_distribution(&db, &scheme, 4, ids["a1"])
                    .exists()
                    .is_some());
                view.value_distribution(&db, &scheme, 4 - i, ids["a4"]);
                view.into_delta()
            })
            .collect();
        let before = cache.len();
        for d in deltas {
            cache.absorb(d);
        }
        assert!(cache.len() > before);
        // The absorbed entries now serve as base hits.
        let misses = cache.stats().misses;
        cache.value_distribution(&db, &scheme, 4, ids["a4"]);
        assert_eq!(cache.stats().misses, misses);
    }
}
