//! Walk-distribution cache for the KD/dynamic stack.
//!
//! The dynamic phase (paper §V-E) prices one equation `cᵀ ϕ(f_new) = y`
//! per `(f_old, s, A)` triple, and every `y` is a `KD` value whose exact
//! path needs two destination distributions. Uncached, `solve_new_vector`
//! used to re-run the **same** probability-propagating BFS
//! ([`destination_distribution`]) once per equation for the `f_new` side
//! (`per_target × targets` times per insert) and once per attribute for
//! targets sharing a scheme. Both are pure functions of
//! `(database, scheme, start)` — this module memoises them.
//!
//! ## Keys and invalidation
//!
//! * [`FactDistribution`] is keyed by `(scheme, start)`;
//! * [`ValueDistribution`] by `(scheme, attr, start)`;
//! * both are valid only for one `(db_id, epoch, support_limit)` triple.
//!
//! `reldb::Database` carries a **mutation epoch** (bumped by every insert,
//! restore, and delete) and a process-unique **lineage id** (fresh per
//! constructor *and per clone*). [`DistCache::revalidate`] compares the
//! cache's binding against the database about to be read and clears
//! everything on any mismatch — so inserts/deletes invalidate correctly,
//! and a cache can never serve entries computed against a different
//! database object that happens to share an epoch number.
//!
//! ## Determinism contract
//!
//! Cached and recomputed lookups are interchangeable **bit for bit**: the
//! distributions are deterministic in their key (supports are canonically
//! ordered — see [`FactDistribution::support`]), and no RNG is ever
//! consumed on the exact path, so a cache hit cannot shift any random
//! stream. Sharded callers take a read-only [`DistCache::view`] per work
//! item, record misses in a private [`DistCacheDelta`], and
//! [`DistCache::absorb`] the deltas **in item order** after the parallel
//! section — the shard count decides only *when* a miss is computed, never
//! *what* any caller observes.

use crate::schemes::WalkScheme;
use crate::walkdist::{
    destination_distribution_status, value_distribution, DistStatus, FactDistribution,
    ValueDistribution,
};
use reldb::{Database, FactId};
use std::collections::HashMap;
use std::sync::Arc;

/// Cached fact-level entry: the distribution behind an [`Arc`], or the
/// exact reason there is none ([`DistStatus::TooLarge`] /
/// [`DistStatus::Nonexistent`] are cached as negative entries).
pub type CachedFactDist = DistStatus<Arc<FactDistribution>>;
/// Cached value-level entry (see [`CachedFactDist`]).
pub type CachedValueDist = DistStatus<Arc<ValueDistribution>>;

// Two-level maps, outer-keyed by scheme: lookups hash the (cheap) borrowed
// scheme once and the inner key is `Copy` — the flat
// `(WalkScheme, FactId)`-keyed alternative would clone the scheme's step
// vector on every probe just to build a key.
type FactMap = HashMap<WalkScheme, HashMap<FactId, CachedFactDist>>;
type ValueMap = HashMap<WalkScheme, HashMap<(usize, FactId), CachedValueDist>>;

fn map_len<K, K2, V>(map: &HashMap<K, HashMap<K2, V>>) -> usize {
    map.values().map(|inner| inner.len()).sum()
}

fn put<K2: std::hash::Hash + Eq, V>(
    map: &mut HashMap<WalkScheme, HashMap<K2, V>>,
    scheme: &WalkScheme,
    key: K2,
    value: V,
) {
    match map.get_mut(scheme) {
        Some(inner) => {
            inner.insert(key, value);
        }
        None => {
            // Only the first entry of a scheme pays for cloning it.
            map.entry(scheme.clone()).or_default().insert(key, value);
        }
    }
}

/// Hit/miss counters of a [`DistCache`] (diagnostics and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (including negative entries).
    pub hits: u64,
    /// Lookups that had to compute (and then stored) their result.
    pub misses: u64,
    /// Times the whole cache was dropped because the database moved on
    /// (epoch or lineage change) or the support limit changed.
    pub invalidations: u64,
}

/// Memo table for exact walk distributions, bound to one
/// `(db_id, epoch, support_limit)` snapshot at a time.
///
/// Negative results are cached too — with their exact reason: a
/// [`DistStatus::Nonexistent`] entry lets `KD` skip Monte-Carlo sampling
/// entirely (the value is exactly `None`), while [`DistStatus::TooLarge`]
/// routes to the sampling fallback. Both are as expensive to rediscover as
/// a real distribution.
#[derive(Debug, Clone, Default)]
pub struct DistCache {
    /// Lineage of the database the entries were computed against
    /// (`0` = not yet bound).
    db_id: u64,
    epoch: u64,
    support_limit: usize,
    facts: FactMap,
    values: ValueMap,
    stats: CacheStats,
}

impl DistCache {
    /// Empty, unbound cache. The first [`DistCache::revalidate`] binds it.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` when the cache is bound to `db`'s current state and `limit`.
    fn current_for(&self, db: &Database, limit: usize) -> bool {
        self.db_id == db.db_id() && self.epoch == db.epoch() && self.support_limit == limit
    }

    /// Bind the cache to `db`'s current `(db_id, epoch)` under the exact
    /// support cap `limit`, dropping every entry if any of the three
    /// changed. Call before a batch of lookups; a no-op while the database
    /// is unmutated.
    pub fn revalidate(&mut self, db: &Database, limit: usize) {
        if self.current_for(db, limit) {
            return;
        }
        if !(self.facts.is_empty() && self.values.is_empty()) {
            self.stats.invalidations += 1;
            self.facts.clear();
            self.values.clear();
        }
        self.db_id = db.db_id();
        self.epoch = db.epoch();
        self.support_limit = limit;
    }

    /// Memoised [`destination_distribution_status`] of `(scheme, start)`.
    ///
    /// The cache must be [revalidated](DistCache::revalidate) against `db`
    /// first (debug-asserted).
    pub fn fact_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        start: FactId,
    ) -> CachedFactDist {
        debug_assert!(
            self.current_for(db, self.support_limit),
            "DistCache used without revalidate()"
        );
        if let Some(hit) = self.facts.get(scheme).and_then(|m| m.get(&start)) {
            self.stats.hits += 1;
            return hit.clone();
        }
        self.stats.misses += 1;
        let computed =
            destination_distribution_status(db, scheme, start, self.support_limit).map(Arc::new);
        put(&mut self.facts, scheme, start, computed.clone());
        computed
    }

    /// Memoised `d_{start,scheme}[attr]` (via the fact-level entry, which
    /// is shared by all attributes of the same scheme).
    pub fn value_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        attr: usize,
        start: FactId,
    ) -> CachedValueDist {
        debug_assert!(
            self.current_for(db, self.support_limit),
            "DistCache used without revalidate()"
        );
        if let Some(hit) = self.values.get(scheme).and_then(|m| m.get(&(attr, start))) {
            self.stats.hits += 1;
            return hit.clone();
        }
        // A value-level miss is its own miss (the marginalisation work),
        // on top of whatever the fact-level lookup below records.
        self.stats.misses += 1;
        let computed = marginalise(db, self.fact_distribution(db, scheme, start), attr);
        put(&mut self.values, scheme, (attr, start), computed.clone());
        computed
    }

    /// Read-only snapshot handle for one work item of a sharded section.
    /// Requires the cache to be revalidated against the database the view
    /// will read (debug-asserted at lookup time).
    pub fn view(&self) -> DistCacheView<'_> {
        DistCacheView {
            base: self,
            delta: DistCacheDelta::default(),
        }
    }

    /// Merge a view's privately computed entries back. Call once per work
    /// item, **in item order** — with that discipline the cache contents
    /// after a sharded section are independent of the shard count (entry
    /// values are pure in their key, so collisions carry equal data and
    /// "first item wins" is well defined).
    pub fn absorb(&mut self, delta: DistCacheDelta) {
        for (scheme, inner) in delta.facts {
            let target = self.facts.entry(scheme).or_default();
            for (k, v) in inner {
                target.entry(k).or_insert(v);
            }
        }
        for (scheme, inner) in delta.values {
            let target = self.values.entry(scheme).or_default();
            for (k, v) in inner {
                target.entry(k).or_insert(v);
            }
        }
        self.stats.hits += delta.hits;
        self.stats.misses += delta.misses;
    }

    /// Lifetime hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of memoised entries (fact-level + value-level).
    pub fn len(&self) -> usize {
        map_len(&self.facts) + map_len(&self.values)
    }

    /// `true` when nothing is memoised.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty() && self.values.is_empty()
    }
}

/// Marginalise a cached fact-level entry to `attr` ("all destinations
/// null/dead" is exact [`DistStatus::Nonexistent`] knowledge, like an
/// empty walk set).
fn marginalise(db: &Database, facts: CachedFactDist, attr: usize) -> CachedValueDist {
    match facts {
        DistStatus::Exists(fd) => match value_distribution(db, &fd, attr) {
            Some(values) => DistStatus::Exists(Arc::new(values)),
            None => DistStatus::Nonexistent,
        },
        DistStatus::TooLarge => DistStatus::TooLarge,
        DistStatus::Nonexistent => DistStatus::Nonexistent,
    }
}

/// Per-work-item overlay over a shared [`DistCache`] snapshot: reads hit
/// the base first, misses are computed into a private delta. Safe to use
/// from any shard because the base is never written.
pub struct DistCacheView<'a> {
    base: &'a DistCache,
    delta: DistCacheDelta,
}

/// The privately computed entries of one [`DistCacheView`], to be
/// [absorbed](DistCache::absorb) in item order.
#[derive(Debug, Default)]
pub struct DistCacheDelta {
    facts: FactMap,
    values: ValueMap,
    hits: u64,
    misses: u64,
}

impl DistCacheView<'_> {
    /// [`DistCache::fact_distribution`] against base-then-delta.
    pub fn fact_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        start: FactId,
    ) -> CachedFactDist {
        debug_assert!(
            self.base.current_for(db, self.base.support_limit),
            "DistCacheView used against a database the base was not revalidated for"
        );
        if let Some(hit) = self
            .base
            .facts
            .get(scheme)
            .and_then(|m| m.get(&start))
            .or_else(|| self.delta.facts.get(scheme).and_then(|m| m.get(&start)))
        {
            self.delta.hits += 1;
            return hit.clone();
        }
        self.delta.misses += 1;
        let computed = destination_distribution_status(db, scheme, start, self.base.support_limit)
            .map(Arc::new);
        put(&mut self.delta.facts, scheme, start, computed.clone());
        computed
    }

    /// [`DistCache::value_distribution`] against base-then-delta.
    pub fn value_distribution(
        &mut self,
        db: &Database,
        scheme: &WalkScheme,
        attr: usize,
        start: FactId,
    ) -> CachedValueDist {
        debug_assert!(
            self.base.current_for(db, self.base.support_limit),
            "DistCacheView used against a database the base was not revalidated for"
        );
        if let Some(hit) = self
            .base
            .values
            .get(scheme)
            .and_then(|m| m.get(&(attr, start)))
            .or_else(|| {
                self.delta
                    .values
                    .get(scheme)
                    .and_then(|m| m.get(&(attr, start)))
            })
        {
            self.delta.hits += 1;
            return hit.clone();
        }
        // Own value-level miss, on top of the fact-level lookup's count.
        self.delta.misses += 1;
        let computed = marginalise(db, self.fact_distribution(db, scheme, start), attr);
        put(
            &mut self.delta.values,
            scheme,
            (attr, start),
            computed.clone(),
        );
        computed
    }

    /// Finish the view, handing its private entries to the caller for an
    /// in-order [`DistCache::absorb`].
    pub fn into_delta(self) -> DistCacheDelta {
        self.delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::enumerate_schemes;
    use reldb::movies::movies_database_labeled;
    use reldb::{cascade_delete, restore_journal};

    fn s5(db: &Database) -> WalkScheme {
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| {
                s.display(schema).to_string()
                    == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
            })
            .unwrap()
    }

    #[test]
    fn caches_and_counts_hits() {
        let (db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.revalidate(&db, 256);
        let a = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        let misses = cache.stats().misses;
        let b = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        let (a, b) = (a.exists().unwrap(), b.exists().unwrap());
        assert!(Arc::ptr_eq(a, b), "second lookup must be the same Arc");
        assert_eq!(cache.stats().misses, misses, "no new miss on a hit");
        assert!(cache.stats().hits >= 1);
        // A second attribute of the same scheme reuses the fact-level BFS.
        let fact_entries = map_len(&cache.facts);
        cache.value_distribution(&db, &scheme, 3, ids["a1"]);
        assert_eq!(
            map_len(&cache.facts),
            fact_entries,
            "fact BFS shared across attrs"
        );
    }

    #[test]
    fn negative_results_are_cached() {
        let (db, ids) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let s1 = enumerate_schemes(schema, actors, 1, false)
            .into_iter()
            .find(|s| s.display(schema).to_string() == "ACTORS[aid]—COLLABORATIONS[actor1]")
            .unwrap();
        let mut cache = DistCache::new();
        cache.revalidate(&db, 256);
        // a3 has no actor1 walks: a (cached) exact negative entry.
        assert!(cache
            .fact_distribution(&db, &s1, ids["a3"])
            .is_nonexistent());
        let misses = cache.stats().misses;
        assert!(cache
            .fact_distribution(&db, &s1, ids["a3"])
            .is_nonexistent());
        assert_eq!(cache.stats().misses, misses);
    }

    #[test]
    fn mutation_epoch_invalidates() {
        let (mut db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.revalidate(&db, 256);
        let before = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        let before = before.exists().unwrap().clone();
        assert_eq!(before.support.len(), 2);

        // Delete m6 (+ its collaboration): a1's budget marginal collapses.
        let journal = cascade_delete(&mut db, ids["m6"], false).unwrap();
        cache.revalidate(&db, 256);
        assert!(cache.is_empty(), "epoch change must clear the cache");
        assert_eq!(cache.stats().invalidations, 1);
        let during = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        assert_eq!(during.exists().unwrap().support.len(), 1);

        // Restore: a new epoch again; the original distribution comes back.
        restore_journal(&mut db, &journal).unwrap();
        cache.revalidate(&db, 256);
        let after = cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        assert_eq!(after.exists().unwrap().support, before.support);
    }

    #[test]
    fn clone_lineage_and_limit_changes_invalidate() {
        let (db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.revalidate(&db, 256);
        cache.value_distribution(&db, &scheme, 4, ids["a1"]);
        assert!(!cache.is_empty());
        // Same content, but a clone is a different lineage.
        let clone = db.clone();
        cache.revalidate(&clone, 256);
        assert!(cache.is_empty());
        cache.value_distribution(&clone, &scheme, 4, ids["a1"]);
        // A different support limit changes what "over the cap" means.
        cache.revalidate(&clone, 1);
        assert!(cache.is_empty());
        assert_eq!(
            cache.fact_distribution(&clone, &scheme, ids["a1"]),
            DistStatus::TooLarge
        );
    }

    #[test]
    fn views_overlay_and_absorb_in_order() {
        let (db, ids) = movies_database_labeled();
        let scheme = s5(&db);
        let mut cache = DistCache::new();
        cache.revalidate(&db, 256);
        cache.value_distribution(&db, &scheme, 4, ids["a1"]);

        let deltas: Vec<DistCacheDelta> = (0..2)
            .map(|i| {
                let mut view = cache.view();
                // Base hit for a1, private miss for a4.
                assert!(view
                    .value_distribution(&db, &scheme, 4, ids["a1"])
                    .exists()
                    .is_some());
                view.value_distribution(&db, &scheme, 4 - i, ids["a4"]);
                view.into_delta()
            })
            .collect();
        let before = cache.len();
        for d in deltas {
            cache.absorb(d);
        }
        assert!(cache.len() > before);
        // The absorbed entries now serve as base hits.
        let misses = cache.stats().misses;
        cache.value_distribution(&db, &scheme, 4, ids["a4"]);
        assert_eq!(cache.stats().misses, misses);
    }
}
