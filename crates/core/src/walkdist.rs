//! Destination distributions of foreign-key random walks (paper §V-A).
//!
//! A random walk with scheme `s` starting at fact `f` iteratively picks the
//! next fact uniformly among the valid continuations. `d_{f,s}` is the
//! distribution of the walk's destination fact, and `d_{f,s}[A]` the
//! distribution of the destination's value in attribute `A`, **conditioned
//! on being non-null** (the paper's posterior convention). Both are
//! computed here in two interchangeable ways:
//!
//! * **exactly**, by propagating probabilities along the scheme (a BFS over
//!   facts, as the paper suggests), with a configurable support cap, and
//! * **by Monte-Carlo sampling** of walks, used when supports grow large
//!   and during training-sample generation.

use crate::schemes::{Step, WalkScheme};
use reldb::{Database, FactId, Value};
use stembed_runtime::rng::DetRng;
use stembed_runtime::{stream_rng, Runtime};

/// Exact distribution over destination facts. Probabilities sum to 1
/// (walks that dead-end before completing the scheme are conditioned away).
#[derive(Debug, Clone, PartialEq)]
pub struct FactDistribution {
    /// `(destination, probability)` pairs; sorted by fact id, no duplicates.
    ///
    /// The canonical order makes every float reduction over the support
    /// (`KD` sums, renormalisation) reproducible bit for bit — recomputing
    /// the distribution and reading it from a cache must be
    /// indistinguishable, and `HashMap` iteration order is not stable
    /// across instances.
    pub support: Vec<(FactId, f64)>,
}

/// Exact distribution over non-null destination attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueDistribution {
    /// `(value, probability)` pairs; sorted by [`Value::canonical_cmp`], no
    /// duplicates. Canonical for the same reason as
    /// [`FactDistribution::support`].
    pub support: Vec<(Value, f64)>,
}

impl ValueDistribution {
    /// Probability of `value` (0 if outside the support).
    pub fn prob(&self, value: &Value) -> f64 {
        self.support
            .iter()
            .find(|(v, _)| v == value)
            .map_or(0.0, |(_, p)| *p)
    }

    /// Total probability mass (≈ 1 up to rounding; exposed for tests).
    pub fn total_mass(&self) -> f64 {
        self.support.iter().map(|(_, p)| p).sum()
    }
}

/// Three-way result of an exact distribution computation.
///
/// The BFS knows *why* it cannot hand back a distribution, and the KD layer
/// needs that reason: `Nonexistent` is **exact** knowledge ("no complete
/// walk exists", or "every destination is null in the queried attribute"),
/// so `KD` is undefined and Monte-Carlo sampling would only burn its whole
/// pair budget rediscovering the fact. `TooLarge` means the distribution
/// exists but an intermediate frontier exceeded the support cap — sampling
/// is the designated fallback.
#[derive(Debug, Clone, PartialEq)]
pub enum DistStatus<T> {
    /// The distribution exists and fits under the support cap.
    Exists(T),
    /// An intermediate frontier exceeded the cap; fall back to sampling.
    TooLarge,
    /// Exactly known not to exist.
    Nonexistent,
}

impl<T> DistStatus<T> {
    /// The distribution, if it exists.
    pub fn exists(&self) -> Option<&T> {
        match self {
            DistStatus::Exists(t) => Some(t),
            _ => None,
        }
    }

    /// `true` iff exactly known not to exist.
    pub fn is_nonexistent(&self) -> bool {
        matches!(self, DistStatus::Nonexistent)
    }

    /// `true` iff an intermediate frontier exceeded the support cap.
    pub fn is_too_large(&self) -> bool {
        matches!(self, DistStatus::TooLarge)
    }

    /// Map the payload, preserving the status.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> DistStatus<U> {
        match self {
            DistStatus::Exists(t) => DistStatus::Exists(f(t)),
            DistStatus::TooLarge => DistStatus::TooLarge,
            DistStatus::Nonexistent => DistStatus::Nonexistent,
        }
    }
}

/// The facts one step leads to from `cur`.
///
/// Forward: the (unique) referenced fact — none when a referencing attribute
/// is null or the reference dangles. Backward: all facts referencing `cur`'s
/// key through the step's FK.
pub fn step_successors(db: &Database, step: &Step, cur: FactId) -> Vec<FactId> {
    let schema = db.schema();
    let fk = schema.foreign_key(step.fk);
    let Some(fact) = db.fact(cur) else {
        return Vec::new();
    };
    if step.forward {
        if fact.any_null(&fk.from_attrs) {
            return Vec::new();
        }
        let key = fact.project(&fk.from_attrs);
        db.lookup_key(fk.to_rel, &key).into_iter().collect()
    } else {
        let key = fact.project(&fk.to_attrs);
        db.referencing_slots(step.fk, &key)
            .iter()
            .map(|&row| FactId::new(fk.from_rel, row))
            .collect()
    }
}

/// The facts one step can lead *from*: predecessors of `cur` under `step`
/// — the exact reverse of [`step_successors`].
///
/// A forward step (depart by FK, arrive at the referenced key) is reversed
/// through the reference index: every fact whose FK tuple matches `cur`'s
/// key could have stepped here. A backward step (depart by key, arrive at
/// a referencing fact) is reversed by resolving the FK `cur` itself
/// carries. This powers the distribution cache's reachability-scoped
/// invalidation: walking a scheme backwards from a newly inserted fact
/// enumerates precisely the start facts whose destination distributions
/// that insertion can influence.
pub fn step_predecessors(db: &Database, step: &Step, cur: FactId) -> Vec<FactId> {
    match db.fact(cur) {
        Some(fact) => step_predecessors_of(db, step, fact),
        None => Vec::new(),
    }
}

/// [`step_predecessors`] given the arrival fact's **values** instead of a
/// live id — the variant that still works when the fact has been deleted.
/// The key/FK indexes consulted here live on the *predecessor* side, so
/// they answer for a tombstoned arrival fact exactly as they did while it
/// was live; this is what lets the distribution cache walk a walk scheme
/// backwards from a journalled **delete** record (whose payload preserves
/// the removed values) just like from an insert.
pub fn step_predecessors_of(db: &Database, step: &Step, fact: &reldb::Fact) -> Vec<FactId> {
    let schema = db.schema();
    let fk = schema.foreign_key(step.fk);
    if step.forward {
        // The fact is the referenced one; predecessors reference its key.
        let key = fact.project(&fk.to_attrs);
        db.referencing_slots(step.fk, &key)
            .iter()
            .map(|&row| FactId::new(fk.from_rel, row))
            .collect()
    } else {
        // The fact arrived by referencing its (unique) predecessor.
        if fact.any_null(&fk.from_attrs) {
            return Vec::new();
        }
        let key = fact.project(&fk.from_attrs);
        db.lookup_key(fk.to_rel, &key).into_iter().collect()
    }
}

/// The resumable state of the probability-propagating BFS after a prefix
/// of a walk scheme's steps: the **pre-renormalisation** `(fact, mass)`
/// frontier in canonical fact order.
///
/// A full distribution is [`frontier_start`], one [`frontier_step`] per
/// scheme step, then [`frontier_finish`];
/// [`destination_distribution_status`] is literally that composition. A
/// state cached after a shared prefix and extended step by step therefore
/// yields the **same bits** as the from-scratch BFS: each extension runs
/// the identical IEEE operation sequence on the identical intermediate
/// values. This is what the distribution cache's prefix tier
/// ([`crate::distcache::DistCache`]) stores, and what the scheme plan
/// ([`crate::plan::SchemePlan`]) orders evaluation around.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierState {
    /// `(fact, accumulated mass)` pairs; sorted by fact id, no duplicates.
    /// Masses are walk-completion probabilities *before* the final
    /// renormalisation — that belongs to [`frontier_finish`], because a
    /// prefix's mass keeps being split and dropped by later steps.
    pub frontier: Vec<(FactId, f64)>,
}

/// The length-0 frontier: all mass on the start fact.
/// [`DistStatus::Nonexistent`] when the start fact is not live.
pub fn frontier_start(db: &Database, start: FactId) -> DistStatus<FrontierState> {
    if db.fact(start).is_none() {
        return DistStatus::Nonexistent;
    }
    DistStatus::Exists(FrontierState {
        frontier: vec![(start, 1.0)],
    })
}

/// Extend a frontier by one scheme step: propagate each fact's mass to its
/// successors (backward steps split it uniformly over the referencing
/// slots), then sort-and-merge duplicates so masses add in fact order.
/// [`DistStatus::Nonexistent`] when every walk prefix dead-ends,
/// [`DistStatus::TooLarge`] when the merged frontier exceeds
/// `support_limit`.
///
/// The frontier is a sorted `(fact, probability)` vector, deduplicated by
/// a sort-and-merge after each step: at walk-scheme frontier sizes a
/// contiguous sort beats per-fact hashing, and it keeps the support in
/// canonical fact order at every stage (see
/// [`FactDistribution::support`]).
pub fn frontier_step(
    db: &Database,
    step: &Step,
    state: &FrontierState,
    support_limit: usize,
) -> DistStatus<FrontierState> {
    let schema = db.schema();
    let fk = schema.foreign_key(step.fk);
    let mut next: Vec<(FactId, f64)> = Vec::new();
    let mut key: Vec<Value> = Vec::new();
    for &(fact_id, prob) in &state.frontier {
        // PANICS: never — frontiers only ever hold live facts.
        let fact = db.fact(fact_id).expect("frontier facts are live");
        if step.forward {
            if fact.any_null(&fk.from_attrs) {
                continue; // null FK: this walk prefix dead-ends
            }
            fact.project_into(&fk.from_attrs, &mut key);
            if let Some(dest) = db.lookup_key(fk.to_rel, &key) {
                next.push((dest, prob));
            }
        } else {
            fact.project_into(&fk.to_attrs, &mut key);
            let slots = db.referencing_slots(step.fk, &key);
            if slots.is_empty() {
                continue;
            }
            let share = prob / slots.len() as f64;
            next.extend(
                slots
                    .iter()
                    .map(|&row| (FactId::new(fk.from_rel, row), share)),
            );
        }
    }
    if next.is_empty() {
        return DistStatus::Nonexistent;
    }
    // Merge duplicate destinations (masses add in fact order).
    next.sort_unstable_by_key(|(f, _)| *f);
    let mut merged: Vec<(FactId, f64)> = Vec::new();
    for &(f, p) in &next {
        match merged.last_mut() {
            Some((last, mass)) if *last == f => *mass += p,
            _ => merged.push((f, p)),
        }
    }
    if merged.len() > support_limit {
        return DistStatus::TooLarge;
    }
    DistStatus::Exists(FrontierState { frontier: merged })
}

/// Turn a completed frontier into a distribution: renormalise so the
/// remaining mass conditions on walk completion.
pub fn frontier_finish(state: &FrontierState) -> DistStatus<FactDistribution> {
    let mut support = state.frontier.clone();
    let total: f64 = support.iter().map(|(_, p)| p).sum();
    if total <= 0.0 {
        return DistStatus::Nonexistent;
    }
    for (_, p) in &mut support {
        *p /= total;
    }
    DistStatus::Exists(FactDistribution { support })
}

/// Exactly compute `d_{f,s}` by probability propagation, reporting *why*
/// when it cannot: [`DistStatus::Nonexistent`] when no complete walk
/// exists (exact knowledge), [`DistStatus::TooLarge`] when an intermediate
/// support exceeds `support_limit` (callers then fall back to sampling).
///
/// Built on the resumable frontier primitives — [`frontier_start`], one
/// [`frontier_step`] per scheme step, [`frontier_finish`] — so the
/// prefix-cached evaluation path shares this exact code and is bitwise
/// indistinguishable from it.
pub fn destination_distribution_status(
    db: &Database,
    scheme: &WalkScheme,
    start: FactId,
    support_limit: usize,
) -> DistStatus<FactDistribution> {
    debug_assert_eq!(start.rel, scheme.start);
    let DistStatus::Exists(mut state) = frontier_start(db, start) else {
        return DistStatus::Nonexistent;
    };
    for step in &scheme.steps {
        state = match frontier_step(db, step, &state, support_limit) {
            DistStatus::Exists(s) => s,
            DistStatus::TooLarge => return DistStatus::TooLarge,
            DistStatus::Nonexistent => return DistStatus::Nonexistent,
        };
    }
    frontier_finish(&state)
}

/// [`destination_distribution_status`] flattened to an `Option` for callers
/// that do not need the failure reason.
pub fn destination_distribution(
    db: &Database,
    scheme: &WalkScheme,
    start: FactId,
    support_limit: usize,
) -> Option<FactDistribution> {
    match destination_distribution_status(db, scheme, start, support_limit) {
        DistStatus::Exists(d) => Some(d),
        _ => None,
    }
}

/// Marginalise a fact distribution to attribute `attr` of the destination
/// relation, conditioning on non-null. `None` when all destinations are null
/// in `attr` — then `d_{f,s}[A]` "does not exist" per the paper.
///
/// Support facts that have been deleted since `dist` was computed (a stale
/// distribution over a mutated database) are **skipped and their mass
/// renormalised away**, exactly like null values: "this support entry
/// carries no value any more" must not be conflated with "the distribution
/// does not exist". Only when *no* live, non-null destination remains does
/// the marginal not exist.
pub fn value_distribution(
    db: &Database,
    dist: &FactDistribution,
    attr: usize,
) -> Option<ValueDistribution> {
    // Borrow values first and sort into canonical order (stable, so equal
    // values merge their masses in fact order — see the support docs);
    // only the distinct survivors are cloned.
    let mut pairs: Vec<(&Value, f64)> = Vec::with_capacity(dist.support.len());
    for (fact_id, prob) in &dist.support {
        let Some(fact) = db.fact(*fact_id) else {
            continue; // stale support entry: fact deleted since the BFS
        };
        let value = fact.get(attr);
        if !value.is_null() {
            pairs.push((value, *prob));
        }
    }
    pairs.sort_by(|(a, _), (b, _)| a.canonical_cmp(b));
    let mut support: Vec<(Value, f64)> = Vec::new();
    for (value, prob) in pairs {
        match support.last_mut() {
            Some((last, mass)) if last == value => *mass += prob,
            _ => support.push((value.clone(), prob)),
        }
    }
    let total: f64 = support.iter().map(|(_, p)| p).sum();
    if total <= 0.0 {
        return None;
    }
    for (_, p) in &mut support {
        *p /= total;
    }
    Some(ValueDistribution { support })
}

/// Exact `d_{f,s}[A]` with the failure reason: marginalising an existing
/// fact distribution whose destinations are all null (or dead) is
/// [`DistStatus::Nonexistent`] — exact knowledge, like an empty walk set.
pub fn destination_value_distribution_status(
    db: &Database,
    scheme: &WalkScheme,
    attr: usize,
    start: FactId,
    support_limit: usize,
) -> DistStatus<ValueDistribution> {
    match destination_distribution_status(db, scheme, start, support_limit) {
        DistStatus::Exists(facts) => match value_distribution(db, &facts, attr) {
            Some(values) => DistStatus::Exists(values),
            None => DistStatus::Nonexistent,
        },
        DistStatus::TooLarge => DistStatus::TooLarge,
        DistStatus::Nonexistent => DistStatus::Nonexistent,
    }
}

/// Convenience: exact `d_{f,s}[A]`, flattened to an `Option`.
pub fn destination_value_distribution(
    db: &Database,
    scheme: &WalkScheme,
    attr: usize,
    start: FactId,
    support_limit: usize,
) -> Option<ValueDistribution> {
    match destination_value_distribution_status(db, scheme, attr, start, support_limit) {
        DistStatus::Exists(d) => Some(d),
        _ => None,
    }
}

/// Monte-Carlo walk sampler bound to a database.
#[derive(Debug, Clone, Copy)]
pub struct DestinationSampler<'db> {
    db: &'db Database,
}

impl<'db> DestinationSampler<'db> {
    /// Sampler over `db`.
    pub fn new(db: &'db Database) -> Self {
        DestinationSampler { db }
    }

    /// Sample one walk with `scheme` from `start`; `None` when it
    /// dead-ends.
    ///
    /// Unlike the exact path (which materialises successor sets), each step
    /// here picks its continuation **without allocating**: forward steps
    /// resolve the unique referenced fact, backward steps draw a uniform
    /// index into the database's referencing-slot slice. This is the inner
    /// loop of eligibility probing, sample generation, and Monte-Carlo KD.
    pub fn sample_destination(
        &self,
        scheme: &WalkScheme,
        start: FactId,
        rng: &mut DetRng,
    ) -> Option<FactId> {
        let schema = self.db.schema();
        let mut cur = start;
        for step in &scheme.steps {
            let fk = schema.foreign_key(step.fk);
            let fact = self.db.fact(cur)?;
            cur = if step.forward {
                if fact.any_null(&fk.from_attrs) {
                    return None;
                }
                let key = fact.project(&fk.from_attrs);
                self.db.lookup_key(fk.to_rel, &key)?
            } else {
                let key = fact.project(&fk.to_attrs);
                let slots = self.db.referencing_slots(step.fk, &key);
                if slots.is_empty() {
                    return None;
                }
                let row = slots[rng.random_range(0..slots.len())];
                FactId::new(fk.from_rel, row)
            };
        }
        Some(cur)
    }

    /// Sample a non-null destination value of `d_{f,s}[A]`, retrying dead
    /// ends and null values up to `max_attempts` times. `None` means the
    /// pair `(s, A)` is (very likely) nonexistent for this start fact.
    pub fn sample_value(
        &self,
        scheme: &WalkScheme,
        attr: usize,
        start: FactId,
        max_attempts: usize,
        rng: &mut DetRng,
    ) -> Option<Value> {
        for _ in 0..max_attempts {
            if let Some(dest) = self.sample_destination(scheme, start, rng) {
                let v = self.db.fact(dest)?.get(attr);
                if !v.is_null() {
                    return Some(v.clone());
                }
            }
        }
        None
    }

    /// Monte-Carlo batch: one [`DestinationSampler::sample_value`] per
    /// start fact, sharded over the runtime. Start `i` of the list owns the
    /// derived stream `stream_rng(master_seed, i)`, so the result vector is
    /// bit-identical at every shard count. This is the parallel substrate
    /// under eligibility probing and per-epoch sample generation.
    pub fn sample_values_batch(
        &self,
        runtime: &Runtime,
        scheme: &WalkScheme,
        attr: usize,
        starts: &[FactId],
        max_attempts: usize,
        master_seed: u64,
    ) -> Vec<Option<Value>> {
        runtime.par_map_ordered(starts, |i, &start| {
            let mut rng = stream_rng(master_seed, i as u64);
            self.sample_value(scheme, attr, start, max_attempts, &mut rng)
        })
    }

    /// The database this sampler walks over.
    pub fn database(&self) -> &'db Database {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::enumerate_schemes;
    use reldb::movies::{movies_database_labeled, movies_schema};
    use stembed_runtime::rng::DetRng;

    /// The scheme of Example 5.2/5.3. The paper prints s5 with `actor2`,
    /// but its own walks `(a1,c1,m3)` and `(a1,c4,m6)` satisfy
    /// `a1[aid] = c[actor1]` (a01), not `actor2` — an evident typo; the
    /// examples' numbers correspond to the `actor1` scheme used here.
    fn scheme_s5(db: &Database) -> WalkScheme {
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| {
                s.display(schema).to_string()
                    == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
            })
            .expect("s5 exists")
    }

    #[test]
    fn example_5_2_walks_from_a1() {
        // Exactly two walks follow s5 from a1: destinations m3 and m6.
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let dist = destination_distribution(&db, &s5, ids["a1"], 1024).unwrap();
        let mut support = dist.support.clone();
        support.sort_by_key(|(f, _)| *f);
        assert_eq!(support.len(), 2);
        assert!(support
            .iter()
            .any(|(f, p)| *f == ids["m3"] && (*p - 0.5).abs() < 1e-12));
        assert!(support
            .iter()
            .any(|(f, p)| *f == ids["m6"] && (*p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn example_5_3_value_distributions() {
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        // budget: Pr(150M) = Pr(100M) = 0.5.
        let budget = destination_value_distribution(&db, &s5, 4, ids["a1"], 1024).unwrap();
        assert!((budget.prob(&Value::Int(150)) - 0.5).abs() < 1e-12);
        assert!((budget.prob(&Value::Int(100)) - 0.5).abs() < 1e-12);
        assert!((budget.total_mass() - 1.0).abs() < 1e-12);
        // genre: m3's genre is ⊥, so the posterior is Pr(Bio) = 1.
        let genre = destination_value_distribution(&db, &s5, 3, ids["a1"], 1024).unwrap();
        assert_eq!(genre.support.len(), 1);
        assert!((genre.prob(&Value::Text("Bio".into())) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_scheme_is_a_point_mass() {
        let (db, ids) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let trivial = WalkScheme::trivial(actors);
        let dist = destination_distribution(&db, &trivial, ids["a2"], 16).unwrap();
        assert_eq!(dist.support, vec![(ids["a2"], 1.0)]);
        // Value distribution of `name` is a point mass on Watanabe.
        let names = value_distribution(&db, &dist, 1).unwrap();
        assert!((names.prob(&Value::Text("Watanabe".into())) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonexistent_distribution_when_no_walks() {
        // a3 (Cruise) is only actor2 of c3: walks via actor1-backward don't
        // exist from a3 as long as nobody lists him as actor1.
        let (db, ids) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let s1_actor1 = enumerate_schemes(schema, actors, 1, false)
            .into_iter()
            .find(|s| {
                s.len() == 1
                    && s.display(schema).to_string() == "ACTORS[aid]—COLLABORATIONS[actor1]"
            })
            .unwrap();
        assert!(destination_distribution(&db, &s1_actor1, ids["a3"], 16).is_none());
        // And the sampler agrees.
        let sampler = DestinationSampler::new(&db);
        let mut rng = DetRng::seed_from_u64(1);
        assert!(sampler
            .sample_value(&s1_actor1, 0, ids["a3"], 32, &mut rng)
            .is_none());
    }

    #[test]
    fn stale_support_is_skipped_and_renormalised_after_cascade_delete() {
        // Regression: a deleted support fact used to make the *whole*
        // marginal `None` (the `?` on `db.fact`), conflating "stale support
        // entry" with "nonexistent distribution".
        let (mut db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        // d_{a1,s5} = {m3: ½, m6: ½}, computed before the deletion.
        let dist = destination_distribution(&db, &s5, ids["a1"], 1024).unwrap();
        // Cascade-delete m6 (takes collaboration c4 with it).
        let journal = reldb::cascade_delete(&mut db, ids["m6"], false).unwrap();
        assert!(journal.len() >= 2, "cascade must remove m6 and c4");
        // budget: m6's mass is renormalised onto m3 → a point mass.
        let budget = value_distribution(&db, &dist, 4).unwrap();
        assert_eq!(budget.support.len(), 1);
        assert!((budget.total_mass() - 1.0).abs() < 1e-12);
        assert!((budget.prob(&db.fact(ids["m3"]).unwrap().get(4).clone()) - 1.0).abs() < 1e-12);
        // genre: m3's genre is ⊥ and m6 (the only non-null carrier) is
        // gone — now the marginal genuinely does not exist.
        assert!(value_distribution(&db, &dist, 3).is_none());
        // Restoring brings the original marginal back.
        reldb::restore_journal(&mut db, &journal).unwrap();
        let genre = value_distribution(&db, &dist, 3).unwrap();
        assert!((genre.prob(&Value::Text("Bio".into())) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn supports_come_back_in_canonical_order() {
        // The canonical order is what makes cached and recomputed
        // distributions interchangeable bit for bit (float sums over the
        // support happen in a fixed order).
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let dist = destination_distribution(&db, &s5, ids["a1"], 1024).unwrap();
        assert!(dist.support.windows(2).all(|w| w[0].0 < w[1].0));
        let vals = value_distribution(&db, &dist, 4).unwrap();
        assert!(vals
            .support
            .windows(2)
            .all(|w| w[0].0.canonical_cmp(&w[1].0) == std::cmp::Ordering::Less));
    }

    #[test]
    fn step_predecessors_inverts_step_successors() {
        // For every step of s5 and every live fact pair (g, h):
        // h ∈ successors(g) ⇔ g ∈ predecessors(h).
        let (db, _) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let schema = db.schema();
        for step in &s5.steps {
            let src = step.source(schema);
            let dst = step.destination(schema);
            for g in db.fact_ids(src) {
                for h in step_successors(&db, step, g) {
                    assert!(
                        step_predecessors(&db, step, h).contains(&g),
                        "missing reverse edge {g} -> {h}"
                    );
                }
            }
            for h in db.fact_ids(dst) {
                for g in step_predecessors(&db, step, h) {
                    assert!(
                        step_successors(&db, step, g).contains(&h),
                        "spurious reverse edge {g} -> {h}"
                    );
                }
            }
        }
    }

    #[test]
    fn sampler_matches_exact_distribution() {
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let sampler = DestinationSampler::new(&db);
        let mut rng = DetRng::seed_from_u64(99);
        let mut m3 = 0usize;
        let mut m6 = 0usize;
        let n = 4000;
        for _ in 0..n {
            match sampler.sample_destination(&s5, ids["a1"], &mut rng) {
                Some(d) if d == ids["m3"] => m3 += 1,
                Some(d) if d == ids["m6"] => m6 += 1,
                Some(other) => panic!("unexpected destination {other}"),
                None => panic!("s5 from a1 never dead-ends"),
            }
        }
        let frac = m3 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "empirical Pr(m3) = {frac}");
        assert_eq!(m3 + m6, n);
    }

    #[test]
    fn batch_sampling_is_shard_invariant() {
        let (db, _) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let sampler = DestinationSampler::new(&db);
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let starts = db.fact_ids(actors);
        let base = sampler.sample_values_batch(&Runtime::single(), &s5, 4, &starts, 8, 42);
        assert_eq!(base.len(), starts.len());
        for shards in [2usize, 8] {
            let got = sampler.sample_values_batch(&Runtime::new(shards), &s5, 4, &starts, 8, 42);
            assert_eq!(got, base, "shards={shards} diverged");
        }
    }

    #[test]
    fn support_limit_forces_sampling_fallback() {
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        // With a support cap of 1 the two-destination distribution cannot be
        // represented exactly.
        assert!(destination_distribution(&db, &s5, ids["a1"], 1).is_none());
    }

    #[test]
    fn schema_is_the_figure_2_schema() {
        // Guard: the tests above assume attribute positions of Figure 2.
        let schema = movies_schema();
        let movies = schema.relation_id("MOVIES").unwrap();
        assert_eq!(schema.relation(movies).attributes[3].name, "genre");
        assert_eq!(schema.relation(movies).attributes[4].name, "budget");
    }
}
