//! Destination distributions of foreign-key random walks (paper §V-A).
//!
//! A random walk with scheme `s` starting at fact `f` iteratively picks the
//! next fact uniformly among the valid continuations. `d_{f,s}` is the
//! distribution of the walk's destination fact, and `d_{f,s}[A]` the
//! distribution of the destination's value in attribute `A`, **conditioned
//! on being non-null** (the paper's posterior convention). Both are
//! computed here in two interchangeable ways:
//!
//! * **exactly**, by propagating probabilities along the scheme (a BFS over
//!   facts, as the paper suggests), with a configurable support cap, and
//! * **by Monte-Carlo sampling** of walks, used when supports grow large
//!   and during training-sample generation.

use crate::schemes::{Step, WalkScheme};
use reldb::{Database, FactId, Value};
use std::collections::HashMap;
use stembed_runtime::rng::DetRng;
use stembed_runtime::{stream_rng, Runtime};

/// Exact distribution over destination facts. Probabilities sum to 1
/// (walks that dead-end before completing the scheme are conditioned away).
#[derive(Debug, Clone, PartialEq)]
pub struct FactDistribution {
    /// `(destination, probability)` pairs; unordered, no duplicates.
    pub support: Vec<(FactId, f64)>,
}

/// Exact distribution over non-null destination attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueDistribution {
    /// `(value, probability)` pairs; unordered, no duplicates.
    pub support: Vec<(Value, f64)>,
}

impl ValueDistribution {
    /// Probability of `value` (0 if outside the support).
    pub fn prob(&self, value: &Value) -> f64 {
        self.support
            .iter()
            .find(|(v, _)| v == value)
            .map_or(0.0, |(_, p)| *p)
    }

    /// Total probability mass (≈ 1 up to rounding; exposed for tests).
    pub fn total_mass(&self) -> f64 {
        self.support.iter().map(|(_, p)| p).sum()
    }
}

/// The facts one step leads to from `cur`.
///
/// Forward: the (unique) referenced fact — none when a referencing attribute
/// is null or the reference dangles. Backward: all facts referencing `cur`'s
/// key through the step's FK.
pub fn step_successors(db: &Database, step: &Step, cur: FactId) -> Vec<FactId> {
    let schema = db.schema();
    let fk = schema.foreign_key(step.fk);
    let Some(fact) = db.fact(cur) else {
        return Vec::new();
    };
    if step.forward {
        if fact.any_null(&fk.from_attrs) {
            return Vec::new();
        }
        let key = fact.project(&fk.from_attrs);
        db.lookup_key(fk.to_rel, &key).into_iter().collect()
    } else {
        let key = fact.project(&fk.to_attrs);
        db.referencing_slots(step.fk, &key)
            .iter()
            .map(|&row| FactId::new(fk.from_rel, row))
            .collect()
    }
}

/// Exactly compute `d_{f,s}` by probability propagation.
///
/// Returns `None` when no complete walk exists or when any intermediate
/// support exceeds `support_limit` (callers then fall back to sampling).
pub fn destination_distribution(
    db: &Database,
    scheme: &WalkScheme,
    start: FactId,
    support_limit: usize,
) -> Option<FactDistribution> {
    debug_assert_eq!(start.rel, scheme.start);
    db.fact(start)?;
    let mut frontier: HashMap<FactId, f64> = HashMap::new();
    frontier.insert(start, 1.0);
    for step in &scheme.steps {
        let mut next: HashMap<FactId, f64> = HashMap::new();
        for (fact, prob) in frontier {
            let succ = step_successors(db, step, fact);
            if succ.is_empty() {
                continue; // this walk prefix dead-ends; mass is lost
            }
            let share = prob / succ.len() as f64;
            for s in succ {
                *next.entry(s).or_insert(0.0) += share;
            }
        }
        if next.is_empty() {
            return None;
        }
        if next.len() > support_limit {
            return None;
        }
        frontier = next;
    }
    // Renormalise: the remaining mass conditions on walk completion.
    let total: f64 = frontier.values().sum();
    if total <= 0.0 {
        return None;
    }
    Some(FactDistribution {
        support: frontier.into_iter().map(|(f, p)| (f, p / total)).collect(),
    })
}

/// Marginalise a fact distribution to attribute `attr` of the destination
/// relation, conditioning on non-null. `None` when all destinations are null
/// in `attr` — then `d_{f,s}[A]` "does not exist" per the paper.
pub fn value_distribution(
    db: &Database,
    dist: &FactDistribution,
    attr: usize,
) -> Option<ValueDistribution> {
    let mut acc: HashMap<Value, f64> = HashMap::new();
    for (fact_id, prob) in &dist.support {
        let fact = db.fact(*fact_id)?;
        let value = fact.get(attr);
        if !value.is_null() {
            *acc.entry(value.clone()).or_insert(0.0) += prob;
        }
    }
    let total: f64 = acc.values().sum();
    if total <= 0.0 {
        return None;
    }
    Some(ValueDistribution {
        support: acc.into_iter().map(|(v, p)| (v, p / total)).collect(),
    })
}

/// Convenience: exact `d_{f,s}[A]`.
pub fn destination_value_distribution(
    db: &Database,
    scheme: &WalkScheme,
    attr: usize,
    start: FactId,
    support_limit: usize,
) -> Option<ValueDistribution> {
    let facts = destination_distribution(db, scheme, start, support_limit)?;
    value_distribution(db, &facts, attr)
}

/// Monte-Carlo walk sampler bound to a database.
#[derive(Debug, Clone, Copy)]
pub struct DestinationSampler<'db> {
    db: &'db Database,
}

impl<'db> DestinationSampler<'db> {
    /// Sampler over `db`.
    pub fn new(db: &'db Database) -> Self {
        DestinationSampler { db }
    }

    /// Sample one walk with `scheme` from `start`; `None` when it
    /// dead-ends.
    ///
    /// Unlike the exact path (which materialises successor sets), each step
    /// here picks its continuation **without allocating**: forward steps
    /// resolve the unique referenced fact, backward steps draw a uniform
    /// index into the database's referencing-slot slice. This is the inner
    /// loop of eligibility probing, sample generation, and Monte-Carlo KD.
    pub fn sample_destination(
        &self,
        scheme: &WalkScheme,
        start: FactId,
        rng: &mut DetRng,
    ) -> Option<FactId> {
        let schema = self.db.schema();
        let mut cur = start;
        for step in &scheme.steps {
            let fk = schema.foreign_key(step.fk);
            let fact = self.db.fact(cur)?;
            cur = if step.forward {
                if fact.any_null(&fk.from_attrs) {
                    return None;
                }
                let key = fact.project(&fk.from_attrs);
                self.db.lookup_key(fk.to_rel, &key)?
            } else {
                let key = fact.project(&fk.to_attrs);
                let slots = self.db.referencing_slots(step.fk, &key);
                if slots.is_empty() {
                    return None;
                }
                let row = slots[rng.random_range(0..slots.len())];
                FactId::new(fk.from_rel, row)
            };
        }
        Some(cur)
    }

    /// Sample a non-null destination value of `d_{f,s}[A]`, retrying dead
    /// ends and null values up to `max_attempts` times. `None` means the
    /// pair `(s, A)` is (very likely) nonexistent for this start fact.
    pub fn sample_value(
        &self,
        scheme: &WalkScheme,
        attr: usize,
        start: FactId,
        max_attempts: usize,
        rng: &mut DetRng,
    ) -> Option<Value> {
        for _ in 0..max_attempts {
            if let Some(dest) = self.sample_destination(scheme, start, rng) {
                let v = self.db.fact(dest)?.get(attr);
                if !v.is_null() {
                    return Some(v.clone());
                }
            }
        }
        None
    }

    /// Monte-Carlo batch: one [`DestinationSampler::sample_value`] per
    /// start fact, sharded over the runtime. Start `i` of the list owns the
    /// derived stream `stream_rng(master_seed, i)`, so the result vector is
    /// bit-identical at every shard count. This is the parallel substrate
    /// under eligibility probing and per-epoch sample generation.
    pub fn sample_values_batch(
        &self,
        runtime: &Runtime,
        scheme: &WalkScheme,
        attr: usize,
        starts: &[FactId],
        max_attempts: usize,
        master_seed: u64,
    ) -> Vec<Option<Value>> {
        runtime.par_map_ordered(starts, |i, &start| {
            let mut rng = stream_rng(master_seed, i as u64);
            self.sample_value(scheme, attr, start, max_attempts, &mut rng)
        })
    }

    /// The database this sampler walks over.
    pub fn database(&self) -> &'db Database {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::enumerate_schemes;
    use reldb::movies::{movies_database_labeled, movies_schema};
    use stembed_runtime::rng::DetRng;

    /// The scheme of Example 5.2/5.3. The paper prints s5 with `actor2`,
    /// but its own walks `(a1,c1,m3)` and `(a1,c4,m6)` satisfy
    /// `a1[aid] = c[actor1]` (a01), not `actor2` — an evident typo; the
    /// examples' numbers correspond to the `actor1` scheme used here.
    fn scheme_s5(db: &Database) -> WalkScheme {
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        enumerate_schemes(schema, actors, 3, false)
            .into_iter()
            .find(|s| {
                s.display(schema).to_string()
                    == "ACTORS[aid]—COLLABORATIONS[actor1], COLLABORATIONS[movie]—MOVIES[mid]"
            })
            .expect("s5 exists")
    }

    #[test]
    fn example_5_2_walks_from_a1() {
        // Exactly two walks follow s5 from a1: destinations m3 and m6.
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let dist = destination_distribution(&db, &s5, ids["a1"], 1024).unwrap();
        let mut support = dist.support.clone();
        support.sort_by_key(|(f, _)| *f);
        assert_eq!(support.len(), 2);
        assert!(support
            .iter()
            .any(|(f, p)| *f == ids["m3"] && (*p - 0.5).abs() < 1e-12));
        assert!(support
            .iter()
            .any(|(f, p)| *f == ids["m6"] && (*p - 0.5).abs() < 1e-12));
    }

    #[test]
    fn example_5_3_value_distributions() {
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        // budget: Pr(150M) = Pr(100M) = 0.5.
        let budget = destination_value_distribution(&db, &s5, 4, ids["a1"], 1024).unwrap();
        assert!((budget.prob(&Value::Int(150)) - 0.5).abs() < 1e-12);
        assert!((budget.prob(&Value::Int(100)) - 0.5).abs() < 1e-12);
        assert!((budget.total_mass() - 1.0).abs() < 1e-12);
        // genre: m3's genre is ⊥, so the posterior is Pr(Bio) = 1.
        let genre = destination_value_distribution(&db, &s5, 3, ids["a1"], 1024).unwrap();
        assert_eq!(genre.support.len(), 1);
        assert!((genre.prob(&Value::Text("Bio".into())) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn trivial_scheme_is_a_point_mass() {
        let (db, ids) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let trivial = WalkScheme::trivial(actors);
        let dist = destination_distribution(&db, &trivial, ids["a2"], 16).unwrap();
        assert_eq!(dist.support, vec![(ids["a2"], 1.0)]);
        // Value distribution of `name` is a point mass on Watanabe.
        let names = value_distribution(&db, &dist, 1).unwrap();
        assert!((names.prob(&Value::Text("Watanabe".into())) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nonexistent_distribution_when_no_walks() {
        // a3 (Cruise) is only actor2 of c3: walks via actor1-backward don't
        // exist from a3 as long as nobody lists him as actor1.
        let (db, ids) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let s1_actor1 = enumerate_schemes(schema, actors, 1, false)
            .into_iter()
            .find(|s| {
                s.len() == 1
                    && s.display(schema).to_string() == "ACTORS[aid]—COLLABORATIONS[actor1]"
            })
            .unwrap();
        assert!(destination_distribution(&db, &s1_actor1, ids["a3"], 16).is_none());
        // And the sampler agrees.
        let sampler = DestinationSampler::new(&db);
        let mut rng = DetRng::seed_from_u64(1);
        assert!(sampler
            .sample_value(&s1_actor1, 0, ids["a3"], 32, &mut rng)
            .is_none());
    }

    #[test]
    fn sampler_matches_exact_distribution() {
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let sampler = DestinationSampler::new(&db);
        let mut rng = DetRng::seed_from_u64(99);
        let mut m3 = 0usize;
        let mut m6 = 0usize;
        let n = 4000;
        for _ in 0..n {
            match sampler.sample_destination(&s5, ids["a1"], &mut rng) {
                Some(d) if d == ids["m3"] => m3 += 1,
                Some(d) if d == ids["m6"] => m6 += 1,
                Some(other) => panic!("unexpected destination {other}"),
                None => panic!("s5 from a1 never dead-ends"),
            }
        }
        let frac = m3 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "empirical Pr(m3) = {frac}");
        assert_eq!(m3 + m6, n);
    }

    #[test]
    fn batch_sampling_is_shard_invariant() {
        let (db, _) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        let sampler = DestinationSampler::new(&db);
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let starts = db.fact_ids(actors);
        let base = sampler.sample_values_batch(&Runtime::single(), &s5, 4, &starts, 8, 42);
        assert_eq!(base.len(), starts.len());
        for shards in [2usize, 8] {
            let got = sampler.sample_values_batch(&Runtime::new(shards), &s5, 4, &starts, 8, 42);
            assert_eq!(got, base, "shards={shards} diverged");
        }
    }

    #[test]
    fn support_limit_forces_sampling_fallback() {
        let (db, ids) = movies_database_labeled();
        let s5 = scheme_s5(&db);
        // With a support cap of 1 the two-destination distribution cannot be
        // represented exactly.
        assert!(destination_distribution(&db, &s5, ids["a1"], 1).is_none());
    }

    #[test]
    fn schema_is_the_figure_2_schema() {
        // Guard: the tests above assume attribute positions of Figure 2.
        let schema = movies_schema();
        let movies = schema.relation_id("MOVIES").unwrap();
        assert_eq!(schema.relation(movies).attributes[3].name, "genre");
        assert_eq!(schema.relation(movies).attributes[4].name, "budget");
    }
}
