//! FoRWaRD hyperparameters (paper §V-F and Table II).

use crate::kd::KdOptions;

/// Hyperparameters of FoRWaRD. [`ForwardConfig::paper`] reproduces Table II;
/// [`ForwardConfig::small`] is a scaled-down setting for tests, examples and
/// CPU-budget experiment runs (the paper trained on a GPU).
#[derive(Debug, Clone)]
pub struct ForwardConfig {
    /// Embedding dimension `d` (paper: 100).
    pub dim: usize,
    /// Maximum walk-scheme length `ℓmax` (paper: 1–3).
    pub max_walk_len: usize,
    /// Training samples drawn **per target pair** `(s, A)` and epoch
    /// (paper: 5,000; see §V-D — when fewer distinct samples exist, all of
    /// them are used).
    pub nsamples: usize,
    /// SGD epochs (paper: 5–10).
    pub epochs: usize,
    /// Minibatch size; only affects the learning-rate schedule granularity
    /// (paper: 50,000).
    pub batch_size: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Samples per `(s, A)` when extending to a new tuple (paper: 2,500).
    pub nnew_samples: usize,
    /// Uniform init bound for `ϕ` and `ψ` entries.
    pub init_bound: f64,
    /// How `KD` values (Eq. 8) are computed in the dynamic phase.
    pub kd: KdOptions,
    /// Ridge regularisation for the dynamic solve; `None` uses the paper's
    /// pseudoinverse (Eq. 10). `Some(λ)` is the ablation alternative.
    pub ridge: Option<f64>,
}

impl ForwardConfig {
    /// The paper's Table II configuration (Genes uses
    /// [`ForwardConfig::paper_genes`]).
    pub fn paper() -> Self {
        ForwardConfig {
            dim: 100,
            max_walk_len: 3,
            nsamples: 5_000,
            epochs: 10,
            batch_size: 50_000,
            // Gradients are averaged over the (large) batch, so the paper's
            // batch size pairs with a learning rate well above the pure-SGD
            // regime (≈ lr_sgd · batch fraction touched per fact).
            learning_rate: 1.0,
            nnew_samples: 2_500,
            init_bound: 0.3,
            kd: KdOptions::default(),
            ridge: None,
        }
    }

    /// Table II's footnote configuration for the Genes dataset (1,000
    /// samples, batch 10,000, 10 epochs).
    pub fn paper_genes() -> Self {
        ForwardConfig {
            nsamples: 1_000,
            batch_size: 10_000,
            epochs: 10,
            ..Self::paper()
        }
    }

    /// Scaled-down configuration for unit tests and quick CPU runs: pure
    /// per-sample SGD (batch 1), which trains well on small relations.
    pub fn small() -> Self {
        ForwardConfig {
            dim: 16,
            max_walk_len: 2,
            nsamples: 30,
            epochs: 8,
            batch_size: 1,
            learning_rate: 0.08,
            nnew_samples: 64,
            init_bound: 0.3,
            kd: KdOptions::default(),
            ridge: None,
        }
    }
}

impl Default for ForwardConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_2() {
        let c = ForwardConfig::paper();
        assert_eq!(c.dim, 100);
        assert_eq!(c.nsamples, 5_000);
        assert_eq!(c.batch_size, 50_000);
        assert_eq!(c.max_walk_len, 3);
        assert_eq!(c.nnew_samples, 2_500);
        assert!(c.ridge.is_none(), "paper uses the pseudoinverse");
        let g = ForwardConfig::paper_genes();
        assert_eq!(g.nsamples, 1_000);
        assert_eq!(g.batch_size, 10_000);
        assert_eq!(g.epochs, 10);
    }

    #[test]
    fn small_is_smaller() {
        let c = ForwardConfig::small();
        assert!(c.dim < ForwardConfig::paper().dim);
        assert!(c.nsamples < ForwardConfig::paper().nsamples);
    }
}
