//! FoRWaRD dynamic phase: extending the embedding to new tuples
//! (paper §V-E).
//!
//! For a newly inserted `R`-fact `f_new` we want `ϕ(f_new)` to satisfy
//! Eq. 6 against already-embedded facts:
//!
//! ```text
//! ϕ(f_new)ᵀ · ψ(s,A) · ϕ(f_old) = KD(d_{s,f_old}[A], d_{s,f_new}[A])
//! ```
//!
//! Each choice of `(f_old, s, A)` contributes one linear equation
//! `cᵀ ϕ(f_new) = y` with `c = ψ(s,A)·ϕ(f_old)` (Eq. 7) and
//! `y` the KD value (Eq. 8). Stacking `n_new_samples` equations per target
//! yields the overdetermined system `C·ϕ(f_new) = b` (Eq. 9), solved with
//! the SVD **pseudoinverse** `ϕ(f_new) = C⁺·b` (Eq. 10) — no gradient
//! descent, which is exactly why FoRWaRD's one-by-one extension is fast
//! (paper Table VI).
//!
//! Crucially, **no existing embedding changes**: the method writes exactly
//! one new vector. This is the stability guarantee of the paper's problem
//! statement, and the test below asserts bit-identity of every old vector.

use crate::distcache::DistCache;
use crate::kd::kd_cached;
use crate::train::ForwardEmbedding;
use crate::CoreError;
use linalg::{lstsq, LstsqMethod, Matrix};
use reldb::{Database, FactId};
use stembed_runtime::{derive_seed, stream_rng};

/// Options controlling the dynamic extension.
#[derive(Debug, Clone, Copy)]
pub struct ExtendOptions {
    /// Override the per-target equation budget (`None`: use the trained
    /// config's `nnew_samples`).
    pub nnew_samples: Option<usize>,
    /// Reuse (and keep warming) the embedding's persistent
    /// [`DistCache`] across `extend` calls — the default. `false` solves
    /// against a throwaway cache instead: nothing read before the call,
    /// nothing kept after. Results are bit-identical either way (the cache
    /// memoises pure functions and never touches the RNG); the switch
    /// exists as the reference path for exactly that assertion in
    /// `tests/determinism.rs`.
    pub reuse_cache: bool,
}

impl Default for ExtendOptions {
    fn default() -> Self {
        ExtendOptions {
            nnew_samples: None,
            reuse_cache: true,
        }
    }
}

impl ForwardEmbedding {
    /// Extend the embedding to one newly inserted fact. Old embeddings are
    /// untouched; returns the new vector's L2 norm (diagnostics).
    pub fn extend(&mut self, db: &Database, new_fact: FactId, seed: u64) -> Result<f64, CoreError> {
        self.extend_with(db, new_fact, seed, ExtendOptions::default())
    }

    /// [`ForwardEmbedding::extend`] with explicit options.
    pub fn extend_with(
        &mut self,
        db: &Database,
        new_fact: FactId,
        seed: u64,
        options: ExtendOptions,
    ) -> Result<f64, CoreError> {
        if new_fact.rel != self.relation() {
            return Err(CoreError::WrongRelation(new_fact));
        }
        if db.fact(new_fact).is_none() {
            return Err(CoreError::UnknownFact(new_fact));
        }
        // The persistent cache is taken out of `self` for the solve (which
        // borrows `self` shared) and put back afterwards; with
        // `reuse_cache = false` a throwaway cache stands in.
        let mut cache = if options.reuse_cache {
            self.take_dist_cache()
        } else {
            DistCache::new()
        };
        let solved = self.solve_new_vector(db, new_fact, seed, options, &mut cache);
        if options.reuse_cache {
            self.put_back_dist_cache(cache);
        }
        let phi_new = solved?;
        let norm = linalg::vector::norm2(&phi_new);
        self.insert_phi(new_fact, phi_new);
        Ok(norm)
    }

    /// Extend to a batch of new facts, one linear solve each, in order.
    /// Earlier-extended facts become usable as `f_old` for later ones, and
    /// the persistent [`DistCache`] carries across the inserts — the
    /// database does not change during the batch, so every distribution
    /// computed for one fact's equations is a hit for the next.
    ///
    /// Fact `i` draws from the independent stream family
    /// `derive_seed(seed, i)`. (It used to be `seed + i`, which made fact
    /// `i`'s family overlap fact `i+1`'s base seed.)
    pub fn extend_batch(
        &mut self,
        db: &Database,
        new_facts: &[FactId],
        seed: u64,
    ) -> Result<(), CoreError> {
        for (i, &f) in new_facts.iter().enumerate() {
            self.extend_with(db, f, derive_seed(seed, i as u64), ExtendOptions::default())?;
        }
        Ok(())
    }

    /// Assemble and solve the linear system for `ϕ(f_new)`.
    ///
    /// Row assembly is sharded **per target** on the embedding's runtime:
    /// target `t` shuffles its candidate pool and draws its KD values from
    /// the derived stream `stream_rng(seed, t)`, and the per-target row
    /// blocks are stacked in target order — so the system `C·ϕ = b`, and
    /// with it the solved vector, is bit-identical at every shard count.
    ///
    /// Distribution lookups go through `cache` (bound against `db` first
    /// via [`DistCache::ensure_bound`], which replays the database's
    /// mutation journal and evicts exactly the entries the missed
    /// mutations can reach — so stale entries can never leak in, and
    /// entries untouched by the mutations stay warm across inserts):
    /// the `f_new`-side distribution is resolved **once per target** rather
    /// than once per equation, the fact-level BFS of `f_new` is pre-warmed
    /// in the scheme plan's DFS order (each scheme resumes its parent's
    /// cached prefix frontier — see [`crate::plan::SchemePlan`]), and each
    /// target works against a read-only cache view whose privately
    /// computed entries are merged back in target order — keeping the
    /// result independent of the shard count.
    fn solve_new_vector(
        &self,
        db: &Database,
        new_fact: FactId,
        seed: u64,
        options: ExtendOptions,
        cache: &mut DistCache,
    ) -> Result<Vec<f64>, CoreError> {
        let config = self.config().clone();
        let per_target = options.nnew_samples.unwrap_or(config.nnew_samples);

        // Candidate old facts: everything embedded except the new fact
        // itself (covers previously extended facts too).
        let mut candidates: Vec<FactId> =
            self.embedded_facts().filter(|&f| f != new_fact).collect();
        if candidates.is_empty() {
            return Err(CoreError::NoEquations(new_fact));
        }
        candidates.sort_unstable(); // determinism independent of HashMap order

        cache.ensure_bound(db, config.kd.exact_limit);
        // Pre-warm each fact's fact-level BFS once per distinct scheme, in
        // the scheme plan's DFS order: a child scheme's BFS is "parent
        // frontier + one step" via the cache's prefix tier, and preorder
        // evaluation guarantees the parent frontier is cached (and hot)
        // when each child asks. All targets sharing a scheme marginalise
        // the same distribution to their attribute, so this belongs in the
        // shared snapshot before the sharded section starts — the
        // per-target views below then hit the fact tier instead of each
        // re-running the BFS privately (views cannot share frontiers with
        // each other mid-section). Warming is bit-invisible: every entry
        // is a pure function of `(db content, scheme, start, limit)`, so
        // only *who computes first* changes, never any value.
        let plan = self.scheme_plan();
        let dfs = plan.dfs();
        // The new fact is always warmed: every target resolves its
        // f_new-side distribution, so each scheme's BFS is computed
        // exactly once here and the views below hit the fact tier. Old
        // facts are warmed **per scheme**, and only when the per-target
        // equation budget lets the targets sharing that scheme
        // collectively sample most of the candidate pool — otherwise the
        // warm pass would compute distributions the shuffled pools never
        // draw, which is slower than letting the (few) sharers duplicate
        // the occasional entry privately.
        let warm_old: Vec<bool> = dfs
            .iter()
            .map(|&idx| {
                let node = plan.node(idx);
                node.is_scheme() && {
                    let sharers = self
                        .targets()
                        .iter()
                        .filter(|t| t.scheme == *node.prefix())
                        .count();
                    sharers * per_target >= candidates.len()
                }
            })
            .collect();
        let live_old: Vec<FactId> = if warm_old.iter().any(|&w| w) {
            candidates
                .iter()
                .copied()
                .filter(|&f| db.fact(f).is_some())
                .collect()
        } else {
            Vec::new()
        };
        for (pos, &idx) in dfs.iter().enumerate() {
            let node = plan.node(idx);
            if !node.is_scheme() {
                continue;
            }
            cache.fact_distribution(db, node.prefix(), new_fact);
            if warm_old[pos] {
                for &f in &live_old {
                    cache.fact_distribution(db, node.prefix(), f);
                }
            }
        }

        let snapshot: &DistCache = cache;
        let assembled = self
            .runtime()
            .par_map_ordered(self.targets(), |t_idx, target| {
                let mut rng = stream_rng(seed, t_idx as u64);
                // Distinct f_old per target: shuffle a copy, take a prefix.
                let mut pool = candidates.clone();
                for i in (1..pool.len()).rev() {
                    let j = rng.random_range(0..=i);
                    pool.swap(i, j);
                }
                let mut view = snapshot.view();
                // The f_new side of every equation of this target is the
                // same distribution: resolve it once, not per equation.
                let q_new = view.value_distribution(db, &target.scheme, target.attr, new_fact);
                let mut rows: Vec<Vec<f64>> = Vec::new();
                let mut ys: Vec<f64> = Vec::new();
                for &f_old in &pool {
                    if rows.len() >= per_target {
                        break;
                    }
                    // A target whose f_new-side distribution provably does
                    // not exist can never yield an equation.
                    if q_new.is_nonexistent() {
                        break;
                    }
                    // Dead f_old (deleted since training) can't contribute.
                    if db.fact(f_old).is_none() {
                        continue;
                    }
                    let Some(y) = kd_cached(
                        db,
                        self.kernels(),
                        &target.scheme,
                        target.attr,
                        f_old,
                        new_fact,
                        &q_new,
                        &config.kd,
                        &mut rng,
                        &mut view,
                    ) else {
                        continue;
                    };
                    let phi_old = self
                        .embedding(f_old)
                        // PANICS: never — candidates come from embedded_facts.
                        .expect("candidate comes from embedded_facts");
                    // PANICS: never — ϕ and ψ share the model dimension.
                    let row = self.psi(t_idx).matvec(phi_old).expect("dims agree");
                    rows.push(row);
                    ys.push(y);
                }
                (rows, ys, view.into_delta())
            });
        let mut c = Matrix::zeros(0, 0);
        let mut b = Vec::new();
        for (rows, ys, delta) in assembled {
            for row in &rows {
                c.push_row(row);
            }
            b.extend(ys);
            // Per-target caches merge in target order (shard-independent).
            cache.absorb(delta);
        }
        if c.rows() == 0 {
            // No KD equation could be built — the new fact is disconnected
            // from every embedded fact under all schemes (e.g. all its FK
            // neighbourhoods are empty). Fall back to the centroid of the
            // existing embeddings: a neutral point that keeps downstream
            // pipelines running and is the natural "no information" answer.
            let mut mean = vec![0.0; self.dim()];
            for f in &candidates {
                if let Some(v) = self.embedding(*f) {
                    linalg::vector::axpy(1.0, v, &mut mean);
                }
            }
            linalg::vector::scale(1.0 / candidates.len() as f64, &mut mean);
            return Ok(mean);
        }
        let method = match config.ridge {
            Some(lambda) => LstsqMethod::Ridge(lambda),
            None => LstsqMethod::PseudoInverse,
        };
        Ok(lstsq(&c, &b, method)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ForwardConfig;
    use crate::kd::kd;
    use reldb::movies::movies_database_labeled;
    use reldb::{cascade_delete, restore_journal};
    use stembed_runtime::rng::DetRng;
    use stembed_runtime::Runtime;

    fn cfg() -> ForwardConfig {
        ForwardConfig {
            dim: 8,
            epochs: 5,
            nsamples: 30,
            ..ForwardConfig::small()
        }
    }

    /// Shared scenario: cascade-delete actor a5 (which takes collaboration
    /// c2 with it), train a static embedding of ACTORS on the remainder,
    /// then restore and extend.
    fn scenario() -> (
        reldb::Database,
        std::collections::HashMap<&'static str, FactId>,
        reldb::DeletionJournal,
    ) {
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
        (db, ids, journal)
    }

    #[test]
    fn extend_is_stable_and_produces_a_vector() {
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 42).unwrap();
        let snapshot: Vec<(FactId, Vec<f64>)> = emb
            .embedded_facts()
            .map(|f| (f, emb.embedding(f).unwrap().to_vec()))
            .collect();

        restore_journal(&mut db, &journal).unwrap();
        let norm = emb.extend(&db, ids["a5"], 7).unwrap();
        assert!(norm.is_finite());

        // Stability: bit-identical old vectors (the paper's core promise).
        for (f, old) in &snapshot {
            assert_eq!(emb.embedding(*f).unwrap(), old.as_slice(), "{f} drifted");
        }
        let new_vec = emb.embedding(ids["a5"]).unwrap();
        assert_eq!(new_vec.len(), 8);
        assert!(new_vec.iter().all(|v| v.is_finite()));
        assert!(new_vec.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn extend_respects_bilinear_constraints_approximately() {
        // The solved vector should fit its own equations better than a
        // random vector does: compare residuals of Eq. 6 on fresh KD draws.
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 1).unwrap();
        restore_journal(&mut db, &journal).unwrap();
        emb.extend(&db, ids["a5"], 3).unwrap();

        let mut rng = DetRng::seed_from_u64(11);
        let mut resid_solved = 0.0;
        let mut resid_random = 0.0;
        let random: Vec<f64> = (0..emb.dim())
            .map(|_| rng.random_range(-0.3..0.3))
            .collect();
        let mut n = 0usize;
        for (t_idx, target) in emb.targets().iter().enumerate() {
            for old_label in ["a1", "a2", "a3", "a4"] {
                let f_old = ids[old_label];
                let Some(y) = kd(
                    &db,
                    emb.kernels(),
                    &target.scheme,
                    target.attr,
                    f_old,
                    ids["a5"],
                    &emb.config().kd,
                    &mut rng,
                ) else {
                    continue;
                };
                let c = emb
                    .psi(t_idx)
                    .matvec(emb.embedding(f_old).unwrap())
                    .unwrap();
                let pred = linalg::vector::dot(emb.embedding(ids["a5"]).unwrap(), &c);
                let pred_rand = linalg::vector::dot(&random, &c);
                resid_solved += (pred - y) * (pred - y);
                resid_random += (pred_rand - y) * (pred_rand - y);
                n += 1;
            }
        }
        assert!(n > 0);
        assert!(
            resid_solved < resid_random,
            "solved {resid_solved} must beat random {resid_random} over {n} equations"
        );
    }

    #[test]
    fn batch_extension_covers_all_new_facts() {
        let (mut db, ids) = movies_database_labeled();
        let j1 = cascade_delete(&mut db, ids["a5"], false).unwrap();
        let j2 = cascade_delete(&mut db, ids["a3"], false).unwrap();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 9).unwrap();
        restore_journal(&mut db, &j2).unwrap();
        restore_journal(&mut db, &j1).unwrap();
        emb.extend_batch(&db, &[ids["a3"], ids["a5"]], 13).unwrap();
        assert!(emb.embedding(ids["a3"]).is_some());
        assert!(emb.embedding(ids["a5"]).is_some());
        assert_eq!(emb.len(), 5);
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn stale_cache_is_invalidated_by_database_mutations() {
        // Delete→mutate→restore cycle: the warm cache must never leak
        // entries computed against an older epoch.
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb0 = ForwardEmbedding::train(&db, actors, &cfg(), 42).unwrap();
        restore_journal(&mut db, &journal).unwrap();

        let mut emb_warm = emb0.clone();
        emb_warm.extend(&db, ids["a5"], 7).unwrap();
        let v1 = emb_warm.embedding(ids["a5"]).unwrap().to_vec();
        assert!(emb_warm.dist_cache().stats().misses > 0, "cache unused");

        // Mutate the database: cascade-delete m6 (changes the walk
        // distributions of several embedded actors).
        let j_m6 = reldb::cascade_delete(&mut db, ids["m6"], false).unwrap();
        emb_warm.forget(ids["a5"]);
        emb_warm.extend(&db, ids["a5"], 7).unwrap();
        let v2_warm = emb_warm.embedding(ids["a5"]).unwrap().to_vec();
        assert!(
            emb_warm.dist_cache().stats().replays >= 1,
            "epoch change must be caught up via journal replay"
        );
        assert!(
            emb_warm.dist_cache().stats().evicted >= 1,
            "the m6 cascade touches walk-scheme interiors; entries must go"
        );
        // Cold-cache reference on the same mutated database.
        let mut emb_cold = emb0.clone();
        emb_cold.extend(&db, ids["a5"], 7).unwrap();
        let v2_cold = emb_cold.embedding(ids["a5"]).unwrap().to_vec();
        assert_eq!(bits(&v2_warm), bits(&v2_cold), "stale cache entries leaked");
        assert_ne!(
            bits(&v1),
            bits(&v2_warm),
            "the deletion must change the solved vector — if it does not, \
             this test cannot detect stale reuse"
        );

        // Restore: database content is back to the v1 state (new epoch);
        // the re-solved vector must be exactly v1 again.
        restore_journal(&mut db, &j_m6).unwrap();
        emb_warm.forget(ids["a5"]);
        emb_warm.extend(&db, ids["a5"], 7).unwrap();
        assert_eq!(bits(emb_warm.embedding(ids["a5"]).unwrap()), bits(&v1));
    }

    #[test]
    fn batch_extension_reuses_the_cache_and_matches_uncached() {
        let (mut db, ids) = movies_database_labeled();
        let j1 = cascade_delete(&mut db, ids["a5"], false).unwrap();
        let j2 = cascade_delete(&mut db, ids["a3"], false).unwrap();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb0 = ForwardEmbedding::train(&db, actors, &cfg(), 9).unwrap();
        restore_journal(&mut db, &j2).unwrap();
        restore_journal(&mut db, &j1).unwrap();

        let mut cached = emb0.clone();
        cached
            .extend_batch(&db, &[ids["a3"], ids["a5"]], 13)
            .unwrap();
        let stats = cached.dist_cache().stats();
        assert!(stats.hits > 0, "the batch must reuse cached distributions");
        assert_eq!(
            stats.invalidations, 0,
            "the database does not change during a batch"
        );

        // Reference: same seeds, but every solve on a throwaway cache.
        let mut uncached = emb0.clone();
        for (i, f) in [ids["a3"], ids["a5"]].into_iter().enumerate() {
            uncached
                .extend_with(
                    &db,
                    f,
                    derive_seed(13, i as u64),
                    ExtendOptions {
                        nnew_samples: None,
                        reuse_cache: false,
                    },
                )
                .unwrap();
        }
        assert!(
            uncached.dist_cache().is_empty(),
            "throwaway caches persisted"
        );
        for f in [ids["a3"], ids["a5"]] {
            assert_eq!(
                bits(cached.embedding(f).unwrap()),
                bits(uncached.embedding(f).unwrap()),
                "cached and uncached extension diverged for {f}"
            );
        }
    }

    #[test]
    fn repeat_extension_hits_the_prefix_and_kd_tiers() {
        // Forget + re-extend on an unchanged database: the second solve
        // must be served by the retained cache's prefix frontiers and KD
        // values — and still produce the exact bits of a throwaway-cache
        // solve.
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb0 = ForwardEmbedding::train(&db, actors, &cfg(), 42).unwrap();
        restore_journal(&mut db, &journal).unwrap();

        let mut warm = emb0.clone();
        warm.extend(&db, ids["a5"], 7).unwrap();
        let first = warm.embedding(ids["a5"]).unwrap().to_vec();
        let after_first = warm.dist_cache().stats();
        assert!(
            after_first.prefix_misses > 0,
            "the pre-warm pass assembles frontiers through the prefix tier"
        );

        warm.forget(ids["a5"]);
        warm.extend(&db, ids["a5"], 7).unwrap();
        let second = warm.embedding(ids["a5"]).unwrap().to_vec();
        let after_second = warm.dist_cache().stats();
        assert!(
            after_second.kd_hits > after_first.kd_hits,
            "re-solving the same fact must reuse cached exact KD values"
        );
        assert_eq!(
            after_second.prefix_misses, after_first.prefix_misses,
            "no frontier may be rebuilt when the database is unchanged"
        );
        assert_eq!(bits(&first), bits(&second));

        // Throwaway-cache reference: identical bits.
        let mut cold = emb0.clone();
        cold.extend_with(
            &db,
            ids["a5"],
            7,
            ExtendOptions {
                nnew_samples: None,
                reuse_cache: false,
            },
        )
        .unwrap();
        assert_eq!(bits(&first), bits(cold.embedding(ids["a5"]).unwrap()));
    }

    #[test]
    fn extension_is_shard_invariant() {
        let (db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let run = |shards: usize| {
            let mut emb =
                ForwardEmbedding::train_with_runtime(&db, actors, &cfg(), 42, Runtime::new(shards))
                    .unwrap();
            let mut db2 = db.clone();
            restore_journal(&mut db2, &journal).unwrap();
            emb.extend(&db2, ids["a5"], 7).unwrap();
            emb.embedding(ids["a5"]).unwrap().to_vec()
        };
        let base = run(1);
        for shards in [2usize, 8] {
            assert_eq!(run(shards), base, "shards={shards}: ϕ(a5) diverged");
        }
    }

    #[test]
    fn ridge_option_also_works() {
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let config = ForwardConfig {
            ridge: Some(1e-3),
            ..cfg()
        };
        let mut emb = ForwardEmbedding::train(&db, actors, &config, 21).unwrap();
        restore_journal(&mut db, &journal).unwrap();
        emb.extend(&db, ids["a5"], 2).unwrap();
        assert!(emb.embedding(ids["a5"]).is_some());
    }

    #[test]
    fn extend_rejects_wrong_relation_and_dead_facts() {
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 4).unwrap();
        // m1 is a MOVIES fact.
        assert!(matches!(
            emb.extend(&db, ids["m1"], 0),
            Err(CoreError::WrongRelation(_))
        ));
        // a5 is still deleted at this point.
        assert!(matches!(
            emb.extend(&db, ids["a5"], 0),
            Err(CoreError::UnknownFact(_))
        ));
        restore_journal(&mut db, &journal).unwrap();
        assert!(emb.extend(&db, ids["a5"], 0).is_ok());
    }
}
