//! FoRWaRD dynamic phase: extending the embedding to new tuples
//! (paper §V-E).
//!
//! For a newly inserted `R`-fact `f_new` we want `ϕ(f_new)` to satisfy
//! Eq. 6 against already-embedded facts:
//!
//! ```text
//! ϕ(f_new)ᵀ · ψ(s,A) · ϕ(f_old) = KD(d_{s,f_old}[A], d_{s,f_new}[A])
//! ```
//!
//! Each choice of `(f_old, s, A)` contributes one linear equation
//! `cᵀ ϕ(f_new) = y` with `c = ψ(s,A)·ϕ(f_old)` (Eq. 7) and
//! `y` the KD value (Eq. 8). Stacking `n_new_samples` equations per target
//! yields the overdetermined system `C·ϕ(f_new) = b` (Eq. 9), solved with
//! the SVD **pseudoinverse** `ϕ(f_new) = C⁺·b` (Eq. 10) — no gradient
//! descent, which is exactly why FoRWaRD's one-by-one extension is fast
//! (paper Table VI).
//!
//! Crucially, **no existing embedding changes**: the method writes exactly
//! one new vector. This is the stability guarantee of the paper's problem
//! statement, and the test below asserts bit-identity of every old vector.

use crate::kd::kd;
use crate::train::ForwardEmbedding;
use crate::CoreError;
use linalg::{lstsq, LstsqMethod, Matrix};
use reldb::{Database, FactId};
use stembed_runtime::stream_rng;

/// Options controlling the dynamic extension.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtendOptions {
    /// Override the per-target equation budget (`None`: use the trained
    /// config's `nnew_samples`).
    pub nnew_samples: Option<usize>,
}

impl ForwardEmbedding {
    /// Extend the embedding to one newly inserted fact. Old embeddings are
    /// untouched; returns the new vector's L2 norm (diagnostics).
    pub fn extend(&mut self, db: &Database, new_fact: FactId, seed: u64) -> Result<f64, CoreError> {
        self.extend_with(db, new_fact, seed, ExtendOptions::default())
    }

    /// [`ForwardEmbedding::extend`] with explicit options.
    pub fn extend_with(
        &mut self,
        db: &Database,
        new_fact: FactId,
        seed: u64,
        options: ExtendOptions,
    ) -> Result<f64, CoreError> {
        if new_fact.rel != self.relation() {
            return Err(CoreError::WrongRelation(new_fact));
        }
        if db.fact(new_fact).is_none() {
            return Err(CoreError::UnknownFact(new_fact));
        }
        let phi_new = self.solve_new_vector(db, new_fact, seed, options)?;
        let norm = linalg::vector::norm2(&phi_new);
        self.insert_phi(new_fact, phi_new);
        Ok(norm)
    }

    /// Extend to a batch of new facts, one linear solve each, in order.
    /// Earlier-extended facts become usable as `f_old` for later ones.
    pub fn extend_batch(
        &mut self,
        db: &Database,
        new_facts: &[FactId],
        seed: u64,
    ) -> Result<(), CoreError> {
        for (i, &f) in new_facts.iter().enumerate() {
            self.extend_with(db, f, seed.wrapping_add(i as u64), ExtendOptions::default())?;
        }
        Ok(())
    }

    /// Assemble and solve the linear system for `ϕ(f_new)`.
    ///
    /// Row assembly is sharded **per target** on the embedding's runtime:
    /// target `t` shuffles its candidate pool and draws its KD values from
    /// the derived stream `stream_rng(seed, t)`, and the per-target row
    /// blocks are stacked in target order — so the system `C·ϕ = b`, and
    /// with it the solved vector, is bit-identical at every shard count.
    fn solve_new_vector(
        &self,
        db: &Database,
        new_fact: FactId,
        seed: u64,
        options: ExtendOptions,
    ) -> Result<Vec<f64>, CoreError> {
        let config = self.config().clone();
        let per_target = options.nnew_samples.unwrap_or(config.nnew_samples);

        // Candidate old facts: everything embedded except the new fact
        // itself (covers previously extended facts too).
        let mut candidates: Vec<FactId> =
            self.embedded_facts().filter(|&f| f != new_fact).collect();
        if candidates.is_empty() {
            return Err(CoreError::NoEquations(new_fact));
        }
        candidates.sort_unstable(); // determinism independent of HashMap order

        let assembled = self
            .runtime()
            .par_map_ordered(self.targets(), |t_idx, target| {
                let mut rng = stream_rng(seed, t_idx as u64);
                // Distinct f_old per target: shuffle a copy, take a prefix.
                let mut pool = candidates.clone();
                for i in (1..pool.len()).rev() {
                    let j = rng.random_range(0..=i);
                    pool.swap(i, j);
                }
                let mut rows: Vec<Vec<f64>> = Vec::new();
                let mut ys: Vec<f64> = Vec::new();
                for &f_old in &pool {
                    if rows.len() >= per_target {
                        break;
                    }
                    // Dead f_old (deleted since training) can't contribute.
                    if db.fact(f_old).is_none() {
                        continue;
                    }
                    let Some(y) = kd(
                        db,
                        self.kernels(),
                        &target.scheme,
                        target.attr,
                        f_old,
                        new_fact,
                        &config.kd,
                        &mut rng,
                    ) else {
                        continue;
                    };
                    let phi_old = self
                        .embedding(f_old)
                        .expect("candidate comes from embedded_facts");
                    let row = self.psi(t_idx).matvec(phi_old).expect("dims agree");
                    rows.push(row);
                    ys.push(y);
                }
                (rows, ys)
            });
        let mut c = Matrix::zeros(0, 0);
        let mut b = Vec::new();
        for (rows, ys) in assembled {
            for row in &rows {
                c.push_row(row);
            }
            b.extend(ys);
        }
        if c.rows() == 0 {
            // No KD equation could be built — the new fact is disconnected
            // from every embedded fact under all schemes (e.g. all its FK
            // neighbourhoods are empty). Fall back to the centroid of the
            // existing embeddings: a neutral point that keeps downstream
            // pipelines running and is the natural "no information" answer.
            let mut mean = vec![0.0; self.dim()];
            for f in &candidates {
                if let Some(v) = self.embedding(*f) {
                    linalg::vector::axpy(1.0, v, &mut mean);
                }
            }
            linalg::vector::scale(1.0 / candidates.len() as f64, &mut mean);
            return Ok(mean);
        }
        let method = match config.ridge {
            Some(lambda) => LstsqMethod::Ridge(lambda),
            None => LstsqMethod::PseudoInverse,
        };
        Ok(lstsq(&c, &b, method)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ForwardConfig;
    use reldb::movies::movies_database_labeled;
    use reldb::{cascade_delete, restore_journal};
    use stembed_runtime::rng::DetRng;
    use stembed_runtime::Runtime;

    fn cfg() -> ForwardConfig {
        ForwardConfig {
            dim: 8,
            epochs: 5,
            nsamples: 30,
            ..ForwardConfig::small()
        }
    }

    /// Shared scenario: cascade-delete actor a5 (which takes collaboration
    /// c2 with it), train a static embedding of ACTORS on the remainder,
    /// then restore and extend.
    fn scenario() -> (
        reldb::Database,
        std::collections::HashMap<&'static str, FactId>,
        reldb::DeletionJournal,
    ) {
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
        (db, ids, journal)
    }

    #[test]
    fn extend_is_stable_and_produces_a_vector() {
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 42).unwrap();
        let snapshot: Vec<(FactId, Vec<f64>)> = emb
            .embedded_facts()
            .map(|f| (f, emb.embedding(f).unwrap().to_vec()))
            .collect();

        restore_journal(&mut db, &journal).unwrap();
        let norm = emb.extend(&db, ids["a5"], 7).unwrap();
        assert!(norm.is_finite());

        // Stability: bit-identical old vectors (the paper's core promise).
        for (f, old) in &snapshot {
            assert_eq!(emb.embedding(*f).unwrap(), old.as_slice(), "{f} drifted");
        }
        let new_vec = emb.embedding(ids["a5"]).unwrap();
        assert_eq!(new_vec.len(), 8);
        assert!(new_vec.iter().all(|v| v.is_finite()));
        assert!(new_vec.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn extend_respects_bilinear_constraints_approximately() {
        // The solved vector should fit its own equations better than a
        // random vector does: compare residuals of Eq. 6 on fresh KD draws.
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 1).unwrap();
        restore_journal(&mut db, &journal).unwrap();
        emb.extend(&db, ids["a5"], 3).unwrap();

        let mut rng = DetRng::seed_from_u64(11);
        let mut resid_solved = 0.0;
        let mut resid_random = 0.0;
        let random: Vec<f64> = (0..emb.dim())
            .map(|_| rng.random_range(-0.3..0.3))
            .collect();
        let mut n = 0usize;
        for (t_idx, target) in emb.targets().iter().enumerate() {
            for old_label in ["a1", "a2", "a3", "a4"] {
                let f_old = ids[old_label];
                let Some(y) = kd(
                    &db,
                    emb.kernels(),
                    &target.scheme,
                    target.attr,
                    f_old,
                    ids["a5"],
                    &emb.config().kd,
                    &mut rng,
                ) else {
                    continue;
                };
                let c = emb
                    .psi(t_idx)
                    .matvec(emb.embedding(f_old).unwrap())
                    .unwrap();
                let pred = linalg::vector::dot(emb.embedding(ids["a5"]).unwrap(), &c);
                let pred_rand = linalg::vector::dot(&random, &c);
                resid_solved += (pred - y) * (pred - y);
                resid_random += (pred_rand - y) * (pred_rand - y);
                n += 1;
            }
        }
        assert!(n > 0);
        assert!(
            resid_solved < resid_random,
            "solved {resid_solved} must beat random {resid_random} over {n} equations"
        );
    }

    #[test]
    fn batch_extension_covers_all_new_facts() {
        let (mut db, ids) = movies_database_labeled();
        let j1 = cascade_delete(&mut db, ids["a5"], false).unwrap();
        let j2 = cascade_delete(&mut db, ids["a3"], false).unwrap();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 9).unwrap();
        restore_journal(&mut db, &j2).unwrap();
        restore_journal(&mut db, &j1).unwrap();
        emb.extend_batch(&db, &[ids["a3"], ids["a5"]], 13).unwrap();
        assert!(emb.embedding(ids["a3"]).is_some());
        assert!(emb.embedding(ids["a5"]).is_some());
        assert_eq!(emb.len(), 5);
    }

    #[test]
    fn extension_is_shard_invariant() {
        let (db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let run = |shards: usize| {
            let mut emb =
                ForwardEmbedding::train_with_runtime(&db, actors, &cfg(), 42, Runtime::new(shards))
                    .unwrap();
            let mut db2 = db.clone();
            restore_journal(&mut db2, &journal).unwrap();
            emb.extend(&db2, ids["a5"], 7).unwrap();
            emb.embedding(ids["a5"]).unwrap().to_vec()
        };
        let base = run(1);
        for shards in [2usize, 8] {
            assert_eq!(run(shards), base, "shards={shards}: ϕ(a5) diverged");
        }
    }

    #[test]
    fn ridge_option_also_works() {
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let config = ForwardConfig {
            ridge: Some(1e-3),
            ..cfg()
        };
        let mut emb = ForwardEmbedding::train(&db, actors, &config, 21).unwrap();
        restore_journal(&mut db, &journal).unwrap();
        emb.extend(&db, ids["a5"], 2).unwrap();
        assert!(emb.embedding(ids["a5"]).is_some());
    }

    #[test]
    fn extend_rejects_wrong_relation_and_dead_facts() {
        let (mut db, ids, journal) = scenario();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 4).unwrap();
        // m1 is a MOVIES fact.
        assert!(matches!(
            emb.extend(&db, ids["m1"], 0),
            Err(CoreError::WrongRelation(_))
        ));
        // a5 is still deleted at this point.
        assert!(matches!(
            emb.extend(&db, ids["a5"], 0),
            Err(CoreError::UnknownFact(_))
        ));
        restore_journal(&mut db, &journal).unwrap();
        assert!(emb.extend(&db, ids["a5"], 0).is_ok());
    }
}
