//! The unified tuple-embedder interface (paper §III's two-phase problem
//! statement), implemented by FoRWaRD and by the Node2Vec adaptation.
//!
//! The experiment harness trains either embedder in the **static phase**,
//! hands the vectors of the prediction relation to a downstream classifier,
//! and in the **dynamic phase** calls [`TupleEmbedder::extend`] after each
//! insertion batch — the trait contract requires that old embeddings are
//! *never* modified by `extend`.

use crate::config::ForwardConfig;
use crate::train::ForwardEmbedding;
use crate::CoreError;
use dbgraph::DbGraph;
use node2vec::{Node2VecConfig, Node2VecModel};
use reldb::{Database, FactId, RelationId};

/// How the Node2Vec dynamic phase resamples walks (paper §VI-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExtendMode {
    /// Sample walks only from the new nodes; paths through old data are not
    /// recomputed. Fast; the paper's default for tuple-at-a-time arrival.
    #[default]
    OneByOne,
    /// Recompute the full walk corpus (paths from old tuples may traverse
    /// new data), still training only the new nodes. Used by the
    /// "all-at-once" setting.
    AllAtOnce,
}

/// A tuple embedding that can be extended to newly inserted facts without
/// changing existing vectors.
pub trait TupleEmbedder {
    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// The vector of `fact`, if embedded.
    ///
    /// Returned by value: FoRWaRD stores `f64` rows, but the Node2Vec
    /// arenas store `f32` (see `PRECISION.md`), so a borrowed `&[f64]`
    /// is no longer a common denominator. The widening copy is
    /// `dim`-sized and only taken on the read path.
    fn embedding(&self, fact: FactId) -> Option<Vec<f64>>;

    /// Extend the embedding to `new_facts`, which must already be inserted
    /// into `db`. MUST NOT change any existing embedding.
    fn extend(&mut self, db: &Database, new_facts: &[FactId], seed: u64) -> Result<(), CoreError>;

    /// Short display name ("FoRWaRD" / "Node2Vec").
    fn name(&self) -> &'static str;
}

/// FoRWaRD as a [`TupleEmbedder`]. Embeds only the prediction relation
/// (paper §VI-C: "we embed only the relation that contains the tuples that
/// we wish to classify"); `extend` ignores facts of other relations — their
/// contents still influence the embedding through the walk distributions.
///
/// `extend` runs on the embedding's persistent walk-distribution cache
/// (see [`crate::distcache::DistCache`]): all facts of one call share
/// every exact distribution, and the cache stays warm **across calls and
/// across database mutations** — each solve replays the database's
/// mutation journal and evicts only the entries the missed mutations can
/// reach through the FK structure of the cached walk schemes. The
/// experiment harness's one-by-one dynamic protocol therefore carries a
/// progressively warmer cache from round to round instead of starting
/// each insertion round cold.
#[derive(Debug, Clone)]
pub struct ForwardEmbedder {
    inner: ForwardEmbedding,
}

impl ForwardEmbedder {
    /// Static phase.
    pub fn train(
        db: &Database,
        rel: RelationId,
        config: &ForwardConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Ok(ForwardEmbedder {
            inner: ForwardEmbedding::train(db, rel, config, seed)?,
        })
    }

    /// Static phase on an explicit execution runtime (the trained result is
    /// the same for every shard count; only wall-clock changes).
    pub fn train_with_runtime(
        db: &Database,
        rel: RelationId,
        config: &ForwardConfig,
        seed: u64,
        runtime: stembed_runtime::Runtime,
    ) -> Result<Self, CoreError> {
        Ok(ForwardEmbedder {
            inner: ForwardEmbedding::train_with_runtime(db, rel, config, seed, runtime)?,
        })
    }

    /// The underlying embedding.
    pub fn inner(&self) -> &ForwardEmbedding {
        &self.inner
    }

    /// The embedded relation.
    pub fn relation(&self) -> RelationId {
        self.inner.relation()
    }

    /// Hit/miss/invalidation counters of the persistent walk-distribution
    /// cache driving `extend` (diagnostics) — including the prefix-frontier
    /// and KD tiers (`prefix_hits`/`prefix_misses`, `kd_hits`/`kd_misses`).
    pub fn dist_cache_stats(&self) -> crate::distcache::CacheStats {
        self.inner.dist_cache().stats()
    }

    /// The targets' schemes factored into a shared prefix trie — the
    /// deterministic DFS order `extend` pre-warms distributions in (see
    /// [`crate::plan::SchemePlan`]).
    pub fn scheme_plan(&self) -> &crate::plan::SchemePlan {
        self.inner.scheme_plan()
    }
}

impl From<ForwardEmbedding> for ForwardEmbedder {
    /// Wrap an already-trained embedding — callers that train one
    /// `ForwardEmbedding` and reuse it across harness entry points (the
    /// benches' shared-training setup) lift it into the trait object
    /// without retraining.
    fn from(inner: ForwardEmbedding) -> Self {
        ForwardEmbedder { inner }
    }
}

impl TupleEmbedder for ForwardEmbedder {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn embedding(&self, fact: FactId) -> Option<Vec<f64>> {
        self.inner.embedding(fact).map(<[f64]>::to_vec)
    }

    fn extend(&mut self, db: &Database, new_facts: &[FactId], seed: u64) -> Result<(), CoreError> {
        let rel = self.inner.relation();
        let mine: Vec<FactId> = new_facts.iter().copied().filter(|f| f.rel == rel).collect();
        self.inner.extend_batch(db, &mine, seed)
    }

    fn name(&self) -> &'static str {
        "FoRWaRD"
    }
}

/// The dynamic Node2Vec adaptation as a [`TupleEmbedder`]: owns the
/// bipartite graph and the SGNS model; `extend` grows the graph with the
/// new facts, freezes all old node vectors, and continues training on walks
/// from the new nodes only (paper §IV-A).
#[derive(Debug, Clone)]
pub struct Node2VecEmbedder {
    graph: DbGraph,
    model: Node2VecModel,
    mode: ExtendMode,
}

impl Node2VecEmbedder {
    /// Static phase: build `G_D` and train SGNS over it.
    pub fn train(db: &Database, config: &Node2VecConfig, seed: u64) -> Self {
        let graph = DbGraph::build(db);
        let model = Node2VecModel::train(graph.graph(), config, seed);
        Node2VecEmbedder {
            graph,
            model,
            mode: ExtendMode::OneByOne,
        }
    }

    /// Static phase on an explicit execution runtime.
    pub fn train_with_runtime(
        db: &Database,
        config: &Node2VecConfig,
        seed: u64,
        runtime: stembed_runtime::Runtime,
    ) -> Self {
        let graph = DbGraph::build(db);
        let model = Node2VecModel::train_with_runtime(graph.graph(), config, seed, runtime);
        Node2VecEmbedder {
            graph,
            model,
            mode: ExtendMode::OneByOne,
        }
    }

    /// Static phase with **access-locality node ids**: like
    /// [`Node2VecEmbedder::train`], but the graph is built via
    /// [`DbGraph::build_localized`], relabelling nodes in BFS order from
    /// `rel`'s fact nodes before the CSR arrays (and hence the embedding
    /// arenas and the `BucketAlias` negative table) are laid out. The
    /// dynamic phase's continuation walks then touch clustered ids —
    /// fewer negative-table bucket rebuilds and better arena locality.
    ///
    /// Fact-level results are identical in distribution but not
    /// bitwise-equal to [`Node2VecEmbedder::train`] (walk RNG streams are
    /// keyed per node id); both are individually deterministic.
    pub fn train_localized(
        db: &Database,
        rel: RelationId,
        config: &Node2VecConfig,
        seed: u64,
    ) -> Self {
        let graph = DbGraph::build_localized(db, rel);
        let model = Node2VecModel::train(graph.graph(), config, seed);
        Node2VecEmbedder {
            graph,
            model,
            mode: ExtendMode::OneByOne,
        }
    }

    /// [`Node2VecEmbedder::train_localized`] on an explicit execution
    /// runtime.
    pub fn train_localized_with_runtime(
        db: &Database,
        rel: RelationId,
        config: &Node2VecConfig,
        seed: u64,
        runtime: stembed_runtime::Runtime,
    ) -> Self {
        let graph = DbGraph::build_localized(db, rel);
        let model = Node2VecModel::train_with_runtime(graph.graph(), config, seed, runtime);
        Node2VecEmbedder {
            graph,
            model,
            mode: ExtendMode::OneByOne,
        }
    }

    /// Select the dynamic-phase walk-resampling mode.
    pub fn with_mode(mut self, mode: ExtendMode) -> Self {
        self.mode = mode;
        self
    }

    /// The bipartite graph (extended as facts arrive).
    pub fn graph(&self) -> &DbGraph {
        &self.graph
    }

    /// The SGNS model.
    pub fn model(&self) -> &Node2VecModel {
        &self.model
    }

    /// The dynamic-phase walk-resampling mode.
    pub fn mode(&self) -> ExtendMode {
        self.mode
    }

    /// Reassemble an embedder from snapshotted parts (see
    /// `crate::snapshot` for the byte encoding).
    pub fn from_parts(graph: DbGraph, model: Node2VecModel, mode: ExtendMode) -> Self {
        Node2VecEmbedder { graph, model, mode }
    }
}

impl TupleEmbedder for Node2VecEmbedder {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn embedding(&self, fact: FactId) -> Option<Vec<f64>> {
        let node = self.graph.fact_node(fact)?;
        Some(
            self.model
                .embedding(node)
                .iter()
                .map(|&v| f64::from(v))
                .collect(),
        )
    }

    fn extend(&mut self, db: &Database, new_facts: &[FactId], seed: u64) -> Result<(), CoreError> {
        // Validate and dedup first, then grow the graph in one batch so the
        // CSR merge runs once per `extend` call, not once per fact.
        let mut to_add: Vec<FactId> = Vec::new();
        let mut queued: std::collections::HashSet<FactId> = std::collections::HashSet::new();
        for &f in new_facts {
            if db.fact(f).is_none() {
                return Err(CoreError::UnknownFact(f));
            }
            if self.graph.fact_node(f).is_some() || !queued.insert(f) {
                continue; // idempotence: already embedded (or queued)
            }
            to_add.push(f);
        }
        let new_nodes = self.graph.extend_with_facts(db, &to_add);
        match self.mode {
            ExtendMode::OneByOne => {
                // Continuation walks start at the new nodes; with none
                // there is nothing to walk from (idempotent no-op).
                if new_nodes.is_empty() {
                    return Ok(());
                }
                self.model.extend(self.graph.graph(), &new_nodes, seed);
            }
            ExtendMode::AllAtOnce => {
                // Recompute paths from *all* nodes; training still only
                // updates the (unfrozen) new nodes. This runs even when no
                // node is new — a delete-only round must still refresh the
                // surviving walks and the negative-sampling counts.
                let all: Vec<_> = self.graph.graph().node_ids().collect();
                // `extend_with_starts` freezes old nodes first, so passing
                // every node as a walk start is safe: gradients cannot
                // reach frozen ones.
                self.model
                    .extend_with_starts(self.graph.graph(), &all, seed);
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "Node2Vec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use node2vec::Node2VecConfig;
    use reldb::movies::movies_database_labeled;
    use reldb::{cascade_delete, restore_journal};

    fn fwd_cfg() -> ForwardConfig {
        ForwardConfig {
            dim: 8,
            epochs: 4,
            nsamples: 30,
            ..ForwardConfig::small()
        }
    }

    #[test]
    fn both_embedders_satisfy_the_stability_contract() {
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();

        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut fwd = ForwardEmbedder::train(&db, actors, &fwd_cfg(), 3).unwrap();
        let mut n2v = Node2VecEmbedder::train(&db, &Node2VecConfig::small(), 3);

        let actor_facts: Vec<FactId> = db.fact_ids(actors).into_iter().collect();
        let fwd_before: Vec<Vec<f64>> = actor_facts
            .iter()
            .map(|&f| fwd.embedding(f).unwrap())
            .collect();
        let n2v_before: Vec<Vec<f64>> = actor_facts
            .iter()
            .map(|&f| n2v.embedding(f).unwrap())
            .collect();

        let restored = restore_journal(&mut db, &journal).unwrap();
        fwd.extend(&db, &restored, 5).unwrap();
        n2v.extend(&db, &restored, 5).unwrap();

        for (i, &f) in actor_facts.iter().enumerate() {
            assert_eq!(fwd.embedding(f).unwrap(), fwd_before[i].as_slice());
            assert_eq!(n2v.embedding(f).unwrap(), n2v_before[i].as_slice());
        }
        // Both embed the restored actor.
        assert!(fwd.embedding(ids["a5"]).is_some());
        assert!(n2v.embedding(ids["a5"]).is_some());
        // Node2Vec also embeds the restored collaboration; FoRWaRD does not
        // (it embeds only the target relation).
        assert!(n2v.embedding(ids["c2"]).is_some());
        assert!(fwd.embedding(ids["c2"]).is_none());
    }

    #[test]
    fn all_at_once_mode_is_also_stable() {
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a5"], false).unwrap();
        let mut n2v = Node2VecEmbedder::train(&db, &Node2VecConfig::small(), 8)
            .with_mode(ExtendMode::AllAtOnce);
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let before: Vec<(FactId, Vec<f64>)> = db
            .fact_ids(actors)
            .into_iter()
            .map(|f| (f, n2v.embedding(f).unwrap()))
            .collect();
        let restored = restore_journal(&mut db, &journal).unwrap();
        n2v.extend(&db, &restored, 1).unwrap();
        for (f, old) in &before {
            assert_eq!(n2v.embedding(*f).unwrap(), old.as_slice());
        }
        assert!(n2v.embedding(ids["a5"]).is_some());
    }

    #[test]
    fn extend_is_idempotent_for_known_facts() {
        let (db, ids) = movies_database_labeled();
        let mut n2v = Node2VecEmbedder::train(&db, &Node2VecConfig::small(), 2);
        let before = n2v.embedding(ids["a1"]).unwrap();
        // Extending with an already-embedded fact is a no-op.
        n2v.extend(&db, &[ids["a1"]], 9).unwrap();
        assert_eq!(n2v.embedding(ids["a1"]).unwrap(), before.as_slice());
    }

    #[test]
    fn names_and_dims() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let fwd = ForwardEmbedder::train(&db, actors, &fwd_cfg(), 0).unwrap();
        let n2v = Node2VecEmbedder::train(&db, &Node2VecConfig::small(), 0);
        assert_eq!(fwd.name(), "FoRWaRD");
        assert_eq!(n2v.name(), "Node2Vec");
        assert_eq!(fwd.dim(), 8);
        assert_eq!(n2v.dim(), 16);
    }
}
