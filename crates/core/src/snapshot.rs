//! Byte encoding of embedding state for durability snapshots.
//!
//! `stembed-wal` snapshots carry embedding state as tagged opaque blobs —
//! the WAL layer knows nothing about `ϕ`/`ψ` matrices or SGNS arenas. This
//! module owns those blobs: [`encode_forward`]/[`decode_forward`] for a
//! [`ForwardEmbedding`]-backed [`ForwardEmbedder`] and
//! [`encode_node2vec`]/[`decode_node2vec`] for a [`Node2VecEmbedder`].
//!
//! Two properties matter more than compactness:
//!
//! * **Bit-exactness.** Every float travels as raw IEEE-754 bits
//!   (`f64::to_bits`/`f32::to_bits`), so `decode(encode(x))` reproduces
//!   `x`'s learned state to the last bit — the property that lets the
//!   crash-recovery suite compare a recovered run against an
//!   uninterrupted reference by byte equality.
//! * **Canonical output.** Unordered containers are serialised in a fixed
//!   sort order (the `ϕ` table by fact id), so encoding the same logical
//!   state twice yields the same bytes — "recover twice → identical
//!   snapshots" is checkable with `==` on `Vec<u8>`.
//!
//! Only genuinely learned state is stored. Everything that is a pure
//! function of `(schema, config)` — walk targets, sigmoid bins, the
//! negative-sampling table (derived from visit counts), graph lookup maps,
//! FK column classes — is **re-derived** on decode; the repo's determinism
//! contract (`PRECISION.md`) guarantees re-derivation is bit-identical to
//! the retained originals.

use crate::config::ForwardConfig;
use crate::embedder::{ExtendMode, ForwardEmbedder, Node2VecEmbedder};
use crate::kd::KdOptions;
use crate::kernel::{KernelAssignment, KernelKind};
use crate::train::ForwardEmbedding;
use dbgraph::{DbGraph, Graph, NodeId, NodeKind};
use linalg::Matrix;
use node2vec::{Node2VecConfig, Node2VecModel, SgnsModel};
use reldb::Database;
use std::collections::BTreeMap;
use stembed_runtime::Runtime;
use stembed_wal::codec::{
    read_fact_id, read_value, write_fact_id, write_value, ByteReader, ByteWriter,
};
use stembed_wal::WalError;

/// Blob tag under which the FoRWaRD embedder is stored in a
/// [`stembed_wal::Snapshot`].
pub const FORWARD_BLOB: &str = "forward";
/// Blob tag under which the Node2Vec embedder is stored.
pub const NODE2VEC_BLOB: &str = "node2vec";

// ---------------------------------------------------------------- FoRWaRD

/// Serialize a FoRWaRD embedder: relation, config, kernel kinds, the `ϕ`
/// table (sorted by fact id), the `ψ` matrices, and the loss history.
pub fn encode_forward(emb: &ForwardEmbedder) -> Vec<u8> {
    let inner = emb.inner();
    let mut w = ByteWriter::new();
    w.u32(inner.relation().0);
    write_forward_config(&mut w, inner.config());
    write_kernel_kinds(&mut w, &inner.kernels().kinds());
    // ϕ in canonical (rel, row) order. `embedded_facts` already yields
    // ascending `FactId`s; the explicit sort pins the byte layout to the
    // canonical key rather than to `Ord`'s derive order.
    let mut facts: Vec<_> = inner.embedded_facts().collect();
    facts.sort_unstable_by_key(|f| (f.rel.0, f.row));
    w.len_prefix(facts.len());
    for f in facts {
        write_fact_id(&mut w, f);
        // PANICS: never — `f` was just listed by `embedded_facts()`.
        for &x in inner.embedding(f).expect("listed fact is embedded") {
            w.f64_bits(x);
        }
    }
    let targets = inner.targets().len();
    w.len_prefix(targets);
    for t in 0..targets {
        for &x in inner.psi(t).as_slice() {
            w.f64_bits(x);
        }
    }
    w.len_prefix(inner.epoch_losses().len());
    for &l in inner.epoch_losses() {
        w.f64_bits(l);
    }
    w.into_bytes()
}

/// Rebuild a FoRWaRD embedder from [`encode_forward`] bytes, against the
/// (already recovered) database the embedding belongs to.
pub fn decode_forward(db: &Database, bytes: &[u8]) -> Result<ForwardEmbedder, WalError> {
    let mut r = ByteReader::new(bytes);
    let rel = reldb::RelationId(r.u32()?);
    let config = read_forward_config(&mut r)?;
    let kernels = KernelAssignment::from_kinds(&read_kernel_kinds(&mut r)?);
    let nfacts = r.count_prefix(8 + 8 * config.dim)?;
    let mut phi = BTreeMap::new();
    for _ in 0..nfacts {
        let f = read_fact_id(&mut r)?;
        let mut v = Vec::with_capacity(config.dim);
        for _ in 0..config.dim {
            v.push(r.f64_bits()?);
        }
        if phi.insert(f, v).is_some() {
            return Err(WalError::Corrupt(format!("duplicate ϕ entry for {f}")));
        }
    }
    let ntargets = r.count_prefix(8 * config.dim * config.dim)?;
    let mut psi = Vec::with_capacity(ntargets);
    for _ in 0..ntargets {
        let mut data = Vec::with_capacity(config.dim * config.dim);
        for _ in 0..config.dim * config.dim {
            data.push(r.f64_bits()?);
        }
        psi.push(Matrix::from_vec(config.dim, config.dim, data));
    }
    let nlosses = r.count_prefix(8)?;
    let mut epoch_losses = Vec::with_capacity(nlosses);
    for _ in 0..nlosses {
        epoch_losses.push(r.f64_bits()?);
    }
    if !r.is_exhausted() {
        return Err(WalError::Corrupt(format!(
            "{} trailing bytes after forward blob",
            r.remaining()
        )));
    }
    let inner =
        ForwardEmbedding::from_snapshot_parts(db, rel, config, kernels, phi, psi, epoch_losses)
            .map_err(|e| WalError::Corrupt(e.to_string()))?;
    Ok(ForwardEmbedder::from(inner))
}

fn write_forward_config(w: &mut ByteWriter, c: &ForwardConfig) {
    w.u64(c.dim as u64);
    w.u64(c.max_walk_len as u64);
    w.u64(c.nsamples as u64);
    w.u64(c.epochs as u64);
    w.u64(c.batch_size as u64);
    w.f64_bits(c.learning_rate);
    w.u64(c.nnew_samples as u64);
    w.f64_bits(c.init_bound);
    w.u64(c.kd.exact_limit as u64);
    w.u64(c.kd.mc_pairs as u64);
    w.u64(c.kd.max_attempts as u64);
    match c.ridge {
        None => w.u8(0),
        Some(l) => {
            w.u8(1);
            w.f64_bits(l);
        }
    }
}

fn read_forward_config(r: &mut ByteReader<'_>) -> Result<ForwardConfig, WalError> {
    Ok(ForwardConfig {
        dim: read_usize(r)?,
        max_walk_len: read_usize(r)?,
        nsamples: read_usize(r)?,
        epochs: read_usize(r)?,
        batch_size: read_usize(r)?,
        learning_rate: r.f64_bits()?,
        nnew_samples: read_usize(r)?,
        init_bound: r.f64_bits()?,
        kd: KdOptions {
            exact_limit: read_usize(r)?,
            mc_pairs: read_usize(r)?,
            max_attempts: read_usize(r)?,
        },
        ridge: match r.u8()? {
            0 => None,
            1 => Some(r.f64_bits()?),
            t => return Err(WalError::Corrupt(format!("bad ridge tag {t}"))),
        },
    })
}

fn write_kernel_kinds(w: &mut ByteWriter, kinds: &[Vec<KernelKind>]) {
    w.len_prefix(kinds.len());
    for per_attr in kinds {
        w.len_prefix(per_attr.len());
        for kind in per_attr {
            match kind {
                KernelKind::Equality => w.u8(0),
                KernelKind::Gaussian { variance } => {
                    w.u8(1);
                    w.f64_bits(*variance);
                }
                KernelKind::EditDistance { scale } => {
                    w.u8(2);
                    w.f64_bits(*scale);
                }
            }
        }
    }
}

fn read_kernel_kinds(r: &mut ByteReader<'_>) -> Result<Vec<Vec<KernelKind>>, WalError> {
    let rels = r.count_prefix(8)?;
    let mut kinds = Vec::with_capacity(rels);
    for _ in 0..rels {
        let attrs = r.count_prefix(1)?;
        let mut per_attr = Vec::with_capacity(attrs);
        for _ in 0..attrs {
            per_attr.push(match r.u8()? {
                0 => KernelKind::Equality,
                1 => KernelKind::Gaussian {
                    variance: r.f64_bits()?,
                },
                2 => KernelKind::EditDistance {
                    scale: r.f64_bits()?,
                },
                t => return Err(WalError::Corrupt(format!("bad kernel tag {t}"))),
            });
        }
        kinds.push(per_attr);
    }
    Ok(kinds)
}

// --------------------------------------------------------------- Node2Vec

/// Serialize a Node2Vec embedder: config, extend mode, the CSR graph with
/// its kind table and optional BFS relabelling, the SGNS parameter arenas,
/// and the walk visit counts (from which the negative-sampling table is
/// re-derived byte-identically).
pub fn encode_node2vec(emb: &Node2VecEmbedder) -> Vec<u8> {
    let mut w = ByteWriter::new();
    write_n2v_config(&mut w, emb.model().config());
    w.u8(match emb.mode() {
        ExtendMode::OneByOne => 0,
        ExtendMode::AllAtOnce => 1,
    });
    let (offsets, neighbors, edge_count) = emb.graph().graph().csr_parts();
    w.len_prefix(offsets.len());
    for &o in offsets {
        w.u32(o);
    }
    w.len_prefix(neighbors.len());
    for &n in neighbors {
        w.u32(n.0);
    }
    w.u64(edge_count as u64);
    let kinds = emb.graph().kinds();
    w.len_prefix(kinds.len());
    for kind in kinds {
        match kind {
            NodeKind::Fact(f) => {
                w.u8(0);
                write_fact_id(&mut w, *f);
            }
            NodeKind::Value { class, value } => {
                w.u8(1);
                w.u32(*class);
                write_value(&mut w, value);
            }
        }
    }
    match emb.graph().insertion_ids() {
        None => w.u8(0),
        Some(inv) => {
            w.u8(1);
            w.len_prefix(inv.len());
            for &v in inv {
                w.u32(v);
            }
        }
    }
    let sgns = emb.model().sgns();
    let (in_vecs, out_vecs, frozen) = sgns.raw_parts();
    w.u64(sgns.dim() as u64);
    w.len_prefix(frozen.len());
    for &x in in_vecs {
        w.f32_bits(x);
    }
    for &x in out_vecs {
        w.f32_bits(x);
    }
    for &f in frozen {
        w.u8(u8::from(f));
    }
    for &c in emb.model().counts() {
        w.u64(c as u64);
    }
    w.into_bytes()
}

/// Rebuild a Node2Vec embedder from [`encode_node2vec`] bytes, against the
/// (already recovered) database's schema.
pub fn decode_node2vec(db: &Database, bytes: &[u8]) -> Result<Node2VecEmbedder, WalError> {
    let mut r = ByteReader::new(bytes);
    let config = read_n2v_config(&mut r)?;
    let mode = match r.u8()? {
        0 => ExtendMode::OneByOne,
        1 => ExtendMode::AllAtOnce,
        t => return Err(WalError::Corrupt(format!("bad extend-mode tag {t}"))),
    };
    let noffsets = r.count_prefix(4)?;
    let mut offsets = Vec::with_capacity(noffsets);
    for _ in 0..noffsets {
        offsets.push(r.u32()?);
    }
    let nneighbors = r.count_prefix(4)?;
    let mut neighbors = Vec::with_capacity(nneighbors);
    for _ in 0..nneighbors {
        neighbors.push(NodeId(r.u32()?));
    }
    let edge_count = read_usize(&mut r)?;
    if offsets.is_empty()
        || offsets.first() != Some(&0)
        // PANICS: in bounds — `windows(2)` slices have length 2.
        || offsets.windows(2).any(|w| w[0] > w[1])
        // PANICS: never — `is_empty()` short-circuited above.
        || *offsets.last().expect("non-empty") as usize != neighbors.len()
        || neighbors.iter().any(|v| v.index() + 1 >= offsets.len())
    {
        return Err(WalError::Corrupt("inconsistent CSR arrays".into()));
    }
    let graph = Graph::from_csr_parts(offsets, neighbors, edge_count);
    let nkinds = r.count_prefix(1)?;
    if nkinds != graph.node_count() {
        return Err(WalError::Corrupt(format!(
            "kind table covers {nkinds} nodes, graph has {}",
            graph.node_count()
        )));
    }
    let mut kinds = Vec::with_capacity(nkinds);
    for _ in 0..nkinds {
        kinds.push(match r.u8()? {
            0 => NodeKind::Fact(read_fact_id(&mut r)?),
            1 => NodeKind::Value {
                class: r.u32()?,
                value: read_value(&mut r)?,
            },
            t => return Err(WalError::Corrupt(format!("bad node-kind tag {t}"))),
        });
    }
    let insertion_id = match r.u8()? {
        0 => None,
        1 => {
            let n = r.count_prefix(4)?;
            if n != graph.node_count() {
                return Err(WalError::Corrupt("relabelling length mismatch".into()));
            }
            let mut inv = Vec::with_capacity(n);
            for _ in 0..n {
                inv.push(r.u32()?);
            }
            Some(inv)
        }
        t => return Err(WalError::Corrupt(format!("bad relabelling tag {t}"))),
    };
    let dbgraph = DbGraph::from_raw_parts(db.schema(), graph, kinds, insertion_id);

    let dim = read_usize(&mut r)?;
    let nodes = r.count_prefix(8 * dim + 9)?;
    if nodes != dbgraph.graph().node_count() {
        return Err(WalError::Corrupt(format!(
            "SGNS covers {nodes} nodes, graph has {}",
            dbgraph.graph().node_count()
        )));
    }
    let mut in_vecs = Vec::with_capacity(nodes * dim);
    for _ in 0..nodes * dim {
        in_vecs.push(r.f32_bits()?);
    }
    let mut out_vecs = Vec::with_capacity(nodes * dim);
    for _ in 0..nodes * dim {
        out_vecs.push(r.f32_bits()?);
    }
    let mut frozen = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        frozen.push(match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(WalError::Corrupt(format!("bad frozen flag {t}"))),
        });
    }
    let sgns = SgnsModel::from_raw_parts(dim, in_vecs, out_vecs, frozen);
    let mut counts = Vec::with_capacity(nodes);
    for _ in 0..nodes {
        counts.push(read_usize(&mut r)?);
    }
    if !r.is_exhausted() {
        return Err(WalError::Corrupt(format!(
            "{} trailing bytes after node2vec blob",
            r.remaining()
        )));
    }
    let model = Node2VecModel::from_raw_parts(config, sgns, counts, Runtime::from_env());
    Ok(Node2VecEmbedder::from_parts(dbgraph, model, mode))
}

fn write_n2v_config(w: &mut ByteWriter, c: &Node2VecConfig) {
    w.u64(c.dim as u64);
    w.u64(c.walks_per_node as u64);
    w.u64(c.walk_length as u64);
    w.u64(c.window as u64);
    w.u64(c.negatives as u64);
    w.u64(c.epochs as u64);
    w.u64(c.dynamic_epochs as u64);
    w.u64(c.dynamic_token_budget as u64);
    w.f64_bits(c.learning_rate);
    w.f64_bits(c.p);
    w.f64_bits(c.q);
}

fn read_n2v_config(r: &mut ByteReader<'_>) -> Result<Node2VecConfig, WalError> {
    Ok(Node2VecConfig {
        dim: read_usize(r)?,
        walks_per_node: read_usize(r)?,
        walk_length: read_usize(r)?,
        window: read_usize(r)?,
        negatives: read_usize(r)?,
        epochs: read_usize(r)?,
        dynamic_epochs: read_usize(r)?,
        dynamic_token_budget: read_usize(r)?,
        learning_rate: r.f64_bits()?,
        p: r.f64_bits()?,
        q: r.f64_bits()?,
    })
}

fn read_usize(r: &mut ByteReader<'_>) -> Result<usize, WalError> {
    usize::try_from(r.u64()?).map_err(|_| WalError::Corrupt("count exceeds usize".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::TupleEmbedder;
    use reldb::movies::movies_database_labeled;

    fn fwd_cfg() -> ForwardConfig {
        ForwardConfig {
            dim: 8,
            epochs: 3,
            nsamples: 20,
            ..ForwardConfig::small()
        }
    }

    #[test]
    fn forward_round_trip_is_bit_identical() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb = ForwardEmbedder::train(&db, actors, &fwd_cfg(), 42).unwrap();
        let bytes = encode_forward(&emb);
        let back = decode_forward(&db, &bytes).unwrap();
        for f in db.fact_ids(actors) {
            assert_eq!(emb.embedding(f), back.embedding(f), "ϕ({f})");
        }
        for t in 0..emb.inner().targets().len() {
            assert_eq!(
                emb.inner().psi(t).as_slice(),
                back.inner().psi(t).as_slice()
            );
        }
        assert_eq!(emb.inner().epoch_losses(), back.inner().epoch_losses());
        // Canonical: re-encoding the decoded state reproduces the bytes.
        assert_eq!(encode_forward(&back), bytes);
    }

    #[test]
    fn node2vec_round_trip_is_bit_identical_including_relabelling() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb =
            Node2VecEmbedder::train_localized(&db, actors, &node2vec::Node2VecConfig::small(), 7);
        let bytes = encode_node2vec(&emb);
        let back = decode_node2vec(&db, &bytes).unwrap();
        for f in db.fact_ids(actors) {
            assert_eq!(emb.embedding(f), back.embedding(f), "vector of {f}");
        }
        // Kind table, relabelling and visit counts all survive.
        assert_eq!(emb.graph().kinds(), back.graph().kinds());
        assert_eq!(emb.graph().insertion_ids(), back.graph().insertion_ids());
        assert_eq!(emb.model().counts(), back.model().counts());
        assert_eq!(encode_node2vec(&back), bytes);
    }

    #[test]
    fn recovered_embedders_extend_identically_to_retained_ones() {
        // The real recovery property: after a round trip, the *next*
        // dynamic extension produces bit-identical vectors.
        let (mut db, ids) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let journal = reldb::cascade_delete(&mut db, ids["a5"], false).unwrap();
        let mut n2v = Node2VecEmbedder::train(&db, &node2vec::Node2VecConfig::small(), 3);
        let mut fwd = ForwardEmbedder::train(&db, actors, &fwd_cfg(), 3).unwrap();
        let mut n2v_back = decode_node2vec(&db, &encode_node2vec(&n2v)).unwrap();
        let mut fwd_back = decode_forward(&db, &encode_forward(&fwd)).unwrap();

        let restored = reldb::restore_journal(&mut db, &journal).unwrap();
        n2v.extend(&db, &restored, 11).unwrap();
        fwd.extend(&db, &restored, 11).unwrap();
        n2v_back.extend(&db, &restored, 11).unwrap();
        fwd_back.extend(&db, &restored, 11).unwrap();
        for &f in &restored {
            assert_eq!(n2v.embedding(f), n2v_back.embedding(f));
            assert_eq!(fwd.embedding(f), fwd_back.embedding(f));
        }
    }

    #[test]
    fn truncated_and_tagged_garbage_decodes_to_errors_not_panics() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb = ForwardEmbedder::train(&db, actors, &fwd_cfg(), 1).unwrap();
        let bytes = encode_forward(&emb);
        for cut in 0..bytes.len() {
            assert!(decode_forward(&db, &bytes[..cut]).is_err(), "cut {cut}");
        }
        let n2v = Node2VecEmbedder::train(&db, &node2vec::Node2VecConfig::small(), 1);
        let nbytes = encode_node2vec(&n2v);
        for cut in (0..nbytes.len()).step_by(7) {
            assert!(decode_node2vec(&db, &nbytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
