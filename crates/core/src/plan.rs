//! Scheme plans: a target set's walk schemes factored into a shared
//! prefix trie (ROADMAP item 5 — the Datalog subplan-sharing shape).
//!
//! Walk-scheme enumeration ([`crate::schemes::enumerate_schemes`]) is
//! prefix-closed BFS, so a length-`ℓ` scheme's BFS frontier is exactly
//! one [`crate::walkdist::frontier_step`] past a length-`ℓ−1` scheme's.
//! A [`SchemePlan`] makes that sharing explicit: every node is a step
//! prefix, an edge adds one step, and a node may *be* one of the input
//! schemes (interior nodes that are not themselves schemes arise when a
//! target set skips a length — e.g. the movies schema has no length-1
//! targets because `COLLABORATIONS` has only FK attributes).
//!
//! Consumers walk the plan in [`SchemePlan::dfs`] preorder so that a
//! child's distribution is evaluated immediately after its parent's
//! frontier was produced — the distribution cache's prefix tier
//! ([`crate::distcache::DistCache`]) then serves every non-root node
//! from "parent frontier + 1 step" instead of a fresh `ℓ`-step BFS.
//!
//! ## Determinism
//!
//! The plan is a pure function of `(start, schemes)`: children are kept
//! sorted by their last [`Step`] (which is `Ord`), the DFS is a fixed
//! stack-based preorder, and nothing reads ambient state. Evaluation
//! *order* also cannot change any bits — each distribution is computed
//! by the identical IEEE operation sequence regardless of which scheme
//! triggered the shared prefix work (see `PRECISION.md`, "Scheme
//! plans").

use crate::schemes::{Step, Target, WalkScheme};
use reldb::RelationId;

/// One node of a [`SchemePlan`]: a step prefix shared by every scheme in
/// the subtree below it.
#[derive(Debug, Clone)]
pub struct PlanNode {
    prefix: WalkScheme,
    parent: Option<usize>,
    children: Vec<usize>,
    scheme: Option<usize>,
}

impl PlanNode {
    /// The step prefix this node represents, as a walk scheme in its own
    /// right (the root is the length-0 scheme).
    pub fn prefix(&self) -> &WalkScheme {
        &self.prefix
    }

    /// Number of steps in the prefix (0 for the root).
    pub fn depth(&self) -> usize {
        self.prefix.len()
    }

    /// Index of the parent node (`None` for the root).
    pub fn parent(&self) -> Option<usize> {
        self.parent
    }

    /// Indices of the child nodes, sorted by their last step.
    pub fn children(&self) -> &[usize] {
        &self.children
    }

    /// Position of this node's scheme in the plan's input scheme list
    /// (first occurrence), or `None` for interior prefixes that are not
    /// themselves schemes.
    pub fn scheme_index(&self) -> Option<usize> {
        self.scheme
    }

    /// `true` when this prefix is one of the input schemes.
    pub fn is_scheme(&self) -> bool {
        self.scheme.is_some()
    }

    /// The step that extends the parent's prefix into this one (`None`
    /// for the root).
    pub fn step(&self) -> Option<&Step> {
        self.prefix.steps.last()
    }
}

/// A target set's walk schemes factored into a prefix trie rooted at the
/// length-0 scheme of the start relation. See the module docs.
#[derive(Debug, Clone)]
pub struct SchemePlan {
    nodes: Vec<PlanNode>,
    scheme_count: usize,
    flat_steps: usize,
}

impl SchemePlan {
    /// Build the plan for `schemes`, all of which must start at `start`.
    /// Duplicate schemes collapse onto one node (first occurrence wins
    /// for [`PlanNode::scheme_index`]).
    pub fn build(start: RelationId, schemes: &[WalkScheme]) -> Self {
        let mut nodes = vec![PlanNode {
            prefix: WalkScheme::trivial(start),
            parent: None,
            children: Vec::new(),
            scheme: None,
        }];
        let mut scheme_count = 0;
        let mut flat_steps = 0;
        for (s_idx, scheme) in schemes.iter().enumerate() {
            debug_assert_eq!(scheme.start, start, "plan schemes share one start");
            flat_steps += scheme.len();
            let mut cur = 0usize;
            for (depth, &step) in scheme.steps.iter().enumerate() {
                // Children stay sorted by their last step so the layout
                // (and every DFS) is independent of scheme input order.
                let found = nodes[cur].children.binary_search_by(|&c| {
                    nodes[c]
                        .prefix
                        .steps
                        .last()
                        // PANICS: never — candidates are child nodes.
                        .expect("non-root nodes have a last step")
                        .cmp(&step)
                });
                cur = match found {
                    Ok(i) => nodes[cur].children[i],
                    Err(i) => {
                        let id = nodes.len();
                        let mut prefix = WalkScheme::trivial(start);
                        prefix.steps.extend_from_slice(&scheme.steps[..=depth]);
                        nodes.push(PlanNode {
                            prefix,
                            parent: Some(cur),
                            children: Vec::new(),
                            scheme: None,
                        });
                        nodes[cur].children.insert(i, id);
                        id
                    }
                };
            }
            if nodes[cur].scheme.is_none() {
                nodes[cur].scheme = Some(s_idx);
                scheme_count += 1;
            }
        }
        SchemePlan {
            nodes,
            scheme_count,
            flat_steps,
        }
    }

    /// Build the plan from a target list, deduplicating schemes in first
    /// occurrence order (several targets share one scheme with different
    /// attributes).
    pub fn from_targets(start: RelationId, targets: &[Target]) -> Self {
        let mut schemes: Vec<WalkScheme> = Vec::new();
        for t in targets {
            if !schemes.contains(&t.scheme) {
                schemes.push(t.scheme.clone());
            }
        }
        SchemePlan::build(start, &schemes)
    }

    /// The node at `index` (0 is always the root).
    pub fn node(&self, index: usize) -> &PlanNode {
        &self.nodes[index]
    }

    /// Total node count, including the root and interior non-scheme
    /// prefixes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// How many distinct input schemes the plan covers.
    pub fn scheme_count(&self) -> usize {
        self.scheme_count
    }

    /// Total step count of the unfactored scheme list — what independent
    /// BFS evaluation would traverse.
    pub fn flat_step_count(&self) -> usize {
        self.flat_steps
    }

    /// Step count of the factored plan (one frontier extension per
    /// non-root node) — what plan-order evaluation traverses.
    pub fn shared_step_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// The start relation all schemes share.
    pub fn start(&self) -> RelationId {
        // PANICS: in bounds — the root node always exists.
        self.nodes[0].prefix.start
    }

    /// Deterministic preorder DFS over all nodes (root first, children
    /// in sorted-step order). Evaluating distributions in this order
    /// keeps each parent frontier hot in the cache when its children
    /// extend it.
    pub fn dfs(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            order.push(idx);
            stack.extend(self.nodes[idx].children.iter().rev());
        }
        order
    }

    /// Number of scheme nodes **strictly below** each node (indexed like
    /// the node list): how many other schemes' evaluations would resume a
    /// frontier cached at that prefix.
    fn schemes_below(&self) -> Vec<usize> {
        let mut below = vec![0usize; self.nodes.len()];
        // Children are always pushed after their parent, so reverse index
        // order is a valid bottom-up traversal.
        for i in (1..self.nodes.len()).rev() {
            // PANICS: never — index 0 (the root) is excluded by the range.
            let parent = self.nodes[i].parent.expect("non-root nodes have a parent");
            below[parent] += below[i] + usize::from(self.nodes[i].is_scheme());
        }
        below
    }

    /// The prefixes whose BFS frontier is worth caching: some *other*
    /// scheme's evaluation will resume it. A prefix qualifies when ≥ 2
    /// schemes pass strictly through it (the first evaluation stores, the
    /// rest resume), or when it is itself a scheme with ≥ 1 scheme below
    /// (its own evaluation produces the frontier; descendants resume it).
    /// Leaf schemes and chains feeding a single scheme are excluded — a
    /// frontier nothing ever resumes is pure bookkeeping, and on plans
    /// with little sharing that bookkeeping is what a cache-backed
    /// evaluation pays over a plain BFS.
    pub fn persist_prefixes(&self) -> std::collections::BTreeSet<Vec<Step>> {
        let below = self.schemes_below();
        let mut set = std::collections::BTreeSet::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.depth() == 0 {
                continue; // the length-0 frontier is one `frontier_start`
            }
            if below[i] >= 2 || (node.is_scheme() && below[i] >= 1) {
                set.insert(node.prefix.steps.clone());
            }
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schemes::{enumerate_schemes, target_pairs};
    use reldb::movies::movies_schema;

    #[test]
    fn movies_enumeration_factors_into_prefix_trie() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        let plan = SchemePlan::build(actors, &schemes);
        // Prefix-closed enumeration: every node *is* a scheme, so the trie
        // has exactly one node per scheme (1 + 2 + 4 + 4 = 11).
        assert_eq!(plan.node_count(), 11);
        assert_eq!(plan.scheme_count(), 11);
        // Flat steps: 2×1 + 4×2 + 4×3 = 22; factored: 10 edges.
        assert_eq!(plan.flat_step_count(), 22);
        assert_eq!(plan.shared_step_count(), 10);
        assert_eq!(plan.start(), actors);
        for idx in plan.dfs() {
            assert!(plan.node(idx).is_scheme());
        }
    }

    #[test]
    fn target_plan_has_non_scheme_interior_nodes() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let targets = target_pairs(&schema, actors, 3);
        assert_eq!(targets.len(), 16);
        let plan = SchemePlan::from_targets(actors, &targets);
        // COLLABORATIONS has only FK attributes, so neither the two
        // length-1 schemes nor the two length-3 schemes ending there
        // contribute targets. The length-1 prefixes still appear —
        // as interior non-scheme nodes under the longer schemes — while
        // the length-3 ones are leaves and vanish entirely: 9 nodes for
        // 7 distinct target schemes.
        assert_eq!(plan.node_count(), 9);
        assert_eq!(plan.scheme_count(), 7);
        let interior: Vec<_> = (0..plan.node_count())
            .filter(|&i| !plan.node(i).is_scheme())
            .collect();
        assert_eq!(interior.len(), 2);
        for &i in &interior {
            assert_eq!(plan.node(i).depth(), 1);
        }
    }

    #[test]
    fn dfs_is_preorder_and_input_order_independent() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        let plan = SchemePlan::build(actors, &schemes);
        let order = plan.dfs();
        assert_eq!(order.len(), plan.node_count());
        assert_eq!(order[0], 0);
        // Preorder: every node appears after its parent.
        let mut seen = vec![false; plan.node_count()];
        for &idx in &order {
            if let Some(p) = plan.node(idx).parent() {
                assert!(seen[p], "parent frontier must be produced first");
            }
            seen[idx] = true;
        }
        // Reversing the input scheme order yields the identical *DFS
        // evaluation order* (node ids reflect first-seen order, but
        // children are kept step-sorted, so the walk is canonical).
        let mut reversed = schemes.clone();
        reversed.reverse();
        let plan2 = SchemePlan::build(actors, &reversed);
        assert_eq!(plan2.node_count(), plan.node_count());
        let walk = |p: &SchemePlan| -> Vec<WalkScheme> {
            p.dfs()
                .into_iter()
                .map(|i| p.node(i).prefix().clone())
                .collect()
        };
        assert_eq!(walk(&plan), walk(&plan2));
    }

    #[test]
    fn persist_prefixes_cover_exactly_the_shared_frontiers() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        // Full enumeration is prefix-closed: every non-leaf node is a
        // scheme with descendants, every leaf is a scheme nothing resumes.
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        let plan = SchemePlan::build(actors, &schemes);
        let persist = plan.persist_prefixes();
        for idx in plan.dfs() {
            let node = plan.node(idx);
            if node.depth() == 0 {
                continue;
            }
            let expected = !node.children().is_empty();
            assert_eq!(
                persist.contains(&node.prefix().steps),
                expected,
                "node at depth {} with {} children",
                node.depth(),
                node.children().len()
            );
        }
        // Target plan: the two non-scheme interior depth-1 prefixes each
        // carry two scheme subtrees, so they persist; the depth-2/3 target
        // schemes are leaves and do not.
        let targets = target_pairs(&schema, actors, 3);
        let tplan = SchemePlan::from_targets(actors, &targets);
        let tpersist = tplan.persist_prefixes();
        for idx in tplan.dfs() {
            let node = tplan.node(idx);
            if node.depth() == 0 {
                continue;
            }
            if !node.is_scheme() {
                assert!(
                    tpersist.contains(&node.prefix().steps),
                    "interior prefixes exist only because schemes pass through them"
                );
            }
            if node.children().is_empty() {
                assert!(
                    !tpersist.contains(&node.prefix().steps),
                    "leaves never resume"
                );
            }
        }
        assert!(!tpersist.is_empty());
    }

    #[test]
    fn plan_nodes_link_parent_and_step() {
        let schema = movies_schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let schemes = enumerate_schemes(&schema, actors, 3, false);
        let plan = SchemePlan::build(actors, &schemes);
        assert!(plan.node(0).parent().is_none());
        assert!(plan.node(0).step().is_none());
        assert_eq!(plan.node(0).depth(), 0);
        for i in 1..plan.node_count() {
            let node = plan.node(i);
            let parent = plan.node(node.parent().unwrap());
            assert_eq!(node.depth(), parent.depth() + 1);
            // The node's prefix is the parent's prefix plus its step.
            assert_eq!(
                &node.prefix().steps[..parent.depth()],
                &parent.prefix().steps[..]
            );
            assert_eq!(node.step(), node.prefix().steps.last());
            assert!(parent.children().contains(&i));
        }
    }
}
