//! FoRWaRD static training (paper §V-C/D).
//!
//! Jointly learns fact vectors `ϕ(f) ∈ R^d` and symmetric matrices
//! `ψ(s,A) ∈ R^{d×d}` minimising the ℓ2 objective of Eq. 5,
//!
//! ```text
//! L = ½ |ϕ(f)ᵀ ψ(s,A) ϕ(f′) − κ(g[A], g′[A])|²
//! ```
//!
//! by minibatch SGD with hand-derived gradients. With the prediction error
//! `e = ϕ(f)ᵀ Ψ ϕ(f′) − y` and symmetric `Ψ`:
//!
//! * `∂L/∂ϕ(f)  = e · Ψ ϕ(f′)`
//! * `∂L/∂ϕ(f′) = e · Ψ ϕ(f)`
//! * `∂L/∂Ψ     = e · ½(ϕ(f) ϕ(f′)ᵀ + ϕ(f′) ϕ(f)ᵀ)`
//!
//! The symmetrised `Ψ` update keeps every `ψ(s,A)` exactly symmetric
//! throughout training (an invariant the tests assert).
//!
//! ## Parallel execution, deterministically
//!
//! Each minibatch's gradients are computed against the pre-batch snapshot
//! of `ϕ`/`ψ`, so per-sample contributions are independent and can be
//! sharded. The batch is split into **fixed-size** chunks
//! ([`GRAD_CHUNK`] samples — a constant of the algorithm, never derived
//! from the shard count); chunk-local accumulators are merged **in chunk
//! order** and applied once. Fixed boundaries + ordered merge make the
//! floating-point sums, and therefore the trained embedding, bit-identical
//! for any shard count — `tests/determinism.rs` in the workspace root
//! asserts this end to end.

use crate::config::ForwardConfig;
use crate::distcache::DistCache;
use crate::kernel::KernelAssignment;
use crate::plan::SchemePlan;
use crate::sampler::{generate_samples, EligibilityIndex, TrainingSample};
use crate::schemes::{target_pairs, Target};
use crate::CoreError;
use linalg::{vector, Matrix};
use reldb::{Database, FactId, RelationId};
use std::collections::BTreeMap;
use stembed_runtime::rng::DetRng;
use stembed_runtime::{derive_seed, Runtime};

/// Samples per parallel gradient chunk. A constant of the algorithm: chunk
/// boundaries must not depend on the shard count, or the merge order of
/// floating-point partial sums (and with it the learned embedding) would
/// change with the machine.
const GRAD_CHUNK: usize = 512;

/// Named sub-stream of the master seed feeding the SGD sampling family
/// (`run_sgd` further derives per-epoch streams from it). Hand mixing
/// (`seed ^ SALT`) is what the seed-arithmetic lint exists to prevent:
/// two salts can collide under xor where `derive_seed` streams cannot.
/// Kept clear of the small-integer stream family `extend_all` draws
/// (`derive_seed(seed, fact_index)`).
const SAMPLE_STREAM: u64 = 0x5a5a;

/// A trained FoRWaRD embedding of one relation.
#[derive(Debug, Clone)]
pub struct ForwardEmbedding {
    rel: RelationId,
    dim: usize,
    targets: Vec<Target>,
    /// The targets' schemes factored into a shared prefix trie. Fixes the
    /// deterministic DFS evaluation order of **exact-path** distribution
    /// work (the dynamic pre-warm), so sibling schemes extend a cached
    /// parent frontier while it is hot. The sampling schedule stays in
    /// target order — ψ indexing and the per-target RNG streams are keyed
    /// by target position, which the plan never reorders.
    plan: SchemePlan,
    /// `BTreeMap` so every whole-map walk (snapshots, update application,
    /// candidate enumeration) runs in ascending `FactId` order — hasher
    /// state must never pick the order of float updates.
    phi: BTreeMap<FactId, Vec<f64>>,
    psi: Vec<Matrix>,
    kernels: KernelAssignment,
    config: ForwardConfig,
    runtime: Runtime,
    /// Mean squared error per epoch of the last training run.
    epoch_losses: Vec<f64>,
    /// Persistent walk-distribution cache for the dynamic phase. Warmed by
    /// `extend`/`extend_batch`, invalidated automatically whenever the
    /// database mutates (see [`DistCache`]).
    dist_cache: DistCache,
}

impl ForwardEmbedding {
    /// Static phase: train an embedding of relation `rel` over `db`, using
    /// the default runtime (`STEMBED_SHARDS` / available parallelism). The
    /// result depends only on `(db, rel, config, seed)` — never on the
    /// shard count.
    pub fn train(
        db: &Database,
        rel: RelationId,
        config: &ForwardConfig,
        seed: u64,
    ) -> Result<Self, CoreError> {
        Self::train_with_runtime(db, rel, config, seed, Runtime::from_env())
    }

    /// [`ForwardEmbedding::train`] on an explicit execution runtime.
    pub fn train_with_runtime(
        db: &Database,
        rel: RelationId,
        config: &ForwardConfig,
        seed: u64,
        runtime: Runtime,
    ) -> Result<Self, CoreError> {
        let facts = db.fact_ids(rel);
        if facts.len() < 2 {
            return Err(CoreError::NotEnoughFacts {
                relation: db.schema().relation(rel).name.clone(),
                got: facts.len(),
            });
        }
        let targets = target_pairs(db.schema(), rel, config.max_walk_len);
        if targets.is_empty() {
            return Err(CoreError::NoTargets {
                relation: db.schema().relation(rel).name.clone(),
            });
        }
        let plan = SchemePlan::from_targets(rel, &targets);
        // The cache only stores prefix frontiers another scheme will
        // resume (see `SchemePlan::persist_prefixes`); on plans with
        // little sharing this is what keeps cache-backed evaluation from
        // paying bookkeeping a plain BFS does not.
        let mut dist_cache = DistCache::new();
        dist_cache.set_persist_prefixes(std::sync::Arc::new(plan.persist_prefixes()));
        let kernels = KernelAssignment::defaults(db);
        let mut rng = DetRng::seed_from_u64(seed);

        // Random initialisation of ϕ and ψ (paper §V-D).
        let mut phi = BTreeMap::new();
        for &f in &facts {
            let v: Vec<f64> = (0..config.dim)
                .map(|_| rng.random_range(-config.init_bound..=config.init_bound))
                .collect();
            phi.insert(f, v);
        }
        let mut psi = Vec::with_capacity(targets.len());
        for _ in 0..targets.len() {
            let mut m = Matrix::random_uniform(config.dim, config.dim, config.init_bound, &mut rng);
            m.symmetrize();
            psi.push(m);
        }

        let mut this = ForwardEmbedding {
            rel,
            dim: config.dim,
            targets,
            plan,
            phi,
            psi,
            kernels,
            config: config.clone(),
            runtime,
            epoch_losses: Vec::new(),
            dist_cache,
        };
        this.run_sgd(db, &facts, derive_seed(seed, SAMPLE_STREAM), &mut rng)?;
        Ok(this)
    }

    fn run_sgd(
        &mut self,
        db: &Database,
        facts: &[FactId],
        sample_seed: u64,
        rng: &mut DetRng,
    ) -> Result<(), CoreError> {
        let runtime = self.runtime;
        let index = EligibilityIndex::probe(
            db,
            facts,
            &self.targets,
            self.config.kd.max_attempts,
            derive_seed(sample_seed, 0),
            &runtime,
        );
        if index.eligible.iter().all(|e| e.len() < 2) {
            return Err(CoreError::NoTargets {
                relation: db.schema().relation(self.rel).name.clone(),
            });
        }
        self.epoch_losses.clear();
        for epoch in 0..self.config.epochs {
            // Fresh samples every epoch — this is what makes the per-sample
            // kernel value an unbiased estimate of KD (paper §V-D). Epoch
            // `e` draws from the derived stream family `sample_seed ⊕ e+1`.
            let mut samples = generate_samples(
                db,
                &self.targets,
                &index,
                &self.kernels,
                self.config.nsamples,
                self.config.kd.max_attempts,
                derive_seed(sample_seed, 1 + epoch as u64),
                &runtime,
            );
            // Shuffle across targets (sequential Fisher–Yates on the master
            // stream — cheap, and keeps the schedule seed-determined).
            for i in (1..samples.len()).rev() {
                let j = rng.random_range(0..=i);
                samples.swap(i, j);
            }
            let lr = self.config.learning_rate
                * (1.0 - epoch as f64 / self.config.epochs as f64).max(0.1);
            let batch = self.config.batch_size.max(1);
            let mut loss_acc = 0.0;
            for chunk in samples.chunks(batch) {
                loss_acc += self.minibatch_step(chunk, lr);
            }
            self.epoch_losses
                .push(loss_acc / samples.len().max(1) as f64);
        }
        Ok(())
    }

    /// One minibatch step (paper Table II: batch size 50,000): gradients of
    /// the ℓ2 loss are **averaged over the batch** before being applied.
    /// Batch averaging is essential, not cosmetic — attributes whose kernel
    /// similarity carries no class structure produce zero-mean per-sample
    /// gradients whose variance would otherwise randomly diffuse `ϕ` and
    /// drown the signal targets.
    ///
    /// Gradients are computed against the pre-batch snapshot in parallel
    /// fixed-size chunks and merged in chunk order (see module docs).
    /// Returns the summed squared error of the batch (pre-update).
    ///
    /// # Panics
    ///
    /// If a gradient references a fact or target absent from `ϕ`/`ψ`, or a
    /// shape disagrees — both would mean the sampler and the model went
    /// out of sync, a state no update should be applied from.
    fn minibatch_step(&mut self, batch: &[TrainingSample], lr: f64) -> f64 {
        let dim = self.dim;
        let inv_b = 1.0 / batch.len() as f64;
        // Fast path for batches within one chunk (e.g. the pure-SGD
        // configs with batch_size 1): the single chunk's accumulators *are*
        // the merge result, bit for bit — skip the runtime and the re-merge.
        let merged = if batch.len() <= GRAD_CHUNK {
            self.chunk_gradients(batch)
        } else {
            let partials = self
                .runtime
                .par_chunks_map(batch, GRAD_CHUNK, |_c, chunk| self.chunk_gradients(chunk));
            merge_chunk_gradients(partials)
        };
        let ChunkGradients {
            loss,
            phi_grad,
            psi_grad,
        } = merged;
        for (f, grad) in phi_grad {
            let v = self.phi.get_mut(&f).expect("accumulated facts exist");
            debug_assert_eq!(grad.len(), dim);
            vector::axpy(-lr * inv_b, &grad, v);
        }
        for (t, grad) in psi_grad {
            self.psi[t]
                .add_scaled(-lr * inv_b, &grad)
                .expect("gradient shape matches ψ");
        }
        loss
    }

    /// Gradient accumulators of one fixed-size sample chunk, evaluated
    /// against the current (pre-batch) `ϕ`/`ψ` snapshot. Pure read access —
    /// safe to run on any shard.
    ///
    /// # Panics
    ///
    /// If a sample references an embedding of the wrong dimension — the
    /// sampler draws from the same fact set the model was initialised on.
    fn chunk_gradients(&self, chunk: &[TrainingSample]) -> ChunkGradients {
        let dim = self.dim;
        let mut phi_grad: BTreeMap<FactId, Vec<f64>> = BTreeMap::new();
        let mut psi_grad: BTreeMap<usize, Matrix> = BTreeMap::new();
        let mut loss = 0.0;
        for s in chunk {
            let psi = &self.psi[s.target];
            let phi_f = &self.phi[&s.f];
            let phi_fp = &self.phi[&s.f_prime];
            let psi_fp = psi.matvec(phi_fp).expect("dims agree");
            let psi_f = psi.matvec(phi_f).expect("dims agree");
            let pred = vector::dot(phi_f, &psi_fp);
            let e = pred - s.y;
            loss += e * e;
            vector::axpy(
                e,
                &psi_fp,
                phi_grad.entry(s.f).or_insert_with(|| vec![0.0; dim]),
            );
            vector::axpy(
                e,
                &psi_f,
                phi_grad.entry(s.f_prime).or_insert_with(|| vec![0.0; dim]),
            );
            let g = psi_grad
                .entry(s.target)
                .or_insert_with(|| Matrix::zeros(dim, dim));
            // Symmetrised ψ gradient e·½(ϕϕ′ᵀ + ϕ′ϕᵀ).
            g.rank_one_update(e * 0.5, phi_f, phi_fp);
            g.rank_one_update(e * 0.5, phi_fp, phi_f);
        }
        ChunkGradients {
            loss,
            phi_grad,
            psi_grad,
        }
    }

    /// The embedded relation.
    pub fn relation(&self) -> RelationId {
        self.rel
    }

    /// Embedding dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The execution runtime used by training and dynamic extension.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The embedding `ϕ(f)`, if `f` belongs to the embedded relation and
    /// was present at training (or added by the dynamic phase).
    pub fn embedding(&self, f: FactId) -> Option<&[f64]> {
        self.phi.get(&f).map(std::vec::Vec::as_slice)
    }

    /// Number of embedded facts.
    pub fn len(&self) -> usize {
        self.phi.len()
    }

    /// `true` iff no facts are embedded.
    pub fn is_empty(&self) -> bool {
        self.phi.is_empty()
    }

    /// The target pairs `T(R, ℓmax)` of this embedding.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// The targets' schemes factored into a shared prefix trie — the
    /// deterministic DFS evaluation order for exact-path distribution
    /// work (see [`SchemePlan`]).
    pub fn scheme_plan(&self) -> &SchemePlan {
        &self.plan
    }

    /// The learned inner-product matrix `ψ(s,A)` for target `t`.
    pub fn psi(&self, t: usize) -> &Matrix {
        &self.psi[t]
    }

    /// The kernel assignment in force.
    pub fn kernels(&self) -> &KernelAssignment {
        &self.kernels
    }

    /// The configuration used for training.
    pub fn config(&self) -> &ForwardConfig {
        &self.config
    }

    /// Mean squared error per epoch of the last training run.
    pub fn epoch_losses(&self) -> &[f64] {
        &self.epoch_losses
    }

    /// Bilinear prediction `ϕ(f)ᵀ ψ_t ϕ(f′)` (Eq. 3's left-hand side).
    ///
    /// # Panics
    ///
    /// If `t` is out of range or the stored embeddings disagree in
    /// dimension (impossible for a model built by [`ForwardEmbedding::train`]).
    pub fn predict(&self, t: usize, f: FactId, f_prime: FactId) -> Option<f64> {
        let a = self.phi.get(&f)?;
        let b = self.phi.get(&f_prime)?;
        Some(self.psi[t].bilinear(a, b).expect("dims agree"))
    }

    /// Drop a deleted fact's embedding (paper §VII: deletion just removes
    /// the point; the rest of the embedding stays).
    pub fn forget(&mut self, f: FactId) -> bool {
        self.phi.remove(&f).is_some()
    }

    /// All embedded facts, in ascending [`FactId`] order.
    pub fn embedded_facts(&self) -> impl Iterator<Item = FactId> + '_ {
        self.phi.keys().copied()
    }

    /// Insert an externally computed vector (used by the dynamic phase).
    pub(crate) fn insert_phi(&mut self, f: FactId, v: Vec<f64>) {
        debug_assert_eq!(v.len(), self.dim);
        self.phi.insert(f, v);
    }

    /// The persistent walk-distribution cache (diagnostics: hit/miss/
    /// invalidation counters via [`DistCache::stats`]).
    pub fn dist_cache(&self) -> &DistCache {
        &self.dist_cache
    }

    /// Rebuild an embedding from snapshotted state. `targets` (and with
    /// them the scheme plan) are **re-derived** from the schema (they are
    /// a pure function of `(schema, rel, max_walk_len)`), the
    /// distribution cache starts cold
    /// (it is a pure accelerator — the determinism contract guarantees
    /// cached ≡ uncached), and the runtime comes from the environment.
    /// Only `ϕ`, `ψ`, the kernel assignment, and the loss history are
    /// state.
    ///
    /// Errors with [`CoreError::SnapshotMismatch`] when the snapshotted
    /// matrices do not line up with the re-derived targets or the config's
    /// dimension — the snapshot belongs to a different schema or config.
    pub fn from_snapshot_parts(
        db: &Database,
        rel: RelationId,
        config: ForwardConfig,
        kernels: KernelAssignment,
        phi: BTreeMap<FactId, Vec<f64>>,
        psi: Vec<Matrix>,
        epoch_losses: Vec<f64>,
    ) -> Result<Self, CoreError> {
        let targets = target_pairs(db.schema(), rel, config.max_walk_len);
        if psi.len() != targets.len() {
            return Err(CoreError::SnapshotMismatch(format!(
                "snapshot has {} ψ matrices, schema derives {} targets",
                psi.len(),
                targets.len()
            )));
        }
        if let Some(m) = psi
            .iter()
            .find(|m| m.rows() != config.dim || m.cols() != config.dim)
        {
            return Err(CoreError::SnapshotMismatch(format!(
                "ψ shape {}×{} does not match dim {}",
                m.rows(),
                m.cols(),
                config.dim
            )));
        }
        if let Some((f, v)) = phi.iter().find(|(_, v)| v.len() != config.dim) {
            return Err(CoreError::SnapshotMismatch(format!(
                "ϕ({f}) has {} components, config dim is {}",
                v.len(),
                config.dim
            )));
        }
        let plan = SchemePlan::from_targets(rel, &targets);
        let mut dist_cache = DistCache::new();
        dist_cache.set_persist_prefixes(std::sync::Arc::new(plan.persist_prefixes()));
        Ok(ForwardEmbedding {
            rel,
            dim: config.dim,
            targets,
            plan,
            phi,
            psi,
            kernels,
            config,
            runtime: Runtime::from_env(),
            epoch_losses,
            dist_cache,
        })
    }

    /// Move the cache out for a solve that also borrows `self` shared
    /// (see `extend_with`); pair with [`Self::put_back_dist_cache`].
    pub(crate) fn take_dist_cache(&mut self) -> DistCache {
        std::mem::take(&mut self.dist_cache)
    }

    /// Return the (possibly warmed) cache taken by
    /// [`Self::take_dist_cache`].
    pub(crate) fn put_back_dist_cache(&mut self, cache: DistCache) {
        self.dist_cache = cache;
    }
}

/// Chunk-local gradient accumulators (see [`ForwardEmbedding::chunk_gradients`]).
struct ChunkGradients {
    loss: f64,
    phi_grad: BTreeMap<FactId, Vec<f64>>,
    psi_grad: BTreeMap<usize, Matrix>,
}

/// Ordered merge of per-chunk accumulators: every fact/target slot receives
/// one contribution per chunk, in ascending chunk order — float sums are
/// fixed regardless of which shard computed which chunk.
///
/// # Panics
///
/// If two chunks disagree on a target's `ψ` gradient shape — they were
/// produced from the same model snapshot, so shapes agree by construction.
fn merge_chunk_gradients(partials: Vec<ChunkGradients>) -> ChunkGradients {
    let mut merged = ChunkGradients {
        loss: 0.0,
        phi_grad: BTreeMap::new(),
        psi_grad: BTreeMap::new(),
    };
    for part in partials {
        merged.loss += part.loss;
        for (f, grad) in part.phi_grad {
            match merged.phi_grad.entry(f) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    vector::axpy(1.0, &grad, e.get_mut());
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(grad);
                }
            }
        }
        for (t, grad) in part.psi_grad {
            match merged.psi_grad.entry(t) {
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    e.get_mut()
                        .add_scaled(1.0, &grad)
                        .expect("chunk gradients share ψ shape");
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(grad);
                }
            }
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::movies::movies_database_labeled;

    fn cfg() -> ForwardConfig {
        ForwardConfig {
            dim: 8,
            epochs: 6,
            nsamples: 40,
            ..ForwardConfig::small()
        }
    }

    #[test]
    fn trains_on_actors_relation() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb = ForwardEmbedding::train(&db, actors, &cfg(), 42).unwrap();
        assert_eq!(emb.len(), 5);
        assert_eq!(emb.dim(), 8);
        for f in db.fact_ids(actors) {
            let v = emb.embedding(f).unwrap();
            assert_eq!(v.len(), 8);
            assert!(v.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn loss_decreases() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb = ForwardEmbedding::train(&db, actors, &cfg(), 7).unwrap();
        let losses = emb.epoch_losses();
        assert!(losses.len() >= 2);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "SGD must reduce the loss: {losses:?}"
        );
    }

    #[test]
    fn psi_stays_symmetric() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let emb = ForwardEmbedding::train(&db, actors, &cfg(), 3).unwrap();
        for t in 0..emb.targets().len() {
            assert!(
                emb.psi(t).is_symmetric(1e-9),
                "ψ({t}) lost symmetry during training"
            );
        }
    }

    #[test]
    fn predictions_track_kernel_similarity() {
        // After training, predictions for the trivial-scheme worth target
        // should be closer to the Gaussian kernel values than at random:
        // just verify predictions are finite and the trivial name target
        // (equality kernel between distinct names = 0) predicts near 0 on
        // average.
        let (db, ids) = movies_database_labeled();
        let schema = db.schema();
        let actors = schema.relation_id("ACTORS").unwrap();
        let emb = ForwardEmbedding::train(&db, actors, &cfg(), 11).unwrap();
        let name_attr = schema.relation(actors).attr_index("name").unwrap();
        let t_name = emb
            .targets()
            .iter()
            .position(|t| t.scheme.is_empty() && t.attr == name_attr)
            .unwrap();
        let mut preds = Vec::new();
        let actor_ids = db.fact_ids(actors);
        for &a in &actor_ids {
            for &b in &actor_ids {
                if a != b {
                    preds.push(emb.predict(t_name, a, b).unwrap());
                }
            }
        }
        let mean = preds.iter().sum::<f64>() / preds.len() as f64;
        assert!(
            mean.abs() < 0.35,
            "distinct names have κ=0; mean prediction {mean} should be near 0"
        );
        let _ = ids;
    }

    #[test]
    fn deterministic_given_seed() {
        let (db, ids) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let e1 = ForwardEmbedding::train(&db, actors, &cfg(), 5).unwrap();
        let e2 = ForwardEmbedding::train(&db, actors, &cfg(), 5).unwrap();
        assert_eq!(e1.embedding(ids["a1"]), e2.embedding(ids["a1"]));
        assert_eq!(e1.embedding(ids["a5"]), e2.embedding(ids["a5"]));
    }

    #[test]
    fn shard_count_does_not_change_the_embedding() {
        let (db, _) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let config = cfg();
        let base =
            ForwardEmbedding::train_with_runtime(&db, actors, &config, 13, Runtime::single())
                .unwrap();
        for shards in [2usize, 8] {
            let emb = ForwardEmbedding::train_with_runtime(
                &db,
                actors,
                &config,
                13,
                Runtime::new(shards),
            )
            .unwrap();
            for f in db.fact_ids(actors) {
                assert_eq!(
                    emb.embedding(f).unwrap(),
                    base.embedding(f).unwrap(),
                    "shards={shards}: ϕ({f}) diverged"
                );
            }
        }
    }

    #[test]
    fn forget_removes_embedding() {
        let (db, ids) = movies_database_labeled();
        let actors = db.schema().relation_id("ACTORS").unwrap();
        let mut emb = ForwardEmbedding::train(&db, actors, &cfg(), 2).unwrap();
        assert!(emb.forget(ids["a1"]));
        assert!(emb.embedding(ids["a1"]).is_none());
        assert!(!emb.forget(ids["a1"]));
        assert_eq!(emb.len(), 4);
    }

    #[test]
    fn rejects_tiny_relations() {
        let (db, _) = movies_database_labeled();
        let studios = db.schema().relation_id("STUDIOS").unwrap();
        // STUDIOS has 3 facts — fine. Build a DB with one studio to hit the
        // error path.
        let mut small = reldb::Database::new(db.schema().clone());
        small
            .insert_into("STUDIOS", vec!["s01".into(), "X".into(), "LA".into()])
            .unwrap();
        let err = ForwardEmbedding::train(&small, studios, &cfg(), 0).unwrap_err();
        assert!(matches!(err, CoreError::NotEnoughFacts { .. }));
    }
}
