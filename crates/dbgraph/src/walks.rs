//! Biased second-order random walks (Node2Vec, Grover & Leskovec 2016).
//!
//! A walk step from `cur` (having arrived from `prev`) picks the next node
//! `x` among `cur`'s neighbours with unnormalised weight
//!
//! * `1/p` if `x == prev` (return),
//! * `1`   if `x` is adjacent to `prev` (BFS-ish),
//! * `1/q` otherwise (DFS-ish).
//!
//! With `p = q = 1` this degenerates to a first-order uniform walk — the
//! setting the paper uses for its database graphs. The corpus generator
//! produces `walks_per_node` truncated walks of `walk_length` steps from
//! every start node, exactly the sampling regime of Table II (40 walks × 30
//! steps), and the dynamic phase re-samples walks **only from the new
//! nodes** (paper §IV-A).
//!
//! Corpus generation is sharded over start nodes through
//! [`stembed_runtime::Runtime`]: start node `i` of the start list owns the
//! derived RNG stream `stream_rng(seed, i)` and emits its `walks_per_node`
//! walks consecutively. Streams are keyed by the start's position, not by
//! the executing thread, so the corpus is **bit-identical at every shard
//! count** — and idempotent: two `corpus()` calls on the same walker return
//! the same walks.

use crate::{Graph, NodeId};
use stembed_runtime::rng::DetRng;
use stembed_runtime::{stream_rng, Runtime};

/// Walk sampling hyperparameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Walks started per start node (paper default 40).
    pub walks_per_node: usize,
    /// Steps per walk (paper default 30).
    pub walk_length: usize,
    /// Node2Vec return parameter.
    pub p: f64,
    /// Node2Vec in-out parameter.
    pub q: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 40,
            walk_length: 30,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// A corpus of random walks: each walk is a node sequence whose first entry
/// is the start node. Walks are grouped by start node, in start-list order.
#[derive(Debug, Clone, Default)]
pub struct WalkCorpus {
    /// The walks.
    pub walks: Vec<Vec<NodeId>>,
}

impl WalkCorpus {
    /// Number of walks.
    pub fn len(&self) -> usize {
        self.walks.len()
    }

    /// `true` iff no walks were generated.
    pub fn is_empty(&self) -> bool {
        self.walks.is_empty()
    }

    /// Total number of node visits across all walks.
    pub fn total_tokens(&self) -> usize {
        self.walks.iter().map(|w| w.len()).sum()
    }
}

/// Stateful walker bound to a graph.
pub struct Walker<'g> {
    graph: &'g Graph,
    config: WalkConfig,
    seed: u64,
    /// Stream for the sequential [`Walker::walk_from`] API only; corpus
    /// generation derives an independent stream per start node.
    rng: DetRng,
    runtime: Runtime,
}

impl<'g> Walker<'g> {
    /// Create a walker with a deterministic seed and the default runtime
    /// (shard count from `STEMBED_SHARDS` / available parallelism).
    pub fn new(graph: &'g Graph, config: WalkConfig, seed: u64) -> Self {
        Self::with_runtime(graph, config, seed, Runtime::from_env())
    }

    /// Create a walker with an explicit execution runtime.
    pub fn with_runtime(graph: &'g Graph, config: WalkConfig, seed: u64, runtime: Runtime) -> Self {
        Walker {
            graph,
            config,
            seed,
            rng: DetRng::seed_from_u64(seed),
            runtime,
        }
    }

    /// The execution runtime in use.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// Generate the full corpus: `walks_per_node` walks from every node of
    /// the graph.
    pub fn corpus(&self) -> WalkCorpus {
        let starts: Vec<NodeId> = self.graph.node_ids().collect();
        self.corpus_from(&starts)
    }

    /// Generate `walks_per_node` walks from each given start node only —
    /// the dynamic-phase sampling. Walks come back grouped by start node in
    /// `starts` order; length-1 walks (isolated starts) are dropped.
    pub fn corpus_from(&self, starts: &[NodeId]) -> WalkCorpus {
        let per_start = self.runtime.par_map_ordered(starts, |i, &start| {
            let mut rng = stream_rng(self.seed, i as u64);
            let mut walks = Vec::with_capacity(self.config.walks_per_node);
            for _ in 0..self.config.walks_per_node {
                let w = self.walk_with(&mut rng, start);
                if w.len() > 1 {
                    walks.push(w);
                }
            }
            walks
        });
        WalkCorpus {
            walks: per_start.into_iter().flatten().collect(),
        }
    }

    /// One truncated biased walk from `start`, drawing from the walker's
    /// own sequential stream.
    pub fn walk_from(&mut self, start: NodeId) -> Vec<NodeId> {
        let mut rng = self.rng.clone();
        let walk = self.walk_with(&mut rng, start);
        self.rng = rng;
        walk
    }

    /// One truncated biased walk from `start` using the given stream.
    fn walk_with(&self, rng: &mut DetRng, start: NodeId) -> Vec<NodeId> {
        let mut walk = Vec::with_capacity(self.config.walk_length + 1);
        walk.push(start);
        if self.graph.degree(start) == 0 {
            return walk;
        }
        // First step: uniform.
        let first = self.uniform_neighbor(rng, start);
        walk.push(first);
        while walk.len() <= self.config.walk_length {
            let cur = walk[walk.len() - 1];
            let prev = walk[walk.len() - 2];
            if self.graph.degree(cur) == 0 {
                break;
            }
            let next = self.biased_step(rng, prev, cur);
            walk.push(next);
        }
        walk
    }

    fn uniform_neighbor(&self, rng: &mut DetRng, v: NodeId) -> NodeId {
        let neigh = self.graph.neighbors(v);
        neigh[rng.random_range(0..neigh.len())]
    }

    /// Second-order step with rejection sampling (Knightking-style): avoids
    /// materialising the weight vector. Upper bound of weights is
    /// `max(1/p, 1, 1/q)`.
    fn biased_step(&self, rng: &mut DetRng, prev: NodeId, cur: NodeId) -> NodeId {
        let (p, q) = (self.config.p, self.config.q);
        // Fast path: uniform walk.
        if (p - 1.0).abs() < 1e-12 && (q - 1.0).abs() < 1e-12 {
            return self.uniform_neighbor(rng, cur);
        }
        let w_return = 1.0 / p;
        let w_common = 1.0;
        let w_far = 1.0 / q;
        let w_max = w_return.max(w_common).max(w_far);
        loop {
            let cand = self.uniform_neighbor(rng, cur);
            let w = if cand == prev {
                w_return
            } else if self.graph.has_edge(cand, prev) {
                w_common
            } else {
                w_far
            };
            if rng.random_range(0.0..w_max) < w {
                return cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Barbell-ish test graph: two triangles joined by a bridge.
    fn two_triangles() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
        // Triangle 1: 0-1-2, triangle 2: 3-4-5, bridge 2-3.
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[3], n[4]);
        g.add_edge(n[4], n[5]);
        g.add_edge(n[3], n[5]);
        g.add_edge(n[2], n[3]);
        (g, n)
    }

    #[test]
    fn walks_are_valid_paths() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 5,
            walk_length: 12,
            p: 0.5,
            q: 2.0,
        };
        let walker = Walker::new(&g, cfg, 11);
        let corpus = walker.corpus();
        assert!(!corpus.is_empty());
        for walk in &corpus.walks {
            assert!(walk.len() >= 2);
            assert!(walk.len() <= 13);
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "non-edge in walk");
            }
        }
    }

    #[test]
    fn corpus_covers_all_start_nodes() {
        let (g, n) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 4,
            ..Default::default()
        };
        let walker = Walker::new(&g, cfg, 1);
        let corpus = walker.corpus();
        for &node in &n {
            let count = corpus.walks.iter().filter(|w| w[0] == node).count();
            assert_eq!(count, 3, "every node starts walks_per_node walks");
        }
    }

    #[test]
    fn corpus_from_restricts_starts() {
        let (g, n) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 4,
            walk_length: 4,
            ..Default::default()
        };
        let walker = Walker::new(&g, cfg, 2);
        let corpus = walker.corpus_from(&[n[0]]);
        assert_eq!(corpus.len(), 4);
        assert!(corpus.walks.iter().all(|w| w[0] == n[0]));
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig::default();
        let c1 = Walker::new(&g, cfg.clone(), 99).corpus();
        let c2 = Walker::new(&g, cfg, 99).corpus();
        assert_eq!(c1.walks, c2.walks);
    }

    #[test]
    fn shard_count_does_not_change_the_corpus() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig::default();
        let base = Walker::with_runtime(&g, cfg.clone(), 7, Runtime::single()).corpus();
        for shards in [2usize, 4, 8] {
            let c = Walker::with_runtime(&g, cfg.clone(), 7, Runtime::new(shards)).corpus();
            assert_eq!(c.walks, base.walks, "shards={shards} diverged");
        }
    }

    #[test]
    fn low_p_increases_backtracking() {
        let (g, _) = two_triangles();
        let count_backtracks = |p: f64, q: f64, seed: u64| -> f64 {
            let cfg = WalkConfig {
                walks_per_node: 50,
                walk_length: 20,
                p,
                q,
            };
            let corpus = Walker::new(&g, cfg, seed).corpus();
            let mut back = 0usize;
            let mut total = 0usize;
            for w in &corpus.walks {
                for win in w.windows(3) {
                    total += 1;
                    if win[0] == win[2] {
                        back += 1;
                    }
                }
            }
            back as f64 / total as f64
        };
        let returny = count_backtracks(0.1, 1.0, 5);
        let explorey = count_backtracks(10.0, 1.0, 5);
        assert!(
            returny > explorey + 0.05,
            "p≪1 must backtrack more: {returny} vs {explorey}"
        );
    }

    #[test]
    fn isolated_node_yields_trivial_walk() {
        let mut g = Graph::new();
        let a = g.add_node();
        let cfg = WalkConfig::default();
        let mut walker = Walker::new(&g, cfg, 0);
        let w = walker.walk_from(a);
        assert_eq!(w, vec![a]);
        // …and the corpus drops length-1 walks.
        let corpus = walker.corpus();
        assert!(corpus.is_empty());
    }
}
