//! Biased second-order random walks (Node2Vec, Grover & Leskovec 2016)
//! over the CSR graph, collected into a **flat token arena**.
//!
//! A walk step from `cur` (having arrived from `prev`) picks the next node
//! `x` among `cur`'s neighbours with unnormalised weight
//!
//! * `1/p` if `x == prev` (return),
//! * `1`   if `x` is adjacent to `prev` (BFS-ish),
//! * `1/q` otherwise (DFS-ish).
//!
//! With `p = q = 1` this degenerates to a first-order uniform walk — the
//! setting the paper uses for its database graphs. Transition complexity:
//!
//! * **first-order (`p = q = 1`)**: O(1) — one uniform index draw into the
//!   node's contiguous CSR row. This *is* the alias-table draw for the
//!   uniform multiset distribution (every column's acceptance probability
//!   is 1, so the table is elided; the generic
//!   [`stembed_runtime::AliasTable`] serves the non-uniform distributions,
//!   e.g. negative sampling).
//! * **second-order (`p ≠ 1` or `q ≠ 1`)**: O(1) expected rejection
//!   sampling against the weight bound `max(1/p, 1, 1/q)` — the fallback
//!   for the prev-dependent weights that no per-node table can precompute
//!   without O(Σ deg²) memory.
//!
//! The corpus generator produces `walks_per_node` truncated walks of
//! `walk_length` steps from every start node, exactly the sampling regime
//! of Table II (40 walks × 30 steps), and the dynamic phase re-samples
//! walks **only from the new nodes** (paper §IV-A). Walks are written
//! straight into a per-shard [`WalkCorpus`] arena — zero per-walk
//! allocations — and shard arenas are concatenated in start order.
//!
//! Corpus generation is sharded over start nodes through
//! [`stembed_runtime::Runtime`]: start node `i` of the start list owns the
//! derived RNG stream `stream_rng(seed, i)` and emits its `walks_per_node`
//! walks consecutively. Streams are keyed by the start's position, not by
//! the executing thread, so the corpus is **bit-identical at every shard
//! count** — and idempotent: two `corpus()` calls on the same walker return
//! the same walks.

use crate::{Graph, NodeId};
use stembed_runtime::rng::DetRng;
use stembed_runtime::{stream_rng, Runtime};

/// Walk sampling hyperparameters.
#[derive(Debug, Clone)]
pub struct WalkConfig {
    /// Walks started per start node (paper default 40).
    pub walks_per_node: usize,
    /// Steps per walk (paper default 30).
    pub walk_length: usize,
    /// Node2Vec return parameter.
    pub p: f64,
    /// Node2Vec in-out parameter.
    pub q: f64,
}

impl Default for WalkConfig {
    fn default() -> Self {
        WalkConfig {
            walks_per_node: 40,
            walk_length: 30,
            p: 1.0,
            q: 1.0,
        }
    }
}

/// A corpus of random walks in **flat CSR-style layout**: all node visits
/// live in one contiguous `tokens` arena, and `offsets[i]..offsets[i+1]`
/// delimits walk `i`. Each walk's first entry is its start node; walks are
/// grouped by start node, in start-list order.
///
/// Consumers iterate contiguous memory (SGNS window generation touches no
/// per-walk heap cells), and building the corpus performs no per-walk
/// allocation — only the arena itself grows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkCorpus {
    /// All walk tokens, back to back.
    tokens: Vec<NodeId>,
    /// Walk boundaries; `offsets.len() == len() + 1`, `offsets[0] == 0`.
    offsets: Vec<u32>,
}

impl Default for WalkCorpus {
    fn default() -> Self {
        WalkCorpus {
            tokens: Vec::new(),
            offsets: vec![0],
        }
    }
}

/// Offset-safe conversion: the corpus addresses tokens through `u32`.
///
/// # Panics
///
/// Documented capacity limit: a corpus beyond `u32::MAX` tokens cannot be
/// addressed by the arena's offset table.
#[inline]
fn token_offset(len: usize) -> u32 {
    u32::try_from(len).expect("walk corpus exceeds u32 token capacity")
}

impl WalkCorpus {
    /// Number of walks.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` iff no walks were generated.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() == 1
    }

    /// Total number of node visits across all walks.
    pub fn total_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// The flat token arena (walk `i` occupies
    /// `tokens()[offsets[i]..offsets[i+1]]`).
    pub fn tokens(&self) -> &[NodeId] {
        &self.tokens
    }

    /// Walk `i` as a contiguous slice.
    #[inline]
    pub fn walk(&self, i: usize) -> &[NodeId] {
        &self.tokens[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate over all walks as contiguous slices.
    pub fn iter(&self) -> impl Iterator<Item = &[NodeId]> {
        self.offsets
            .windows(2)
            // PANICS: in bounds — `windows(2)` slices have length 2.
            .map(move |w| &self.tokens[w[0] as usize..w[1] as usize])
    }

    /// Append one walk to the arena.
    pub fn push_walk(&mut self, walk: &[NodeId]) {
        self.tokens.extend_from_slice(walk);
        self.offsets.push(token_offset(self.tokens.len()));
    }

    /// Build a flat corpus from nested walks (tests and interop).
    pub fn from_nested(walks: &[Vec<NodeId>]) -> Self {
        let mut corpus = WalkCorpus::default();
        for w in walks {
            corpus.push_walk(w);
        }
        corpus
    }

    /// Append all walks of `other`, renumbering its offsets into this arena.
    fn append(&mut self, other: &WalkCorpus) {
        let base = token_offset(self.tokens.len());
        self.tokens.extend_from_slice(&other.tokens);
        token_offset(self.tokens.len()); // fail loudly before offsets wrap
        self.offsets
            .extend(other.offsets[1..].iter().map(|&o| base + o));
    }
}

/// Stateful walker bound to a graph.
pub struct Walker<'g> {
    graph: &'g Graph,
    config: WalkConfig,
    seed: u64,
    /// `p = q = 1`: every transition is one uniform draw into the CSR row.
    first_order: bool,
    /// Stream for the sequential [`Walker::walk_from`] API only; corpus
    /// generation derives an independent stream per start node.
    rng: DetRng,
    runtime: Runtime,
}

impl<'g> Walker<'g> {
    /// Create a walker with a deterministic seed and the default runtime
    /// (shard count from `STEMBED_SHARDS` / available parallelism).
    pub fn new(graph: &'g Graph, config: WalkConfig, seed: u64) -> Self {
        Self::with_runtime(graph, config, seed, Runtime::from_env())
    }

    /// Create a walker with an explicit execution runtime.
    pub fn with_runtime(graph: &'g Graph, config: WalkConfig, seed: u64, runtime: Runtime) -> Self {
        let first_order = (config.p - 1.0).abs() < 1e-12 && (config.q - 1.0).abs() < 1e-12;
        Walker {
            graph,
            config,
            seed,
            first_order,
            rng: DetRng::seed_from_u64(seed),
            runtime,
        }
    }

    /// The execution runtime in use.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// Generate the full corpus: `walks_per_node` walks from every node of
    /// the graph.
    pub fn corpus(&self) -> WalkCorpus {
        let starts: Vec<NodeId> = self.graph.node_ids().collect();
        self.corpus_from(&starts)
    }

    /// Generate `walks_per_node` walks from each given start node only —
    /// the dynamic-phase sampling. Walks come back grouped by start node in
    /// `starts` order; length-1 walks (isolated starts) are dropped.
    pub fn corpus_from(&self, starts: &[NodeId]) -> WalkCorpus {
        let mut corpus = WalkCorpus::default();
        self.corpus_from_into(starts, &mut corpus);
        corpus
    }

    /// [`Walker::corpus_from`] into a caller-owned arena: `corpus` is
    /// cleared and refilled, reusing its token/offset allocations. The
    /// dynamic phase hands the same buffer back every insertion round, so
    /// the (small) per-round corpus costs no arena growth after the first
    /// round.
    pub fn corpus_from_into(&self, starts: &[NodeId], corpus: &mut WalkCorpus) {
        let per_start = self.runtime.par_map_ordered(starts, |i, &start| {
            let mut rng = stream_rng(self.seed, i as u64);
            let mut shard = WalkCorpus {
                tokens: Vec::with_capacity(
                    self.config.walks_per_node * (self.config.walk_length + 1),
                ),
                offsets: Vec::with_capacity(self.config.walks_per_node + 1),
            };
            shard.offsets.push(0);
            for _ in 0..self.config.walks_per_node {
                let begin = shard.tokens.len();
                self.walk_into(&mut rng, start, &mut shard.tokens);
                if shard.tokens.len() - begin > 1 {
                    shard.offsets.push(token_offset(shard.tokens.len()));
                } else {
                    // Isolated start: drop the trivial walk.
                    shard.tokens.truncate(begin);
                }
            }
            shard
        });
        corpus.tokens.clear();
        corpus.offsets.clear();
        corpus
            .tokens
            .reserve(per_start.iter().map(|s| s.tokens.len()).sum());
        corpus
            .offsets
            .reserve(per_start.iter().map(WalkCorpus::len).sum::<usize>() + 1);
        corpus.offsets.push(0);
        for shard in &per_start {
            corpus.append(shard);
        }
    }

    /// One truncated biased walk from `start`, drawing from the walker's
    /// own sequential stream.
    pub fn walk_from(&mut self, start: NodeId) -> Vec<NodeId> {
        let mut rng = self.rng.clone();
        let mut walk = Vec::with_capacity(self.config.walk_length + 1);
        self.walk_into(&mut rng, start, &mut walk);
        self.rng = rng;
        walk
    }

    /// Append one truncated biased walk from `start` to `out` (always at
    /// least the start token).
    fn walk_into(&self, rng: &mut DetRng, start: NodeId, out: &mut Vec<NodeId>) {
        out.push(start);
        let neigh = self.graph.neighbors(start);
        if neigh.is_empty() {
            return;
        }
        // First step: uniform.
        let mut prev = start;
        let mut cur = neigh[rng.random_range(0..neigh.len())];
        out.push(cur);
        for _ in 1..self.config.walk_length {
            let neigh = self.graph.neighbors(cur);
            if neigh.is_empty() {
                break;
            }
            let next = if self.first_order {
                // O(1): uniform over the contiguous CSR row (the degenerate
                // alias draw — parallel edges are duplicate row entries).
                neigh[rng.random_range(0..neigh.len())]
            } else {
                self.biased_step(rng, prev, neigh)
            };
            out.push(next);
            prev = cur;
            cur = next;
        }
    }

    /// Second-order step with rejection sampling (Knightking-style): avoids
    /// materialising the weight vector. Upper bound of weights is
    /// `max(1/p, 1, 1/q)`; expected draws per accepted step are O(1).
    fn biased_step(&self, rng: &mut DetRng, prev: NodeId, neigh: &[NodeId]) -> NodeId {
        let (p, q) = (self.config.p, self.config.q);
        let w_return = 1.0 / p;
        let w_common = 1.0;
        let w_far = 1.0 / q;
        let w_max = w_return.max(w_common).max(w_far);
        loop {
            let cand = neigh[rng.random_range(0..neigh.len())];
            let w = if cand == prev {
                w_return
            } else if self.graph.has_edge(cand, prev) {
                w_common
            } else {
                w_far
            };
            if rng.random_range(0.0..w_max) < w {
                return cand;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Barbell-ish test graph: two triangles joined by a bridge.
    fn two_triangles() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new();
        let n: Vec<NodeId> = (0..6).map(|_| g.add_node()).collect();
        // Triangle 1: 0-1-2, triangle 2: 3-4-5, bridge 2-3.
        g.add_edge(n[0], n[1]);
        g.add_edge(n[1], n[2]);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[3], n[4]);
        g.add_edge(n[4], n[5]);
        g.add_edge(n[3], n[5]);
        g.add_edge(n[2], n[3]);
        g.finalize();
        (g, n)
    }

    #[test]
    fn walks_are_valid_paths() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 5,
            walk_length: 12,
            p: 0.5,
            q: 2.0,
        };
        let walker = Walker::new(&g, cfg, 11);
        let corpus = walker.corpus();
        assert!(!corpus.is_empty());
        for walk in corpus.iter() {
            assert!(walk.len() >= 2);
            assert!(walk.len() <= 13);
            for pair in walk.windows(2) {
                assert!(g.has_edge(pair[0], pair[1]), "non-edge in walk");
            }
        }
    }

    #[test]
    fn corpus_covers_all_start_nodes() {
        let (g, n) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 3,
            walk_length: 4,
            ..Default::default()
        };
        let walker = Walker::new(&g, cfg, 1);
        let corpus = walker.corpus();
        for &node in &n {
            let count = corpus.iter().filter(|w| w[0] == node).count();
            assert_eq!(count, 3, "every node starts walks_per_node walks");
        }
    }

    #[test]
    fn corpus_from_restricts_starts() {
        let (g, n) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 4,
            walk_length: 4,
            ..Default::default()
        };
        let walker = Walker::new(&g, cfg, 2);
        let corpus = walker.corpus_from(&[n[0]]);
        assert_eq!(corpus.len(), 4);
        assert!(corpus.iter().all(|w| w[0] == n[0]));
    }

    #[test]
    fn deterministic_under_seed() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig::default();
        let c1 = Walker::new(&g, cfg.clone(), 99).corpus();
        let c2 = Walker::new(&g, cfg, 99).corpus();
        assert_eq!(c1, c2);
    }

    #[test]
    fn shard_count_does_not_change_the_corpus() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig::default();
        let base = Walker::with_runtime(&g, cfg.clone(), 7, Runtime::single()).corpus();
        for shards in [2usize, 4, 8] {
            let c = Walker::with_runtime(&g, cfg.clone(), 7, Runtime::new(shards)).corpus();
            assert_eq!(c, base, "shards={shards} diverged");
        }
    }

    #[test]
    fn flat_layout_is_consistent() {
        let (g, _) = two_triangles();
        let cfg = WalkConfig {
            walks_per_node: 4,
            walk_length: 6,
            ..Default::default()
        };
        let corpus = Walker::new(&g, cfg, 5).corpus();
        // offsets delimit exactly the token arena…
        assert_eq!(corpus.total_tokens(), corpus.tokens().len());
        let summed: usize = corpus.iter().map(<[NodeId]>::len).sum();
        assert_eq!(summed, corpus.total_tokens());
        // …and indexed access agrees with iteration.
        for (i, w) in corpus.iter().enumerate() {
            assert_eq!(w, corpus.walk(i));
        }
        // Round-trip through the nested representation.
        let nested: Vec<Vec<NodeId>> = corpus.iter().map(<[NodeId]>::to_vec).collect();
        assert_eq!(WalkCorpus::from_nested(&nested), corpus);
    }

    #[test]
    fn low_p_increases_backtracking() {
        let (g, _) = two_triangles();
        let count_backtracks = |p: f64, q: f64, seed: u64| -> f64 {
            let cfg = WalkConfig {
                walks_per_node: 50,
                walk_length: 20,
                p,
                q,
            };
            let corpus = Walker::new(&g, cfg, seed).corpus();
            let mut back = 0usize;
            let mut total = 0usize;
            for w in corpus.iter() {
                for win in w.windows(3) {
                    total += 1;
                    if win[0] == win[2] {
                        back += 1;
                    }
                }
            }
            back as f64 / total as f64
        };
        let returny = count_backtracks(0.1, 1.0, 5);
        let explorey = count_backtracks(10.0, 1.0, 5);
        assert!(
            returny > explorey + 0.05,
            "p≪1 must backtrack more: {returny} vs {explorey}"
        );
    }

    #[test]
    fn isolated_node_yields_trivial_walk() {
        let mut g = Graph::new();
        let a = g.add_node();
        let cfg = WalkConfig::default();
        let mut walker = Walker::new(&g, cfg, 0);
        let w = walker.walk_from(a);
        assert_eq!(w, vec![a]);
        // …and the corpus drops length-1 walks.
        let corpus = walker.corpus();
        assert!(corpus.is_empty());
    }
}
