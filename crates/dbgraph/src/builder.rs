//! Construction of the bipartite fact/value graph `G_D` (paper §IV).

use crate::{Graph, NodeId, UnionFind};
use reldb::{Database, FactId, RelationId, Schema, Value};
use std::collections::{BTreeMap, HashMap};

/// What a graph node represents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// `v(f)` — a fact node.
    Fact(FactId),
    /// `u(class, a)` — a value node. `class` is the FK-equivalence class of
    /// columns (see [`DbGraph::column_class`]); identified nodes share one
    /// `NodeKind`.
    Value {
        /// Column equivalence class.
        class: u32,
        /// The attribute value.
        value: Value,
    },
}

/// The bipartite graph of a database plus the bookkeeping needed to extend
/// it incrementally when new facts arrive.
#[derive(Debug, Clone)]
pub struct DbGraph {
    graph: Graph,
    kinds: Vec<NodeKind>,
    /// Ordered map: relabelling rewrites every entry in place, and the
    /// visit order must be hasher-independent.
    fact_nodes: BTreeMap<FactId, NodeId>,
    /// Stays a `HashMap`: [`Value`] has no consistent `Ord` (`Float` keys
    /// are compared by `PartialEq`, which identifies `-0.0 == 0.0`, while
    /// any total order would have to split them). Every iteration over it
    /// is order-insensitive (see the waiver at `apply_relabel`).
    value_nodes: HashMap<(u32, Value), NodeId>,
    /// `column_class[rel][attr]` → equivalence class id.
    column_class: Vec<Vec<u32>>,
    /// A representative `(relation, attribute)` per class, for display.
    class_repr: Vec<(RelationId, usize)>,
    /// When built via [`DbGraph::build_localized`]: `insertion_id[n]` is
    /// the insertion-order id node `n` would have carried under
    /// [`DbGraph::build`] — the inverse of the BFS relabelling, kept so
    /// external consumers can recover the original (stable) ordering.
    /// Nodes added by later extensions append their own id (extensions
    /// go to the tail in insertion order either way).
    insertion_id: Option<Vec<u32>>,
}

impl DbGraph {
    /// Compute the FK-induced column classes for `schema`.
    ///
    /// Columns `(R, Bᵢ)` and `(S, Cᵢ)` are merged for every FK
    /// `R[B…] ⊆ S[C…]`; value nodes are then keyed by `(class, value)`,
    /// which realises exactly the node identification of the paper: two
    /// occurrences of the same constant are one node iff their columns are
    /// connected by a chain of foreign keys.
    fn column_classes(schema: &Schema) -> (Vec<Vec<u32>>, Vec<(RelationId, usize)>) {
        // Flatten columns.
        let mut offsets = Vec::with_capacity(schema.relation_count());
        let mut total = 0usize;
        for rel in schema.relations() {
            offsets.push(total);
            total += rel.arity();
        }
        let mut uf = UnionFind::new(total);
        for fk in schema.foreign_keys() {
            for (b, c) in fk.from_attrs.iter().zip(fk.to_attrs.iter()) {
                let from_col = offsets[fk.from_rel.index()] + b;
                let to_col = offsets[fk.to_rel.index()] + c;
                uf.union(from_col, to_col);
            }
        }
        // Densify class ids and record representatives.
        let mut dense: HashMap<usize, u32> = HashMap::new();
        let mut classes = Vec::with_capacity(schema.relation_count());
        let mut reprs: Vec<(RelationId, usize)> = Vec::new();
        for (rel_idx, rel) in schema.relations().iter().enumerate() {
            let mut per_attr = Vec::with_capacity(rel.arity());
            for attr in 0..rel.arity() {
                let root = uf.find(offsets[rel_idx] + attr);
                let next_id = dense.len() as u32;
                let class = *dense.entry(root).or_insert_with(|| {
                    reprs.push((RelationId(rel_idx as u32), attr));
                    next_id
                });
                per_attr.push(class);
            }
            classes.push(per_attr);
        }
        (classes, reprs)
    }

    /// Build `G_D` for the whole database.
    pub fn build(db: &Database) -> DbGraph {
        let mut this = Self::build_unfinalized(db);
        // One finalize pass merges the whole buffered edge batch into the
        // CSR arrays: O(E log E) total instead of O(E·deg) sorted inserts.
        this.graph.finalize();
        this
    }

    /// [`DbGraph::build`] with **access-locality node ids**: before the
    /// CSR arrays are laid out, nodes are relabelled in BFS order from
    /// the fact nodes of `rel` (the prediction relation), unreached
    /// nodes keeping their relative insertion order at the tail.
    ///
    /// Why: the dynamic protocol's continuation walks start at restored
    /// prediction tuples and visit their graph neighbourhood — under
    /// insertion-order ids (relation-major) that dirty set scatters
    /// across the whole id space, touching nearly every fixed-size
    /// bucket of the `BucketAlias` negative-sampling table and every
    /// cache line of the embedding arenas. Under BFS-from-`rel` order,
    /// graph-near nodes get near ids, so the dirty set clusters into few
    /// buckets and contiguous rows. Node *identity* is unaffected:
    /// facts and values resolve through the same maps, and
    /// [`DbGraph::insertion_id`] exposes the inverse relabelling.
    ///
    /// This intentionally changes node-id-dependent outputs (walk RNG
    /// streams are keyed per start id) relative to [`DbGraph::build`] —
    /// deterministically, under the same seed/shard contract.
    pub fn build_localized(db: &Database, rel: RelationId) -> DbGraph {
        let mut this = Self::build_unfinalized(db);
        let n = this.graph.node_count();
        // Adjacency over the buffered edge list (CSR does not exist yet):
        // counting-sort into a flat half-edge array.
        let mut degree = vec![0u32; n];
        for &(a, b) in this.graph.pending_edges() {
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0u32);
        for &d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut adj = vec![0u32; acc as usize];
        for &(a, b) in this.graph.pending_edges() {
            adj[cursor[a.index()] as usize] = b.0;
            cursor[a.index()] += 1;
            adj[cursor[b.index()] as usize] = a.0;
            cursor[b.index()] += 1;
        }
        // BFS seeded by `rel`'s fact nodes in fact-id order; neighbour
        // rows visited in insertion order — fully deterministic.
        let mut new_id_of = vec![u32::MAX; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut head = 0usize;
        let enqueue = |v: u32, order: &mut Vec<u32>, new_id_of: &mut Vec<u32>| {
            if new_id_of[v as usize] == u32::MAX {
                new_id_of[v as usize] = order.len() as u32;
                order.push(v);
            }
        };
        for (fact_id, _) in db.facts(rel) {
            let v = this.fact_nodes[&fact_id];
            enqueue(v.0, &mut order, &mut new_id_of);
        }
        while head < order.len() {
            let v = order[head] as usize;
            head += 1;
            for &w in &adj[offsets[v] as usize..offsets[v + 1] as usize] {
                enqueue(w, &mut order, &mut new_id_of);
            }
        }
        // Disconnected remainder: insertion order at the tail.
        for v in 0..n as u32 {
            enqueue(v, &mut order, &mut new_id_of);
        }
        this.apply_relabel(&new_id_of, order);
        this.graph.finalize();
        this
    }

    /// Shared construction: all fact/value nodes added, edges still
    /// buffered (no finalize yet).
    fn build_unfinalized(db: &Database) -> DbGraph {
        let (column_class, class_repr) = Self::column_classes(db.schema());
        let mut this = DbGraph {
            graph: Graph::new(),
            kinds: Vec::new(),
            fact_nodes: BTreeMap::new(),
            value_nodes: HashMap::new(),
            column_class,
            class_repr,
            insertion_id: None,
        };
        for rel in db.schema().relation_ids() {
            for (fact_id, _) in db.facts(rel) {
                this.add_fact_node(db, fact_id);
            }
        }
        this
    }

    /// Install a node permutation across every id-indexed structure:
    /// the buffered graph, the kind table and both lookup maps.
    /// `new_id_of[old] = new`; `order[new] = old` (the inverse, retained
    /// as [`DbGraph::insertion_id`]).
    fn apply_relabel(&mut self, new_id_of: &[u32], order: Vec<u32>) {
        self.graph.relabel(new_id_of);
        let mut kinds = Vec::with_capacity(self.kinds.len());
        for &old in &order {
            kinds.push(self.kinds[old as usize].clone());
        }
        self.kinds = kinds;
        for v in self.fact_nodes.values_mut() {
            *v = NodeId(new_id_of[v.index()]);
        }
        // Pure per-entry rewrite: every value is mapped independently
        // through `new_id_of`, so the visit order cannot influence any
        // result. `value_nodes` cannot become a `BTreeMap` — `Value` has
        // no consistent total order (see the field docs).
        // lint: nondeterministic-iter-ok(order-insensitive in-place rewrite; Value is not Ord)
        for v in self.value_nodes.values_mut() {
            *v = NodeId(new_id_of[v.index()]);
        }
        self.insertion_id = Some(order);
    }

    /// Extend the graph with a newly inserted fact (paper §IV-A). Returns
    /// the **new** node ids: the fact node `v(f)` first, followed by value
    /// nodes for values not present before. Pre-existing value nodes gain
    /// edges but are not reported (their embeddings stay frozen).
    ///
    /// For a batch of facts prefer [`DbGraph::extend_with_facts`], which
    /// pays the CSR merge once instead of per fact.
    pub fn extend_with_fact(&mut self, db: &Database, fact_id: FactId) -> Vec<NodeId> {
        let new_nodes = self.add_fact_node(db, fact_id);
        self.graph.finalize();
        new_nodes
    }

    /// Extend the graph with a batch of newly inserted facts, buffering all
    /// their edges and merging them into the CSR arrays in **one** finalize
    /// pass. Returns the new node ids in insertion order (per fact: the
    /// fact node first, then any fresh value nodes).
    pub fn extend_with_facts(&mut self, db: &Database, fact_ids: &[FactId]) -> Vec<NodeId> {
        let mut new_nodes = Vec::new();
        for &fact_id in fact_ids {
            new_nodes.extend(self.add_fact_node(db, fact_id));
        }
        self.graph.finalize();
        new_nodes
    }

    /// Allocate a graph node, keeping the inverse relabelling (if any)
    /// aligned: post-build nodes sit at the tail, where BFS id and
    /// insertion id coincide.
    fn alloc_node(&mut self) -> NodeId {
        let v = self.graph.add_node();
        if let Some(inv) = &mut self.insertion_id {
            inv.push(v.0);
        }
        v
    }

    fn add_fact_node(&mut self, db: &Database, fact_id: FactId) -> Vec<NodeId> {
        assert!(
            !self.fact_nodes.contains_key(&fact_id),
            "fact {fact_id} already has a node"
        );
        let mut new_nodes = Vec::new();
        let v = self.alloc_node();
        self.kinds.push(NodeKind::Fact(fact_id));
        self.fact_nodes.insert(fact_id, v);
        new_nodes.push(v);

        let fact = db
            .fact(fact_id)
            // PANICS: never — callers pass ids of live facts only.
            .expect("fact must be live when added to the graph");
        for (attr, value) in fact.values().iter().enumerate() {
            if value.is_null() {
                continue;
            }
            let class = self.column_class[fact_id.rel.index()][attr];
            let key = (class, value.clone());
            let u = match self.value_nodes.get(&key) {
                Some(&u) => u,
                None => {
                    let u = self.alloc_node();
                    self.kinds.push(NodeKind::Value {
                        class: key.0,
                        value: key.1.clone(),
                    });
                    self.value_nodes.insert(key, u);
                    new_nodes.push(u);
                    u
                }
            };
            self.graph.add_edge(v, u);
        }
        new_nodes
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// What node `id` represents.
    pub fn node_kind(&self, id: NodeId) -> &NodeKind {
        &self.kinds[id.index()]
    }

    /// The node of fact `f`, if present.
    pub fn fact_node(&self, fact: FactId) -> Option<NodeId> {
        self.fact_nodes.get(&fact).copied()
    }

    /// The insertion-order id node `id` would carry under
    /// [`DbGraph::build`] — the identity unless this graph was built via
    /// [`DbGraph::build_localized`]. Lets consumers present a stable,
    /// build-order-independent numbering regardless of the internal
    /// (locality-optimised) id layout.
    pub fn insertion_id(&self, id: NodeId) -> NodeId {
        match &self.insertion_id {
            Some(inv) => NodeId(inv[id.index()]),
            None => id,
        }
    }

    /// The value node for `(rel, attr, value)`, if present.
    pub fn value_node(&self, rel: RelationId, attr: usize, value: &Value) -> Option<NodeId> {
        let class = self.column_class[rel.index()][attr];
        self.value_nodes.get(&(class, value.clone())).copied()
    }

    /// Number of fact nodes.
    pub fn fact_node_count(&self) -> usize {
        self.fact_nodes.len()
    }

    /// Number of value nodes.
    pub fn value_node_count(&self) -> usize {
        self.value_nodes.len()
    }

    /// The FK-equivalence class of a column.
    pub fn column_class(&self, rel: RelationId, attr: usize) -> u32 {
        self.column_class[rel.index()][attr]
    }

    /// The kind table, `kinds()[n]` being what node `n` represents (for
    /// snapshotting — both lookup maps are derived from it).
    pub fn kinds(&self) -> &[NodeKind] {
        &self.kinds
    }

    /// The inverse BFS relabelling installed by
    /// [`DbGraph::build_localized`], or `None` for insertion-order
    /// builds. Part of the snapshot: the id layout is state, not derivable
    /// from the database.
    pub fn insertion_ids(&self) -> Option<&[u32]> {
        self.insertion_id.as_deref()
    }

    /// Rebuild a `DbGraph` from snapshotted parts: the CSR graph, the kind
    /// table, and the optional inverse relabelling. The lookup maps are
    /// rebuilt from `kinds` and the column classes re-derived from
    /// `schema` — both are deterministic functions of their inputs, so a
    /// round trip reproduces the original graph exactly.
    ///
    /// # Panics
    /// If `kinds.len()` does not match the graph's node count, or the
    /// relabelling (when present) has the wrong length.
    pub fn from_raw_parts(
        schema: &Schema,
        graph: Graph,
        kinds: Vec<NodeKind>,
        insertion_id: Option<Vec<u32>>,
    ) -> DbGraph {
        assert_eq!(kinds.len(), graph.node_count(), "kind table length");
        if let Some(inv) = &insertion_id {
            assert_eq!(inv.len(), graph.node_count(), "relabelling length");
        }
        let (column_class, class_repr) = Self::column_classes(schema);
        let mut fact_nodes = BTreeMap::new();
        let mut value_nodes = HashMap::new();
        for (i, kind) in kinds.iter().enumerate() {
            match kind {
                NodeKind::Fact(f) => {
                    fact_nodes.insert(*f, NodeId(i as u32));
                }
                NodeKind::Value { class, value } => {
                    value_nodes.insert((*class, value.clone()), NodeId(i as u32));
                }
            }
        }
        DbGraph {
            graph,
            kinds,
            fact_nodes,
            value_nodes,
            column_class,
            class_repr,
            insertion_id,
        }
    }

    /// Human-readable description of a node, in the paper's notation
    /// (`v(f)` / `u(REL, attr, value)` with a representative column for
    /// identified nodes).
    pub fn describe(&self, schema: &Schema, id: NodeId) -> String {
        match self.node_kind(id) {
            NodeKind::Fact(f) => format!("v({f})"),
            NodeKind::Value { class, value } => {
                let (rel, attr) = self.class_repr[*class as usize];
                let rel_schema = schema.relation(rel);
                format!(
                    "u({}, {}, {})",
                    rel_schema.name, rel_schema.attributes[attr].name, value
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reldb::movies::{movies_database_labeled, movies_schema};

    #[test]
    fn column_classes_merge_fk_chains() {
        let schema = movies_schema();
        let (classes, _) = DbGraph::column_classes(&schema);
        let movies = schema.relation_id("MOVIES").unwrap().index();
        let studios = schema.relation_id("STUDIOS").unwrap().index();
        let actors = schema.relation_id("ACTORS").unwrap().index();
        let collabs = schema.relation_id("COLLABORATIONS").unwrap().index();
        // MOVIES.studio ~ STUDIOS.sid
        assert_eq!(classes[movies][1], classes[studios][0]);
        // COLLABORATIONS.actor1 ~ COLLABORATIONS.actor2 ~ ACTORS.aid
        assert_eq!(classes[collabs][0], classes[actors][0]);
        assert_eq!(classes[collabs][1], classes[actors][0]);
        // COLLABORATIONS.movie ~ MOVIES.mid
        assert_eq!(classes[collabs][2], classes[movies][0]);
        // Unrelated columns stay distinct.
        assert_ne!(classes[movies][2], classes[studios][1]); // title vs name
        assert_ne!(classes[actors][1], classes[studios][1]); // name vs name!
    }

    #[test]
    fn bipartite_structure() {
        let (db, _) = movies_database_labeled();
        let g = DbGraph::build(&db);
        assert_eq!(g.fact_node_count(), 18);
        // Every edge connects a fact node and a value node.
        for id in g.graph().node_ids() {
            let is_fact = matches!(g.node_kind(id), NodeKind::Fact(_));
            for &n in g.graph().neighbors(id) {
                let n_is_fact = matches!(g.node_kind(n), NodeKind::Fact(_));
                assert_ne!(is_fact, n_is_fact, "graph must be bipartite");
            }
        }
    }

    #[test]
    fn fk_identification_connects_referencing_facts() {
        // m1 has studio=s03; s3 has sid=s03. Their fact nodes must share the
        // identified value node u(·, s03).
        let (db, ids) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let u = g.value_node(movies, 1, &Value::Text("s03".into())).unwrap();
        let v_m1 = g.fact_node(ids["m1"]).unwrap();
        let v_s3 = g.fact_node(ids["s3"]).unwrap();
        assert!(g.graph().has_edge(v_m1, u));
        assert!(g.graph().has_edge(v_s3, u));
        // And via STUDIOS.sid we find the same node.
        let studios = db.schema().relation_id("STUDIOS").unwrap();
        assert_eq!(
            g.value_node(studios, 0, &Value::Text("s03".into())),
            Some(u)
        );
    }

    #[test]
    fn same_constant_in_unrelated_columns_stays_distinct() {
        // "LA" occurs only in STUDIOS.loc; budgets 160 appear in MOVIES.budget
        // twice but give one node; actor worth 140 vs budget 150 are distinct
        // columns. Directly test the paper's "Universal" scenario: the studio
        // name "Universal" and a (hypothetical) movie title "Universal" must
        // be different nodes.
        let (mut db, _) = movies_database_labeled();
        let m7 = db
            .insert_into(
                "MOVIES",
                vec![
                    "m07".into(),
                    "s02".into(),
                    "Universal".into(),
                    Value::Null,
                    Value::Int(10),
                ],
            )
            .unwrap();
        let g = DbGraph::build(&db);
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let studios = db.schema().relation_id("STUDIOS").unwrap();
        let title_node = g
            .value_node(movies, 2, &Value::Text("Universal".into()))
            .unwrap();
        let name_node = g
            .value_node(studios, 1, &Value::Text("Universal".into()))
            .unwrap();
        assert_ne!(
            title_node, name_node,
            "identification must respect FKs only"
        );
        assert!(g.fact_node(m7).is_some());
    }

    #[test]
    fn null_values_get_no_node() {
        let (db, ids) = movies_database_labeled();
        let g = DbGraph::build(&db);
        // m3's genre is null: v(m3) has 4 incident values, not 5.
        let v_m3 = g.fact_node(ids["m3"]).unwrap();
        assert_eq!(g.graph().degree(v_m3), 4);
    }

    #[test]
    fn figure_3_fragment() {
        // Figure 3 shows v(m4) adjacent to u(MOVIES,mid,m04)… and to the
        // identified studio node shared with v(s3); v(c2) adjacent to the
        // identified aid nodes of a4 and a5 and mid node of m4.
        let (db, ids) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let v_c2 = g.fact_node(ids["c2"]).unwrap();
        let v_m4 = g.fact_node(ids["m4"]).unwrap();
        let mid_m04 = g.value_node(movies, 0, &Value::Text("m04".into())).unwrap();
        assert!(g.graph().has_edge(v_c2, mid_m04));
        assert!(g.graph().has_edge(v_m4, mid_m04));
        // Budget 160 is shared between m2 and m4 (same column → same node).
        let budget160 = g.value_node(movies, 4, &Value::Int(160)).unwrap();
        assert!(g.graph().has_edge(v_m4, budget160));
        assert!(g
            .graph()
            .has_edge(g.fact_node(ids["m2"]).unwrap(), budget160));
    }

    #[test]
    fn incremental_extension_matches_full_rebuild() {
        let (mut db, ids) = movies_database_labeled();
        // Remove c4, build, then re-add and extend.
        let journal = reldb::cascade::cascade_delete(&mut db, ids["c4"], false).unwrap();
        let mut g = DbGraph::build(&db);
        let before_nodes = g.graph().node_count();
        reldb::cascade::restore_journal(&mut db, &journal).unwrap();
        let new_nodes = g.extend_with_fact(&db, ids["c4"]);
        // c4 = (a01, a04, m06): all three values already have nodes, so only
        // v(c4) is new.
        assert_eq!(new_nodes.len(), 1);
        assert_eq!(g.graph().node_count(), before_nodes + 1);
        // Edge structure equals the from-scratch graph's.
        let full = DbGraph::build(&db);
        assert_eq!(full.graph().edge_count(), g.graph().edge_count());
        let v_c4 = g.fact_node(ids["c4"]).unwrap();
        assert_eq!(g.graph().degree(v_c4), 3);
    }

    #[test]
    fn localized_build_is_isomorphic_and_roundtrips() {
        let (db, ids) = movies_database_labeled();
        let base = DbGraph::build(&db);
        let collabs = db.schema().relation_id("COLLABORATIONS").unwrap();
        let loc = DbGraph::build_localized(&db, collabs);
        assert_eq!(loc.graph().node_count(), base.graph().node_count());
        assert_eq!(loc.graph().edge_count(), base.graph().edge_count());
        // The relabelling round-trips: `insertion_id` maps every localized
        // node back to a build-order node of the same kind…
        for id in loc.graph().node_ids() {
            assert_eq!(base.node_kind(loc.insertion_id(id)), loc.node_kind(id));
        }
        // …and agrees with the fact map (perm ∘ inverse = identity on the
        // external handles).
        for &fact in ids.values() {
            let v_loc = loc.fact_node(fact).unwrap();
            let v_base = base.fact_node(fact).unwrap();
            assert_eq!(loc.insertion_id(v_loc), v_base);
        }
        // Edges are preserved under the map (graph isomorphism).
        for id in loc.graph().node_ids() {
            for &n in loc.graph().neighbors(id) {
                assert!(base
                    .graph()
                    .has_edge(loc.insertion_id(id), loc.insertion_id(n)));
            }
        }
        // The BFS seeds — the prediction relation's fact nodes — received
        // the smallest ids.
        let mut seed_ids: Vec<u32> = db
            .facts(collabs)
            .map(|(f, _)| loc.fact_node(f).unwrap().0)
            .collect();
        seed_ids.sort_unstable();
        let expect: Vec<u32> = (0..seed_ids.len() as u32).collect();
        assert_eq!(seed_ids, expect);
        // An un-localized graph maps ids to themselves.
        for id in base.graph().node_ids() {
            assert_eq!(base.insertion_id(id), id);
        }
    }

    #[test]
    fn localized_build_extends_at_the_tail() {
        // Nodes added after a localized build append at the tail, where the
        // BFS id and the insertion id coincide.
        let (mut db, ids) = movies_database_labeled();
        let collabs = db.schema().relation_id("COLLABORATIONS").unwrap();
        let journal = reldb::cascade::cascade_delete(&mut db, ids["c4"], false).unwrap();
        let mut g = DbGraph::build_localized(&db, collabs);
        let n = g.graph().node_count() as u32;
        reldb::cascade::restore_journal(&mut db, &journal).unwrap();
        let new_nodes = g.extend_with_fact(&db, ids["c4"]);
        assert!(!new_nodes.is_empty());
        for &v in &new_nodes {
            assert!(v.0 >= n);
            assert_eq!(g.insertion_id(v), v);
        }
        // Structure still matches a from-scratch build.
        let full = DbGraph::build(&db);
        assert_eq!(full.graph().edge_count(), g.graph().edge_count());
    }

    #[test]
    fn describe_uses_paper_notation() {
        let (db, ids) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let v = g.fact_node(ids["m1"]).unwrap();
        assert!(g.describe(db.schema(), v).starts_with("v("));
        let movies = db.schema().relation_id("MOVIES").unwrap();
        let u = g
            .value_node(movies, 2, &Value::Text("Titanic".into()))
            .unwrap();
        assert_eq!(g.describe(db.schema(), u), "u(MOVIES, title, Titanic)");
    }
}
