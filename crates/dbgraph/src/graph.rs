//! Generic undirected multigraph with sorted adjacency lists.

/// Node identifier: index into the graph's node arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// As a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected multigraph. Nodes are dense indices; edges are stored as
/// adjacency lists that are kept **sorted** so that the second-order walk
/// bias can test adjacency in `O(log deg)`.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adjacency: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adjacency.len() as u32);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected edge. Parallel edges are allowed (they simply give
    /// the neighbour more transition weight); self-loops are rejected as a
    /// programmer error.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(
            a, b,
            "self-loops are not meaningful in the bipartite DB graph"
        );
        // Insert keeping the lists sorted.
        let insert_sorted = |list: &mut Vec<NodeId>, v: NodeId| {
            let pos = list.partition_point(|&x| x <= v);
            list.insert(pos, v);
        };
        insert_sorted(&mut self.adjacency[a.index()], b);
        insert_sorted(&mut self.adjacency[b.index()], a);
        self.edge_count += 1;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of edges (each undirected edge counted once).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbours of `v` (sorted, possibly with duplicates for parallel
    /// edges).
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.index()]
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// `true` iff `a` and `b` are adjacent (binary search over the sorted
    /// list).
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adjacency.len() as u32).map(NodeId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        (g, [a, b, c])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, c]) = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.degree(c), 1);
    }

    #[test]
    fn adjacency_is_sorted_and_searchable() {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        g.add_edge(nodes[0], nodes[3]);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[0], nodes[4]);
        g.add_edge(nodes[0], nodes[2]);
        let neigh = g.neighbors(nodes[0]);
        assert!(neigh.windows(2).all(|w| w[0] <= w[1]));
        assert!(g.has_edge(nodes[0], nodes[2]));
        assert!(!g.has_edge(nodes[1], nodes[2]));
    }

    #[test]
    fn parallel_edges_increase_weight() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, b);
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_edge(a, a);
    }
}
