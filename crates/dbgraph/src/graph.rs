//! Generic undirected multigraph in **CSR layout** (compressed sparse row).
//!
//! Adjacency lives in one flat `neighbors` array indexed by per-node
//! `offsets`, so a node's neighbour row is a contiguous, **sorted** slice —
//! walk transitions are a single uniform index draw into that slice (O(1)),
//! adjacency tests are a binary search over it (O(log deg)), and iterating
//! a row never chases pointers.
//!
//! Mutation is **buffered**: [`Graph::add_edge`] appends to a pending edge
//! list in O(1), and [`Graph::finalize`] merges the buffer into the CSR
//! arrays in one counting-sort pass — O(E + Σ_{touched v} deg v · log deg v)
//! for `E` total edges, so building a graph from an edge batch costs
//! O(E log E) instead of the O(E·deg) of per-edge sorted inserts. Readers
//! (`neighbors`, `degree`, `has_edge`) require a finalized graph; debug
//! builds assert it. [`Graph::add_node`] keeps the graph finalized (a new
//! node has an empty row), so node-only growth never forces a rebuild.

/// Node identifier: index into the graph's node arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// As a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An undirected multigraph. Nodes are dense indices; adjacency is a CSR
/// pair (`offsets`, `neighbors`) whose rows are kept **sorted** so that the
/// second-order walk bias can test adjacency in `O(log deg)`.
#[derive(Debug, Clone)]
pub struct Graph {
    /// CSR row boundaries: node `v`'s row is
    /// `neighbors[offsets[v] as usize..offsets[v + 1] as usize]`.
    /// Invariant (finalized): `offsets.len() == node_count + 1`.
    offsets: Vec<u32>,
    /// Flat neighbour array; each row sorted ascending, duplicates encode
    /// parallel edges (extra transition weight).
    neighbors: Vec<NodeId>,
    /// Edges buffered by [`Graph::add_edge`] since the last finalize.
    pending: Vec<(NodeId, NodeId)>,
    edge_count: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph {
            offsets: vec![0],
            neighbors: Vec::new(),
            pending: Vec::new(),
            edge_count: 0,
        }
    }
}

impl Graph {
    /// Empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Add a node, returning its id. Keeps the graph finalized: the new
    /// node's row is empty, so only the offset table grows.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId((self.offsets.len() - 1) as u32);
        // PANICS: never — the offset table always holds at least `[0]`.
        let end = *self.offsets.last().expect("offsets never empty");
        self.offsets.push(end);
        id
    }

    /// Buffer an undirected edge (O(1)); it becomes visible to readers after
    /// the next [`Graph::finalize`]. Parallel edges are allowed (they simply
    /// give the neighbour more transition weight); self-loops are rejected
    /// as a programmer error.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) {
        assert_ne!(
            a, b,
            "self-loops are not meaningful in the bipartite DB graph"
        );
        let n = self.node_count();
        assert!(a.index() < n && b.index() < n, "edge endpoints must exist");
        self.pending.push((a, b));
        self.edge_count += 1;
    }

    /// `true` iff every buffered edge has been merged into the CSR arrays.
    pub fn is_finalized(&self) -> bool {
        self.pending.is_empty()
    }

    /// Relabel every node: the node currently known as `old` becomes
    /// `new_id_of[old]`. `new_id_of` must be a permutation of
    /// `0..node_count`.
    ///
    /// Only legal **before the first finalize** (no CSR rows built yet —
    /// the buffered edge list is rewritten in place, O(E)); this is the
    /// access-locality hook [`crate::DbGraph::build_localized`] uses to
    /// install a BFS node order before the CSR arrays are laid out.
    pub fn relabel(&mut self, new_id_of: &[u32]) {
        assert!(
            self.neighbors.is_empty(),
            "relabel is only supported before the first finalize"
        );
        assert_eq!(new_id_of.len(), self.node_count(), "permutation length");
        debug_assert!(
            {
                let mut seen = vec![false; new_id_of.len()];
                new_id_of.iter().all(|&n| {
                    let ok = (n as usize) < seen.len() && !seen[n as usize];
                    if ok {
                        seen[n as usize] = true;
                    }
                    ok
                })
            },
            "new_id_of must be a permutation"
        );
        for (a, b) in &mut self.pending {
            *a = NodeId(new_id_of[a.index()]);
            *b = NodeId(new_id_of[b.index()]);
        }
    }

    /// Merge all buffered edges into the CSR arrays: one counting-sort pass
    /// over old rows plus pending half-edges, then a per-row sort of the
    /// rows that actually grew. Idempotent; a no-op when nothing is pending.
    pub fn finalize(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let n = self.node_count();
        // New degrees = old degrees + pending contributions.
        // PANICS: in bounds — `windows(2)` slices have length 2.
        let mut degree: Vec<u32> = self.offsets.windows(2).map(|w| w[1] - w[0]).collect();
        for &(a, b) in &self.pending {
            degree[a.index()] += 1;
            degree[b.index()] += 1;
        }
        let mut new_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        new_offsets.push(0);
        for &d in &degree {
            acc = acc
                .checked_add(d)
                // PANICS: documented capacity limit — the CSR offset table
                // addresses half-edges through u32.
                .expect("graph exceeds u32 half-edge capacity");
            new_offsets.push(acc);
        }
        let mut new_neighbors = vec![NodeId(0); acc as usize];
        // Scatter: old (sorted) rows first, pending half-edges at the tail.
        let mut cursor: Vec<u32> = new_offsets[..n].to_vec();
        for (v, cur) in cursor.iter_mut().enumerate() {
            let row = &self.neighbors[self.offsets[v] as usize..self.offsets[v + 1] as usize];
            let at = *cur as usize;
            new_neighbors[at..at + row.len()].copy_from_slice(row);
            *cur += row.len() as u32;
        }
        for &(a, b) in &self.pending {
            new_neighbors[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            new_neighbors[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        // Restore per-row sortedness where the tail grew.
        let mut touched: Vec<u32> = Vec::with_capacity(self.pending.len() * 2);
        for &(a, b) in &self.pending {
            touched.push(a.0);
            touched.push(b.0);
        }
        touched.sort_unstable();
        touched.dedup();
        for v in touched {
            let v = v as usize;
            new_neighbors[new_offsets[v] as usize..new_offsets[v + 1] as usize].sort_unstable();
        }
        self.offsets = new_offsets;
        self.neighbors = new_neighbors;
        self.pending.clear();
    }

    #[inline]
    fn assert_finalized(&self) {
        debug_assert!(
            self.pending.is_empty(),
            "graph read before finalize(): {} buffered edge(s)",
            self.pending.len()
        );
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges (each undirected edge counted once; includes buffered
    /// edges).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Neighbours of `v`: a contiguous sorted slice, possibly with
    /// duplicates for parallel edges. Requires a finalized graph.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        self.assert_finalized();
        &self.neighbors[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// Degree of `v` (counting parallel edges). Requires a finalized graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.assert_finalized();
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// `true` iff `a` and `b` are adjacent (binary search over the sorted
    /// row). Requires a finalized graph.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// The edges buffered since the last finalize (crate-internal: the
    /// BFS relabelling pass walks these before the CSR layout exists).
    pub(crate) fn pending_edges(&self) -> &[(NodeId, NodeId)] {
        &self.pending
    }

    /// The CSR arrays `(offsets, neighbors, edge_count)`, for
    /// snapshotting. Requires a finalized graph (a snapshot of buffered
    /// edges would not round-trip through [`Graph::from_csr_parts`]).
    pub fn csr_parts(&self) -> (&[u32], &[NodeId], usize) {
        assert!(self.is_finalized(), "snapshot requires a finalized graph");
        (&self.offsets, &self.neighbors, self.edge_count)
    }

    /// Rebuild a finalized graph from snapshotted CSR arrays (the inverse
    /// of [`Graph::csr_parts`]).
    ///
    /// # Panics
    /// If the CSR invariants are violated (empty or non-monotone offsets,
    /// neighbour array length mismatch, out-of-range neighbour ids).
    pub fn from_csr_parts(offsets: Vec<u32>, neighbors: Vec<NodeId>, edge_count: usize) -> Self {
        assert!(!offsets.is_empty(), "offsets never empty");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offsets monotone");
        assert_eq!(
            *offsets.last().expect("non-empty") as usize,
            neighbors.len(),
            "offsets must cover the neighbour array"
        );
        let n = offsets.len() - 1;
        assert!(
            neighbors.iter().all(|v| v.index() < n),
            "neighbour id out of range"
        );
        Graph {
            offsets,
            neighbors,
            pending: Vec::new(),
            edge_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> (Graph, [NodeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.finalize();
        (g, [a, b, c])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, c]) = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(a), 1);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.degree(c), 1);
    }

    #[test]
    fn adjacency_is_sorted_and_searchable() {
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..5).map(|_| g.add_node()).collect();
        g.add_edge(nodes[0], nodes[3]);
        g.add_edge(nodes[0], nodes[1]);
        g.add_edge(nodes[0], nodes[4]);
        g.add_edge(nodes[0], nodes[2]);
        g.finalize();
        let neigh = g.neighbors(nodes[0]);
        assert!(neigh.windows(2).all(|w| w[0] <= w[1]));
        assert!(g.has_edge(nodes[0], nodes[2]));
        assert!(!g.has_edge(nodes[1], nodes[2]));
    }

    #[test]
    fn parallel_edges_increase_weight() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        g.add_edge(a, b);
        g.finalize();
        assert_eq!(g.degree(a), 2);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Graph::new();
        let a = g.add_node();
        g.add_edge(a, a);
    }

    #[test]
    fn incremental_finalize_matches_batch_build() {
        // Same edges in one batch vs several finalize rounds interleaved
        // with node growth: identical CSR contents.
        let edges = [(0u32, 3u32), (1, 2), (0, 1), (3, 1), (2, 0), (4, 2)];
        let mut batch = Graph::new();
        for _ in 0..5 {
            batch.add_node();
        }
        for &(a, b) in &edges {
            batch.add_edge(NodeId(a), NodeId(b));
        }
        batch.finalize();

        let mut inc = Graph::new();
        for _ in 0..4 {
            inc.add_node();
        }
        for &(a, b) in &edges[..3] {
            inc.add_edge(NodeId(a), NodeId(b));
        }
        inc.finalize();
        inc.add_node();
        for &(a, b) in &edges[3..] {
            inc.add_edge(NodeId(a), NodeId(b));
        }
        inc.finalize();

        assert_eq!(batch.edge_count(), inc.edge_count());
        for v in batch.node_ids() {
            assert_eq!(batch.neighbors(v), inc.neighbors(v), "row of {v:?}");
        }
    }

    #[test]
    fn finalize_is_idempotent_and_add_node_keeps_finalized() {
        let (mut g, [a, _, _]) = path3();
        assert!(g.is_finalized());
        let before = g.neighbors(a).to_vec();
        g.finalize();
        g.finalize();
        assert_eq!(g.neighbors(a), before.as_slice());
        let d = g.add_node();
        assert!(g.is_finalized(), "node growth must not require finalize");
        assert_eq!(g.degree(d), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "before finalize")]
    fn debug_read_of_unfinalized_graph_panics() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        g.add_edge(a, b);
        let _ = g.neighbors(a); // not finalized yet
    }
}
