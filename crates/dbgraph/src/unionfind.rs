//! Union-find (disjoint-set) with path halving and union by size.
//!
//! Used to compute the FK-induced equivalence classes of database columns
//! that drive value-node identification (paper §IV).

/// Disjoint-set forest over `0..len`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl UnionFind {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` iff there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Representative without mutation (no compression; used by read-only
    /// contexts).
    pub fn find_immutable(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` iff they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// `true` iff `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_disjoint() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_merges_transitively() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_count(), 3);
    }

    #[test]
    fn immutable_find_matches() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 5);
        uf.union(5, 3);
        let rep = uf.find(3);
        assert_eq!(uf.find_immutable(0), rep);
        assert_eq!(uf.find_immutable(5), rep);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
