//! # dbgraph — graph model of a relational database
//!
//! Implements the graph construction of the paper's §IV: a bipartite graph
//! `G_D` whose one side is the **facts** of the database and whose other
//! side is the **attribute values** occurring in them. For each relation
//! schema `R(A₁,…,A_k)`, attribute `Aᵢ`, and value `a` occurring in
//! `R(D).Aᵢ` there is a node `u(R,Aᵢ,a)`; each fact node `v(f)` is adjacent
//! to the value nodes of its (non-null) attribute values.
//!
//! The crucial subtlety (paper Figure 3 and the "Universal" discussion): the
//! same constant in two different columns yields **two distinct nodes**,
//! *except* when the columns are linked by a foreign key — for an FK
//! `R[B₁,…,B_ℓ] ⊆ S[C₁,…,C_ℓ]` the nodes `u(R,Bᵢ,a)` and `u(S,Cᵢ,a)` are
//! identified. We realise the identification by computing the equivalence
//! classes of *columns* under the FK-pairing relation (union-find) and
//! keying value nodes by `(column-class, value)`.
//!
//! The crate also provides the **biased second-order random walks** of
//! Node2Vec (Grover & Leskovec 2016, return parameter `p`, in-out parameter
//! `q`) and the incremental graph extension used by the dynamic phase.
//!
//! Both substrates are laid out for the walk hot path: the graph stores
//! adjacency in **CSR form** (one flat neighbour array + row offsets,
//! built from buffered edge batches in O(E log E) — see [`graph`]), and
//! walk corpora are **flat token arenas** iterated as contiguous slices
//! (see [`walks`]).

pub mod builder;
pub mod graph;
pub mod unionfind;
pub mod walks;

pub use builder::{DbGraph, NodeKind};
pub use graph::{Graph, NodeId};
pub use unionfind::UnionFind;
pub use walks::{WalkConfig, WalkCorpus, Walker};
