//! High-level Node2Vec model: walks + SGNS + dynamic continuation.
//!
//! Walk corpora are sampled in parallel on the shared execution runtime
//! (one derived RNG stream per start node — see [`dbgraph::Walker`]); the
//! SGNS update loop itself is a sequential in-place SGD whose every update
//! reads the previous one, so it stays single-threaded by design. The
//! trained model is therefore bit-identical at every shard count.

use crate::{NegativeTable, Node2VecConfig, SgnsModel};
use dbgraph::{Graph, NodeId, WalkCorpus, Walker};
use stembed_runtime::Runtime;

/// A trained Node2Vec model over a graph.
///
/// The model owns the embedding matrices but *not* the graph; the caller
/// keeps the graph (and extends it via [`dbgraph::DbGraph::extend_with_fact`]
/// before calling [`Node2VecModel::extend`]).
#[derive(Debug, Clone)]
pub struct Node2VecModel {
    config: Node2VecConfig,
    sgns: SgnsModel,
    /// Node visit counts feeding the negative-sampling distribution; kept so
    /// the dynamic phase can update them with the newly sampled walks.
    counts: Vec<usize>,
    /// The negative-sampling table, kept alive across `extend` calls and
    /// [rebuilt](NegativeTable::rebuild) in place from the updated counts —
    /// per-round construction reuses the alias arrays and worklists
    /// instead of reallocating them.
    negatives: NegativeTable,
    /// Reusable walk-corpus arena for the dynamic phase's continuation
    /// walks (cleared and refilled each `extend` call).
    walk_buf: WalkCorpus,
    /// Execution runtime for walk sampling (static and dynamic phases).
    runtime: Runtime,
}

impl Node2VecModel {
    /// Static phase: sample a full walk corpus over `graph` and train SGNS
    /// from scratch, on the default runtime (`STEMBED_SHARDS` / available
    /// parallelism). The result depends only on `(graph, config, seed)`.
    pub fn train(graph: &Graph, config: &Node2VecConfig, seed: u64) -> Self {
        Self::train_with_runtime(graph, config, seed, Runtime::from_env())
    }

    /// [`Node2VecModel::train`] on an explicit execution runtime.
    pub fn train_with_runtime(
        graph: &Graph,
        config: &Node2VecConfig,
        seed: u64,
        runtime: Runtime,
    ) -> Self {
        let walker = Walker::with_runtime(graph, config.walk_config(), seed, runtime);
        let corpus = walker.corpus();
        let mut counts = vec![0usize; graph.node_count()];
        count_tokens(&corpus, &mut counts);
        let table = NegativeTable::new(&counts);
        let mut sgns = SgnsModel::new(graph.node_count(), config.dim, seed ^ 0x5eed);
        sgns.train(
            &corpus,
            &table,
            config.window,
            config.negatives,
            config.epochs,
            config.learning_rate,
            seed ^ TRAIN_SEED_SALT,
        );
        Node2VecModel {
            config: config.clone(),
            sgns,
            counts,
            negatives: table,
            walk_buf: WalkCorpus::default(),
            runtime,
        }
    }

    /// Dynamic phase (paper §IV-A): the graph has been extended with new
    /// nodes (`graph.node_count() >= self.node_count()`); freeze every old
    /// node, randomly initialise the new ones, sample walks **starting at
    /// the new nodes**, and continue training — gradients flow only into the
    /// new nodes' vectors.
    pub fn extend(&mut self, graph: &Graph, new_nodes: &[NodeId], seed: u64) {
        self.extend_with_starts(graph, new_nodes, new_nodes, seed);
    }

    /// Like [`Node2VecModel::extend`], but sampling the continuation walks
    /// from an explicit start set. The paper's *all-at-once* setting
    /// recomputes paths from **every** node (old walks may now traverse new
    /// data) while still freezing old vectors; pass all node ids as
    /// `walk_starts` for that behaviour.
    pub fn extend_with_starts(
        &mut self,
        graph: &Graph,
        new_nodes: &[NodeId],
        walk_starts: &[NodeId],
        seed: u64,
    ) {
        self.sgns.freeze_all();
        self.sgns
            .grow(graph.node_count(), seed ^ 0x9e3779b97f4a7c15);
        self.counts.resize(graph.node_count(), 0);
        if new_nodes.is_empty() {
            return;
        }
        // Per-round structures are *reused*, not rebuilt: the walk corpus
        // refills the model's arena, and the negative table rebuilds its
        // alias structure in place from the updated counts — both
        // byte-identical to fresh construction, so the continuation
        // training consumes exactly the same random streams.
        let walker = Walker::with_runtime(graph, self.config.walk_config(), seed, self.runtime);
        let mut corpus = std::mem::take(&mut self.walk_buf);
        walker.corpus_from_into(walk_starts, &mut corpus);
        count_tokens(&corpus, &mut self.counts);
        self.negatives.rebuild(&self.counts);
        self.sgns.train(
            &corpus,
            &self.negatives,
            self.config.window,
            self.config.negatives,
            self.config.dynamic_epochs,
            self.config.learning_rate,
            seed ^ 0xdead,
        );
        self.walk_buf = corpus;
    }

    /// The embedding of a node.
    pub fn embedding(&self, node: NodeId) -> &[f64] {
        self.sgns.embedding(node)
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.sgns.dim()
    }

    /// Number of embedded nodes.
    pub fn node_count(&self) -> usize {
        self.sgns.node_count()
    }

    /// Whether a node's vector is frozen.
    pub fn is_frozen(&self, node: NodeId) -> bool {
        self.sgns.is_frozen(node)
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &Node2VecConfig {
        &self.config
    }

    /// The execution runtime used for walk sampling.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }
}

fn count_tokens(corpus: &WalkCorpus, counts: &mut [usize]) {
    // One pass over the contiguous token arena — no per-walk indirection.
    for node in corpus.tokens() {
        counts[node.index()] += 1;
    }
}

/// Salt decorrelating the SGD shuffle stream from the walk-sampling stream.
const TRAIN_SEED_SALT: u64 = 0x71a1_5eed;

#[cfg(test)]
mod tests {
    use super::*;
    use dbgraph::DbGraph;
    use reldb::movies::movies_database_labeled;

    fn small_cfg() -> Node2VecConfig {
        Node2VecConfig::small()
    }

    #[test]
    fn trains_on_movie_graph() {
        let (db, _) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let model = Node2VecModel::train(g.graph(), &small_cfg(), 42);
        assert_eq!(model.node_count(), g.graph().node_count());
        assert_eq!(model.dim(), 16);
        // All embeddings finite.
        for id in g.graph().node_ids() {
            assert!(model.embedding(id).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn dynamic_extension_freezes_old_and_trains_new() {
        let (mut db, ids) = movies_database_labeled();
        let journal = reldb::cascade_delete(&mut db, ids["c4"], false).unwrap();
        let mut g = DbGraph::build(&db);
        let mut model = Node2VecModel::train(g.graph(), &small_cfg(), 42);
        let old_embeddings: Vec<Vec<f64>> = g
            .graph()
            .node_ids()
            .map(|id| model.embedding(id).to_vec())
            .collect();

        reldb::restore_journal(&mut db, &journal).unwrap();
        let new_nodes = g.extend_with_fact(&db, ids["c4"]);
        model.extend(g.graph(), &new_nodes, 7);

        // Stability: every old node's vector is bit-identical.
        for (i, old) in old_embeddings.iter().enumerate() {
            let id = NodeId(i as u32);
            assert!(model.is_frozen(id));
            assert_eq!(model.embedding(id), old.as_slice(), "node {i} drifted");
        }
        // The new fact node has a trained (non-initial…, at least finite and
        // nonzero) vector.
        let v_new = g.fact_node(ids["c4"]).unwrap();
        assert!(!model.is_frozen(v_new));
        assert!(model.embedding(v_new).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn extend_with_no_new_nodes_is_noop() {
        let (db, _) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let mut model = Node2VecModel::train(g.graph(), &small_cfg(), 1);
        let before: Vec<Vec<f64>> = g
            .graph()
            .node_ids()
            .map(|id| model.embedding(id).to_vec())
            .collect();
        model.extend(g.graph(), &[], 5);
        for (i, old) in before.iter().enumerate() {
            assert_eq!(model.embedding(NodeId(i as u32)), old.as_slice());
        }
    }
}
