//! High-level Node2Vec model: walks + SGNS + dynamic continuation.
//!
//! Walk corpora are sampled in parallel on the shared execution runtime
//! (one derived RNG stream per start node — see [`dbgraph::Walker`]); the
//! SGNS update loop itself is a sequential in-place SGD whose every update
//! reads the previous one, so it stays single-threaded by design. The
//! trained model is therefore bit-identical at every shard count.

use crate::negative::NegativeTableStats;
use crate::stopwatch::Stopwatch;
use crate::{NegativeTable, Node2VecConfig, SgnsModel};
use dbgraph::{Graph, NodeId, WalkCorpus, Walker};
use stembed_runtime::{derive_seed, Runtime};

/// A trained Node2Vec model over a graph.
///
/// The model owns the embedding matrices but *not* the graph; the caller
/// keeps the graph (and extends it via [`dbgraph::DbGraph::extend_with_fact`]
/// before calling [`Node2VecModel::extend`]).
#[derive(Debug, Clone)]
pub struct Node2VecModel {
    config: Node2VecConfig,
    sgns: SgnsModel,
    /// Node visit counts feeding the negative-sampling distribution; kept so
    /// the dynamic phase can update them with the newly sampled walks.
    counts: Vec<usize>,
    /// The negative-sampling table, kept alive across `extend` calls and
    /// caught up **incrementally** ([`NegativeTable::update`]): each round's
    /// continuation walks change the counts of only the nodes they visit,
    /// and only those nodes' buckets (plus the top-level bucket-mass table)
    /// are rebuilt — sub-linear in the node count, byte-identical to a
    /// fresh table.
    negatives: NegativeTable,
    /// Reusable walk-corpus arena for the dynamic phase's continuation
    /// walks (cleared and refilled each `extend` call).
    walk_buf: WalkCorpus,
    /// Reusable dirty-node worklist for the incremental table update.
    dirty_buf: Vec<usize>,
    /// Execution runtime for walk sampling (static and dynamic phases).
    runtime: Runtime,
    /// Wall-clock split of the most recent [`Node2VecModel::extend`]
    /// (diagnostics only — never feeds back into any computation).
    last_timing: ExtendTiming,
}

/// Wall-clock split of one `extend` call, for profiling: how much of the
/// round went to walk sampling, to the incremental negative-table
/// update, and to the SGNS continuation (the gradient-kernel hot loop).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtendTiming {
    /// Seconds sampling the continuation walk corpus.
    pub walk_secs: f64,
    /// Seconds catching up the negative-sampling table.
    pub table_secs: f64,
    /// Seconds in the SGNS continuation SGD (the mixed-precision
    /// kernel path).
    pub train_secs: f64,
    /// Tokens in the continuation walk corpus the SGD consumed.
    pub corpus_tokens: usize,
    /// Effective epochs after the per-extend token budget
    /// ([`crate::Node2VecConfig::dynamic_epochs_for`]).
    pub epochs: usize,
}

impl ExtendTiming {
    /// Total seconds across the three phases.
    pub fn total_secs(&self) -> f64 {
        self.walk_secs + self.table_secs + self.train_secs
    }

    /// Fraction of the round spent in the SGNS gradient kernels
    /// (0 when nothing was timed).
    pub fn kernel_share(&self) -> f64 {
        let total = self.total_secs();
        if total > 0.0 {
            self.train_secs / total
        } else {
            0.0
        }
    }
}

impl Node2VecModel {
    /// Static phase: sample a full walk corpus over `graph` and train SGNS
    /// from scratch, on the default runtime (`STEMBED_SHARDS` / available
    /// parallelism). The result depends only on `(graph, config, seed)`.
    pub fn train(graph: &Graph, config: &Node2VecConfig, seed: u64) -> Self {
        Self::train_with_runtime(graph, config, seed, Runtime::from_env())
    }

    /// [`Node2VecModel::train`] on an explicit execution runtime.
    pub fn train_with_runtime(
        graph: &Graph,
        config: &Node2VecConfig,
        seed: u64,
        runtime: Runtime,
    ) -> Self {
        let walker = Walker::with_runtime(graph, config.walk_config(), seed, runtime);
        let corpus = walker.corpus();
        let mut counts = vec![0usize; graph.node_count()];
        count_tokens(&corpus, &mut counts);
        let table = NegativeTable::new(&counts);
        let mut sgns = SgnsModel::new(
            graph.node_count(),
            config.dim,
            derive_seed(seed, STREAM_INIT),
        );
        sgns.train(
            &corpus,
            &table,
            config.window,
            config.negatives,
            config.epochs,
            config.learning_rate,
            derive_seed(seed, STREAM_TRAIN),
        );
        Node2VecModel {
            config: config.clone(),
            sgns,
            counts,
            negatives: table,
            walk_buf: WalkCorpus::default(),
            dirty_buf: Vec::new(),
            runtime,
            last_timing: ExtendTiming::default(),
        }
    }

    /// Dynamic phase (paper §IV-A): the graph has been extended with new
    /// nodes (`graph.node_count() >= self.node_count()`); freeze every old
    /// node, randomly initialise the new ones, sample walks **starting at
    /// the new nodes**, and continue training — gradients flow only into the
    /// new nodes' vectors.
    pub fn extend(&mut self, graph: &Graph, new_nodes: &[NodeId], seed: u64) {
        self.extend_with_starts(graph, new_nodes, seed);
    }

    /// Like [`Node2VecModel::extend`], but sampling the continuation walks
    /// from an explicit start set (the nodes the graph gained are implied
    /// by `graph.node_count()`). The paper's *all-at-once* setting
    /// recomputes paths from **every** node (old walks may now traverse new
    /// data) while still freezing old vectors; pass all node ids as
    /// `walk_starts` for that behaviour — including for **delete-only**
    /// rounds, where no node is new but the surviving walks (and with them
    /// the negative-sampling counts) must still be refreshed.
    pub fn extend_with_starts(&mut self, graph: &Graph, walk_starts: &[NodeId], seed: u64) {
        self.sgns.freeze_all();
        self.sgns
            .grow(graph.node_count(), derive_seed(seed, STREAM_GROW));
        self.counts.resize(graph.node_count(), 0);
        // Gate on the *walk starts*, not the new-node set: a delete-only
        // all-at-once round has no new nodes but must still re-walk from
        // every surviving start so the visit counts (and with them the
        // negative-sampling distribution) reflect the removal.
        if walk_starts.is_empty() {
            return;
        }
        // Per-round structures are *reused*, not rebuilt: the walk corpus
        // refills the model's arena, and the negative table is caught up
        // incrementally — the continuation walks touch only a few nodes'
        // counts, and `NegativeTable::update` rebuilds exactly those
        // nodes' buckets (sub-linear in the node count). Both are
        // byte-identical to fresh construction, so the continuation
        // training consumes exactly the same random streams.
        // `ExtendTiming` is wall-clock diagnostics for benches; the clock
        // reads live behind the `timing` feature (see `crate::stopwatch`),
        // so the default build has no ambient-time reads here at all.
        let mut sw = Stopwatch::start();
        let walker = Walker::with_runtime(graph, self.config.walk_config(), seed, self.runtime);
        let mut corpus = std::mem::take(&mut self.walk_buf);
        walker.corpus_from_into(walk_starts, &mut corpus);
        let walk_secs = sw.lap();
        let mut dirty = std::mem::take(&mut self.dirty_buf);
        count_tokens_dirty(&corpus, &mut self.counts, &mut dirty);
        self.negatives.update(&dirty, &self.counts);
        self.dirty_buf = dirty;
        let table_secs = sw.lap();
        // Per-extend epoch budget: continuation work scales with the
        // corpus, capped by `dynamic_token_budget` (tokens × epochs).
        let epochs = self.config.dynamic_epochs_for(corpus.total_tokens());
        self.sgns.train(
            &corpus,
            &self.negatives,
            self.config.window,
            self.config.negatives,
            epochs,
            self.config.learning_rate,
            derive_seed(seed, STREAM_EXTEND_TRAIN),
        );
        let train_secs = sw.lap();
        self.last_timing = ExtendTiming {
            walk_secs,
            table_secs,
            train_secs,
            corpus_tokens: corpus.total_tokens(),
            epochs,
        };
        self.walk_buf = corpus;
    }

    /// The embedding of a node (f32 storage; widen per element where a
    /// downstream task needs f64 features).
    pub fn embedding(&self, node: NodeId) -> &[f32] {
        self.sgns.embedding(node)
    }

    /// Wall-clock split of the most recent `extend` call (all zeros
    /// before the first extension).
    pub fn last_extend_timing(&self) -> ExtendTiming {
        self.last_timing
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.sgns.dim()
    }

    /// Number of embedded nodes.
    pub fn node_count(&self) -> usize {
        self.sgns.node_count()
    }

    /// Whether a node's vector is frozen.
    pub fn is_frozen(&self, node: NodeId) -> bool {
        self.sgns.is_frozen(node)
    }

    /// How many walk tokens have visited `node` across the static corpus
    /// and every dynamic continuation — the raw count feeding the
    /// negative-sampling distribution.
    pub fn visit_count(&self, node: NodeId) -> usize {
        self.counts.get(node.index()).copied().unwrap_or(0)
    }

    /// Maintenance counters of the negative-sampling table (rebuilds vs
    /// incremental updates, dirty nodes, buckets rebuilt).
    pub fn negative_stats(&self) -> NegativeTableStats {
        self.negatives.stats()
    }

    /// Number of buckets backing the negative-sampling table (the
    /// denominator for judging `buckets_rebuilt` in
    /// [`Node2VecModel::negative_stats`]).
    pub fn negative_bucket_count(&self) -> usize {
        self.negatives.bucket_count()
    }

    /// The configuration the model was trained with.
    pub fn config(&self) -> &Node2VecConfig {
        &self.config
    }

    /// The execution runtime used for walk sampling.
    pub fn runtime(&self) -> Runtime {
        self.runtime
    }

    /// The underlying SGNS parameters (for snapshotting; see
    /// [`SgnsModel::raw_parts`]).
    pub fn sgns(&self) -> &SgnsModel {
        &self.sgns
    }

    /// Per-node walk visit counts (for snapshotting — the negative table
    /// is *derived* from these: `NegativeTable::new(&counts)` is
    /// byte-identical to the incrementally maintained table, a contract
    /// the incremental-update tests pin down).
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Rebuild a model from snapshotted state: the SGNS parameters and
    /// visit counts are the only learned state; the negative table, walk
    /// arenas, and timing are derived or transient and are reconstructed
    /// here, bit-identical to the originals.
    ///
    /// # Panics
    /// If `counts.len() != sgns.node_count()`.
    pub fn from_raw_parts(
        config: Node2VecConfig,
        sgns: SgnsModel,
        counts: Vec<usize>,
        runtime: Runtime,
    ) -> Self {
        assert_eq!(counts.len(), sgns.node_count(), "counts/node mismatch");
        let negatives = NegativeTable::new(&counts);
        Node2VecModel {
            config,
            sgns,
            counts,
            negatives,
            walk_buf: WalkCorpus::default(),
            dirty_buf: Vec::new(),
            runtime,
            last_timing: ExtendTiming::default(),
        }
    }
}

fn count_tokens(corpus: &WalkCorpus, counts: &mut [usize]) {
    // One pass over the contiguous token arena — no per-walk indirection.
    for node in corpus.tokens() {
        counts[node.index()] += 1;
    }
}

/// [`count_tokens`] that also collects the **dirty set**: the sorted,
/// deduplicated indices of every node the corpus visited — exactly the
/// counts the incremental [`NegativeTable::update`] must refresh.
fn count_tokens_dirty(corpus: &WalkCorpus, counts: &mut [usize], dirty: &mut Vec<usize>) {
    dirty.clear();
    for node in corpus.tokens() {
        counts[node.index()] += 1;
        dirty.push(node.index());
    }
    dirty.sort_unstable();
    dirty.dedup();
}

/// Named `derive_seed` sub-streams of the caller's master seed. The walker
/// consumes the master seed directly (stream of its own); everything else
/// draws a decorrelated stream by constant — hand salts (`seed ^ 0x5eed`)
/// are what the seed-arithmetic lint retired, since two xor salts can
/// collide where `derive_seed` streams cannot. The test-mod fresh-structure
/// reference uses these same constants, keeping it in lockstep by
/// construction.
const STREAM_INIT: u64 = 1;
const STREAM_TRAIN: u64 = 2;
const STREAM_GROW: u64 = 3;
const STREAM_EXTEND_TRAIN: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;
    use dbgraph::DbGraph;
    use reldb::movies::movies_database_labeled;

    fn small_cfg() -> Node2VecConfig {
        Node2VecConfig::small()
    }

    #[test]
    fn trains_on_movie_graph() {
        let (db, _) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let model = Node2VecModel::train(g.graph(), &small_cfg(), 42);
        assert_eq!(model.node_count(), g.graph().node_count());
        assert_eq!(model.dim(), 16);
        // All embeddings finite.
        for id in g.graph().node_ids() {
            assert!(model.embedding(id).iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn dynamic_extension_freezes_old_and_trains_new() {
        let (mut db, ids) = movies_database_labeled();
        let journal = reldb::cascade_delete(&mut db, ids["c4"], false).unwrap();
        let mut g = DbGraph::build(&db);
        let mut model = Node2VecModel::train(g.graph(), &small_cfg(), 42);
        let old_embeddings: Vec<Vec<f32>> = g
            .graph()
            .node_ids()
            .map(|id| model.embedding(id).to_vec())
            .collect();

        reldb::restore_journal(&mut db, &journal).unwrap();
        let new_nodes = g.extend_with_fact(&db, ids["c4"]);
        model.extend(g.graph(), &new_nodes, 7);

        // Stability: every old node's vector is bit-identical.
        for (i, old) in old_embeddings.iter().enumerate() {
            let id = NodeId(i as u32);
            assert!(model.is_frozen(id));
            assert_eq!(model.embedding(id), old.as_slice(), "node {i} drifted");
        }
        // The new fact node has a trained (non-initial…, at least finite and
        // nonzero) vector.
        let v_new = g.fact_node(ids["c4"]).unwrap();
        assert!(!model.is_frozen(v_new));
        assert!(model.embedding(v_new).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn delete_only_round_still_rewalks_from_explicit_starts() {
        // Regression: `extend_with_starts` used to early-return whenever
        // `new_nodes` was empty, silently skipping the paper's all-at-once
        // re-walk for delete-only rounds. With no new nodes every vector is
        // frozen (nothing may move), but the re-walk must still refresh the
        // visit counts feeding the negative-sampling distribution.
        let (db, _) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let mut model = Node2VecModel::train(g.graph(), &small_cfg(), 4);
        let before: Vec<Vec<f32>> = g
            .graph()
            .node_ids()
            .map(|id| model.embedding(id).to_vec())
            .collect();
        let total_before: usize = g.graph().node_ids().map(|n| model.visit_count(n)).sum();
        let all: Vec<NodeId> = g.graph().node_ids().collect();
        model.extend_with_starts(g.graph(), &all, 9);
        for (i, old) in before.iter().enumerate() {
            let id = NodeId(i as u32);
            assert!(model.is_frozen(id));
            assert_eq!(model.embedding(id), old.as_slice(), "node {i} moved");
        }
        let total_after: usize = g.graph().node_ids().map(|n| model.visit_count(n)).sum();
        assert!(
            total_after > total_before,
            "the delete-only re-walk must refresh visit counts \
             ({total_before} -> {total_after})"
        );
        assert_eq!(
            model.negative_stats().updates,
            1,
            "table caught up incrementally"
        );
    }

    /// Retained ≡ fresh across ≥3 extend rounds: a model whose negative
    /// table and walk arena are maintained incrementally must produce
    /// bit-identical embeddings to one that builds a fresh corpus and a
    /// fresh `NegativeTable::new` every round.
    #[test]
    fn retained_model_matches_fresh_structures_across_extend_rounds() {
        fn extend_fresh(model: &mut Node2VecModel, graph: &Graph, new_nodes: &[NodeId], seed: u64) {
            model.sgns.freeze_all();
            model
                .sgns
                .grow(graph.node_count(), derive_seed(seed, STREAM_GROW));
            model.counts.resize(graph.node_count(), 0);
            if new_nodes.is_empty() {
                return;
            }
            let walker =
                Walker::with_runtime(graph, model.config.walk_config(), seed, model.runtime);
            let corpus = walker.corpus_from(new_nodes);
            count_tokens(&corpus, &mut model.counts);
            let table = NegativeTable::new(&model.counts);
            // Same per-extend epoch budget as the production path.
            let epochs = model.config.dynamic_epochs_for(corpus.total_tokens());
            model.sgns.train(
                &corpus,
                &table,
                model.config.window,
                model.config.negatives,
                epochs,
                model.config.learning_rate,
                derive_seed(seed, STREAM_EXTEND_TRAIN),
            );
        }

        let (mut db, ids) = movies_database_labeled();
        // Three cascade groups, restored round by round in inverse order.
        let victims = ["c4", "c1", "c2"];
        let journals: Vec<_> = victims
            .iter()
            .map(|v| reldb::cascade_delete(&mut db, ids[v], false).unwrap())
            .collect();
        let mut g = DbGraph::build(&db);
        let retained0 = Node2VecModel::train(g.graph(), &small_cfg(), 21);
        let mut retained = retained0.clone();
        let mut fresh = retained0;

        for (round, journal) in journals.iter().rev().enumerate() {
            reldb::restore_journal(&mut db, journal).unwrap();
            let victim = ids[victims[victims.len() - 1 - round]];
            let new_nodes = g.extend_with_fact(&db, victim);
            assert!(!new_nodes.is_empty(), "round {round} restored nothing");
            retained.extend(g.graph(), &new_nodes, 100 + round as u64);
            extend_fresh(&mut fresh, g.graph(), &new_nodes, 100 + round as u64);
            for id in g.graph().node_ids() {
                let a: Vec<u32> = retained.embedding(id).iter().map(|v| v.to_bits()).collect();
                let b: Vec<u32> = fresh.embedding(id).iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "round {round}: node {id:?} diverged");
            }
        }
        let stats = retained.negative_stats();
        assert_eq!(stats.rebuilds, 1, "only the static phase fully rebuilds");
        assert_eq!(stats.updates, 3, "each round catches up incrementally");
    }

    #[test]
    fn extend_with_no_new_nodes_is_noop() {
        let (db, _) = movies_database_labeled();
        let g = DbGraph::build(&db);
        let mut model = Node2VecModel::train(g.graph(), &small_cfg(), 1);
        let before: Vec<Vec<f32>> = g
            .graph()
            .node_ids()
            .map(|id| model.embedding(id).to_vec())
            .collect();
        model.extend(g.graph(), &[], 5);
        for (i, old) in before.iter().enumerate() {
            assert_eq!(model.embedding(NodeId(i as u32)), old.as_slice());
        }
    }
}
