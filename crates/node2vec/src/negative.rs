//! Unigram^0.75 negative-sampling table (Mikolov et al. 2013).

use stembed_runtime::rng::DetRng;

/// Cumulative-distribution sampler over nodes, with the classic `count^0.75`
/// smoothing that keeps frequent nodes from dominating the negatives.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    /// Cumulative (unnormalised) mass per node id.
    cumulative: Vec<f64>,
    total: f64,
}

impl NegativeTable {
    /// Build from per-node occurrence counts (index = node id). Nodes with
    /// zero count get zero mass and are never sampled.
    pub fn new(counts: &[usize]) -> Self {
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0.0;
        for &c in counts {
            acc += (c as f64).powf(0.75);
            cumulative.push(acc);
        }
        NegativeTable {
            cumulative,
            total: acc,
        }
    }

    /// `true` iff no node has positive mass.
    pub fn is_empty(&self) -> bool {
        self.total <= 0.0
    }

    /// Sample one node id proportional to smoothed frequency.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        debug_assert!(!self.is_empty(), "sampling from an empty table");
        let x = rng.random_range(0.0..self.total);
        // First index whose cumulative mass exceeds x.
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }

    /// Number of node slots (including zero-mass ones).
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stembed_runtime::rng::DetRng;

    #[test]
    fn respects_frequencies_approximately() {
        let counts = vec![0usize, 100, 100, 800];
        let table = NegativeTable::new(&counts);
        let mut rng = DetRng::seed_from_u64(3);
        let mut hist = [0usize; 4];
        for _ in 0..20_000 {
            hist[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hist[0], 0, "zero-count nodes are never sampled");
        // With 0.75 smoothing: mass(3)/mass(1) = 800^.75/100^.75 = 8^.75 ≈ 4.76.
        let ratio = hist[3] as f64 / hist[1] as f64;
        assert!((3.5..6.5).contains(&ratio), "ratio {ratio} out of range");
        assert!(hist[1] > 1000 && hist[2] > 1000);
    }

    #[test]
    fn single_node_table() {
        let table = NegativeTable::new(&[5]);
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empty_detection() {
        assert!(NegativeTable::new(&[]).is_empty());
        assert!(NegativeTable::new(&[0, 0]).is_empty());
        assert!(!NegativeTable::new(&[0, 1]).is_empty());
    }
}
