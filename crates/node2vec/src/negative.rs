//! Unigram^0.75 negative-sampling table (Mikolov et al. 2013) on a
//! **two-level bucketed alias** sampler.
//!
//! The table is built once per training run from per-node occurrence
//! counts with the classic `count^0.75` smoothing, then sampled once per
//! negative — the single hottest sampling site of the SGNS pipeline
//! (`negatives` draws per positive pair). Draws stay **O(1)** (the alias
//! method, [`stembed_runtime::BucketAlias`]); what the bucketed layout
//! buys over the flat [`stembed_runtime::AliasTable`] of earlier
//! revisions is **sub-linear maintenance**: the dynamic extension's
//! continuation walks change the counts of only the nodes they visit, and
//! [`NegativeTable::update`] rebuilds exactly those nodes' buckets plus
//! the top-level table over bucket masses — O(dirty·B + n/B) instead of
//! re-smoothing and re-building all `n` nodes per extend.
//!
//! A table maintained through any `update` sequence is byte-identical to
//! a fresh [`NegativeTable::new`] over the same counts (the bucket
//! sampler's determinism contract), so the incrementally-maintained
//! dynamic path consumes exactly the random streams of the from-scratch
//! reference.
//!
//! The original CDF sampler is kept under `#[cfg(test)]` as the reference
//! implementation for the distribution-equivalence tests below.

use stembed_runtime::rng::DetRng;
use stembed_runtime::BucketAlias;

/// Maintenance counters of a [`NegativeTable`] (diagnostics and the
/// `profile_extend` example's sampler-regression smoke check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NegativeTableStats {
    /// Full rebuilds ([`NegativeTable::new`] / [`NegativeTable::rebuild`]).
    pub rebuilds: u64,
    /// Incremental catch-ups ([`NegativeTable::update`]).
    pub updates: u64,
    /// Dirty node indices across all updates.
    pub dirty_nodes: u64,
    /// Buckets rebuilt across all updates (the sub-linearity evidence:
    /// stays far below `updates × bucket_count` when dirty sets are
    /// sparse).
    pub buckets_rebuilt: u64,
}

/// O(1) sampler over nodes, with the classic `count^0.75` smoothing that
/// keeps frequent nodes from dominating the negatives.
///
/// The table owns its construction workspace, so a long-lived instance
/// (e.g. the one `Node2VecModel` keeps across dynamic extension rounds)
/// can be caught up with fresh counts by [`NegativeTable::update`]
/// (sub-linear: only dirty buckets) or fully re-made by
/// [`NegativeTable::rebuild`] — both without reallocating the weight
/// column, the worklists, or the alias arrays.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    sampler: BucketAlias,
    /// Smoothed-weight column, updated in place across rounds.
    weights: Vec<f64>,
    stats: NegativeTableStats,
}

/// The shared smoothing: `count^0.75`.
#[inline]
fn smooth(count: usize) -> f64 {
    (count as f64).powf(0.75)
}

impl NegativeTable {
    /// Build from per-node occurrence counts (index = node id). Nodes with
    /// zero count get zero mass and are never sampled.
    pub fn new(counts: &[usize]) -> Self {
        let mut table = NegativeTable {
            sampler: BucketAlias::new(&[]),
            weights: Vec::new(),
            stats: NegativeTableStats::default(),
        };
        table.rebuild(counts);
        table
    }

    /// Full rebuild in place from new counts, reusing all internal
    /// storage. Byte-identical to [`NegativeTable::new`] over the same
    /// counts. O(n) — the dynamic phase uses [`NegativeTable::update`]
    /// instead.
    pub fn rebuild(&mut self, counts: &[usize]) {
        self.weights.clear();
        self.weights.extend(counts.iter().map(|&c| smooth(c)));
        self.sampler.rebuild(&self.weights);
        self.stats.rebuilds += 1;
    }

    /// Incrementally catch the table up with `counts`, of which only the
    /// indices in `dirty` changed since the last rebuild/update; `counts`
    /// may also have **grown** (appended nodes need not appear in
    /// `dirty`). Cost is sub-linear in the node count: only the dirty
    /// nodes' smoothed weights are recomputed and only their buckets (plus
    /// the top-level bucket-mass table) are rebuilt.
    ///
    /// Byte-identical to [`NegativeTable::new`] over the same counts —
    /// callers may freely mix `update` and `rebuild` without perturbing
    /// any sample stream.
    pub fn update(&mut self, dirty: &[usize], counts: &[usize]) {
        let old_len = self.weights.len();
        assert!(
            counts.len() >= old_len,
            "NegativeTable::update cannot shrink ({} -> {})",
            old_len,
            counts.len()
        );
        self.weights
            .extend(counts[old_len..].iter().map(|&c| smooth(c)));
        for &i in dirty {
            if i < old_len {
                self.weights[i] = smooth(counts[i]);
            }
            // i >= old_len: already smoothed by the append above.
        }
        let rebuilt = self.sampler.update(&self.weights, dirty);
        self.stats.updates += 1;
        self.stats.dirty_nodes += dirty.len() as u64;
        self.stats.buckets_rebuilt += rebuilt as u64;
    }

    /// `true` iff no node has positive mass.
    pub fn is_empty(&self) -> bool {
        self.sampler.is_empty()
    }

    /// Sample one node id proportional to smoothed frequency, in O(1)
    /// (one bucket draw + one in-bucket draw).
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        debug_assert!(!self.is_empty(), "sampling from an empty table");
        self.sampler.sample(rng)
    }

    /// Number of node slots (including zero-mass ones).
    pub fn len(&self) -> usize {
        self.sampler.len()
    }

    /// The smoothed weight of node `i` (0 beyond the table).
    pub fn weight(&self, i: usize) -> f64 {
        self.weights.get(i).copied().unwrap_or(0.0)
    }

    /// Total smoothed mass over all nodes.
    pub fn total_weight(&self) -> f64 {
        self.sampler.total_weight()
    }

    /// Number of buckets backing the sampler.
    pub fn bucket_count(&self) -> usize {
        self.sampler.bucket_count()
    }

    /// Lifetime maintenance counters.
    pub fn stats(&self) -> NegativeTableStats {
        self.stats
    }
}

/// The original cumulative-distribution sampler, retained as the reference
/// for the distribution-equivalence tests: same smoothing, O(log n) per
/// draw.
#[cfg(test)]
#[derive(Debug, Clone)]
pub(crate) struct CdfNegativeTable {
    cumulative: Vec<f64>,
    total: f64,
}

#[cfg(test)]
impl CdfNegativeTable {
    pub(crate) fn new(counts: &[usize]) -> Self {
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0.0;
        for &c in counts {
            acc += smooth(c);
            cumulative.push(acc);
        }
        CdfNegativeTable {
            cumulative,
            total: acc,
        }
    }

    pub(crate) fn sample(&self, rng: &mut DetRng) -> usize {
        let x = rng.random_range(0.0..self.total);
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stembed_runtime::rng::DetRng;
    use stembed_runtime::stream_rng;

    /// Chi-square of a sampler's histogram against the smoothed expected
    /// masses; asserts zero-mass slots were never drawn. Returns
    /// `(statistic, bound)` with the generous envelope the equivalence
    /// tests share.
    fn chi_square_vs_expected(hist: &[usize], counts: &[usize], draws: usize) -> (f64, f64) {
        let weights: Vec<f64> = counts.iter().map(|&c| smooth(c)).collect();
        let total: f64 = weights.iter().sum();
        let mut chi = 0.0;
        let mut dof = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            let expect = draws as f64 * w / total;
            if expect == 0.0 {
                assert_eq!(hist[i], 0, "zero-mass slot {i} sampled");
                continue;
            }
            chi += (hist[i] as f64 - expect).powi(2) / expect;
            dof += 1;
        }
        // Chi-square mean is dof-1, std ~ sqrt(2 dof).
        let bound = (dof as f64 - 1.0) + 6.0 * (2.0 * dof as f64).sqrt() + 6.0;
        (chi, bound)
    }

    #[test]
    fn respects_frequencies_approximately() {
        let counts = vec![0usize, 100, 100, 800];
        let table = NegativeTable::new(&counts);
        let mut rng = DetRng::seed_from_u64(3);
        let mut hist = [0usize; 4];
        for _ in 0..20_000 {
            hist[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hist[0], 0, "zero-count nodes are never sampled");
        // With 0.75 smoothing: mass(3)/mass(1) = 800^.75/100^.75 = 8^.75 ≈ 4.76.
        let ratio = hist[3] as f64 / hist[1] as f64;
        assert!((3.5..6.5).contains(&ratio), "ratio {ratio} out of range");
        assert!(hist[1] > 1000 && hist[2] > 1000);
    }

    #[test]
    fn single_node_table() {
        let table = NegativeTable::new(&[5]);
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empty_detection() {
        assert!(NegativeTable::new(&[]).is_empty());
        assert!(NegativeTable::new(&[0, 0]).is_empty());
        assert!(!NegativeTable::new(&[0, 1]).is_empty());
    }

    #[test]
    fn rebuild_draws_exactly_like_a_fresh_table() {
        // In-place rebuilds must consume the RNG identically to fresh
        // tables (rebuild may shrink, unlike update).
        let mut table = NegativeTable::new(&[1, 1]);
        let rounds: [&[usize]; 3] = [&[5, 3, 0, 9], &[5, 4, 1, 9, 2, 2], &[0, 0, 7]];
        for counts in rounds {
            table.rebuild(counts);
            let fresh = NegativeTable::new(counts);
            assert_eq!(table.len(), fresh.len());
            let mut a = DetRng::seed_from_u64(17);
            let mut b = DetRng::seed_from_u64(17);
            for _ in 0..2000 {
                assert_eq!(table.sample(&mut a), fresh.sample(&mut b));
            }
        }
    }

    /// The tentpole property: across randomized sequences of count growth
    /// (new nodes appended, visited nodes bumped — the dynamic extension's
    /// update shape), a table maintained by `update` draws the exact same
    /// stream as a fresh table *and* its histogram passes a chi-square
    /// test against the smoothed expected masses.
    #[test]
    fn update_matches_fresh_table_streams_and_chi_square() {
        const CASES: u64 = 6;
        const ROUNDS: usize = 4;
        const DRAWS: usize = 30_000;
        for case in 0..CASES {
            let mut rng = stream_rng(0x17c4e5e, case);
            let n0 = rng.random_range(2..16usize);
            let mut counts: Vec<usize> = (0..n0).map(|_| rng.random_range(0..40usize)).collect();
            let mut table = NegativeTable::new(&counts);
            for round in 0..ROUNDS {
                // Bump a random subset of existing nodes …
                let mut dirty = Vec::new();
                for _ in 0..rng.random_range(1..5usize) {
                    let i = rng.random_range(0..counts.len());
                    counts[i] += rng.random_range(1..30usize);
                    dirty.push(i);
                }
                dirty.sort_unstable();
                dirty.dedup();
                // … and sometimes append new nodes (not in `dirty`).
                for _ in 0..rng.random_range(0..4usize) {
                    counts.push(rng.random_range(0..20usize));
                }
                table.update(&dirty, &counts);
                let fresh = NegativeTable::new(&counts);
                assert_eq!(table.len(), fresh.len());

                // Exact stream equivalence …
                let mut a = stream_rng(0x5eed ^ case, round as u64);
                let mut b = stream_rng(0x5eed ^ case, round as u64);
                for _ in 0..2000 {
                    assert_eq!(
                        table.sample(&mut a),
                        fresh.sample(&mut b),
                        "case {case} round {round}: streams diverged"
                    );
                }
                // … and statistical equivalence to the smoothed masses.
                let mut hist = vec![0usize; counts.len()];
                let mut draw_rng = stream_rng(0xc41 ^ case, round as u64);
                for _ in 0..DRAWS {
                    hist[table.sample(&mut draw_rng)] += 1;
                }
                let (chi, bound) = chi_square_vs_expected(&hist, &counts, DRAWS);
                assert!(
                    chi < bound,
                    "case {case} round {round}: chi-square {chi:.1} over bound {bound:.1}"
                );
            }
            assert_eq!(table.stats().updates, ROUNDS as u64);
            assert!(table.stats().dirty_nodes >= ROUNDS as u64);
        }
    }

    /// Property-style equivalence: on seeded random count vectors, the
    /// bucketed alias sampler and the reference CDF sampler draw from the
    /// same distribution, judged by chi-square against the smoothed
    /// masses.
    #[test]
    fn alias_matches_cdf_distribution_chi_square() {
        const CASES: u64 = 12;
        const DRAWS: usize = 30_000;
        for case in 0..CASES {
            let mut rng = stream_rng(0xa11a5, case);
            let n = rng.random_range(2..24usize);
            let counts: Vec<usize> = (0..n)
                .map(|_| {
                    if rng.random_range(0..4usize) == 0 {
                        0 // exercise zero-mass slots
                    } else {
                        rng.random_range(1..500usize)
                    }
                })
                .collect();
            if counts.iter().all(|&c| c == 0) {
                continue;
            }
            let alias = NegativeTable::new(&counts);
            let cdf = CdfNegativeTable::new(&counts);

            let mut alias_hist = vec![0usize; n];
            let mut cdf_hist = vec![0usize; n];
            let mut draw_rng = stream_rng(0xd4a3, case);
            for _ in 0..DRAWS {
                alias_hist[alias.sample(&mut draw_rng)] += 1;
                cdf_hist[cdf.sample(&mut draw_rng)] += 1;
            }

            let (chi_alias, bound) = chi_square_vs_expected(&alias_hist, &counts, DRAWS);
            let (chi_cdf, _) = chi_square_vs_expected(&cdf_hist, &counts, DRAWS);
            assert!(
                chi_alias < bound,
                "case {case}: alias chi-square {chi_alias:.1} over bound {bound:.1}"
            );
            assert!(
                chi_cdf < bound,
                "case {case}: cdf chi-square {chi_cdf:.1} over bound {bound:.1}"
            );
        }
    }
}
