//! Unigram^0.75 negative-sampling table (Mikolov et al. 2013) on the
//! **alias method**.
//!
//! The table is built once per training run from per-node occurrence
//! counts with the classic `count^0.75` smoothing, then sampled once per
//! negative — the single hottest sampling site of the SGNS pipeline
//! (`negatives` draws per positive pair). The alias layout
//! ([`stembed_runtime::AliasTable`], Walker 1977) answers each draw in
//! **O(1)** (two array reads) instead of the O(log n) cache-missing binary
//! search of a cumulative table; construction stays O(n).
//!
//! The CDF sampler this replaced is kept under `#[cfg(test)]` as the
//! reference implementation for the distribution-equivalence test below.

use stembed_runtime::rng::DetRng;
use stembed_runtime::{AliasScratch, AliasTable};

/// O(1) sampler over nodes, with the classic `count^0.75` smoothing that
/// keeps frequent nodes from dominating the negatives.
///
/// The table owns its construction workspace, so a long-lived instance
/// (e.g. the one `Node2VecModel` keeps across dynamic extension rounds)
/// can be [rebuilt](NegativeTable::rebuild) from fresh counts without
/// reallocating the weight column, the worklists, or the alias arrays.
#[derive(Debug, Clone)]
pub struct NegativeTable {
    alias: AliasTable,
    /// Smoothed-weight column, reused across rebuilds.
    weights: Vec<f64>,
    /// Alias construction worklists, reused across rebuilds.
    scratch: AliasScratch,
}

impl NegativeTable {
    /// Build from per-node occurrence counts (index = node id). Nodes with
    /// zero count get zero mass and are never sampled.
    pub fn new(counts: &[usize]) -> Self {
        let mut table = NegativeTable {
            alias: AliasTable::new(&[]),
            weights: Vec::new(),
            scratch: AliasScratch::default(),
        };
        table.rebuild(counts);
        table
    }

    /// Rebuild in place from new counts (the dynamic phase's per-round
    /// refresh), reusing all internal storage. Byte-identical to
    /// [`NegativeTable::new`] over the same counts.
    pub fn rebuild(&mut self, counts: &[usize]) {
        self.weights.clear();
        self.weights
            .extend(counts.iter().map(|&c| (c as f64).powf(0.75)));
        self.alias.rebuild_in(&self.weights, &mut self.scratch);
    }

    /// `true` iff no node has positive mass.
    pub fn is_empty(&self) -> bool {
        self.alias.is_empty()
    }

    /// Sample one node id proportional to smoothed frequency, in O(1).
    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        debug_assert!(!self.is_empty(), "sampling from an empty table");
        self.alias.sample(rng)
    }

    /// Number of node slots (including zero-mass ones).
    pub fn len(&self) -> usize {
        self.alias.len()
    }
}

/// The original cumulative-distribution sampler, retained as the reference
/// for the alias-equivalence test: same smoothing, O(log n) per draw.
#[cfg(test)]
#[derive(Debug, Clone)]
pub(crate) struct CdfNegativeTable {
    cumulative: Vec<f64>,
    total: f64,
}

#[cfg(test)]
impl CdfNegativeTable {
    pub(crate) fn new(counts: &[usize]) -> Self {
        let mut cumulative = Vec::with_capacity(counts.len());
        let mut acc = 0.0;
        for &c in counts {
            acc += (c as f64).powf(0.75);
            cumulative.push(acc);
        }
        CdfNegativeTable {
            cumulative,
            total: acc,
        }
    }

    pub(crate) fn sample(&self, rng: &mut DetRng) -> usize {
        let x = rng.random_range(0.0..self.total);
        self.cumulative
            .partition_point(|&c| c <= x)
            .min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stembed_runtime::rng::DetRng;
    use stembed_runtime::stream_rng;

    #[test]
    fn respects_frequencies_approximately() {
        let counts = vec![0usize, 100, 100, 800];
        let table = NegativeTable::new(&counts);
        let mut rng = DetRng::seed_from_u64(3);
        let mut hist = [0usize; 4];
        for _ in 0..20_000 {
            hist[table.sample(&mut rng)] += 1;
        }
        assert_eq!(hist[0], 0, "zero-count nodes are never sampled");
        // With 0.75 smoothing: mass(3)/mass(1) = 800^.75/100^.75 = 8^.75 ≈ 4.76.
        let ratio = hist[3] as f64 / hist[1] as f64;
        assert!((3.5..6.5).contains(&ratio), "ratio {ratio} out of range");
        assert!(hist[1] > 1000 && hist[2] > 1000);
    }

    #[test]
    fn single_node_table() {
        let table = NegativeTable::new(&[5]);
        let mut rng = DetRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn empty_detection() {
        assert!(NegativeTable::new(&[]).is_empty());
        assert!(NegativeTable::new(&[0, 0]).is_empty());
        assert!(!NegativeTable::new(&[0, 1]).is_empty());
    }

    #[test]
    fn rebuild_draws_exactly_like_a_fresh_table() {
        // In-place rebuilds (growing counts across rounds, as the dynamic
        // phase does) must consume the RNG identically to fresh tables.
        let mut table = NegativeTable::new(&[1, 1]);
        let rounds: [&[usize]; 3] = [&[5, 3, 0, 9], &[5, 4, 1, 9, 2, 2], &[0, 0, 7]];
        for counts in rounds {
            table.rebuild(counts);
            let fresh = NegativeTable::new(counts);
            assert_eq!(table.len(), fresh.len());
            let mut a = DetRng::seed_from_u64(17);
            let mut b = DetRng::seed_from_u64(17);
            for _ in 0..2000 {
                assert_eq!(table.sample(&mut a), fresh.sample(&mut b));
            }
        }
    }

    /// Property-style equivalence: on seeded random count vectors, the
    /// alias sampler and the reference CDF sampler draw from the same
    /// distribution, judged by a chi-square statistic of the alias
    /// histogram against the CDF sampler's expected (smoothed) masses.
    #[test]
    fn alias_matches_cdf_distribution_chi_square() {
        const CASES: u64 = 12;
        const DRAWS: usize = 30_000;
        for case in 0..CASES {
            let mut rng = stream_rng(0xa11a5, case);
            let n = rng.random_range(2..24usize);
            let counts: Vec<usize> = (0..n)
                .map(|_| {
                    if rng.random_range(0..4usize) == 0 {
                        0 // exercise zero-mass slots
                    } else {
                        rng.random_range(1..500usize)
                    }
                })
                .collect();
            if counts.iter().all(|&c| c == 0) {
                continue;
            }
            let alias = NegativeTable::new(&counts);
            let cdf = CdfNegativeTable::new(&counts);

            let mut alias_hist = vec![0usize; n];
            let mut cdf_hist = vec![0usize; n];
            let mut draw_rng = stream_rng(0xd4a3, case);
            for _ in 0..DRAWS {
                alias_hist[alias.sample(&mut draw_rng)] += 1;
                cdf_hist[cdf.sample(&mut draw_rng)] += 1;
            }

            // Expected masses under the shared smoothing.
            let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
            let total: f64 = weights.iter().sum();
            let mut chi_alias = 0.0;
            let mut chi_cdf = 0.0;
            let mut dof = 0usize;
            for i in 0..n {
                let expect = DRAWS as f64 * weights[i] / total;
                if expect == 0.0 {
                    assert_eq!(alias_hist[i], 0, "case {case}: zero-mass slot {i} sampled");
                    assert_eq!(cdf_hist[i], 0);
                    continue;
                }
                chi_alias += (alias_hist[i] as f64 - expect).powi(2) / expect;
                chi_cdf += (cdf_hist[i] as f64 - expect).powi(2) / expect;
                dof += 1;
            }
            // Generous bound: chi-square mean is dof-1, std ~ sqrt(2 dof);
            // both samplers must sit inside the same envelope.
            let bound = (dof as f64 - 1.0) + 6.0 * (2.0 * dof as f64).sqrt() + 6.0;
            assert!(
                chi_alias < bound,
                "case {case}: alias chi-square {chi_alias:.1} over bound {bound:.1}"
            );
            assert!(
                chi_cdf < bound,
                "case {case}: cdf chi-square {chi_cdf:.1} over bound {bound:.1}"
            );
        }
    }
}
