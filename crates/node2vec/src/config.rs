//! Node2Vec hyperparameters (paper Table II).

use dbgraph::WalkConfig;

/// Hyperparameters of the Node2Vec pipeline. Defaults are the paper's
/// Table II values.
#[derive(Debug, Clone)]
pub struct Node2VecConfig {
    /// Embedding dimension (paper: 100).
    pub dim: usize,
    /// Walks started per node (paper: 40).
    pub walks_per_node: usize,
    /// Steps per walk (paper: 30).
    pub walk_length: usize,
    /// Skip-gram context window (paper: 5).
    pub window: usize,
    /// Negative samples per positive pair (paper: 20).
    pub negatives: usize,
    /// SGD epochs over the pair stream (paper: 10).
    pub epochs: usize,
    /// Epochs for the dynamic continuation (paper: 5).
    pub dynamic_epochs: usize,
    /// Cap on continuation-SGD work per `extend`, in **trained tokens**
    /// (corpus tokens × epochs). The effective epoch count is
    /// `clamp(budget / corpus_tokens, 1, dynamic_epochs)` — proportional
    /// to the continuation-corpus size, so a one-tuple extension keeps
    /// all `dynamic_epochs` passes while a full all-at-once re-walk
    /// cannot cost more than the budget. `0` disables the cap.
    pub dynamic_token_budget: usize,
    /// Initial learning rate, linearly decayed to 1e-4 of itself.
    pub learning_rate: f64,
    /// Node2Vec return parameter `p`.
    pub p: f64,
    /// Node2Vec in-out parameter `q`.
    pub q: f64,
}

impl Default for Node2VecConfig {
    fn default() -> Self {
        Node2VecConfig {
            dim: 100,
            walks_per_node: 40,
            walk_length: 30,
            window: 5,
            negatives: 20,
            epochs: 10,
            dynamic_epochs: 5,
            // At the default 40 walks × 30 steps, a one-by-one cascade
            // group of up to ~300 new nodes still trains all 5 epochs;
            // only corpus-scale continuations (all-at-once re-walks over
            // large graphs) are throttled.
            dynamic_token_budget: 2_000_000,
            learning_rate: 0.025,
            p: 1.0,
            q: 1.0,
        }
    }
}

impl Node2VecConfig {
    /// A scaled-down configuration for unit tests and small examples.
    pub fn small() -> Self {
        Node2VecConfig {
            dim: 16,
            walks_per_node: 10,
            walk_length: 10,
            window: 3,
            negatives: 5,
            epochs: 3,
            dynamic_epochs: 2,
            // Generous at unit-test graph sizes: the cap exists but does
            // not bind (dedicated tests exercise the binding case).
            dynamic_token_budget: 1_000_000,
            learning_rate: 0.05,
            p: 1.0,
            q: 1.0,
        }
    }

    /// Effective continuation epochs for a corpus of `tokens` walk
    /// tokens: `dynamic_epochs`, throttled so `epochs × tokens` stays
    /// within [`Node2VecConfig::dynamic_token_budget`] (never below one
    /// epoch). Shared by the production extend path and the
    /// retained≡fresh test mirror — both must budget identically.
    pub fn dynamic_epochs_for(&self, tokens: usize) -> usize {
        if self.dynamic_token_budget == 0 || tokens == 0 {
            return self.dynamic_epochs;
        }
        (self.dynamic_token_budget / tokens).clamp(1, self.dynamic_epochs)
    }

    /// The walk-sampling slice of the configuration.
    pub fn walk_config(&self) -> WalkConfig {
        WalkConfig {
            walks_per_node: self.walks_per_node,
            walk_length: self.walk_length,
            p: self.p,
            q: self.q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let c = Node2VecConfig::default();
        assert_eq!(c.dim, 100);
        assert_eq!(c.walks_per_node, 40);
        assert_eq!(c.walk_length, 30);
        assert_eq!(c.window, 5);
        assert_eq!(c.negatives, 20);
        assert_eq!(c.epochs, 10);
        assert_eq!(c.dynamic_epochs, 5);
    }

    #[test]
    fn dynamic_epoch_budget_is_proportional_and_clamped() {
        let c = Node2VecConfig {
            dynamic_epochs: 5,
            dynamic_token_budget: 1_000,
            ..Node2VecConfig::small()
        };
        // Small continuation corpora keep every epoch.
        assert_eq!(c.dynamic_epochs_for(100), 5);
        assert_eq!(c.dynamic_epochs_for(200), 5);
        // Larger corpora are throttled proportionally…
        assert_eq!(c.dynamic_epochs_for(400), 2);
        // …but never below one full pass.
        assert_eq!(c.dynamic_epochs_for(5_000), 1);
        // Degenerate inputs: no corpus / no budget → the configured count.
        assert_eq!(c.dynamic_epochs_for(0), 5);
        let uncapped = Node2VecConfig {
            dynamic_token_budget: 0,
            ..c
        };
        assert_eq!(
            uncapped.dynamic_epochs_for(usize::MAX),
            uncapped.dynamic_epochs
        );
    }

    #[test]
    fn walk_config_projection() {
        let c = Node2VecConfig {
            p: 0.5,
            q: 2.0,
            ..Node2VecConfig::small()
        };
        let w = c.walk_config();
        assert_eq!(w.walks_per_node, c.walks_per_node);
        assert_eq!(w.p, 0.5);
        assert_eq!(w.q, 2.0);
    }
}
