//! Wall-clock lap timer behind the `timing` cargo feature.
//!
//! [`crate::model::ExtendTiming`] is pure diagnostics: its numbers feed
//! bench printouts, never a computed value. Rather than waive the
//! determinism linter's `ambient-time` rule at every `Instant` read, the
//! reads are compiled in only when the `timing` feature is on (benches
//! and the CI profile job enable it). The default build records zeros —
//! the compute path contains no ambient-time reads at all, and the
//! feature-gated variant is exempt from the compute-scoped rules by the
//! linter's `#[cfg(feature = ...)]` region rule.

/// Lap timer: [`Stopwatch::lap`] returns seconds since the previous lap
/// (or since [`Stopwatch::start`]) and resets.
#[cfg(feature = "timing")]
#[derive(Debug)]
pub struct Stopwatch {
    last: std::time::Instant,
}

#[cfg(feature = "timing")]
impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            last: std::time::Instant::now(),
        }
    }

    /// Seconds since the previous lap; resets the lap origin.
    pub fn lap(&mut self) -> f64 {
        let now = std::time::Instant::now();
        let dt = (now - self.last).as_secs_f64();
        self.last = now;
        dt
    }
}

/// Zero-cost stub: without the `timing` feature every lap reads 0.0 and
/// no clock is touched.
#[cfg(not(feature = "timing"))]
#[derive(Debug)]
pub struct Stopwatch;

#[cfg(not(feature = "timing"))]
impl Stopwatch {
    /// Start timing now (no-op without the `timing` feature).
    pub fn start() -> Stopwatch {
        Stopwatch
    }

    /// Seconds since the previous lap — always 0.0 without the feature.
    #[allow(clippy::unused_self)]
    pub fn lap(&mut self) -> f64 {
        0.0
    }
}
