//! # node2vec — skip-gram node embeddings with a stable dynamic extension
//!
//! Implements the Node2Vec training pipeline of the paper's §IV from
//! scratch: biased random walks (provided by [`dbgraph`]) feed a
//! **skip-gram with negative sampling** (SGNS) model trained by plain SGD
//! with hand-derived gradients.
//!
//! The dynamic extension (paper §IV-A) follows the paper exactly: when new
//! nodes appear, their vectors are randomly initialised, new walks are
//! sampled **starting at the new nodes**, and training continues "while
//! performing gradient descent only on the embeddings of new nodes" — the
//! old vectors are *frozen* and provably bit-identical afterwards (see the
//! `freeze` tests).
//!
//! The whole pipeline runs on cache-friendly, O(1)-sampling substrates:
//! walks arrive as a flat token arena ([`dbgraph::WalkCorpus`]), negatives
//! come from a bucketed-alias [`NegativeTable`] (O(1) per draw, and
//! **sub-linear maintenance**: a dynamic-extension round refreshes only
//! the buckets of nodes its continuation walks visited), and the SGNS
//! inner loop works on contiguous embedding rows with a preallocated
//! center-gradient scratch buffer.

pub mod config;
pub mod model;
pub mod negative;
pub mod sgns;
pub mod stopwatch;

pub use config::Node2VecConfig;
pub use model::Node2VecModel;
pub use negative::{NegativeTable, NegativeTableStats};
pub use sgns::SgnsModel;
