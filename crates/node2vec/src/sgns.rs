//! Skip-gram with negative sampling, trained by SGD with hand-derived
//! gradients and support for **freezing** node vectors.
//!
//! For a center node `c` and context node `o` with label `y ∈ {0,1}` the
//! loss is the binary cross-entropy of `σ(in_c · out_o)`; the gradient of
//! the logit is `g = σ(in_c · out_o) − y`, giving the classic updates
//! `in_c ← in_c − η·g·out_o` and `out_o ← out_o − η·g·in_c`. Frozen nodes
//! receive **no** updates on either vector — this implements the paper's
//! "gradient descent only on the embeddings of new nodes".
//!
//! The inner loop is laid out for throughput: the walk corpus is a flat
//! token arena ([`WalkCorpus`]) iterated as contiguous slices, each
//! (positive + negatives) group accumulates the center-row gradient in a
//! **preallocated scratch buffer** and writes the center row once per group
//! (the word2vec formulation), and the per-pair work is a fused
//! dot-product / gradient / axpy pass over two contiguous rows — no
//! bounds checks in the hot path, no per-pair allocation, O(1) negative
//! draws via the bucketed-alias [`NegativeTable`] (whose two-level layout
//! also gives the dynamic phase sub-linear table maintenance).
//!
//! The embedding arenas are stored **f32** and every gradient runs
//! through the shared mixed-precision kernels
//! ([`stembed_runtime::kernel`]): dots and the per-group center gradient
//! accumulate in f64, elementwise row updates stay f32. Half the
//! memory traffic of the former f64 arenas, twice the SIMD lanes, and —
//! because the kernels use a fixed-lane, fixed-order schedule — the same
//! determinism contract (seed / shard-count / retained≡fresh
//! bit-identity; see PRECISION.md).

use crate::NegativeTable;
use dbgraph::{NodeId, WalkCorpus};
use stembed_runtime::kernel;
use stembed_runtime::rng::DetRng;
use stembed_runtime::AliasTable;

/// Precomputed logistic table: σ(x) for x ∈ [−MAX_EXP, MAX_EXP] in
/// `TABLE_SIZE` bins (word2vec's classic trick; exactness at the tails is
/// irrelevant because the gradient saturates there anyway).
const MAX_EXP: f64 = 6.0;
const TABLE_SIZE: usize = 1024;
/// Bins per unit of logit: turns the table lookup into one multiply
/// instead of an f64 division in the hot loop.
const SIGMOID_SCALE: f64 = TABLE_SIZE as f64 / (2.0 * MAX_EXP);
/// Probability clamp for the BCE log (word2vec's epsilon).
const LOSS_EPS: f64 = 1e-7;

/// One sigmoid bin: the prediction plus both precomputed BCE losses,
/// **interleaved** so the hot loop's lookup touches one cache line
/// (three separate 8 KiB tables cost up to three lines per pair and
/// compete with the embedding rows for L1).
#[derive(Debug, Clone, Copy)]
struct SigmoidBin {
    /// σ(x) at the bin's center.
    sigmoid: f64,
    /// `−ln(clamp(σᵢ))` — BCE of a positive pair landing in this bin.
    pos_loss: f64,
    /// `−ln(1 − clamp(σᵢ))` — BCE of a negative pair in this bin.
    neg_loss: f64,
}

/// Precompute the interleaved sigmoid/loss table so the training loop
/// never calls `exp` or `ln`. Loss values are identical to computing the
/// logs inline — the prediction is already table-quantised.
fn build_sigmoid_bins() -> Vec<SigmoidBin> {
    (0..TABLE_SIZE)
        .map(|i| {
            let x = (i as f64 / TABLE_SIZE as f64) * 2.0 * MAX_EXP - MAX_EXP;
            let s = 1.0 / (1.0 + (-x).exp());
            let c = s.clamp(LOSS_EPS, 1.0 - LOSS_EPS);
            SigmoidBin {
                sigmoid: s,
                pos_loss: -c.ln(),
                neg_loss: -(1.0 - c).ln(),
            }
        })
        .collect()
}

/// The embedding matrices plus the freeze mask. Rows are stored `f32`;
/// all row arithmetic goes through the fixed-lane mixed-precision
/// kernels (the former hand-unrolled local `dot`/`axpy` were deduped
/// into [`stembed_runtime::kernel`]).
#[derive(Debug, Clone)]
pub struct SgnsModel {
    dim: usize,
    /// Input ("center") vectors, node-major, f32 storage.
    in_vecs: Vec<f32>,
    /// Output ("context") vectors, node-major, f32 storage.
    out_vecs: Vec<f32>,
    /// Frozen nodes receive no gradient updates.
    frozen: Vec<bool>,
    /// Interleaved σ / BCE-loss bins (one cache line per lookup).
    bins: Vec<SigmoidBin>,
    /// BCE of a saturated *correct* prediction: `−ln(1 − LOSS_EPS)`.
    sat_small: f64,
    /// BCE of a saturated *wrong* prediction: `−ln(LOSS_EPS)`.
    sat_large: f64,
    /// Per-group center-gradient scratch (f64 accumulator), kept across
    /// [`SgnsModel::train`] calls so the dynamic phase's per-round
    /// continuation training allocates nothing.
    scratch: Vec<f64>,
    /// Per-group negative-draw scratch (see [`SgnsModel::train_group`]:
    /// draws are batched ahead of the gradient passes so the context-row
    /// cache misses overlap instead of serialising behind the RNG).
    neg_buf: Vec<usize>,
}

/// Thinned negative sampling for **frozen centers** (dynamic phase).
///
/// A negative pair updates a parameter only when an endpoint is
/// unfrozen. For a frozen center, each of the `negatives` independent
/// table draws hits an unfrozen node with probability
/// `p = unfrozen_mass / total_mass` — so the *number* of effective
/// negatives is `Binomial(negatives, p)` and, given the count, each hit
/// is distributed over the unfrozen nodes proportional to their smoothed
/// weights. Sampling that thinned process directly (one uniform against
/// the precomputed binomial CDF, then `k` draws from a small
/// unfrozen-only alias table) produces **exactly** the same distribution
/// of parameter updates as drawing all `negatives` from the full table
/// and discarding frozen hits — at ~`1 + negatives·p` draws per group
/// instead of `negatives`. With `p` in the percent range (continuation
/// walks visit mostly old nodes), that removes the dominant cost of the
/// continuation SGD.
struct ThinnedNegatives {
    /// `cum[k] = P(K ≤ k)` for `K ~ Binomial(negatives, p)`.
    cum: Vec<f64>,
    /// Unfrozen node ids with positive mass.
    ids: Vec<u32>,
    /// Alias table over those nodes' smoothed weights.
    table: AliasTable,
}

impl ThinnedNegatives {
    /// Precompute for the current freeze mask (one O(node_count) scan per
    /// `train` call — the *per-draw* work is what this buys down).
    fn build(frozen: &[bool], table: &NegativeTable, negatives: usize) -> Self {
        let mut ids = Vec::new();
        let mut weights = Vec::new();
        for (i, &fz) in frozen.iter().enumerate() {
            if !fz {
                let w = table.weight(i);
                if w > 0.0 {
                    ids.push(i as u32);
                    weights.push(w);
                }
            }
        }
        let sub = AliasTable::new(&weights);
        let total = table.total_weight();
        let p = if total > 0.0 {
            sub.total_weight() / total
        } else {
            0.0
        };
        // Binomial pmf by the usual ratio recurrence, accumulated.
        let q = 1.0 - p;
        let mut pmf = q.powi(negatives as i32);
        let mut acc = pmf;
        let mut cum = Vec::with_capacity(negatives + 1);
        cum.push(acc);
        for k in 0..negatives {
            pmf *= ((negatives - k) as f64 / (k + 1) as f64) * (p / q.max(f64::MIN_POSITIVE));
            acc += pmf;
            cum.push(acc.min(1.0));
        }
        // Guard the tail against rounding: the last entry must catch
        // every uniform draw.
        if let Some(last) = cum.last_mut() {
            *last = 1.0;
        }
        ThinnedNegatives {
            cum,
            ids,
            table: sub,
        }
    }

    /// Number of effective negative hits for one group: one uniform draw
    /// against the binomial CDF.
    #[inline]
    fn draw_count(&self, rng: &mut DetRng) -> usize {
        let u = rng.random_range(0.0..1.0);
        self.cum.partition_point(|&c| c <= u)
    }
}

/// Result of one training run.
#[derive(Debug, Clone, Copy)]
pub struct TrainStats {
    /// Number of (center, context, label) updates performed.
    pub updates: usize,
    /// Mean binary cross-entropy over the first epoch.
    pub first_epoch_loss: f64,
    /// Mean binary cross-entropy over the last epoch.
    pub last_epoch_loss: f64,
}

impl SgnsModel {
    /// Fresh model with `nodes` random vectors in `[-0.5/dim, 0.5/dim]`
    /// (the word2vec initialisation).
    pub fn new(nodes: usize, dim: usize, seed: u64) -> Self {
        let mut rng = DetRng::seed_from_u64(seed);
        let bound = 0.5 / dim as f64;
        // Draws stay f64 (same RNG stream shape as the f64-storage
        // revisions); only the stored value rounds to f32.
        let in_vecs = (0..nodes * dim)
            .map(|_| rng.random_range(-bound..=bound) as f32)
            .collect();
        // Out vectors start at zero, as in word2vec.
        let out_vecs = vec![0.0f32; nodes * dim];
        SgnsModel {
            dim,
            in_vecs,
            out_vecs,
            frozen: vec![false; nodes],
            bins: build_sigmoid_bins(),
            sat_small: -(1.0 - LOSS_EPS).ln(),
            sat_large: -LOSS_EPS.ln(),
            scratch: Vec::new(),
            neg_buf: Vec::new(),
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nodes the model currently covers.
    pub fn node_count(&self) -> usize {
        self.frozen.len()
    }

    /// The (input) embedding of a node — this is the vector exposed to
    /// downstream tasks. Stored f32; widen per element where a task
    /// needs f64 features.
    pub fn embedding(&self, node: NodeId) -> &[f32] {
        let i = node.index();
        &self.in_vecs[i * self.dim..(i + 1) * self.dim]
    }

    /// Freeze every node currently in the model (dynamic phase prologue).
    pub fn freeze_all(&mut self) {
        self.frozen.iter_mut().for_each(|f| *f = true);
    }

    /// Whether `node` is frozen.
    pub fn is_frozen(&self, node: NodeId) -> bool {
        self.frozen[node.index()]
    }

    /// The learned state, for snapshotting: `(in_vecs, out_vecs, frozen)`,
    /// node-major. Everything else in the struct (sigmoid bins, saturation
    /// constants, scratch buffers) is data-independent and rebuilt by
    /// [`SgnsModel::from_raw_parts`].
    pub fn raw_parts(&self) -> (&[f32], &[f32], &[bool]) {
        (&self.in_vecs, &self.out_vecs, &self.frozen)
    }

    /// Rebuild a model from snapshotted state (the inverse of
    /// [`SgnsModel::raw_parts`]). The derived tables are recomputed from
    /// constants, so a round trip is bit-identical to the original.
    ///
    /// # Panics
    /// If the vector lengths are not `frozen.len() * dim`.
    pub fn from_raw_parts(
        dim: usize,
        in_vecs: Vec<f32>,
        out_vecs: Vec<f32>,
        frozen: Vec<bool>,
    ) -> Self {
        assert_eq!(in_vecs.len(), frozen.len() * dim, "in_vecs length mismatch");
        assert_eq!(
            out_vecs.len(),
            frozen.len() * dim,
            "out_vecs length mismatch"
        );
        SgnsModel {
            dim,
            in_vecs,
            out_vecs,
            frozen,
            bins: build_sigmoid_bins(),
            sat_small: -(1.0 - LOSS_EPS).ln(),
            sat_large: -LOSS_EPS.ln(),
            scratch: Vec::new(),
            neg_buf: Vec::new(),
        }
    }

    /// Grow the model to cover `new_count` nodes; the added nodes get random
    /// input vectors (seeded) and are unfrozen.
    pub fn grow(&mut self, new_count: usize, seed: u64) {
        assert!(new_count >= self.node_count(), "grow cannot shrink");
        let added = new_count - self.node_count();
        if added == 0 {
            return;
        }
        let mut rng = DetRng::seed_from_u64(seed);
        let bound = 0.5 / self.dim as f64;
        self.in_vecs
            .extend((0..added * self.dim).map(|_| rng.random_range(-bound..=bound) as f32));
        self.out_vecs
            .extend(std::iter::repeat_n(0.0f32, added * self.dim));
        self.frozen.extend(std::iter::repeat_n(false, added));
    }

    /// One pair inside a (center, contexts) group: fused
    /// dot → σ → gradient pass over the two rows. Accumulates the center
    /// gradient into `cgrad` when `learn_center` (applied once per group by
    /// the caller) and updates the context row in place unless it is
    /// frozen. Returns the pair's BCE loss *before* the update.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn pair_grad<K: kernel::Kernels, const DIM: usize>(
        &mut self,
        center: usize,
        context: usize,
        label: f64,
        lr: f64,
        learn_center: bool,
        cgrad: &mut [f64],
    ) -> f64 {
        let dim = if DIM > 0 { DIM } else { self.dim };
        let x = K::dot_f32(
            &self.in_vecs[center * dim..center * dim + dim],
            &self.out_vecs[context * dim..context * dim + dim],
        );
        self.pair_grad_with::<K, DIM>(x, center, context, label, lr, learn_center, cgrad)
    }

    /// [`SgnsModel::pair_grad`] with the logit already computed — the
    /// batched group path ([`SgnsModel::train_group`]) evaluates all of a
    /// group's dots up front and feeds them through here.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn pair_grad_with<K: kernel::Kernels, const DIM: usize>(
        &mut self,
        x: f64,
        center: usize,
        context: usize,
        label: f64,
        lr: f64,
        learn_center: bool,
        cgrad: &mut [f64],
    ) -> f64 {
        let dim = if DIM > 0 { DIM } else { self.dim };
        // Prediction and BCE loss from the shared bin — no `ln` in the loop
        // (the saturated losses are precomputed in `new`).
        let positive = label > 0.5;
        let (pred, loss) = if x >= MAX_EXP {
            (
                1.0,
                if positive {
                    self.sat_small
                } else {
                    self.sat_large
                },
            )
        } else if x <= -MAX_EXP {
            (
                0.0,
                if positive {
                    self.sat_large
                } else {
                    self.sat_small
                },
            )
        } else {
            let idx = (((x + MAX_EXP) * SIGMOID_SCALE) as usize).min(TABLE_SIZE - 1);
            let bin = &self.bins[idx];
            let loss = if positive { bin.pos_loss } else { bin.neg_loss };
            (bin.sigmoid, loss)
        };
        let in_row = &self.in_vecs[center * dim..center * dim + dim];
        let out_row = &mut self.out_vecs[context * dim..context * dim + dim];
        let g = (pred - label) * lr;
        match (self.frozen[context], learn_center) {
            (true, false) => {} // both ends frozen: loss only
            (true, true) => {
                // Context row untouched; the center still learns from it
                // (f32 products into the f64 gradient accumulator).
                K::axpy_f32_acc(g, out_row, cgrad);
            }
            (false, false) => {
                // Frozen center: only the context row moves.
                K::axpy_f32(-g, in_row, out_row);
            }
            (false, true) => {
                // Fused pass: cgrad += g·out (pre-update value, f64
                // accumulation), out ← out − g·in (f32 elementwise).
                K::sgns_pair_step(g, in_row, out_row, cgrad);
            }
        }
        loss
    }

    /// One (center, positive-context) group: the positive pair plus
    /// `negatives` alias-sampled negative pairs, all against the center's
    /// pre-group row. The accumulated center gradient is applied once at
    /// the end (skipped entirely for frozen centers). Returns the group's
    /// summed BCE loss.
    ///
    /// Pairs whose **both** endpoints are frozen update nothing, and for a
    /// frozen center the negatives that *can* matter are sampled directly
    /// via the thinned process ([`ThinnedNegatives`]): same distribution
    /// of parameter updates as full-table sampling, a small fraction of
    /// the draws and none of the frozen-frozen dot/σ/axpy work — the
    /// dominant saving of the dynamic continuation, where walks from new
    /// nodes traverse mostly frozen old nodes. Loss *diagnostics*
    /// ([`TrainStats`]) only cover the pairs actually computed.
    /// Issue a prefetch for `node`'s context row (the gradient pass will
    /// stream it shortly). Negative draws index the arenas essentially at
    /// random, so without this every group serialises RNG → row miss →
    /// gradient; prefetching at draw time lets the misses overlap.
    #[inline]
    fn prefetch_out_row(&self, node: usize) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: prefetch is a hint with no architectural effect; the
        // address is in (or one row past) the arena allocation.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let p = self.out_vecs.as_ptr().add(node * self.dim).cast::<i8>();
            _mm_prefetch(p, _MM_HINT_T0);
            // Rows are ≥ 2 cache lines for dim ≥ 17; fetch the second
            // line too and let the hardware stride prefetcher take over.
            _mm_prefetch(p.add(64), _MM_HINT_T0);
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = node;
    }

    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    fn train_group<K: kernel::Kernels, const DIM: usize>(
        &mut self,
        center: usize,
        context: usize,
        negatives: usize,
        table: &NegativeTable,
        thinned: Option<&ThinnedNegatives>,
        rng: &mut DetRng,
        lr: f64,
        cgrad: &mut [f64],
        negs: &mut Vec<usize>,
    ) -> f64 {
        let learn_center = !self.frozen[center];
        if learn_center {
            cgrad.fill(0.0);
        }
        // Draw the group's negatives *before* any gradient work (same RNG
        // stream, same effective pairs in the same order — bit-identical
        // output). Batching breaks the serial chain sample → row miss →
        // gradient: all effective rows are prefetched while the positive
        // pair computes, so their cache misses overlap.
        negs.clear();
        match (learn_center, thinned) {
            (false, Some(thin)) => {
                // Frozen center: only unfrozen negatives update anything.
                let hits = thin.draw_count(rng);
                for _ in 0..hits {
                    let neg = thin.ids[thin.table.sample(rng)] as usize;
                    if neg == context {
                        continue;
                    }
                    negs.push(neg);
                    self.prefetch_out_row(neg);
                }
            }
            _ => {
                for _ in 0..negatives {
                    let neg = table.sample(rng);
                    if neg == context {
                        continue;
                    }
                    if learn_center || !self.frozen[neg] {
                        negs.push(neg);
                        self.prefetch_out_row(neg);
                    }
                }
            }
        }
        let mut loss = 0.0;
        let do_pos = learn_center || !self.frozen[context];
        // Batch the group's dots ahead of the gradient passes: every
        // pair's logit reads rows no earlier pair in the group updates —
        // as long as the drawn negatives are distinct — so hoisting the
        // dots out of the branchy sigmoid/update sequence computes the
        // exact same IEEE values while the 7 independent reductions
        // pipeline instead of serialising behind each pair's updates. A
        // group with a repeated negative (rare: ~negatives²/2 in the
        // table size) falls back to the strict interleaved order, where
        // the second draw's dot must observe the first's row update.
        const BATCH: usize = 32;
        let distinct = negs.len() < BATCH && {
            let mut ok = true;
            for i in 1..negs.len() {
                ok &= !negs[..i].contains(&negs[i]);
            }
            ok
        };
        if distinct {
            let mut xs = [0.0f64; BATCH];
            let dim = if DIM > 0 { DIM } else { self.dim };
            {
                let in_row = &self.in_vecs[center * dim..center * dim + dim];
                let mut k = 0;
                if do_pos {
                    xs[k] = K::dot_f32(in_row, &self.out_vecs[context * dim..context * dim + dim]);
                    k += 1;
                }
                for &neg in negs.iter() {
                    xs[k] = K::dot_f32(in_row, &self.out_vecs[neg * dim..neg * dim + dim]);
                    k += 1;
                }
            }
            let mut k = 0;
            if do_pos {
                loss += self.pair_grad_with::<K, DIM>(
                    xs[k],
                    center,
                    context,
                    1.0,
                    lr,
                    learn_center,
                    cgrad,
                );
                k += 1;
            }
            for &neg in negs.iter() {
                loss +=
                    self.pair_grad_with::<K, DIM>(xs[k], center, neg, 0.0, lr, learn_center, cgrad);
                k += 1;
            }
        } else {
            if do_pos {
                loss += self.pair_grad::<K, DIM>(center, context, 1.0, lr, learn_center, cgrad);
            }
            for &neg in negs.iter() {
                loss += self.pair_grad::<K, DIM>(center, neg, 0.0, lr, learn_center, cgrad);
            }
        }
        if learn_center {
            let dim = if DIM > 0 { DIM } else { self.dim };
            K::apply_center_grad(
                &cgrad[..dim],
                &mut self.in_vecs[center * dim..center * dim + dim],
            );
        }
        loss
    }

    /// Train over a walk corpus: for every walk position, every context
    /// within `window`, one positive update plus `negatives` negative
    /// updates sampled from `table`. The learning rate decays linearly over
    /// the total update schedule.
    ///
    /// Kernel dispatch is hoisted **here**, not per row operation: the
    /// loop body is monomorphised over a [`kernel::Kernels`] family and
    /// the [`kernel::active_path`] match happens once per `train` call.
    /// On the AVX2 path the [`kernel::WideKernels`] instantiation is
    /// wrapped in a `#[target_feature(enable = "avx2")]` function, so
    /// the kernels inline into the pair loop and revectorise at 256
    /// bits — at ~45 ns per pair, the per-call dispatch + call overhead
    /// of the module-level kernel wrappers was a measurable slice of
    /// the whole continuation SGD. All three instantiations execute the
    /// same fixed-lane IEEE schedule, so outputs are bit-identical
    /// (asserted by `train_paths_agree_bitwise`).
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &mut self,
        corpus: &WalkCorpus,
        table: &NegativeTable,
        window: usize,
        negatives: usize,
        epochs: usize,
        lr0: f64,
        seed: u64,
    ) -> TrainStats {
        // Specialise the loop for the common embedding dimensions so the
        // kernels see a compile-time trip count (fully unrolled lane
        // loops, no remainder code). `0` is the sentinel for "read
        // `self.dim` at runtime" — same code, generic loops.
        match self.dim {
            32 => self.train_path::<32>(corpus, table, window, negatives, epochs, lr0, seed),
            64 => self.train_path::<64>(corpus, table, window, negatives, epochs, lr0, seed),
            128 => self.train_path::<128>(corpus, table, window, negatives, epochs, lr0, seed),
            _ => self.train_path::<0>(corpus, table, window, negatives, epochs, lr0, seed),
        }
    }

    /// Second dispatch level: pick the kernel family once per `train`
    /// call (see [`SgnsModel::train`] — this match used to sit inside
    /// every row operation).
    #[allow(clippy::too_many_arguments)]
    fn train_path<const DIM: usize>(
        &mut self,
        corpus: &WalkCorpus,
        table: &NegativeTable,
        window: usize,
        negatives: usize,
        epochs: usize,
        lr0: f64,
        seed: u64,
    ) -> TrainStats {
        match kernel::active_path() {
            kernel::KernelPath::Scalar => self.train_with::<kernel::ScalarKernels, DIM>(
                corpus, table, window, negatives, epochs, lr0, seed,
            ),
            kernel::KernelPath::Wide => self.train_with::<kernel::WideKernels, DIM>(
                corpus, table, window, negatives, epochs, lr0, seed,
            ),
            kernel::KernelPath::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `Avx2` is only selected after runtime AVX2
                // detection (see `KernelPath::from_env`).
                unsafe {
                    self.train_avx2::<DIM>(corpus, table, window, negatives, epochs, lr0, seed)
                }
                #[cfg(not(target_arch = "x86_64"))]
                self.train_with::<kernel::WideKernels, DIM>(
                    corpus, table, window, negatives, epochs, lr0, seed,
                )
            }
        }
    }

    /// The wide train body compiled with AVX2 enabled: everything from
    /// the walk loop down to the kernel lane loops inlines into this
    /// function (`#[inline(always)]` chain), so LLVM vectorises the
    /// per-pair math with 256-bit registers. Same IEEE op sequence as
    /// every other instantiation.
    ///
    /// Safety: the caller must ensure the CPU supports AVX2 (runtime
    /// detection via `KernelPath::from_env` or an explicit
    /// `is_x86_feature_detected!` check).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    unsafe fn train_avx2<const DIM: usize>(
        &mut self,
        corpus: &WalkCorpus,
        table: &NegativeTable,
        window: usize,
        negatives: usize,
        epochs: usize,
        lr0: f64,
        seed: u64,
    ) -> TrainStats {
        self.train_with::<kernel::WideKernels, DIM>(
            corpus, table, window, negatives, epochs, lr0, seed,
        )
    }

    /// The train loop body, generic over the kernel family and the
    /// (optionally const) dimension (see [`SgnsModel::train`] for why
    /// dispatch lives at this level).
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::needless_range_loop)] // window positions index the walk
    #[inline(always)]
    fn train_with<K: kernel::Kernels, const DIM: usize>(
        &mut self,
        corpus: &WalkCorpus,
        table: &NegativeTable,
        window: usize,
        negatives: usize,
        epochs: usize,
        lr0: f64,
        seed: u64,
    ) -> TrainStats {
        let mut rng = DetRng::seed_from_u64(seed);
        let mut stats = TrainStats {
            updates: 0,
            first_epoch_loss: 0.0,
            last_epoch_loss: 0.0,
        };
        if corpus.is_empty() || table.is_empty() || epochs == 0 {
            return stats;
        }
        // Total positive pairs (upper bound) for the lr schedule.
        let pairs_per_epoch: usize = corpus
            .iter()
            .map(|w| w.len() * 2 * window.min(w.len()))
            .sum::<usize>()
            .max(1);
        let inv_total_updates = 1.0 / (pairs_per_epoch * epochs) as f64;
        let mut done = 0usize;
        // Dynamic phase (any frozen node): precompute the thinned
        // frozen-center negative process once per call.
        let thinned = if self.frozen.iter().any(|&f| f) {
            Some(ThinnedNegatives::build(&self.frozen, table, negatives))
        } else {
            None
        };
        // Per-group center-gradient scratch: taken out of the model for the
        // duration of the loop (it is passed as a second &mut alongside
        // &mut self) and put back at the end, so repeated train calls reuse
        // one allocation.
        let mut cgrad = std::mem::take(&mut self.scratch);
        cgrad.clear();
        cgrad.resize(self.dim, 0.0);
        let mut negs = std::mem::take(&mut self.neg_buf);

        let mut order: Vec<usize> = (0..corpus.len()).collect();
        for epoch in 0..epochs {
            // Shuffle walk order per epoch (Fisher–Yates).
            for i in (1..order.len()).rev() {
                let j = rng.random_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            let mut epoch_pairs = 0usize;
            for &wi in &order {
                let walk = corpus.walk(wi);
                for (pos, &center) in walk.iter().enumerate() {
                    // Dynamic window shrink, as in word2vec.
                    let b = rng.random_range(1..=window);
                    let lo = pos.saturating_sub(b);
                    let hi = (pos + b).min(walk.len() - 1);
                    for ctx_pos in lo..=hi {
                        if ctx_pos == pos {
                            continue;
                        }
                        let context = walk[ctx_pos];
                        let lr = lr0 * (1.0 - done as f64 * inv_total_updates).max(1e-4);
                        epoch_loss += self.train_group::<K, DIM>(
                            center.index(),
                            context.index(),
                            negatives,
                            table,
                            thinned.as_ref(),
                            &mut rng,
                            lr,
                            &mut cgrad,
                            &mut negs,
                        );
                        stats.updates += 1 + negatives;
                        epoch_pairs += 1;
                        done += 1;
                    }
                }
            }
            let mean = epoch_loss / (epoch_pairs.max(1) * (1 + negatives)) as f64;
            if epoch == 0 {
                stats.first_epoch_loss = mean;
            }
            stats.last_epoch_loss = mean;
        }
        self.scratch = cgrad;
        self.neg_buf = negs;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbgraph::{Graph, WalkConfig, Walker};

    fn clique_pair_corpus(seed: u64) -> (Graph, WalkCorpus, Vec<usize>) {
        // Two 5-cliques joined by one bridge edge.
        let mut g = Graph::new();
        let nodes: Vec<NodeId> = (0..10).map(|_| g.add_node()).collect();
        for i in 0..5 {
            for j in i + 1..5 {
                g.add_edge(nodes[i], nodes[j]);
                g.add_edge(nodes[i + 5], nodes[j + 5]);
            }
        }
        g.add_edge(nodes[4], nodes[5]);
        g.finalize();
        let cfg = WalkConfig {
            walks_per_node: 20,
            walk_length: 8,
            p: 1.0,
            q: 1.0,
        };
        let corpus = Walker::new(&g, cfg, seed).corpus();
        let mut counts = vec![0usize; g.node_count()];
        for n in corpus.tokens() {
            counts[n.index()] += 1;
        }
        (g, corpus, counts)
    }

    /// Every `train` instantiation — scalar reference, portable wide,
    /// the const-dim specialisations, and (where the CPU has it) the
    /// AVX2 recompilation — produces bit-identical embeddings: the
    /// dispatch hoisted into `train` must never change output.
    #[test]
    fn train_paths_agree_bitwise() {
        let (_, corpus, counts) = clique_pair_corpus(11);
        let table = NegativeTable::new(&counts);
        let run = |f: &mut dyn FnMut(&mut SgnsModel) -> TrainStats| {
            // dim 32 exercises the DIM=32 specialisation against the
            // dynamic (DIM=0) body below.
            let mut model = SgnsModel::new(counts.len(), 32, 1);
            let stats = f(&mut model);
            let bits: Vec<u32> = model.in_vecs.iter().map(|v| v.to_bits()).collect();
            (stats.last_epoch_loss.to_bits(), bits)
        };
        let scalar = run(&mut |m| {
            m.train_with::<kernel::ScalarKernels, 0>(&corpus, &table, 3, 5, 3, 0.05, 2)
        });
        let wide =
            run(&mut |m| m.train_with::<kernel::WideKernels, 0>(&corpus, &table, 3, 5, 3, 0.05, 2));
        let scalar32 = run(&mut |m| {
            m.train_with::<kernel::ScalarKernels, 32>(&corpus, &table, 3, 5, 3, 0.05, 2)
        });
        let wide32 = run(&mut |m| {
            m.train_with::<kernel::WideKernels, 32>(&corpus, &table, 3, 5, 3, 0.05, 2)
        });
        assert_eq!(scalar, wide, "scalar vs wide train");
        assert_eq!(scalar, scalar32, "dynamic vs const-dim scalar train");
        assert_eq!(scalar, wide32, "scalar vs const-dim wide train");
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let avx2 = run(&mut |m| {
                // SAFETY: AVX2 presence checked just above.
                unsafe { m.train_avx2::<32>(&corpus, &table, 3, 5, 3, 0.05, 2) }
            });
            assert_eq!(scalar, avx2, "scalar vs avx2 train");
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let (_, corpus, counts) = clique_pair_corpus(7);
        let table = NegativeTable::new(&counts);
        let mut model = SgnsModel::new(counts.len(), 16, 1);
        let stats = model.train(&corpus, &table, 3, 5, 5, 0.05, 2);
        assert!(stats.updates > 0);
        assert!(
            stats.last_epoch_loss < stats.first_epoch_loss,
            "loss should drop: {} -> {}",
            stats.first_epoch_loss,
            stats.last_epoch_loss
        );
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let (_, corpus, counts) = clique_pair_corpus(3);
        let table = NegativeTable::new(&counts);
        let mut model = SgnsModel::new(counts.len(), 16, 5);
        model.train(&corpus, &table, 3, 5, 8, 0.05, 9);
        let cos = |a: usize, b: usize| {
            linalg_cosine(
                model.embedding(NodeId(a as u32)),
                model.embedding(NodeId(b as u32)),
            )
        };
        // Mean intra-clique vs inter-clique similarity.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..5usize {
            for j in 0..5usize {
                if i < j {
                    intra.push(cos(i, j));
                    intra.push(cos(i + 5, j + 5));
                }
                inter.push(cos(i, j + 5));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&intra) > mean(&inter) + 0.1,
            "intra {} must exceed inter {}",
            mean(&intra),
            mean(&inter)
        );
    }

    fn linalg_cosine(a: &[f32], b: &[f32]) -> f64 {
        let dot: f64 = a
            .iter()
            .zip(b)
            .map(|(x, y)| f64::from(*x) * f64::from(*y))
            .sum();
        let na: f64 = a
            .iter()
            .map(|x| f64::from(*x) * f64::from(*x))
            .sum::<f64>()
            .sqrt();
        let nb: f64 = b
            .iter()
            .map(|x| f64::from(*x) * f64::from(*x))
            .sum::<f64>()
            .sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }

    #[test]
    fn frozen_nodes_are_bit_identical_after_training() {
        let (_, corpus, counts) = clique_pair_corpus(11);
        let table = NegativeTable::new(&counts);
        let mut model = SgnsModel::new(counts.len(), 8, 2);
        model.train(&corpus, &table, 3, 5, 2, 0.05, 3);
        // Freeze everything, then grow by two nodes and train again.
        model.freeze_all();
        let snapshot: Vec<Vec<f32>> = (0..model.node_count())
            .map(|i| model.embedding(NodeId(i as u32)).to_vec())
            .collect();
        model.grow(counts.len() + 2, 77);
        assert!(!model.is_frozen(NodeId(counts.len() as u32)));
        let mut counts2 = counts.clone();
        counts2.push(3);
        counts2.push(3);
        let table2 = NegativeTable::new(&counts2);
        model.train(&corpus, &table2, 3, 5, 2, 0.05, 4);
        for (i, old) in snapshot.iter().enumerate() {
            assert_eq!(
                model.embedding(NodeId(i as u32)),
                old.as_slice(),
                "frozen node {i} changed"
            );
        }
    }

    #[test]
    fn grow_preserves_existing_vectors() {
        let mut model = SgnsModel::new(3, 4, 0);
        let before = model.embedding(NodeId(1)).to_vec();
        model.grow(5, 9);
        assert_eq!(model.node_count(), 5);
        assert_eq!(model.embedding(NodeId(1)), before.as_slice());
        // New vectors are non-zero with overwhelming probability.
        assert!(model.embedding(NodeId(4)).iter().any(|&v| v != 0.0));
    }

    #[test]
    fn deterministic_given_seeds() {
        let (_, corpus, counts) = clique_pair_corpus(1);
        let table = NegativeTable::new(&counts);
        let mut m1 = SgnsModel::new(counts.len(), 8, 4);
        let mut m2 = SgnsModel::new(counts.len(), 8, 4);
        m1.train(&corpus, &table, 3, 4, 2, 0.05, 6);
        m2.train(&corpus, &table, 3, 4, 2, 0.05, 6);
        for i in 0..counts.len() {
            assert_eq!(
                m1.embedding(NodeId(i as u32)),
                m2.embedding(NodeId(i as u32))
            );
        }
    }

    #[test]
    fn empty_corpus_is_a_noop() {
        let table = NegativeTable::new(&[1, 1]);
        let mut model = SgnsModel::new(2, 4, 0);
        let before = model.embedding(NodeId(0)).to_vec();
        let stats = model.train(&WalkCorpus::default(), &table, 3, 4, 2, 0.05, 0);
        assert_eq!(stats.updates, 0);
        assert_eq!(model.embedding(NodeId(0)), before.as_slice());
    }

    /// The thinned frozen-center process must hit unfrozen negatives at
    /// the same rate (per node) as full-table sampling would: each of the
    /// `negatives` trials hits node `j` with probability `w_j / total`.
    #[test]
    fn thinned_negatives_match_full_table_hit_rates() {
        use stembed_runtime::stream_rng;
        let counts = vec![40usize, 0, 7, 120, 3, 60, 11, 90];
        let table = NegativeTable::new(&counts);
        // Freeze everything except nodes 2, 4, 6.
        let mut frozen = vec![true; counts.len()];
        for i in [2usize, 4, 6] {
            frozen[i] = false;
        }
        let negatives = 6;
        let thin = ThinnedNegatives::build(&frozen, &table, negatives);
        assert_eq!(thin.ids, vec![2, 4, 6]);

        const GROUPS: usize = 60_000;
        let mut hits = vec![0usize; counts.len()];
        let mut rng = stream_rng(0x7417, 0);
        for _ in 0..GROUPS {
            let k = thin.draw_count(&mut rng);
            assert!(k <= negatives);
            for _ in 0..k {
                hits[thin.ids[thin.table.sample(&mut rng)] as usize] += 1;
            }
        }
        let total: f64 = counts.iter().map(|&c| (c as f64).powf(0.75)).sum();
        let mut chi = 0.0;
        for (i, &h) in hits.iter().enumerate() {
            if frozen[i] {
                assert_eq!(h, 0, "frozen node {i} hit by the thinned process");
                continue;
            }
            let expect = (GROUPS * negatives) as f64 * (counts[i] as f64).powf(0.75) / total;
            chi += (h as f64 - expect).powi(2) / expect;
        }
        // 3 unfrozen cells; generous envelope.
        assert!(chi < 20.0, "thinned hit rates off: chi-square {chi:.1}");
    }

    #[test]
    fn frozen_center_still_trains_unfrozen_negative_rows() {
        // With a frozen center, an unfrozen node's out-row must still
        // receive negative-sample gradient through the thinned path.
        let counts = vec![50usize, 50, 50];
        let table = NegativeTable::new(&counts);
        let mut model = SgnsModel::new(3, 4, 1);
        // Give out vectors some mass first so gradients are nonzero.
        let warm = WalkCorpus::from_nested(&[vec![NodeId(0), NodeId(1), NodeId(2)]]);
        model.train(&warm, &table, 2, 2, 3, 0.1, 2);
        model.frozen[0] = true;
        model.frozen[1] = true; // node 2 stays unfrozen
        let out_before: Vec<f32> = model.out_vecs.clone();
        // Corpus of frozen nodes only: every group has a frozen center and
        // frozen context; only thinned negative hits on node 2 can move
        // anything, and with 50/150 of the mass they will.
        let corpus = WalkCorpus::from_nested(&[vec![NodeId(0), NodeId(1)]]);
        model.train(&corpus, &table, 1, 8, 20, 0.1, 3);
        let dim = model.dim;
        assert_eq!(
            &model.out_vecs[..2 * dim],
            &out_before[..2 * dim],
            "frozen out-rows moved"
        );
        assert_ne!(
            &model.out_vecs[2 * dim..],
            &out_before[2 * dim..],
            "unfrozen out-row must learn from thinned negatives"
        );
    }

    #[test]
    fn frozen_context_rows_still_teach_the_center() {
        // A frozen context must contribute gradient to an unfrozen center
        // without its own row moving.
        let counts = vec![5usize, 5];
        let table = NegativeTable::new(&counts);
        let mut model = SgnsModel::new(2, 4, 1);
        // Nudge out vectors away from zero so the center gradient is nonzero.
        let corpus = WalkCorpus::from_nested(&[vec![NodeId(0), NodeId(1)]]);
        model.train(&corpus, &table, 1, 1, 2, 0.1, 2);
        model.frozen[1] = true;
        let frozen_in = model.embedding(NodeId(1)).to_vec();
        let center_before = model.embedding(NodeId(0)).to_vec();
        model.train(&corpus, &table, 1, 1, 3, 0.1, 3);
        assert_eq!(model.embedding(NodeId(1)), frozen_in.as_slice());
        assert_ne!(model.embedding(NodeId(0)), center_before.as_slice());
    }
}
