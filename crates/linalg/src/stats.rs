//! Descriptive statistics used for experiment reporting (accuracy ± std).

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator, matching the paper's ± bands
/// over 10 folds/runs); `0.0` for fewer than two observations.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    variance(xs).sqrt()
}

/// Sample variance (n−1 denominator); `0.0` for fewer than two
/// observations. Serial left-to-right sums — callers that need a fixed
/// float lane order (e.g. kernel variance fitting) get it by fixing the
/// order of `xs`.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// `(mean, std_dev)` in one pass over the slice boundary.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    (mean(xs), std_dev(xs))
}

/// Median (averaging the middle pair for even lengths); `0.0` when empty.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic example: sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn median_even_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn mean_std_pair() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }
}
