//! Cyclic Jacobi eigendecomposition of symmetric matrices.
//!
//! This is the numerical core behind the pseudoinverse: for the
//! dynamic-phase system matrix `C` (paper Eq. 9) we diagonalise the small
//! `d × d` Gram matrix `CᵀC = V Λ Vᵀ` and assemble the thin SVD from it.
//! Jacobi is slower than Householder tridiagonalisation + QL, but it is
//! simple, remarkably robust, and delivers small eigenvalues with high
//! relative accuracy — exactly what a rank-revealing pseudoinverse needs.

use crate::{LinalgError, Matrix, Result};

/// Result of a symmetric eigendecomposition `A = V Λ Vᵀ`.
///
/// Eigenpairs are sorted by **descending** eigenvalue. `V`'s columns are the
/// eigenvectors.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// Orthogonal matrix whose column `i` is the eigenvector for
    /// `values[i]`.
    pub vectors: Matrix,
}

const MAX_SWEEPS: usize = 64;

impl SymmetricEigen {
    /// Decompose a symmetric matrix. The input is symmetrized defensively
    /// (averaging `A` and `Aᵀ`) so tiny asymmetries from accumulated
    /// floating-point error cannot derail the rotations.
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "symmetric eigen: matrix is {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        if n == 0 {
            return Ok(SymmetricEigen {
                values: vec![],
                vectors: Matrix::zeros(0, 0),
            });
        }
        let mut m = a.clone();
        m.symmetrize();
        let mut v = Matrix::identity(n);

        let frob = m.frobenius_norm().max(1.0);
        let tol = crate::EPS * frob;

        for _sweep in 0..MAX_SWEEPS {
            let off = m.max_off_diagonal();
            if off <= tol {
                return Ok(Self::sorted(m, v));
            }
            for p in 0..n {
                for q in p + 1..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol * 1e-3 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Rotation angle: standard two-sided Jacobi formulas.
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply the rotation on rows/cols p and q of `m`
                    // (streaming slice passes — same arithmetic and order
                    // as the classic element-indexed loops, bit for bit).
                    m.rotate_cols(p, q, c, s);
                    m.rotate_rows(p, q, c, s);
                    // Accumulate the eigenvector rotation.
                    v.rotate_cols(p, q, c, s);
                }
            }
        }
        // Even if we exhausted sweeps, accept the result when the residual
        // off-diagonal mass is merely small rather than tiny.
        if m.max_off_diagonal() <= 1e-7 * frob {
            return Ok(Self::sorted(m, v));
        }
        Err(LinalgError::NoConvergence("jacobi eigendecomposition"))
    }

    fn sorted(m: Matrix, v: Matrix) -> SymmetricEigen {
        let n = m.rows();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| {
            m[(b, b)]
                .partial_cmp(&m[(a, a)])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let values: Vec<f64> = idx.iter().map(|&i| m[(i, i)]).collect();
        let mut vectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in idx.iter().enumerate() {
            for r in 0..n {
                vectors[(r, new_col)] = v[(r, old_col)];
            }
        }
        SymmetricEigen { values, vectors }
    }

    /// Reconstruct `V Λ Vᵀ` (testing / diagnostics helper).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.values.len();
        let mut lam = Matrix::zeros(n, n);
        for i in 0..n {
            lam[(i, i)] = self.values[i];
        }
        self.vectors
            .matmul(&lam)
            .and_then(|vl| vl.matmul(&self.vectors.transpose()))
            // PANICS: never — V and Λ are square of the same order.
            .expect("reconstruct: shapes are consistent by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = SymmetricEigen::decompose(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        use stembed_runtime::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(42);
        for n in [1usize, 2, 5, 12] {
            // Random symmetric matrix.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..=i {
                    let v: f64 = rng.random_range(-1.0..1.0);
                    a[(i, j)] = v;
                    a[(j, i)] = v;
                }
            }
            let e = SymmetricEigen::decompose(&a).unwrap();
            let rec = e.reconstruct();
            for i in 0..n {
                for j in 0..n {
                    assert!(
                        (rec[(i, j)] - a[(i, j)]).abs() < 1e-8,
                        "n={n} reconstruction mismatch at ({i},{j})"
                    );
                }
            }
            // VᵀV = I.
            let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!((vtv[(i, j)] - expect).abs() < 1e-9);
                }
            }
            // Sorted descending.
            for w in e.values.windows(2) {
                assert!(w[0] >= w[1] - 1e-12);
            }
        }
    }

    #[test]
    fn empty_matrix() {
        let e = SymmetricEigen::decompose(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn rejects_rectangular() {
        assert!(SymmetricEigen::decompose(&Matrix::zeros(2, 3)).is_err());
    }
}
