//! Householder QR decomposition with least-squares solving.
//!
//! For a full-column-rank `m × n` system (`m ≥ n`) QR is the numerically
//! preferred way to solve `min ‖Ax − b‖₂`; the pseudoinverse path
//! ([`crate::pinv`]) is only needed when the system may be rank-deficient.

use crate::{vector, LinalgError, Matrix, Result};

/// Compact Householder QR: stores the reflectors in the lower trapezoid of
/// `qr` and `R`'s diagonal separately.
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    qr: Matrix,
    rdiag: Vec<f64>,
}

impl QrDecomposition {
    /// Decompose an `m × n` matrix with `m ≥ n`.
    #[allow(clippy::needless_range_loop)] // dual-indexed numeric kernel
    pub fn decompose(a: &Matrix) -> Result<Self> {
        let m = a.rows();
        let n = a.cols();
        if m < n {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr: need rows >= cols, got {m}x{n}"
            )));
        }
        let mut qr = a.clone();
        let mut rdiag = vec![0.0; n];
        for k in 0..n {
            // Norm of the k-th column below (and including) row k.
            let mut nrm = 0.0_f64;
            for i in k..m {
                nrm = nrm.hypot(qr[(i, k)]);
            }
            if nrm == 0.0 {
                rdiag[k] = 0.0;
                continue;
            }
            if qr[(k, k)] < 0.0 {
                nrm = -nrm;
            }
            for i in k..m {
                qr[(i, k)] /= nrm;
            }
            qr[(k, k)] += 1.0;
            // Apply the reflector to the remaining columns.
            for j in k + 1..n {
                let mut s = 0.0;
                for i in k..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s = -s / qr[(k, k)];
                for i in k..m {
                    let add = s * qr[(i, k)];
                    qr[(i, j)] += add;
                }
            }
            rdiag[k] = -nrm;
        }
        Ok(QrDecomposition { qr, rdiag })
    }

    /// `true` iff `R` has no (numerically) zero diagonal entry.
    pub fn is_full_rank(&self) -> bool {
        let scale = self.qr.max_abs().max(1.0);
        self.rdiag.iter().all(|d| d.abs() > crate::EPS * scale)
    }

    /// Solve the least-squares problem `min ‖Ax − b‖₂`.
    ///
    /// Returns [`LinalgError::Singular`] when `A` is rank-deficient; callers
    /// should then fall back to [`crate::pinv_solve`].
    #[allow(clippy::needless_range_loop)] // dual-indexed numeric kernel
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.qr.rows();
        let n = self.qr.cols();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr solve: rhs has length {}, expected {m}",
                b.len()
            )));
        }
        if !self.is_full_rank() {
            return Err(LinalgError::Singular);
        }
        let mut y = b.to_vec();
        // Compute Qᵀ b by applying the stored reflectors.
        for k in 0..n {
            if self.qr[(k, k)] == 0.0 {
                continue;
            }
            let mut s = 0.0;
            for i in k..m {
                s += self.qr[(i, k)] * y[i];
            }
            s = -s / self.qr[(k, k)];
            for i in k..m {
                y[i] += s * self.qr[(i, k)];
            }
        }
        // Back-substitute R x = (Qᵀ b)[..n].
        let mut x = vec![0.0; n];
        for k in (0..n).rev() {
            let mut sum = y[k];
            for j in k + 1..n {
                sum -= self.qr[(k, j)] * x[j];
            }
            x[k] = sum / self.rdiag[k];
        }
        Ok(x)
    }

    /// Residual 2-norm `‖Ax − b‖₂` for a candidate solution (diagnostics).
    pub fn residual_norm(a: &Matrix, x: &[f64], b: &[f64]) -> Result<f64> {
        let ax = a.matvec(x)?;
        Ok(vector::norm2(&vector::sub(&ax, b)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_square_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, 0.0],
            vec![1.0, 3.0, 1.0],
            vec![0.0, 1.0, 4.0],
        ]);
        let x_true = [1.0, -1.0, 2.0];
        let b = a.matvec(&x_true).unwrap();
        let qr = QrDecomposition::decompose(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn least_squares_overdetermined() {
        // Fit y = 2x + 1 through noisy-free points: exact recovery.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 1.0]).collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let qr = QrDecomposition::decompose(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn least_squares_minimizes_residual() {
        // Inconsistent system: check the solution beats nearby candidates.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 0.0], vec![0.0, 1.0]]);
        let b = [0.0, 2.0, 3.0];
        let qr = QrDecomposition::decompose(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        // Optimal: x0 = mean(0, 2) = 1, x1 = 3.
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
        let r_opt = QrDecomposition::residual_norm(&a, &x, &b).unwrap();
        let r_other = QrDecomposition::residual_norm(&a, &[1.1, 3.0], &b).unwrap();
        assert!(r_opt <= r_other);
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]);
        let qr = QrDecomposition::decompose(&a).unwrap();
        assert!(!qr.is_full_rank());
        assert_eq!(
            qr.solve(&[1.0, 2.0, 3.0]).unwrap_err(),
            LinalgError::Singular
        );
    }

    #[test]
    fn rejects_underdetermined() {
        assert!(QrDecomposition::decompose(&Matrix::zeros(2, 3)).is_err());
    }
}
