//! Moore–Penrose pseudoinverse via a thin SVD.
//!
//! Paper Eq. 10 computes the embedding of a newly inserted fact as
//! `ϕ(f_new) = C⁺ · b`. We build the thin SVD `C = U Σ Vᵀ` from the
//! symmetric eigendecomposition of the (small) `d × d` Gram matrix
//! `CᵀC = V Σ² Vᵀ`, then `U = C V Σ⁻¹` and `C⁺ = V Σ⁺ Uᵀ`. Rank is
//! determined with the conventional tolerance
//! `max(m, n) · σ_max · machine-eps`.

use crate::{jacobi::SymmetricEigen, Matrix, Result};

/// Thin singular value decomposition `A = U Σ Vᵀ` of an `m × n` matrix with
/// `r = rank(A)` retained components.
#[derive(Debug, Clone)]
pub struct Svd {
    /// `m × r` matrix of left singular vectors.
    pub u: Matrix,
    /// The `r` nonzero singular values, descending.
    pub sigma: Vec<f64>,
    /// `n × r` matrix of right singular vectors.
    pub v: Matrix,
}

impl Svd {
    /// Compute the thin SVD. Works for any shape; for `m < n` we decompose
    /// the transpose and swap `U`/`V`.
    pub fn decompose(a: &Matrix) -> Result<Svd> {
        if a.rows() < a.cols() {
            let t = Svd::decompose(&a.transpose())?;
            return Ok(Svd {
                u: t.v,
                sigma: t.sigma,
                v: t.u,
            });
        }
        let m = a.rows();
        let n = a.cols();
        let gram = a.gram(); // n × n
        let eig = SymmetricEigen::decompose(&gram)?;

        let sigma_max = eig.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
        let tol = (m.max(n) as f64) * sigma_max * f64::EPSILON;

        let mut sigma = Vec::new();
        let mut keep = Vec::new();
        for (i, &lam) in eig.values.iter().enumerate() {
            let s = lam.max(0.0).sqrt();
            if s > tol && s > 0.0 {
                sigma.push(s);
                keep.push(i);
            }
        }
        let r = sigma.len();

        // V: n × r (selected eigenvector columns).
        let mut v = Matrix::zeros(n, r);
        for (new_c, &old_c) in keep.iter().enumerate() {
            for row in 0..n {
                v[(row, new_c)] = eig.vectors[(row, old_c)];
            }
        }
        // U = A · V · Σ⁻¹: m × r.
        let av = a.matmul(&v)?;
        let mut u = av;
        for c in 0..r {
            let inv = 1.0 / sigma[c];
            for row in 0..m {
                u[(row, c)] *= inv;
            }
        }
        Ok(Svd { u, sigma, v })
    }

    /// Numerical rank (number of retained singular values).
    pub fn rank(&self) -> usize {
        self.sigma.len()
    }

    /// Condition number `σ_max / σ_min` of the retained spectrum;
    /// `f64::INFINITY` for the zero matrix.
    pub fn condition_number(&self) -> f64 {
        match (self.sigma.first(), self.sigma.last()) {
            (Some(&hi), Some(&lo)) if lo > 0.0 => hi / lo,
            _ => f64::INFINITY,
        }
    }

    /// Minimum-norm least-squares solution `x = V Σ⁺ Uᵀ b` without forming
    /// the pseudoinverse explicitly.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        // t = Uᵀ b  (r)
        let t = self.u.matvec_t(b)?;
        // t ← Σ⁺ t
        let scaled: Vec<f64> = t
            .iter()
            .zip(self.sigma.iter())
            .map(|(ti, si)| ti / si)
            .collect();
        // x = V · scaled  (n)
        self.v.matvec(&scaled)
    }

    /// Dense pseudoinverse `A⁺ = V Σ⁺ Uᵀ` (n × m).
    pub fn pseudo_inverse(&self) -> Result<Matrix> {
        let r = self.rank();
        let mut vs = self.v.clone(); // n × r
        for c in 0..r {
            let inv = 1.0 / self.sigma[c];
            for row in 0..vs.rows() {
                vs[(row, c)] *= inv;
            }
        }
        vs.matmul(&self.u.transpose())
    }
}

/// Dense pseudoinverse of `a`.
pub fn pinv(a: &Matrix) -> Result<Matrix> {
    Svd::decompose(a)?.pseudo_inverse()
}

/// Minimum-norm least-squares solution of `A x = b` through the Gram
/// eigendecomposition alone, never forming `U`.
///
/// With `AᵀA = V Λ Vᵀ` and the retained spectrum `σᵢ = √λᵢ`, Eq. 10's
/// `x = A⁺ b = V Σ⁺ Uᵀ b` rewrites (substituting `U = A V Σ⁻¹`) to
/// `x = V Λ⁺ Vᵀ (Aᵀ b)` — two matvecs instead of the `m × n × r` product
/// `A·V` that [`Svd::decompose`] spends most of its non-eigen time on. The
/// wide case (`m < n`) runs on `A Aᵀ` and finishes with
/// `x = Aᵀ · W Λ⁺ Wᵀ b`. Rank truncation uses the same tolerance as
/// [`Svd::decompose`], so the solution matches [`pinv_solve`] up to
/// rounding. This is the production solve under FoRWaRD's dynamic
/// extension (one call per inserted tuple).
pub fn pinv_solve_gram(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(crate::LinalgError::DimensionMismatch(format!(
            "pinv_solve_gram: rhs has length {}, matrix is {}x{}",
            b.len(),
            a.rows(),
            a.cols()
        )));
    }
    let m = a.rows();
    let n = a.cols();
    let tall = m >= n;
    // The Gram matrix of the short side: AᵀA (n×n) or AAᵀ (m×m).
    let gram = if tall { a.gram() } else { a.transpose().gram() };

    // Fast path: a comfortably positive-definite Gram matrix means `A` has
    // full (short-side) rank with benign conditioning, and the unique
    // least-squares / minimum-norm solution the pseudoinverse defines is
    // exactly the normal-equations solution — one Cholesky factorisation
    // (`k³/6` flops) instead of a Jacobi eigendecomposition (dozens of
    // sweeps of `k³` work). The rank-revealing eigen path below stays in
    // charge whenever the factor's diagonal betrays near-singularity
    // (ratio under `√ε`, i.e. cond(A) ≳ 10⁸ — where truncation, not
    // solving, is the right answer).
    if let Ok(chol) = crate::Cholesky::decompose(&gram) {
        let diag: Vec<f64> = (0..gram.rows()).map(|i| chol.factor()[(i, i)]).collect();
        let max_d = diag.iter().copied().fold(0.0f64, f64::max);
        let min_d = diag.iter().copied().fold(f64::INFINITY, f64::min);
        if min_d > max_d * f64::EPSILON.sqrt() {
            let g = if tall { a.matvec_t(b)? } else { b.to_vec() };
            let y = chol.solve(&g)?;
            return if tall { Ok(y) } else { a.matvec_t(&y) };
        }
    }

    let eig = SymmetricEigen::decompose(&gram)?;
    let sigma_max = eig.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    let tol = (m.max(n) as f64) * sigma_max * f64::EPSILON;

    // g = Aᵀb (tall) or b (wide), expressed in the eigenbasis; retained
    // components divide by λ = σ², truncated ones drop to 0.
    let g = if tall { a.matvec_t(b)? } else { b.to_vec() };
    let mut coeffs = eig.vectors.matvec_t(&g)?;
    for (ci, &lam) in coeffs.iter_mut().zip(eig.values.iter()) {
        let s = lam.max(0.0).sqrt();
        if s > tol && s > 0.0 {
            *ci /= lam;
        } else {
            *ci = 0.0;
        }
    }
    let y = eig.vectors.matvec(&coeffs)?;
    if tall {
        Ok(y)
    } else {
        a.matvec_t(&y)
    }
}

/// Minimum-norm least-squares solution of `A x = b` via the pseudoinverse —
/// the exact operation of paper Eq. 10.
pub fn pinv_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Svd::decompose(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stembed_runtime::rng::DetRng;

    fn random_matrix(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = DetRng::seed_from_u64(seed);
        Matrix::random_uniform(m, n, 1.0, &mut rng)
    }

    fn approx_eq(a: &Matrix, b: &Matrix, tol: f64) -> bool {
        a.rows() == b.rows()
            && a.cols() == b.cols()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < tol)
    }

    #[test]
    fn svd_reconstructs_full_rank() {
        for (m, n, seed) in [(5, 3, 1u64), (3, 5, 2), (6, 6, 3), (1, 4, 4)] {
            let a = random_matrix(m, n, seed);
            let svd = Svd::decompose(&a).unwrap();
            // U Σ Vᵀ == A
            let mut us = svd.u.clone();
            for c in 0..svd.rank() {
                for r in 0..us.rows() {
                    us[(r, c)] *= svd.sigma[c];
                }
            }
            let rec = us.matmul(&svd.v.transpose()).unwrap();
            assert!(approx_eq(&rec, &a, 1e-8), "reconstruction failed {m}x{n}");
        }
    }

    #[test]
    fn penrose_conditions() {
        let a = random_matrix(6, 4, 9);
        let ap = pinv(&a).unwrap();
        let a_ap_a = a.matmul(&ap).unwrap().matmul(&a).unwrap();
        assert!(approx_eq(&a_ap_a, &a, 1e-8), "A A⁺ A = A fails");
        let ap_a_ap = ap.matmul(&a).unwrap().matmul(&ap).unwrap();
        assert!(approx_eq(&ap_a_ap, &ap, 1e-8), "A⁺ A A⁺ = A⁺ fails");
        // (A A⁺) and (A⁺ A) symmetric.
        let aap = a.matmul(&ap).unwrap();
        assert!(aap.is_symmetric(1e-8));
        let apa = ap.matmul(&a).unwrap();
        assert!(apa.is_symmetric(1e-8));
    }

    #[test]
    fn rank_deficient_matrix() {
        // Two identical columns => rank 1.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let svd = Svd::decompose(&a).unwrap();
        assert_eq!(svd.rank(), 1);
        // Penrose condition 1 still holds on the rank-deficient input.
        let ap = svd.pseudo_inverse().unwrap();
        let rec = a.matmul(&ap).unwrap().matmul(&a).unwrap();
        assert!(approx_eq(&rec, &a, 1e-8));
    }

    #[test]
    fn solve_matches_explicit_pinv() {
        let a = random_matrix(8, 3, 21);
        let b: Vec<f64> = (0..8).map(|i| i as f64 * 0.3 - 1.0).collect();
        let x1 = pinv_solve(&a, &b).unwrap();
        let x2 = pinv(&a).unwrap().matvec(&b).unwrap();
        for (u, v) in x1.iter().zip(x2.iter()) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn gram_solve_matches_svd_solve_for_all_shapes() {
        // The production solve (Cholesky fast path / eigen fallback, no U
        // factor) must agree with the reference SVD route on tall, wide,
        // square, and rank-deficient systems.
        for (m, n, seed) in [(12usize, 4usize, 1u64), (3, 7, 2), (5, 5, 3)] {
            let a = random_matrix(m, n, seed);
            let b: Vec<f64> = (0..m).map(|i| (i as f64) * 0.7 - 1.3).collect();
            let fast = pinv_solve_gram(&a, &b).unwrap();
            let reference = pinv_solve(&a, &b).unwrap();
            for (x, y) in fast.iter().zip(reference.iter()) {
                assert!((x - y).abs() < 1e-8, "{m}x{n}: {x} vs {y}");
            }
        }
        // Rank deficient: duplicate columns force the eigen fallback.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = vec![2.0, 4.0, 6.0];
        let x = pinv_solve_gram(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
        // Shape mismatch is rejected.
        assert!(pinv_solve_gram(&a, &[1.0]).is_err());
    }

    #[test]
    fn minimum_norm_property_underdetermined() {
        // 1 equation, 2 unknowns: x0 + x1 = 2. Minimum-norm solution (1,1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let x = pinv_solve(&a, &[2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn zero_matrix_pinv_is_zero() {
        let a = Matrix::zeros(3, 2);
        let svd = Svd::decompose(&a).unwrap();
        assert_eq!(svd.rank(), 0);
        let x = svd.solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![0.0, 0.0]);
        assert_eq!(svd.condition_number(), f64::INFINITY);
    }

    #[test]
    fn identity_pinv_is_identity() {
        let i = Matrix::identity(4);
        let p = pinv(&i).unwrap();
        assert!(approx_eq(&p, &i, 1e-10));
    }
}
