//! Dense linear-algebra substrate for the stable-tuple-embedding workspace.
//!
//! The FoRWaRD algorithm (paper §V) needs exactly the following numerical
//! machinery, all of which is implemented here from scratch:
//!
//! * small dense [`Matrix`] arithmetic for the bilinear forms
//!   `ϕ(f)ᵀ ψ(s,A) ϕ(f′)`,
//! * a **pseudoinverse** (`C⁺`) for the dynamic-phase linear system
//!   `C · ϕ(f_new) = b` (paper Eq. 10), built on a symmetric Jacobi
//!   eigendecomposition of `CᵀC`,
//! * Cholesky and Householder-QR solvers used as fast paths / fallbacks,
//! * basic descriptive statistics for reporting accuracy ± std.
//!
//! Everything operates on `f64`. Matrices are row-major. The implementations
//! favour clarity and robustness over raw speed; the dimensions in this
//! workspace are small (embedding dimension `d ≤ 200`, systems with a few
//! thousand rows), so cubic algorithms with good constants are entirely
//! adequate — this mirrors the paper, which solves the same systems with
//! NumPy on CPU.

pub mod cholesky;
pub mod jacobi;
pub mod lstsq;
pub mod matrix;
pub mod pinv;
pub mod qr;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use jacobi::SymmetricEigen;
pub use lstsq::{lstsq, ridge_solve, LstsqMethod};
pub use matrix::Matrix;
pub use pinv::{pinv, pinv_solve, pinv_solve_gram, Svd};
pub use qr::QrDecomposition;
pub use stats::{mean, mean_std, std_dev};

/// Numerical tolerance used throughout the crate when deciding whether a
/// pivot / singular value is effectively zero.
pub const EPS: f64 = 1e-12;

/// Errors surfaced by the decomposition routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Dimensions of the operands do not line up; the payload describes the
    /// offending operation.
    DimensionMismatch(String),
    /// The matrix handed to Cholesky was not (numerically) positive definite.
    NotPositiveDefinite,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence(&'static str),
    /// The system is singular and the chosen method cannot produce a solution.
    Singular,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch(what) => {
                write!(f, "dimension mismatch: {what}")
            }
            LinalgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinalgError::NoConvergence(which) => {
                write!(f, "{which} did not converge")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
