//! Row-major dense matrix.

use crate::vector;
use crate::{LinalgError, Result};
use stembed_runtime::rng::Rng;

/// A dense, row-major `rows × cols` matrix of `f64`.
///
/// This is the work-horse type of the workspace: FoRWaRD's `ψ(s,A)` inner
/// product matrices, the dynamic-phase system matrix `C`, and the Gram
/// matrices of the downstream kernel SVM are all `Matrix` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a flat row-major buffer. Panics if the buffer length is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer has {} elements, expected {}",
            data.len(),
            rows * cols
        );
        Matrix { rows, cols, data }
    }

    /// Build from a slice of equally-long rows.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, std::vec::Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Matrix with i.i.d. entries drawn uniformly from `[-bound, bound]`.
    ///
    /// Used for the random initialisation of `ϕ` and `ψ` (paper §V-D).
    pub fn random_uniform<R: Rng + ?Sized>(
        rows: usize,
        cols: usize,
        bound: f64,
        rng: &mut R,
    ) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.random_range(-bound..=bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` iff the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow row `r` mutably.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Apply a Givens rotation to **columns** `p` and `q` in place: for
    /// every row `k`,
    /// `(a[k,p], a[k,q]) ← (c·a[k,p] − s·a[k,q], s·a[k,p] + c·a[k,q])`.
    ///
    /// One streaming pass over the row-major buffer — this is the inner
    /// loop of the Jacobi eigensolver, where per-element `(r, c)` indexing
    /// would pay an offset multiply and a bounds check per access.
    pub fn rotate_cols(&mut self, p: usize, q: usize, c: f64, s: f64) {
        debug_assert!(p < self.cols && q < self.cols && p != q);
        for row in self.data.chunks_exact_mut(self.cols) {
            let a = row[p];
            let b = row[q];
            row[p] = c * a - s * b;
            row[q] = s * a + c * b;
        }
    }

    /// Apply a Givens rotation to **rows** `p < q` in place: for every
    /// column `k`,
    /// `(a[p,k], a[q,k]) ← (c·a[p,k] − s·a[q,k], s·a[p,k] + c·a[q,k])`.
    pub fn rotate_rows(&mut self, p: usize, q: usize, c: f64, s: f64) {
        debug_assert!(p < q && q < self.rows);
        let cols = self.cols;
        let (head, tail) = self.data.split_at_mut(q * cols);
        let rp = &mut head[p * cols..(p + 1) * cols];
        let rq = &mut tail[..cols];
        for (a, b) in rp.iter_mut().zip(rq.iter_mut()) {
            let (x, y) = (*a, *b);
            *a = c * x - s * y;
            *b = s * x + c * y;
        }
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix–vector product `A·x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec: {}x{} times vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|r| vector::dot(self.row(r), x))
            .collect())
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    #[allow(clippy::needless_range_loop)] // dual-indexed numeric kernel
    pub fn matvec_t(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec_t: {}x{} transposed times vector of length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            vector::axpy(x[r], self.row(r), &mut out);
        }
        Ok(out)
    }

    /// Matrix product `A·B`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul: {}x{} times {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: stream through `other`'s rows for cache locality.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let brow = other.row(k);
                let orow = out.row_mut(i);
                vector::axpy(aik, brow, orow);
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (always square `cols × cols`, symmetric).
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, &rj) in row.iter().enumerate().skip(i) {
                    g[(i, j)] += ri * rj;
                }
            }
        }
        // Mirror the upper triangle.
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Bilinear form `xᵀ A y` — the core FoRWaRD prediction
    /// `ϕ(f)ᵀ ψ(s,A) ϕ(f′)` (paper Eq. 3).
    pub fn bilinear(&self, x: &[f64], y: &[f64]) -> Result<f64> {
        if x.len() != self.rows || y.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "bilinear: xᵀ({}) A({}x{}) y({})",
                x.len(),
                self.rows,
                self.cols,
                y.len()
            )));
        }
        let mut acc = 0.0;
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            acc += xr * vector::dot(self.row(r), y);
        }
        Ok(acc)
    }

    /// Rank-one update `A ← A + alpha · x yᵀ` — the `ψ` gradient step of
    /// FoRWaRD training.
    pub fn rank_one_update(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(y.len(), self.cols);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            vector::axpy(alpha * xr, y, self.row_mut(r));
        }
    }

    /// Element-wise `A ← A + alpha·B`.
    pub fn add_scaled(&mut self, alpha: f64, other: &Matrix) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "add_scaled: {}x{} += {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        vector::axpy(alpha, &other.data, &mut self.data);
        Ok(())
    }

    /// Scale every entry by `alpha`.
    pub fn scale(&mut self, alpha: f64) {
        vector::scale(alpha, &mut self.data);
    }

    /// Replace `A` by its symmetric part `(A + Aᵀ)/2`. FoRWaRD keeps every
    /// `ψ(s,A)` symmetric; after each rank-one SGD step we re-symmetrize.
    pub fn symmetrize(&mut self) {
        assert_eq!(self.rows, self.cols, "symmetrize: matrix must be square");
        for i in 0..self.rows {
            for j in 0..i {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Maximum absolute entry (∞-ish norm used in convergence checks).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &v| m.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vector::norm2(&self.data)
    }

    /// Largest absolute off-diagonal element — Jacobi sweep termination.
    pub fn max_off_diagonal(&self) -> f64 {
        let mut m = 0.0_f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// `true` iff `‖A − Aᵀ‖∞ ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..i {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Append a row. Panics if the length does not match the column count
    /// (for an empty matrix the first push fixes the column count).
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 && self.cols == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "push_row: wrong length");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn indexing_and_shape() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(2, 1)], 6.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_known() {
        let m = sample();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(m.matvec(&[1.0]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let m = sample();
        let i2 = Matrix::identity(2);
        assert_eq!(m.matmul(&i2).unwrap(), m);
        let i3 = Matrix::identity(3);
        assert_eq!(i3.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab, Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]));
    }

    #[test]
    fn gram_matches_explicit_product() {
        let m = sample();
        let g = m.gram();
        let explicit = m.transpose().matmul(&m).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!((g[(i, j)] - explicit[(i, j)]).abs() < 1e-12);
            }
        }
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn bilinear_matches_matvec() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = [1.0, 2.0];
        let y = [3.0, -1.0];
        let ay = a.matvec(&y).unwrap();
        let expect = x[0] * ay[0] + x[1] * ay[1];
        assert!((a.bilinear(&x, &y).unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn rank_one_update_known() {
        let mut a = Matrix::zeros(2, 2);
        a.rank_one_update(2.0, &[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(a, Matrix::from_rows(&[vec![6.0, 8.0], vec![12.0, 16.0]]));
    }

    #[test]
    fn symmetrize_produces_symmetric() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 3.0]]);
        a.symmetrize();
        assert!(a.is_symmetric(0.0));
        assert_eq!(a[(0, 1)], 3.0);
    }

    #[test]
    fn push_row_grows() {
        let mut m = Matrix::zeros(0, 0);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
    }

    #[test]
    fn random_uniform_within_bounds() {
        use stembed_runtime::rng::DetRng;
        let mut rng = DetRng::seed_from_u64(7);
        let m = Matrix::random_uniform(10, 10, 0.5, &mut rng);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.5));
        // Not all identical (sanity that the RNG is actually used).
        let first = m.as_slice()[0];
        assert!(m.as_slice().iter().any(|&v| v != first));
    }
}
