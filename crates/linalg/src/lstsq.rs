//! High-level least-squares front door.
//!
//! FoRWaRD's dynamic phase builds an overdetermined system `C x = b`
//! (paper Eq. 9) and solves it approximately. The paper uses the
//! pseudoinverse; we expose that as the default and additionally provide a
//! ridge-regularised Cholesky path (useful as an ablation: the bench crate
//! compares quality/runtime of both).

use crate::{pinv::pinv_solve_gram, Cholesky, LinalgError, Matrix, QrDecomposition, Result};

/// Strategy used by [`lstsq`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LstsqMethod {
    /// Minimum-norm solution through the SVD pseudoinverse (paper Eq. 10).
    /// Handles rank deficiency. This is the default.
    #[default]
    PseudoInverse,
    /// Householder QR; fastest, but errors out on rank-deficient input.
    Qr,
    /// Ridge-regularised normal equations `(AᵀA + λI)x = Aᵀb`, solved by
    /// Cholesky. Always succeeds for λ > 0.
    Ridge(f64),
}

/// Solve `min ‖Ax − b‖₂` with the requested method.
pub fn lstsq(a: &Matrix, b: &[f64], method: LstsqMethod) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "lstsq: rhs has length {}, matrix is {}x{}",
            b.len(),
            a.rows(),
            a.cols()
        )));
    }
    match method {
        LstsqMethod::PseudoInverse => pinv_solve_gram(a, b),
        LstsqMethod::Qr => QrDecomposition::decompose(a)?.solve(b),
        LstsqMethod::Ridge(lambda) => ridge_solve(a, b, lambda),
    }
}

/// Ridge regression solve `(AᵀA + λI) x = Aᵀ b` via Cholesky.
pub fn ridge_solve(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>> {
    if lambda < 0.0 {
        return Err(LinalgError::DimensionMismatch(
            "ridge_solve: lambda must be nonnegative".into(),
        ));
    }
    let mut gram = a.gram();
    for i in 0..gram.rows() {
        gram[(i, i)] += lambda;
    }
    let rhs = a.matvec_t(b)?;
    match Cholesky::decompose(&gram) {
        Ok(ch) => ch.solve(&rhs),
        // λ = 0 with a singular Gram matrix: fall back to the pseudoinverse
        // so the caller still gets the minimum-norm answer.
        Err(LinalgError::NotPositiveDefinite) => pinv_solve_gram(a, b),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stembed_runtime::rng::DetRng;

    fn well_conditioned() -> (Matrix, Vec<f64>, Vec<f64>) {
        let mut rng = DetRng::seed_from_u64(5);
        let a = Matrix::random_uniform(20, 4, 1.0, &mut rng);
        let x_true = vec![0.5, -1.0, 2.0, 0.25];
        let b = a.matvec(&x_true).unwrap();
        (a, x_true, b)
    }

    #[test]
    fn all_methods_agree_on_consistent_system() {
        let (a, x_true, b) = well_conditioned();
        for method in [
            LstsqMethod::PseudoInverse,
            LstsqMethod::Qr,
            LstsqMethod::Ridge(1e-10),
        ] {
            let x = lstsq(&a, &b, method).unwrap();
            for (xi, ti) in x.iter().zip(x_true.iter()) {
                assert!((xi - ti).abs() < 1e-6, "{method:?} off: {xi} vs {ti}");
            }
        }
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let (a, _, b) = well_conditioned();
        let x0 = ridge_solve(&a, &b, 0.0).unwrap();
        let x_big = ridge_solve(&a, &b, 1e6).unwrap();
        let n0: f64 = x0.iter().map(|v| v * v).sum();
        let nb: f64 = x_big.iter().map(|v| v * v).sum();
        assert!(nb < n0, "large lambda must shrink the solution norm");
    }

    #[test]
    fn pinv_handles_rank_deficiency_where_qr_fails() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let b = vec![2.0, 4.0, 6.0];
        assert_eq!(
            lstsq(&a, &b, LstsqMethod::Qr).unwrap_err(),
            LinalgError::Singular
        );
        let x = lstsq(&a, &b, LstsqMethod::PseudoInverse).unwrap();
        // Minimum-norm solution of x0 + x1 = 2: (1, 1).
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
        // Ridge with zero lambda silently falls back to pinv.
        let xr = lstsq(&a, &b, LstsqMethod::Ridge(0.0)).unwrap();
        assert!((xr[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rejects_bad_rhs_and_negative_lambda() {
        let (a, _, _) = well_conditioned();
        assert!(lstsq(&a, &[1.0], LstsqMethod::PseudoInverse).is_err());
        assert!(ridge_solve(&a, &[0.0; 20], -1.0).is_err());
    }
}
