//! Free functions on `&[f64]` slices.
//!
//! These are the hot kernels of both embedding trainers: every SGD step of
//! FoRWaRD and every skip-gram update of Node2Vec bottoms out in dot
//! products and axpy updates on embedding vectors.
//!
//! `dot` and `axpy` are thin forwarding wrappers over the shared
//! vectorised kernels in [`stembed_runtime::kernel`] (fixed-lane f64
//! accumulation, runtime-dispatched wide/scalar paths), so every solver
//! caller — matvec, QR, Cholesky, the FoRWaRD minibatch step — picks up
//! the vectorised path without touching its call sites. Note the lane
//! split reassociates the reduction relative to the old serial chain:
//! results changed at the last-ulp level when this landed (see
//! PRECISION.md), deterministically.

use stembed_runtime::kernel;

/// Dot product `xᵀy`, on the shared fixed-lane kernel. Lengths must
/// match (programmer error otherwise).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    kernel::dot(x, y)
}

/// `y ← y + alpha * x` (BLAS `axpy`), on the shared kernel.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    kernel::axpy(alpha, x, y);
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm `‖x‖₂`, computed with scaling to avoid overflow.
pub fn norm2(x: &[f64]) -> f64 {
    let mut scale_acc = 0.0_f64;
    let mut ssq = 1.0_f64;
    for &xi in x {
        if xi != 0.0 {
            let absxi = xi.abs();
            if scale_acc < absxi {
                let r = scale_acc / absxi;
                ssq = 1.0 + ssq * r * r;
                scale_acc = absxi;
            } else {
                let r = absxi / scale_acc;
                ssq += r * r;
            }
        }
    }
    scale_acc * ssq.sqrt()
}

/// Squared Euclidean distance `‖x − y‖₂²`.
#[inline]
pub fn dist2_sq(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len(), "dist2_sq: length mismatch");
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        let d = a - b;
        acc += d * d;
    }
    acc
}

/// Cosine similarity; returns 0 when either vector is (numerically) zero.
pub fn cosine(x: &[f64], y: &[f64]) -> f64 {
    let nx = norm2(x);
    let ny = norm2(y);
    if nx < crate::EPS || ny < crate::EPS {
        return 0.0;
    }
    dot(x, y) / (nx * ny)
}

/// Element-wise sum of two vectors into a fresh allocation.
pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "add: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a + b).collect()
}

/// Element-wise difference `x − y` into a fresh allocation.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    debug_assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y.iter()).map(|(a, b)| a - b).collect()
}

/// Normalize `x` to unit length in place; leaves the zero vector untouched.
pub fn normalize(x: &mut [f64]) {
    let n = norm2(x);
    if n > crate::EPS {
        scale(1.0 / n, x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn norm_is_scale_safe() {
        // Naive sum of squares would overflow here.
        let big = vec![1e200, 1e200];
        let n = norm2(&big);
        assert!((n - 1e200 * 2.0_f64.sqrt()).abs() / n < 1e-12);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm2(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_bounds_and_degenerate() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn add_sub_roundtrip() {
        let x = vec![1.0, 2.0];
        let y = vec![0.5, -0.5];
        assert_eq!(sub(&add(&x, &y), &y), x);
    }

    #[test]
    fn dist2_sq_matches_norm_of_diff() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![4.0, 6.0, 3.0];
        let d = sub(&x, &y);
        assert!((dist2_sq(&x, &y) - dot(&d, &d)).abs() < 1e-12);
    }
}
