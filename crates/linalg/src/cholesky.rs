//! Cholesky decomposition of symmetric positive-definite matrices.
//!
//! Used as the fast path for ridge-regularised normal equations
//! `(CᵀC + λI) x = Cᵀ b` in the FoRWaRD dynamic phase, and for solving the
//! KKT-ish systems inside the downstream classifiers.

use crate::{LinalgError, Matrix, Result};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (callers in this workspace construct Gram
    /// matrices, which are symmetric by construction).
    pub fn decompose(a: &Matrix) -> Result<Self> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky: matrix is {}x{}",
                a.rows(),
                a.cols()
            )));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward/back substitution.
    #[allow(clippy::needless_range_loop)] // dual-indexed numeric kernel
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky solve: rhs has length {}, expected {}",
                b.len(),
                n
            )));
        }
        // Forward: L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// log-determinant of `A` (numerically stable: `2·Σ log L_ii`).
    pub fn log_det(&self) -> f64 {
        let n = self.l.rows();
        (0..n).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for a fixed B is SPD.
        Matrix::from_rows(&[
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ])
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let l = ch.factor();
        let llt = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(
                    (llt[(i, j)] - a[(i, j)]).abs() < 1e-10,
                    "mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_recovers_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let ch = Cholesky::decompose(&a).unwrap();
        let x = ch.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]);
        assert_eq!(
            Cholesky::decompose(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite
        );
    }

    #[test]
    fn rejects_non_square_and_bad_rhs() {
        let a = Matrix::zeros(2, 3);
        assert!(Cholesky::decompose(&a).is_err());
        let ch = Cholesky::decompose(&Matrix::identity(2)).unwrap();
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let ch = Cholesky::decompose(&Matrix::identity(4)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }
}
