//! Criterion benchmarks (see benches/).
