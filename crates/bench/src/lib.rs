//! Criterion benchmarks (see benches/).

/// Dataset scale used by the tracked benchmark reports. Defaults to the
/// CI-sized `default`, overridable through `STEMBED_BENCH_SCALE` — the
/// `--full` profile of `scripts/bench.sh` sets it to 0.5 so the committed
/// JSONs can be compared against a large-scale manual run.
pub fn bench_scale(default: f64) -> f64 {
    scale_from(
        std::env::var("STEMBED_BENCH_SCALE").ok().as_deref(),
        default,
    )
}

/// Pure core of [`bench_scale`]: parse an override, falling back to
/// `default` when absent, unparsable, or non-positive.
fn scale_from(var: Option<&str>, default: f64) -> f64 {
    var.and_then(|v| v.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_prefers_valid_overrides_and_rejects_junk() {
        assert_eq!(scale_from(None, 0.08), 0.08);
        assert_eq!(scale_from(Some("0.5"), 0.08), 0.5);
        assert_eq!(scale_from(Some("bogus"), 0.08), 0.08);
        assert_eq!(scale_from(Some("-1"), 0.08), 0.08);
        assert_eq!(scale_from(Some("0"), 0.08), 0.08);
    }
}
