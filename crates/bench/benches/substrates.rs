//! Microbenchmarks of the substrate crates: the operations every
//! experiment is built from.
//!
//! Run with: `cargo bench -p bench --bench substrates`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbgraph::{DbGraph, WalkConfig, Walker};
use linalg::{lstsq, LstsqMethod, Matrix};
use std::hint::black_box;
use stembed_runtime::rng::DetRng;

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    // The FoRWaRD dynamic solve: overdetermined k×d systems.
    for (rows, cols) in [(128usize, 32usize), (512, 64), (1024, 100)] {
        let mut rng = DetRng::seed_from_u64(1);
        let a = Matrix::random_uniform(rows, cols, 1.0, &mut rng);
        let b: Vec<f64> = (0..rows).map(|i| (i % 7) as f64 * 0.1).collect();
        group.bench_with_input(
            BenchmarkId::new("pinv_solve", format!("{rows}x{cols}")),
            &(rows, cols),
            |bench, _| bench.iter(|| black_box(lstsq(&a, &b, LstsqMethod::PseudoInverse).unwrap())),
        );
        group.bench_with_input(
            BenchmarkId::new("ridge_solve", format!("{rows}x{cols}")),
            &(rows, cols),
            |bench, _| bench.iter(|| black_box(lstsq(&a, &b, LstsqMethod::Ridge(1e-6)).unwrap())),
        );
    }
    group.finish();
}

fn bench_kernel(c: &mut Criterion) {
    use stembed_runtime::kernel;
    let mut group = c.benchmark_group("kernel");
    // SGNS rows at the paper's dim=100.
    let d = 100usize;
    let mut rng = DetRng::seed_from_u64(7);
    let xf: Vec<f32> = (0..d).map(|_| rng.random_range(-1.0..1.0) as f32).collect();
    let yf: Vec<f32> = (0..d).map(|_| rng.random_range(-1.0..1.0) as f32).collect();
    // f32 rows, f64 accumulation — the mixed-precision hot ops.
    group.bench_function("dot_f32_d64", |b| {
        b.iter(|| black_box(kernel::dot_f32(black_box(&xf), black_box(&yf))));
    });
    group.bench_function("axpy_f32_d64", |b| {
        let mut out = yf.clone();
        b.iter(|| {
            kernel::axpy_f32(black_box(0.01), black_box(&xf), &mut out);
            black_box(out[0])
        });
    });
    group.bench_function("sgns_pair_step", |b| {
        let mut out = yf.clone();
        let mut cgrad = vec![0.0f64; d];
        b.iter(|| {
            kernel::sgns_pair_step(black_box(0.01), black_box(&xf), &mut out, &mut cgrad);
            black_box(cgrad[0])
        });
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph");
    let params = datasets::DatasetParams {
        scale: 0.15,
        ..Default::default()
    };
    let ds = datasets::hepatitis::generate(&params);
    group.bench_function("build_bipartite_graph", |b| {
        b.iter(|| black_box(DbGraph::build(&ds.db).graph().node_count()));
    });
    let graph = DbGraph::build(&ds.db);
    group.bench_function("walk_corpus_2x10", |b| {
        b.iter(|| {
            let cfg = WalkConfig {
                walks_per_node: 2,
                walk_length: 10,
                p: 1.0,
                q: 1.0,
            };
            let corpus = Walker::new(graph.graph(), cfg, 3).corpus();
            black_box(corpus.total_tokens())
        });
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    use stembed_runtime::AliasTable;
    let mut group = c.benchmark_group("sampling");
    // Distribution shaped like a node-visit histogram (Zipf-ish).
    let n = 4096usize;
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + 100_000.0 / (i + 1) as f64).collect();
    // The O(1) alias path (what NegativeTable uses) vs the O(log n) CDF
    // binary search it replaced.
    let alias = AliasTable::new(&weights);
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total = *cumulative.last().unwrap();
    group.bench_function("alias_sample_4096", |b| {
        let mut rng = DetRng::seed_from_u64(1);
        b.iter(|| black_box(alias.sample(&mut rng)));
    });
    group.bench_function("cdf_sample_4096", |b| {
        let mut rng = DetRng::seed_from_u64(2);
        b.iter(|| {
            let x = rng.random_range(0.0..total);
            black_box(cumulative.partition_point(|&c| c <= x).min(n - 1))
        });
    });
    // The two-level bucketed alias (what NegativeTable uses since the
    // incremental-maintenance change): two draws per sample instead of
    // one, bought back by sub-linear updates on the dynamic path.
    let bucketed = stembed_runtime::BucketAlias::new(&weights);
    group.bench_function("bucket_alias_sample_4096", |b| {
        let mut rng = DetRng::seed_from_u64(3);
        b.iter(|| black_box(bucketed.sample(&mut rng)));
    });
    group.finish();
}

fn bench_prefix_frontier(c: &mut Criterion) {
    use stembed_core::walkdist::destination_distribution_status;
    use stembed_core::{target_pairs, DistCache, SchemePlan};
    let mut group = c.benchmark_group("prefix_frontier_reuse");
    let params = datasets::DatasetParams {
        scale: 0.15,
        ..Default::default()
    };
    let ds = datasets::mutagenesis::generate(&params);
    let rel = ds.prediction_rel;
    // The dynamic-extension access pattern: every *target* needs its
    // scheme's destination distribution for every start. Targets share
    // schemes, and schemes share step prefixes.
    let targets = target_pairs(ds.db.schema(), rel, 3);
    let plan = SchemePlan::from_targets(rel, &targets);
    let starts: Vec<reldb::FactId> = ds.db.fact_ids(rel).into_iter().take(16).collect();
    const LIMIT: usize = 256;
    // Per-target evaluation with nothing shared: a fresh ℓ-step BFS for
    // every (target, start) — what independent per-target work items do
    // without a shared warm cache.
    group.bench_function("flat_bfs", |b| {
        b.iter(|| {
            let mut live = 0usize;
            for &start in &starts {
                for t in &targets {
                    if destination_distribution_status(&ds.db, &t.scheme, start, LIMIT)
                        .exists()
                        .is_some()
                    {
                        live += 1;
                    }
                }
            }
            black_box(live)
        });
    });
    // The same lookups through a fresh cache pre-warmed in plan-DFS
    // order: each scheme's BFS resumes its parent's cached frontier
    // ("parent + 1 step"), and the per-target lookups then hit the fact
    // tier.
    group.bench_function("plan_cached", |b| {
        b.iter(|| {
            let mut cache = DistCache::new();
            cache.ensure_bound(&ds.db, LIMIT);
            let mut live = 0usize;
            for &start in &starts {
                for idx in plan.dfs() {
                    let node = plan.node(idx);
                    if node.is_scheme() {
                        cache.fact_distribution(&ds.db, node.prefix(), start);
                    }
                }
                for t in &targets {
                    if cache
                        .fact_distribution(&ds.db, &t.scheme, start)
                        .exists()
                        .is_some()
                    {
                        live += 1;
                    }
                }
            }
            black_box(live)
        });
    });
    group.finish();
}

fn bench_db(c: &mut Criterion) {
    let mut group = c.benchmark_group("reldb");
    let params = datasets::DatasetParams {
        scale: 0.15,
        ..Default::default()
    };
    let ds = datasets::hepatitis::generate(&params);
    group.bench_function("cascade_delete_and_restore", |b| {
        b.iter_batched(
            || ds.db.clone(),
            |mut db| {
                let victim = ds.labels[0].0;
                let journal = reldb::cascade_delete(&mut db, victim, true).unwrap();
                reldb::restore_journal(&mut db, &journal).unwrap();
                black_box(db.total_facts())
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_svm(c: &mut Criterion) {
    use ml::{BinaryClassifier, RbfSvm, SvmParams};
    let mut group = c.benchmark_group("ml");
    let n = 200;
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| vec![(i % 17) as f64 * 0.2, ((i * 7) % 13) as f64 * 0.3])
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| {
            if (i % 17) + ((i * 7) % 13) > 14 {
                1.0
            } else {
                -1.0
            }
        })
        .collect();
    group.bench_function("rbf_svm_fit_200", |b| {
        b.iter(|| {
            let mut svm = RbfSvm::new(SvmParams {
                c: 10.0,
                ..SvmParams::default()
            });
            svm.fit(&x, &y);
            black_box(svm.support_count())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_linalg,
    bench_kernel,
    bench_graph,
    bench_sampling,
    bench_prefix_frontier,
    bench_db,
    bench_svm
);
criterion_main!(benches);
