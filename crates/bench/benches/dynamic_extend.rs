//! Benchmarks behind **Table VI**: time to embed newly inserted tuples.
//! The paper's headline to reproduce: in the one-by-one regime, FoRWaRD
//! (one linear solve) beats Node2Vec (SGD continuation) on every dataset.
//!
//! Two groups over a **shared per-dataset setup** (one cascade-deleted
//! database and one trained embedding per method, reused by both groups —
//! which is what lets `world`, the largest dataset, afford a seat here):
//!
//! * `extend_one_tuple` — one cascade group re-inserted, one `extend` call,
//!   per method × dataset (the all-at-once per-tuple cost). Node2Vec's
//!   extend maintains its negative-sampling table **incrementally** (only
//!   the buckets of nodes the continuation walks visit are rebuilt).
//! * `one_by_one_rounds` — the paper's flagship protocol (§VI-E): several
//!   prediction tuples cascade-deleted, then re-inserted **one by one**,
//!   extending after every round. `FoRWaRD-warm` carries the persistent
//!   walk-distribution cache across rounds (journal-replay invalidation
//!   keeps FK-unreachable entries alive — deletes included, via the
//!   journalled fact payloads); `FoRWaRD-cold` solves every round on a
//!   throwaway cache. The two produce bit-identical vectors
//!   (`tests/determinism.rs`); the gap between them is pure cache warmth.
//!
//! Run with: `cargo bench -p bench --bench dynamic_extend`
//! (`STEMBED_BENCH_SCALE` overrides the dataset scale; see scripts/bench.sh
//! `--full`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetParams;
use reldb::{cascade_delete, restore_journal, Database, DeletionJournal, FactId, RelationId};
use repro::{one_by_one_round, AnyEmbedder, ExperimentConfig, Method};
use std::hint::black_box;
use stembed_core::embedder::ExtendMode;
use stembed_core::{ForwardEmbedding, Node2VecEmbedder};

const DATASETS: [&str; 5] = ["hepatitis", "genes", "mutagenesis", "mondial", "world"];

/// Prediction tuples removed (and re-inserted round by round).
const ROUNDS: usize = 4;

fn quick_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.data.scale = bench::bench_scale(0.08);
    cfg.fwd.epochs = 4;
    cfg.n2v.epochs = 2;
    cfg
}

/// Shared per-dataset setup: `ROUNDS` victims cascade-deleted, then **one**
/// trained embedding per method — both bench groups draw on these instead
/// of training their own.
struct Prepared {
    name: &'static str,
    /// The dataset's database with the victims removed.
    db: Database,
    prediction_rel: RelationId,
    /// Per-victim cascade journals, in deletion order.
    journals: Vec<DeletionJournal>,
    /// The last-deleted victim — the one `extend_one_tuple` re-inserts.
    victim: FactId,
    fwd: ForwardEmbedding,
    n2v: Node2VecEmbedder,
}

fn prepare(cfg: &ExperimentConfig) -> Vec<Prepared> {
    let params = DatasetParams {
        scale: cfg.data.scale,
        ..DatasetParams::default()
    };
    DATASETS
        .iter()
        .map(|&name| {
            let ds = datasets::by_name(name, &params).expect("dataset");
            let mut db = ds.db.clone();
            // Deleting in reverse label order makes `labels[0]` the
            // *last* deletion — i.e. the first cascade group restorable
            // on its own, so `extend_one_tuple` measures re-inserting the
            // same victim the pre-shared-setup revisions of this bench
            // did, and `one_by_one_rounds` restores labels[0..ROUNDS] in
            // ascending order.
            let mut journals = Vec::with_capacity(ROUNDS);
            for i in (0..ROUNDS).rev() {
                journals.push(cascade_delete(&mut db, ds.labels[i].0, true).expect("cascade"));
            }
            let fwd =
                ForwardEmbedding::train(&db, ds.prediction_rel, &cfg.fwd, 3).expect("training");
            let n2v = Node2VecEmbedder::train_localized(&db, ds.prediction_rel, &cfg.n2v, 3)
                .with_mode(ExtendMode::OneByOne);
            Prepared {
                name,
                db,
                prediction_rel: ds.prediction_rel,
                journals,
                victim: ds.labels[0].0,
                fwd,
                n2v,
            }
        })
        .collect()
}

fn bench_extend(c: &mut Criterion, prepared: &[Prepared]) {
    let mut group = c.benchmark_group("extend_one_tuple");
    group.sample_size(10);

    for p in prepared {
        // Re-insert the last-deleted cascade group outside the measured
        // loop; the measured operation is `extend` alone, on a fresh clone
        // of the shared trained embedder per iteration.
        let mut db = p.db.clone();
        let restored =
            restore_journal(&mut db, p.journals.last().expect("rounds > 0")).expect("restore");

        for method in Method::all() {
            let trained = match method {
                Method::Forward => AnyEmbedder::Forward(Box::new(p.fwd.clone().into())),
                Method::Node2Vec => AnyEmbedder::Node2Vec(Box::new(p.n2v.clone())),
            };
            group.bench_with_input(BenchmarkId::new(method.name(), p.name), &method, |b, _| {
                b.iter_batched(
                    || trained.clone(),
                    |mut emb| {
                        emb.extend(&db, &restored, 9).expect("extend");
                        black_box(emb.embedding(p.victim).map(|v| v[0]))
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

/// The one-by-one insertion protocol, warm vs cold cache. Each iteration
/// replays all rounds: restore one cascade group, extend the restored
/// prediction tuples, repeat — against a database clone so the journal/
/// epoch machinery runs exactly as in the harness.
fn bench_one_by_one(c: &mut Criterion, prepared: &[Prepared]) {
    let mut group = c.benchmark_group("one_by_one_rounds");
    group.sample_size(10);

    for p in prepared {
        for (label, warm) in [("FoRWaRD-warm", true), ("FoRWaRD-cold", false)] {
            group.bench_with_input(BenchmarkId::new(label, p.name), &warm, |b, &warm| {
                b.iter_batched(
                    || (p.fwd.clone(), p.db.clone()),
                    |(mut emb, mut db)| {
                        for (round, journal) in p.journals.iter().rev().enumerate() {
                            one_by_one_round(
                                &mut emb,
                                &mut db,
                                p.prediction_rel,
                                journal,
                                9,
                                round as u64,
                                warm,
                            );
                        }
                        black_box(emb.len())
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
    }
    group.finish();
}

fn bench_dynamic(c: &mut Criterion) {
    let prepared = prepare(&quick_cfg());
    bench_extend(c, &prepared);
    bench_one_by_one(c, &prepared);
}

criterion_group!(benches, bench_dynamic);
criterion_main!(benches);
