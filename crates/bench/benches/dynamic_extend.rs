//! Benchmarks behind **Table VI**: time to embed a single newly inserted
//! tuple. The paper's headline to reproduce: in the one-by-one regime,
//! FoRWaRD (one linear solve) beats Node2Vec (SGD continuation) on every
//! dataset.
//!
//! Run with: `cargo bench -p bench --bench dynamic_extend`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetParams;
use reldb::cascade_delete;
use repro::{AnyEmbedder, ExperimentConfig, Method};
use std::hint::black_box;
use stembed_core::embedder::ExtendMode;

fn bench_extend(c: &mut Criterion) {
    let mut group = c.benchmark_group("extend_one_tuple");
    group.sample_size(10);
    let mut cfg = ExperimentConfig::quick();
    cfg.data.scale = 0.08;
    cfg.fwd.epochs = 4;
    cfg.n2v.epochs = 2;
    let params = DatasetParams {
        scale: 0.08,
        ..DatasetParams::default()
    };

    for name in ["hepatitis", "genes"] {
        for method in Method::all() {
            // Setup outside the measured loop: remove one tuple, train,
            // re-insert. The measured operation is `extend` alone, on a
            // fresh clone of the trained embedder per iteration.
            let ds = datasets::by_name(name, &params).expect("dataset");
            let mut db = ds.db.clone();
            let victim = ds.labels[0].0;
            let journal = cascade_delete(&mut db, victim, true).expect("cascade");
            let trained = AnyEmbedder::train(method, &db, &ds, &cfg, 3, ExtendMode::OneByOne)
                .expect("training");
            let restored = reldb::restore_journal(&mut db, &journal).expect("restore");

            group.bench_with_input(BenchmarkId::new(method.name(), name), &method, |b, _| {
                b.iter_batched(
                    || trained.clone(),
                    |mut emb| {
                        emb.extend(&db, &restored, 9).expect("extend");
                        black_box(emb.embedding(victim).map(|v| v[0]))
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_extend);
criterion_main!(benches);
