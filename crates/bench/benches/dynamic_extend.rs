//! Benchmarks behind **Table VI**: time to embed newly inserted tuples.
//! The paper's headline to reproduce: in the one-by-one regime, FoRWaRD
//! (one linear solve) beats Node2Vec (SGD continuation) on every dataset.
//!
//! Two groups:
//!
//! * `extend_one_tuple` — one cascade group re-inserted, one `extend` call,
//!   per method × dataset (the all-at-once per-tuple cost).
//! * `one_by_one_rounds` — the paper's flagship protocol (§VI-E): several
//!   prediction tuples cascade-deleted, then re-inserted **one by one**,
//!   extending after every round. `FoRWaRD-warm` carries the persistent
//!   walk-distribution cache across rounds (journal-replay invalidation
//!   keeps FK-unreachable entries alive); `FoRWaRD-cold` solves every
//!   round on a throwaway cache. The two produce bit-identical vectors
//!   (`tests/determinism.rs`); the gap between them is pure cache warmth.
//!
//! Run with: `cargo bench -p bench --bench dynamic_extend`
//! (`STEMBED_BENCH_SCALE` overrides the dataset scale; see scripts/bench.sh
//! `--full`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetParams;
use reldb::{cascade_delete, DeletionJournal};
use repro::{one_by_one_round, AnyEmbedder, ExperimentConfig, Method};
use std::hint::black_box;
use stembed_core::embedder::ExtendMode;
use stembed_core::ForwardEmbedding;

const DATASETS: [&str; 4] = ["hepatitis", "genes", "mutagenesis", "mondial"];

fn quick_cfg() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::quick();
    cfg.data.scale = bench::bench_scale(0.08);
    cfg.fwd.epochs = 4;
    cfg.n2v.epochs = 2;
    cfg
}

fn bench_extend(c: &mut Criterion) {
    let mut group = c.benchmark_group("extend_one_tuple");
    group.sample_size(10);
    let cfg = quick_cfg();
    let params = DatasetParams {
        scale: cfg.data.scale,
        ..DatasetParams::default()
    };

    for name in DATASETS {
        for method in Method::all() {
            // Setup outside the measured loop: remove one tuple, train,
            // re-insert. The measured operation is `extend` alone, on a
            // fresh clone of the trained embedder per iteration.
            let ds = datasets::by_name(name, &params).expect("dataset");
            let mut db = ds.db.clone();
            let victim = ds.labels[0].0;
            let journal = cascade_delete(&mut db, victim, true).expect("cascade");
            let trained = AnyEmbedder::train(method, &db, &ds, &cfg, 3, ExtendMode::OneByOne)
                .expect("training");
            let restored = reldb::restore_journal(&mut db, &journal).expect("restore");

            group.bench_with_input(BenchmarkId::new(method.name(), name), &method, |b, _| {
                b.iter_batched(
                    || trained.clone(),
                    |mut emb| {
                        emb.extend(&db, &restored, 9).expect("extend");
                        black_box(emb.embedding(victim).map(|v| v[0]))
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

/// The one-by-one insertion protocol, warm vs cold cache. Each iteration
/// replays all rounds: restore one cascade group, extend the restored
/// prediction tuples, repeat — against a database clone so the journal/
/// epoch machinery runs exactly as in the harness.
fn bench_one_by_one(c: &mut Criterion) {
    /// Prediction tuples removed (and re-inserted round by round).
    const ROUNDS: usize = 4;

    let mut group = c.benchmark_group("one_by_one_rounds");
    group.sample_size(10);
    let cfg = quick_cfg();
    let params = DatasetParams {
        scale: cfg.data.scale,
        ..DatasetParams::default()
    };

    for name in DATASETS {
        let ds = datasets::by_name(name, &params).expect("dataset");
        let mut db = ds.db.clone();
        let mut journals: Vec<DeletionJournal> = Vec::with_capacity(ROUNDS);
        for i in 0..ROUNDS {
            let victim = ds.labels[i].0;
            journals.push(cascade_delete(&mut db, victim, true).expect("cascade"));
        }
        let trained =
            ForwardEmbedding::train(&db, ds.prediction_rel, &cfg.fwd, 3).expect("training");

        for (label, warm) in [("FoRWaRD-warm", true), ("FoRWaRD-cold", false)] {
            group.bench_with_input(BenchmarkId::new(label, name), &warm, |b, &warm| {
                b.iter_batched(
                    || (trained.clone(), db.clone()),
                    |(mut emb, mut db)| {
                        for (round, journal) in journals.iter().rev().enumerate() {
                            one_by_one_round(
                                &mut emb,
                                &mut db,
                                ds.prediction_rel,
                                journal,
                                9,
                                round as u64,
                                warm,
                            );
                        }
                        black_box(emb.len())
                    },
                    criterion::BatchSize::LargeInput,
                )
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_extend, bench_one_by_one);
criterion_main!(benches);
