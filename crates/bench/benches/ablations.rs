//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * walk-scheme length `ℓmax` ∈ {1, 2, 3} — cost of the richer target set,
//! * embedding dimension `d` — the quadratic `ψ` cost,
//! * exact (BFS) vs Monte-Carlo `KD` evaluation,
//! * `nnew_samples` — the size/cost of the dynamic linear system.
//!
//! Run with: `cargo bench -p bench --bench ablations`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datasets::DatasetParams;
use std::hint::black_box;
use stembed_core::kd::{kd_exact, kd_monte_carlo, KdOptions};
use stembed_core::kernel::KernelAssignment;
use stembed_core::schemes::enumerate_schemes;
use stembed_core::walkdist::destination_value_distribution;
use stembed_core::{ForwardConfig, ForwardEmbedding};
use stembed_runtime::rng::DetRng;

fn tiny_ds() -> datasets::Dataset {
    datasets::hepatitis::generate(&DatasetParams {
        scale: 0.06,
        ..Default::default()
    })
}

fn bench_walk_length(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lmax");
    group.sample_size(10);
    let ds = tiny_ds();
    for lmax in [1usize, 2, 3] {
        let cfg = ForwardConfig {
            dim: 16,
            epochs: 3,
            nsamples: 10,
            max_walk_len: lmax,
            ..ForwardConfig::small()
        };
        group.bench_with_input(BenchmarkId::new("train", lmax), &lmax, |b, _| {
            b.iter(|| {
                let emb = ForwardEmbedding::train(&ds.db, ds.prediction_rel, &cfg, 3).unwrap();
                black_box(emb.targets().len())
            });
        });
    }
    group.finish();
}

fn bench_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dim");
    group.sample_size(10);
    let ds = tiny_ds();
    for dim in [16usize, 48, 100] {
        let cfg = ForwardConfig {
            dim,
            epochs: 3,
            nsamples: 10,
            max_walk_len: 2,
            ..ForwardConfig::small()
        };
        group.bench_with_input(BenchmarkId::new("train", dim), &dim, |b, _| {
            b.iter(|| {
                let emb = ForwardEmbedding::train(&ds.db, ds.prediction_rel, &cfg, 3).unwrap();
                black_box(emb.dim())
            });
        });
    }
    group.finish();
}

fn bench_kd(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kd");
    let ds = tiny_ds();
    let schema = ds.db.schema();
    let kernels = KernelAssignment::defaults(&ds.db);
    let scheme = enumerate_schemes(schema, ds.prediction_rel, 1, false)
        .into_iter()
        .find(|s| s.len() == 1)
        .expect("a backward scheme exists");
    // Target: a non-FK attribute of the scheme's end relation.
    let end = scheme.end(schema);
    let attr = (0..schema.relation(end).arity())
        .find(|&a| !schema.attr_in_any_fk(end, a))
        .expect("non-FK attribute");
    let f1 = ds.labels[0].0;
    let f2 = ds.labels[1].0;
    let opts = KdOptions::default();

    group.bench_function("kd_exact_bfs", |b| {
        b.iter(|| {
            let p =
                destination_value_distribution(&ds.db, &scheme, attr, f1, 4096).expect("exists");
            let q =
                destination_value_distribution(&ds.db, &scheme, attr, f2, 4096).expect("exists");
            black_box(kd_exact(&kernels, end, attr, &p, &q))
        });
    });
    group.bench_function("kd_monte_carlo_48", |b| {
        let mut rng = DetRng::seed_from_u64(3);
        b.iter(|| {
            black_box(
                kd_monte_carlo(&ds.db, &kernels, &scheme, attr, f1, f2, &opts, &mut rng)
                    .expect("exists"),
            )
        });
    });
    group.finish();
}

fn bench_nnew_samples(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_nnew_samples");
    group.sample_size(10);
    let ds = tiny_ds();
    let mut db = ds.db.clone();
    let victim = ds.labels[0].0;
    let journal = reldb::cascade_delete(&mut db, victim, true).unwrap();
    let cfg = ForwardConfig {
        dim: 16,
        epochs: 3,
        nsamples: 10,
        ..ForwardConfig::small()
    };
    let trained = ForwardEmbedding::train(&db, ds.prediction_rel, &cfg, 3).unwrap();
    reldb::restore_journal(&mut db, &journal).unwrap();
    for nnew in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("extend", nnew), &nnew, |b, &nnew| {
            b.iter_batched(
                || trained.clone(),
                |mut emb| {
                    let opts = stembed_core::ExtendOptions {
                        nnew_samples: Some(nnew),
                        ..Default::default()
                    };
                    emb.extend_with(&db, victim, 5, opts).unwrap();
                    black_box(emb.embedding(victim).map(|v| v[0]))
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_length,
    bench_dimension,
    bench_kd,
    bench_nnew_samples
);
criterion_main!(benches);
