//! Benchmarks behind **Table V**: static embedding wall-clock for both
//! methods. The paper's observation to reproduce: Node2Vec trains faster
//! than FoRWaRD on every dataset (ratios 1.2–2.9×).
//!
//! Plus the runtime-scaling group `forward_shards`: FoRWaRD training at
//! 1/2/4/8 shards — same seed, bit-identical output, only wall-clock moves.
//! `scripts/bench.sh` tracks the 4-shard speedup from its JSON report.
//!
//! Run with: `cargo bench -p bench --bench static_embed`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repro::{AnyEmbedder, ExperimentConfig, Method};
use std::hint::black_box;
use stembed_core::embedder::ExtendMode;
use stembed_core::{ForwardConfig, ForwardEmbedding};
use stembed_runtime::Runtime;

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_embed");
    group.sample_size(10);
    let mut cfg = ExperimentConfig::quick();
    // Keep the benchmark itself snappy; relative method cost is the point
    // (STEMBED_BENCH_SCALE overrides — see scripts/bench.sh --full).
    cfg.data.scale = bench::bench_scale(0.08);
    cfg.fwd.epochs = 5;
    cfg.n2v.epochs = 2;

    for name in ["hepatitis", "genes", "world"] {
        let ds = datasets::by_name(name, &cfg.data).expect("dataset");
        for method in Method::all() {
            group.bench_with_input(
                BenchmarkId::new(method.name(), name),
                &method,
                |b, &method| {
                    b.iter(|| {
                        let emb =
                            AnyEmbedder::train(method, &ds.db, &ds, &cfg, 7, ExtendMode::OneByOne)
                                .expect("training");
                        black_box(emb.embedding(ds.labels[0].0).map(|v| v[0]))
                    });
                },
            );
        }
    }
    group.finish();
}

/// FoRWaRD static training across shard counts. The embedding is
/// bit-identical at every shard count (see `tests/determinism.rs`); this
/// group records how wall-clock scales with the same workload.
fn bench_shards(c: &mut Criterion) {
    let mut group = c.benchmark_group("forward_shards");
    group.sample_size(10);
    let params = datasets::DatasetParams {
        scale: bench::bench_scale(0.12),
        ..Default::default()
    };
    let ds = datasets::hepatitis::generate(&params);
    let cfg = ForwardConfig {
        dim: 24,
        max_walk_len: 2,
        nsamples: 20,
        epochs: 3,
        batch_size: 4096,
        learning_rate: 0.6,
        ..ForwardConfig::small()
    };
    for shards in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("train", shards), &shards, |b, &s| {
            b.iter(|| {
                let emb = ForwardEmbedding::train_with_runtime(
                    &ds.db,
                    ds.prediction_rel,
                    &cfg,
                    7,
                    Runtime::new(s),
                )
                .expect("training");
                black_box(emb.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_static, bench_shards);
criterion_main!(benches);
