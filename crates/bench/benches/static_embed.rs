//! Benchmarks behind **Table V**: static embedding wall-clock for both
//! methods. The paper's observation to reproduce: Node2Vec trains faster
//! than FoRWaRD on every dataset (ratios 1.2–2.9×).
//!
//! Run with: `cargo bench -p bench --bench static_embed`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use repro::{AnyEmbedder, ExperimentConfig, Method};
use std::hint::black_box;
use stembed_core::embedder::ExtendMode;

fn bench_static(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_embed");
    group.sample_size(10);
    let mut cfg = ExperimentConfig::quick();
    // Keep the benchmark itself snappy; relative method cost is the point.
    cfg.data.scale = 0.08;
    cfg.fwd.epochs = 5;
    cfg.n2v.epochs = 2;

    for name in ["hepatitis", "genes", "world"] {
        let ds = datasets::by_name(name, &cfg.data).expect("dataset");
        for method in Method::all() {
            group.bench_with_input(
                BenchmarkId::new(method.name(), name),
                &method,
                |b, &method| {
                    b.iter(|| {
                        let emb = AnyEmbedder::train(
                            method,
                            &ds.db,
                            &ds,
                            &cfg,
                            7,
                            ExtendMode::OneByOne,
                        )
                        .expect("training");
                        black_box(emb.embedding(ds.labels[0].0).map(|v| v[0]))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_static);
criterion_main!(benches);
