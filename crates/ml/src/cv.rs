//! Stratified k-fold cross-validation (the paper's evaluation protocol:
//! k = 10 folds, class-stratified splits, accuracy ± std).

use stembed_runtime::rng::DetRng;
use stembed_runtime::Runtime;

/// Partition `0..labels.len()` into `k` folds with (approximately) equal
/// class proportions in every fold. Deterministic given `seed`.
pub fn stratified_kfold(labels: &[usize], k: usize, seed: u64) -> Vec<Vec<usize>> {
    assert!(k >= 2, "need at least two folds");
    let mut rng = DetRng::seed_from_u64(seed);
    let classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    // Indices per class, shuffled.
    let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in labels.iter().enumerate() {
        per_class[l].push(i);
    }
    for bucket in &mut per_class {
        for i in (1..bucket.len()).rev() {
            let j = rng.random_range(0..=i);
            bucket.swap(i, j);
        }
    }
    // Deal each class round-robin into folds.
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    let mut next = 0usize;
    for bucket in per_class {
        for idx in bucket {
            folds[next % k].push(idx);
            next += 1;
        }
    }
    folds
}

/// Run k-fold cross-validation: `eval(train_indices, test_indices)` returns
/// the fold's accuracy; the result collects all fold accuracies in fold
/// order.
///
/// Folds run in parallel on the shared execution runtime (the classifier
/// trainers in this workspace are CPU-bound and independent per fold);
/// results are ordered, so the output is shard-count invariant.
pub fn cross_validate<F>(labels: &[usize], k: usize, seed: u64, eval: F) -> Vec<f64>
where
    F: Fn(&[usize], &[usize]) -> f64 + Sync,
{
    let folds = stratified_kfold(labels, k, seed);
    let jobs: Vec<(Vec<usize>, Vec<usize>)> = (0..k)
        .map(|fold| {
            let test = folds[fold].clone();
            let train: Vec<usize> = folds
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != fold)
                .flat_map(|(_, f)| f.iter().copied())
                .collect();
            (train, test)
        })
        .collect();

    Runtime::from_env().par_map_ordered(&jobs, |_, (train, test)| eval(train, test))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_indices() {
        let labels: Vec<usize> = (0..50).map(|i| i % 3).collect();
        let folds = stratified_kfold(&labels, 5, 1);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn folds_are_stratified() {
        // 40 of class 0, 10 of class 1, 5 folds → each fold has exactly
        // 8 and 2.
        let mut labels = vec![0usize; 40];
        labels.extend(vec![1usize; 10]);
        let folds = stratified_kfold(&labels, 5, 7);
        for fold in &folds {
            let ones = fold.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(ones, 2, "stratification broken: {ones} ones");
            assert_eq!(fold.len(), 10);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let labels: Vec<usize> = (0..30).map(|i| i % 2).collect();
        assert_eq!(
            stratified_kfold(&labels, 3, 9),
            stratified_kfold(&labels, 3, 9)
        );
        assert_ne!(
            stratified_kfold(&labels, 3, 9),
            stratified_kfold(&labels, 3, 10)
        );
    }

    #[test]
    fn cross_validate_collects_fold_scores() {
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        // Score = fraction of even indices in the test fold (arbitrary but
        // deterministic check that train/test are disjoint and complete).
        let scores = cross_validate(&labels, 4, 3, |train, test| {
            assert_eq!(train.len() + test.len(), 20);
            let mut overlap = train.to_vec();
            overlap.retain(|i| test.contains(i));
            assert!(overlap.is_empty(), "train and test overlap");
            test.iter().filter(|&&i| i % 2 == 0).count() as f64 / test.len() as f64
        });
        assert_eq!(scores.len(), 4);
        // Stratified on i%2 labels: each fold of 5 holds 2 or 3 evens
        // (counts can be off by one when 10 items are dealt into 4 folds).
        for s in scores {
            assert!((0.4..=0.6).contains(&s), "fold even-fraction {s}");
        }
    }
}
