//! # ml — downstream machine-learning substrate
//!
//! The paper evaluates embeddings via downstream **column prediction**: an
//! SVM (scikit-learn's `SVC`, i.e. an RBF-kernel C-SVM) is trained on the
//! embedded tuples and scored with stratified 10-fold cross-validation.
//! This crate replaces that stack:
//!
//! * an **RBF-kernel SVM** trained with a simplified SMO solver
//!   ([`smo`], the `SVC` equivalent, with scikit-learn's `gamma="scale"`
//!   default),
//! * a **linear SVM** (Pegasos SGD) as a fast alternative ([`linear_svm`]),
//! * **logistic regression** used by the flat-feature baseline
//!   ([`logreg`]),
//! * **one-vs-rest** multiclass reduction ([`multiclass`]),
//! * feature **standardisation** ([`scaler`]), **stratified k-fold** CV
//!   ([`cv`]) and accuracy metrics ([`metrics`]).

pub mod cv;
pub mod linear_svm;
pub mod logreg;
pub mod metrics;
pub mod multiclass;
pub mod scaler;
pub mod smo;

pub use cv::{cross_validate, stratified_kfold};
pub use linear_svm::LinearSvm;
pub use logreg::LogisticRegression;
pub use metrics::{accuracy, majority_class, ConfusionMatrix};
pub use multiclass::{BinaryClassifier, OneVsRest};
pub use scaler::StandardScaler;
pub use smo::{RbfSvm, SvmParams};

/// A labelled dataset view: feature rows and integer class labels.
#[derive(Debug, Clone, Copy)]
pub struct DataView<'a> {
    /// Feature rows (all the same length).
    pub x: &'a [Vec<f64>],
    /// Class label per row.
    pub y: &'a [usize],
}

impl<'a> DataView<'a> {
    /// Construct, asserting consistency.
    pub fn new(x: &'a [Vec<f64>], y: &'a [usize]) -> Self {
        assert_eq!(x.len(), y.len(), "features and labels must align");
        DataView { x, y }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` iff the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Number of distinct classes (labels are assumed dense `0..k`).
    pub fn class_count(&self) -> usize {
        self.y.iter().copied().max().map_or(0, |m| m + 1)
    }
}
