//! RBF-kernel C-SVM trained with simplified SMO (Platt 1998, as popularised
//! by the Stanford CS229 notes). This is the workspace's equivalent of
//! scikit-learn's `SVC`, which the paper uses for all downstream tasks.

use crate::multiclass::BinaryClassifier;
use stembed_runtime::rng::DetRng;

/// SVM hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct SvmParams {
    /// Soft-margin penalty `C` (scikit-learn default: 1.0).
    pub c: f64,
    /// RBF width `γ`; `None` = scikit-learn's `gamma="scale"`:
    /// `1 / (n_features · Var(X))`.
    pub gamma: Option<f64>,
    /// KKT tolerance.
    pub tol: f64,
    /// Number of full passes without any α update before stopping.
    pub max_passes: usize,
    /// Hard cap on optimisation sweeps.
    pub max_iter: usize,
    /// RNG seed for partner selection.
    pub seed: u64,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams {
            c: 1.0,
            gamma: None,
            tol: 1e-3,
            max_passes: 3,
            max_iter: 200,
            seed: 0,
        }
    }
}

/// A trained binary RBF SVM (train via [`BinaryClassifier::fit`]).
#[derive(Debug, Clone)]
pub struct RbfSvm {
    params: SvmParams,
    gamma: f64,
    alphas: Vec<f64>,
    b: f64,
    support_x: Vec<Vec<f64>>,
    support_y: Vec<f64>,
}

impl RbfSvm {
    /// New untrained model.
    pub fn new(params: SvmParams) -> Self {
        RbfSvm {
            params,
            gamma: 1.0,
            alphas: Vec::new(),
            b: 0.0,
            support_x: Vec::new(),
            support_y: Vec::new(),
        }
    }

    /// Number of support vectors (α > 0) after training.
    pub fn support_count(&self) -> usize {
        self.alphas.iter().filter(|&&a| a > 1e-12).count()
    }

    /// The effective γ used (after `scale` resolution).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    fn rbf(&self, a: &[f64], b: &[f64]) -> f64 {
        let mut d = 0.0;
        for (x, y) in a.iter().zip(b) {
            let t = x - y;
            d += t * t;
        }
        (-self.gamma * d).exp()
    }

    fn resolve_gamma(params: &SvmParams, x: &[Vec<f64>]) -> f64 {
        if let Some(g) = params.gamma {
            return g;
        }
        // gamma = 1 / (n_features * Var(X)) over all entries.
        let dim = x.first().map_or(1, std::vec::Vec::len).max(1);
        let n: usize = x.len() * dim;
        if n == 0 {
            return 1.0;
        }
        // Serial left-to-right sums over the caller-fixed row order: the
        // lane order is already deterministic, and the flattened matrix
        // never round-trips through the kernel layer.
        let mean: f64 = x.iter().flatten().sum::<f64>() / n as f64; // lint: unfused-float-reduction-ok(serial sum over caller-fixed row order)
        let var: f64 = x
            .iter()
            .flatten()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>() // lint: unfused-float-reduction-ok(serial sum over caller-fixed row order)
            / n as f64;
        if var <= 1e-12 {
            1.0
        } else {
            1.0 / (dim as f64 * var)
        }
    }
}

impl BinaryClassifier for RbfSvm {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        self.support_x = x.to_vec();
        self.support_y = y.to_vec();
        self.alphas = vec![0.0; n];
        self.b = 0.0;
        if n == 0 {
            return;
        }
        self.gamma = Self::resolve_gamma(&self.params, x);

        // Precompute the Gram matrix (n ≤ a few thousand in this workspace).
        let mut gram = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let k = self.rbf(&x[i], &x[j]);
                gram[i * n + j] = k;
                gram[j * n + i] = k;
            }
        }
        let k = |i: usize, j: usize| gram[i * n + j];
        let f = |alphas: &[f64], b: f64, i: usize| -> f64 {
            let mut acc = b;
            for (j, &a) in alphas.iter().enumerate() {
                if a != 0.0 {
                    acc += a * y[j] * k(j, i);
                }
            }
            acc
        };

        let (c, tol) = (self.params.c, self.params.tol);
        let mut rng = DetRng::seed_from_u64(self.params.seed);
        let mut passes = 0usize;
        let mut iter = 0usize;
        while passes < self.params.max_passes && iter < self.params.max_iter {
            iter += 1;
            let mut changed = 0usize;
            for i in 0..n {
                let ei = f(&self.alphas, self.b, i) - y[i];
                let violates = (y[i] * ei < -tol && self.alphas[i] < c)
                    || (y[i] * ei > tol && self.alphas[i] > 0.0);
                if !violates {
                    continue;
                }
                // Random partner j ≠ i.
                let mut j = rng.random_range(0..n - 1);
                if j >= i {
                    j += 1;
                }
                let ej = f(&self.alphas, self.b, j) - y[j];
                let (ai_old, aj_old) = (self.alphas[i], self.alphas[j]);
                let (lo, hi) = if (y[i] - y[j]).abs() > 1e-12 {
                    ((aj_old - ai_old).max(0.0), (c + aj_old - ai_old).min(c))
                } else {
                    ((ai_old + aj_old - c).max(0.0), (ai_old + aj_old).min(c))
                };
                if (hi - lo).abs() < 1e-12 {
                    continue;
                }
                let eta = 2.0 * k(i, j) - k(i, i) - k(j, j);
                if eta >= 0.0 {
                    continue;
                }
                let mut aj = aj_old - y[j] * (ei - ej) / eta;
                aj = aj.clamp(lo, hi);
                if (aj - aj_old).abs() < 1e-5 {
                    continue;
                }
                let ai = ai_old + y[i] * y[j] * (aj_old - aj);
                self.alphas[i] = ai;
                self.alphas[j] = aj;
                let b1 =
                    self.b - ei - y[i] * (ai - ai_old) * k(i, i) - y[j] * (aj - aj_old) * k(i, j);
                let b2 =
                    self.b - ej - y[i] * (ai - ai_old) * k(i, j) - y[j] * (aj - aj_old) * k(j, j);
                self.b = if ai > 0.0 && ai < c {
                    b1
                } else if aj > 0.0 && aj < c {
                    b2
                } else {
                    0.5 * (b1 + b2)
                };
                changed += 1;
            }
            if changed == 0 {
                passes += 1;
            } else {
                passes = 0;
            }
        }

        // Compact: keep only support vectors.
        let keep: Vec<usize> = (0..n).filter(|&i| self.alphas[i] > 1e-12).collect();
        self.support_x = keep.iter().map(|&i| x[i].clone()).collect();
        self.support_y = keep.iter().map(|&i| y[i]).collect();
        self.alphas = keep.iter().map(|&i| self.alphas[i]).collect();
    }

    fn decision(&self, row: &[f64]) -> f64 {
        let mut acc = self.b;
        for ((sx, sy), a) in self.support_x.iter().zip(&self.support_y).zip(&self.alphas) {
            acc += a * sy * self.rbf(sx, row);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_xor() {
        // XOR is the canonical non-linear problem: linear models fail, RBF
        // must succeed.
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![0.1, 0.1],
            vec![0.9, 0.9],
            vec![0.1, 0.9],
            vec![0.9, 0.1],
        ];
        let y = vec![1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0, -1.0];
        let mut svm = RbfSvm::new(SvmParams {
            c: 10.0,
            gamma: Some(4.0),
            ..SvmParams::default()
        });
        svm.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            assert!(
                svm.decision(row) * label > 0.0,
                "XOR point {row:?} misclassified"
            );
        }
    }

    #[test]
    fn separates_linear_data_too() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            let o = i as f64 * 0.05;
            x.push(vec![1.0 + o, 1.0]);
            y.push(1.0);
            x.push(vec![-1.0 - o, -1.0]);
            y.push(-1.0);
        }
        let mut svm = RbfSvm::new(SvmParams::default());
        svm.fit(&x, &y);
        let acc = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| svm.decision(row) * label > 0.0)
            .count() as f64
            / x.len() as f64;
        assert!(acc >= 0.95, "accuracy {acc}");
        assert!(svm.support_count() > 0);
        assert!(svm.support_count() < x.len(), "SMO must sparsify");
    }

    #[test]
    fn gamma_scale_matches_sklearn_formula() {
        let x = vec![vec![0.0, 0.0], vec![2.0, 2.0]];
        let y = vec![1.0, -1.0];
        let mut svm = RbfSvm::new(SvmParams::default());
        svm.fit(&x, &y);
        // Entries: 0,0,2,2 → mean 1, var 1 → gamma = 1/(2*1) = 0.5.
        assert!((svm.gamma() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_under_seed() {
        let x: Vec<Vec<f64>> = (0..30)
            .map(|i| vec![(i % 7) as f64, (i % 5) as f64])
            .collect();
        let y: Vec<f64> = (0..30)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let train = |seed| {
            let mut svm = RbfSvm::new(SvmParams {
                seed,
                ..SvmParams::default()
            });
            svm.fit(&x, &y);
            (0..30).map(|i| svm.decision(&x[i])).collect::<Vec<f64>>()
        };
        assert_eq!(train(3), train(3));
    }
}
