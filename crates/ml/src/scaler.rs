//! Feature standardisation (zero mean, unit variance per column).

/// Per-column standardiser. Columns with zero variance pass through
/// unchanged (scale 1) so constant features cannot produce NaNs.
#[derive(Debug, Clone)]
pub struct StandardScaler {
    means: Vec<f64>,
    scales: Vec<f64>,
}

impl StandardScaler {
    /// Fit to the rows of `x`.
    pub fn fit(x: &[Vec<f64>]) -> Self {
        let dim = x.first().map_or(0, std::vec::Vec::len);
        let n = x.len().max(1) as f64;
        let mut means = vec![0.0; dim];
        for row in x {
            for (m, v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for row in x {
            for ((var, v), m) in vars.iter_mut().zip(row).zip(&means) {
                let d = v - m;
                *var += d * d;
            }
        }
        let scales = vars
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, scales }
    }

    /// Transform one row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.scales) {
            *v = (*v - m) / s;
        }
    }

    /// Transform a copy of the dataset.
    pub fn transform(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter()
            .map(|row| {
                let mut r = row.clone();
                self.transform_row(&mut r);
                r
            })
            .collect()
    }

    /// Fit and transform in one call.
    pub fn fit_transform(x: &[Vec<f64>]) -> (Self, Vec<Vec<f64>>) {
        let scaler = Self::fit(x);
        let t = scaler.transform(x);
        (scaler, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_columns() {
        let x = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let (_, t) = StandardScaler::fit_transform(&x);
        // Column 0: mean 3, population std sqrt(8/3).
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        let var0: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-12);
        // Constant column passes through centred but unscaled.
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn transform_uses_training_statistics() {
        let train = vec![vec![0.0], vec![2.0]];
        let scaler = StandardScaler::fit(&train);
        let test = scaler.transform(&[vec![4.0]]);
        // mean 1, std 1 → (4-1)/1 = 3.
        assert!((test[0][0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let scaler = StandardScaler::fit(&[]);
        assert!(scaler.transform(&[]).is_empty());
    }
}
