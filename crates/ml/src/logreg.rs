//! Binary logistic regression (SGD), used by the flat-feature baseline.

use crate::multiclass::BinaryClassifier;
use stembed_runtime::rng::DetRng;

/// L2-regularised binary logistic regression trained with SGD.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// L2 strength.
    pub lambda: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Epochs.
    pub epochs: usize,
    /// Seed for sample order.
    pub seed: u64,
    w: Vec<f64>,
    b: f64,
}

impl LogisticRegression {
    /// New untrained model.
    pub fn new(lambda: f64, learning_rate: f64, epochs: usize, seed: u64) -> Self {
        LogisticRegression {
            lambda,
            learning_rate,
            epochs,
            seed,
            w: Vec::new(),
            b: 0.0,
        }
    }

    fn sigmoid(z: f64) -> f64 {
        if z >= 0.0 {
            let e = (-z).exp();
            1.0 / (1.0 + e)
        } else {
            let e = z.exp();
            e / (1.0 + e)
        }
    }

    /// Predicted probability of the positive class.
    pub fn prob(&self, row: &[f64]) -> f64 {
        Self::sigmoid(self.decision(row))
    }
}

impl BinaryClassifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        if n == 0 {
            return;
        }
        // PANICS: in bounds — the n == 0 early return above guarantees a
        // first row.
        let dim = x[0].len();
        self.w = vec![0.0; dim];
        self.b = 0.0;
        let mut rng = DetRng::seed_from_u64(self.seed);
        for epoch in 0..self.epochs {
            let lr = self.learning_rate / (1.0 + epoch as f64 * 0.1);
            for _ in 0..n {
                let i = rng.random_range(0..n);
                // Map ±1 labels to {0, 1}.
                let target = if y[i] > 0.0 { 1.0 } else { 0.0 };
                let p = self.prob(&x[i]);
                let g = p - target;
                for (w, v) in self.w.iter_mut().zip(&x[i]) {
                    *w -= lr * (g * v + self.lambda * *w);
                }
                self.b -= lr * g;
            }
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        linalg::vector::dot(&self.w, row) + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_threshold() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i >= 20 { 1.0 } else { -1.0 }).collect();
        let mut lr = LogisticRegression::new(1e-4, 0.5, 60, 3);
        lr.fit(&x, &y);
        assert!(lr.prob(&[3.5]) > 0.8);
        assert!(lr.prob(&[0.5]) < 0.2);
        // Monotone in the feature.
        assert!(lr.prob(&[4.0]) > lr.prob(&[2.1]));
    }

    #[test]
    fn probabilities_are_probabilities() {
        let x = vec![vec![1.0, -1.0], vec![-1.0, 1.0]];
        let y = vec![1.0, -1.0];
        let mut lr = LogisticRegression::new(0.0, 0.3, 50, 0);
        lr.fit(&x, &y);
        for row in &x {
            let p = lr.prob(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
