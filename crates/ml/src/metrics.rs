//! Classification metrics.

/// Fraction of agreeing positions. Panics on length mismatch.
pub fn accuracy(predicted: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(predicted.len(), truth.len(), "accuracy: length mismatch");
    if predicted.is_empty() {
        return 0.0;
    }
    let hits = predicted.iter().zip(truth).filter(|(p, t)| p == t).count();
    hits as f64 / predicted.len() as f64
}

/// The most frequent label and its frequency — the paper's "baseline"
/// (always predicting the most common class).
pub fn majority_class(labels: &[usize]) -> (usize, f64) {
    if labels.is_empty() {
        return (0, 0.0);
    }
    let k = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    let (best, &count) = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        // PANICS: never — `counts` has one slot per class, ≥ 1.
        .expect("nonempty");
    (best, count as f64 / labels.len() as f64)
}

/// Dense confusion matrix.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[truth * classes + predicted]`.
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Build from predictions and ground truth.
    pub fn new(predicted: &[usize], truth: &[usize], classes: usize) -> Self {
        assert_eq!(predicted.len(), truth.len());
        let mut counts = vec![0usize; classes * classes];
        for (&p, &t) in predicted.iter().zip(truth) {
            counts[t * classes + p] += 1;
        }
        ConfusionMatrix { classes, counts }
    }

    /// Count of (truth, predicted) pairs.
    pub fn get(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth * self.classes + predicted]
    }

    /// Per-class recall (None for absent classes).
    pub fn recall(&self, class: usize) -> Option<f64> {
        let total: usize = (0..self.classes).map(|p| self.get(class, p)).sum();
        if total == 0 {
            None
        } else {
            Some(self.get(class, class) as f64 / total as f64)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|c| self.get(c, c)).sum();
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn majority() {
        let (label, frac) = majority_class(&[0, 1, 1, 1, 2]);
        assert_eq!(label, 1);
        assert!((frac - 0.6).abs() < 1e-12);
        assert_eq!(majority_class(&[]), (0, 0.0));
    }

    #[test]
    fn confusion() {
        let cm = ConfusionMatrix::new(&[0, 1, 1, 0], &[0, 1, 0, 0], 2);
        assert_eq!(cm.get(0, 0), 2);
        assert_eq!(cm.get(0, 1), 1);
        assert_eq!(cm.get(1, 1), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.recall(0).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cm.recall(1).unwrap(), 1.0);
    }
}
