//! Linear soft-margin SVM trained with the Pegasos algorithm
//! (Shalev-Shwartz et al. 2011): stochastic subgradient descent on the
//! regularised hinge loss with step size `1/(λt)`.

use crate::multiclass::BinaryClassifier;
use stembed_runtime::rng::DetRng;

/// Binary linear SVM.
#[derive(Debug, Clone)]
pub struct LinearSvm {
    /// Regularisation strength λ.
    pub lambda: f64,
    /// Epochs over the data.
    pub epochs: usize,
    /// RNG seed for sampling order.
    pub seed: u64,
    w: Vec<f64>,
    b: f64,
}

impl LinearSvm {
    /// New untrained model.
    pub fn new(lambda: f64, epochs: usize, seed: u64) -> Self {
        LinearSvm {
            lambda,
            epochs,
            seed,
            w: Vec::new(),
            b: 0.0,
        }
    }

    /// The learned weight vector (empty before `fit`).
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.b
    }
}

impl BinaryClassifier for LinearSvm {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        if n == 0 {
            return;
        }
        // PANICS: in bounds — the n == 0 early return above guarantees a
        // first row.
        let dim = x[0].len();
        self.w = vec![0.0; dim];
        self.b = 0.0;
        let mut rng = DetRng::seed_from_u64(self.seed);
        let mut t = 0usize;
        for _ in 0..self.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.random_range(0..n);
                let eta = 1.0 / (self.lambda * t as f64);
                let margin = y[i] * (linalg::vector::dot(&self.w, &x[i]) + self.b);
                // w ← (1 − ηλ)w [+ η y x when the margin is violated].
                let shrink = 1.0 - eta * self.lambda;
                for w in &mut self.w {
                    *w *= shrink;
                }
                if margin < 1.0 {
                    for (w, v) in self.w.iter_mut().zip(&x[i]) {
                        *w += eta * y[i] * v;
                    }
                    self.b += eta * y[i];
                }
            }
        }
    }

    fn decision(&self, row: &[f64]) -> f64 {
        linalg::vector::dot(&self.w, row) + self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let o = (i % 5) as f64 * 0.1;
            x.push(vec![2.0 + o, 2.0 - o]);
            y.push(1.0);
            x.push(vec![-2.0 - o, -2.0 + o]);
            y.push(-1.0);
        }
        (x, y)
    }

    #[test]
    fn separates_linearly_separable_data() {
        let (x, y) = separable();
        let mut svm = LinearSvm::new(0.01, 30, 7);
        svm.fit(&x, &y);
        for (row, &label) in x.iter().zip(&y) {
            assert!(
                svm.decision(row) * label > 0.0,
                "misclassified {row:?} (label {label})"
            );
        }
    }

    #[test]
    fn margin_ordering() {
        let (x, y) = separable();
        let mut svm = LinearSvm::new(0.01, 30, 1);
        svm.fit(&x, &y);
        // A point deep in the positive region scores higher than one near
        // the boundary.
        assert!(svm.decision(&[5.0, 5.0]) > svm.decision(&[0.3, 0.3]));
    }

    #[test]
    fn empty_fit_is_harmless() {
        let mut svm = LinearSvm::new(0.01, 5, 0);
        svm.fit(&[], &[]);
        assert!(svm.weights().is_empty());
    }
}
