//! One-vs-rest reduction from binary to multiclass classification.

/// A binary classifier trainable on ±1 labels.
pub trait BinaryClassifier: Send + Sync {
    /// Train on rows `x` with labels `y ∈ {−1, +1}`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]);

    /// Signed decision value for one row (positive ⇒ class `+1`).
    fn decision(&self, row: &[f64]) -> f64;
}

/// One-vs-rest multiclass wrapper: one binary classifier per class,
/// prediction by maximum decision value.
pub struct OneVsRest<C: BinaryClassifier> {
    classifiers: Vec<C>,
}

impl<C: BinaryClassifier> OneVsRest<C> {
    /// Train `classes` binary problems, constructing each classifier with
    /// `make` (called once per class).
    pub fn fit(x: &[Vec<f64>], y: &[usize], classes: usize, make: impl Fn() -> C) -> Self {
        assert!(classes >= 1, "need at least one class");
        assert_eq!(x.len(), y.len());
        let mut classifiers = Vec::with_capacity(classes);
        for class in 0..classes {
            let labels: Vec<f64> = y
                .iter()
                .map(|&yi| if yi == class { 1.0 } else { -1.0 })
                .collect();
            let mut clf = make();
            clf.fit(x, &labels);
            classifiers.push(clf);
        }
        OneVsRest { classifiers }
    }

    /// Predicted class for one row.
    pub fn predict(&self, row: &[f64]) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (class, clf) in self.classifiers.iter().enumerate() {
            let score = clf.decision(row);
            if score > best_score {
                best_score = score;
                best = class;
            }
        }
        best
    }

    /// Predict a batch.
    pub fn predict_all(&self, x: &[Vec<f64>]) -> Vec<usize> {
        x.iter().map(|row| self.predict(row)).collect()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classifiers.len()
    }

    /// Access the per-class binary classifiers.
    pub fn classifiers(&self) -> &[C] {
        &self.classifiers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Trivial nearest-centroid "binary classifier" for testing the wrapper.
    #[derive(Default)]
    struct Centroid {
        pos: Vec<f64>,
        neg: Vec<f64>,
    }

    impl BinaryClassifier for Centroid {
        fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) {
            let dim = x[0].len();
            let mut pos = vec![0.0; dim];
            let mut neg = vec![0.0; dim];
            let (mut np, mut nn) = (0.0_f64, 0.0_f64);
            for (row, &label) in x.iter().zip(y) {
                if label > 0.0 {
                    for (p, v) in pos.iter_mut().zip(row) {
                        *p += v;
                    }
                    np += 1.0;
                } else {
                    for (p, v) in neg.iter_mut().zip(row) {
                        *p += v;
                    }
                    nn += 1.0;
                }
            }
            for p in &mut pos {
                *p /= np.max(1.0);
            }
            for p in &mut neg {
                *p /= nn.max(1.0);
            }
            self.pos = pos;
            self.neg = neg;
        }

        fn decision(&self, row: &[f64]) -> f64 {
            let d = |c: &[f64]| -> f64 { row.iter().zip(c).map(|(a, b)| (a - b) * (a - b)).sum() };
            d(&self.neg) - d(&self.pos)
        }
    }

    #[test]
    fn three_well_separated_clusters() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            let jitter = i as f64 * 0.01;
            x.push(vec![0.0 + jitter, 0.0]);
            y.push(0);
            x.push(vec![10.0 + jitter, 0.0]);
            y.push(1);
            x.push(vec![0.0 + jitter, 10.0]);
            y.push(2);
        }
        let model = OneVsRest::fit(&x, &y, 3, Centroid::default);
        assert_eq!(model.class_count(), 3);
        let preds = model.predict_all(&x);
        assert_eq!(preds, y);
        assert_eq!(model.predict(&[9.5, 0.2]), 1);
        assert_eq!(model.predict(&[0.1, 11.0]), 2);
    }
}
