//! Database schemas: relation schemas, keys, and foreign-key constraints.

use crate::{DbError, Result, ValueType};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a relation within a [`Schema`] (index into
/// [`Schema::relations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationId(pub u32);

impl RelationId {
    /// As a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a foreign key within a [`Schema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FkId(pub u32);

impl FkId {
    /// As a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One attribute of a relation schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Domain type.
    pub ty: ValueType,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// A relation schema `R(A₁,…,A_k)` with key `key(R)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Relation name, unique within the schema.
    pub name: String,
    /// The attributes, in declaration order.
    pub attributes: Vec<Attribute>,
    /// Positions of the key attributes (sorted, non-empty).
    pub key: Vec<usize>,
}

impl RelationSchema {
    /// Number of attributes (the arity `k`).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of the attribute with the given name.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// `true` iff attribute position `i` is part of the key.
    pub fn is_key_attr(&self, i: usize) -> bool {
        self.key.contains(&i)
    }
}

/// A foreign-key constraint `R[B₁,…,B_ℓ] ⊆ S[C₁,…,C_ℓ]` where
/// `{C₁,…,C_ℓ} = key(S)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// The referencing relation `R`.
    pub from_rel: RelationId,
    /// Positions of `B₁,…,B_ℓ` within `R`.
    pub from_attrs: Vec<usize>,
    /// The referenced relation `S`.
    pub to_rel: RelationId,
    /// Positions of `C₁,…,C_ℓ` within `S` (always `key(S)`, in the order
    /// matching `from_attrs`).
    pub to_attrs: Vec<usize>,
}

/// A validated database schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    relations: Vec<RelationSchema>,
    fks: Vec<ForeignKey>,
    by_name: HashMap<String, RelationId>,
    /// FKs whose `from_rel` is the given relation.
    fks_from: Vec<Vec<FkId>>,
    /// FKs whose `to_rel` is the given relation.
    fks_to: Vec<Vec<FkId>>,
}

impl Schema {
    /// All relation schemas, indexable by [`RelationId`].
    pub fn relations(&self) -> &[RelationSchema] {
        &self.relations
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// The relation schema for `id`.
    pub fn relation(&self, id: RelationId) -> &RelationSchema {
        &self.relations[id.index()]
    }

    /// Look a relation up by name.
    pub fn relation_id(&self, name: &str) -> Option<RelationId> {
        self.by_name.get(name).copied()
    }

    /// Iterate over all relation ids.
    pub fn relation_ids(&self) -> impl Iterator<Item = RelationId> + '_ {
        (0..self.relations.len() as u32).map(RelationId)
    }

    /// All foreign keys, indexable by [`FkId`].
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// The foreign key for `id`.
    pub fn foreign_key(&self, id: FkId) -> &ForeignKey {
        &self.fks[id.index()]
    }

    /// FKs *out of* a relation (the relation is the referencing side).
    pub fn fks_from(&self, rel: RelationId) -> &[FkId] {
        &self.fks_from[rel.index()]
    }

    /// FKs *into* a relation (the relation is the referenced side).
    pub fn fks_to(&self, rel: RelationId) -> &[FkId] {
        &self.fks_to[rel.index()]
    }

    /// Total number of attributes across all relations (Table I's
    /// "#Attributes" column).
    pub fn total_attributes(&self) -> usize {
        self.relations.iter().map(RelationSchema::arity).sum()
    }

    /// `true` iff attribute `attr` of `rel` participates in *any* FK, on
    /// either side. FoRWaRD's target set `T(R, ℓmax)` only pairs schemes
    /// with attributes **not** involved in FKs (paper §V-C): FK attributes
    /// are meaningless identifiers whose similarity carries no signal.
    pub fn attr_in_any_fk(&self, rel: RelationId, attr: usize) -> bool {
        self.fks.iter().any(|fk| {
            (fk.from_rel == rel && fk.from_attrs.contains(&attr))
                || (fk.to_rel == rel && fk.to_attrs.contains(&attr))
        })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rel) in self.relations.iter().enumerate() {
            write!(f, "{}(", rel.name)?;
            for (j, attr) in rel.attributes.iter().enumerate() {
                if j > 0 {
                    write!(f, ", ")?;
                }
                if rel.is_key_attr(j) {
                    write!(f, "_{}_: {}", attr.name, attr.ty)?;
                } else {
                    write!(f, "{}: {}", attr.name, attr.ty)?;
                }
            }
            writeln!(f, ")")?;
            for fk_id in &self.fks_from[i] {
                let fk = &self.fks[fk_id.index()];
                let from = &self.relations[fk.from_rel.index()];
                let to = &self.relations[fk.to_rel.index()];
                let bs: Vec<&str> = fk
                    .from_attrs
                    .iter()
                    .map(|&a| from.attributes[a].name.as_str())
                    .collect();
                let cs: Vec<&str> = fk
                    .to_attrs
                    .iter()
                    .map(|&a| to.attributes[a].name.as_str())
                    .collect();
                writeln!(
                    f,
                    "  {}[{}] ⊆ {}[{}]",
                    from.name,
                    bs.join(","),
                    to.name,
                    cs.join(",")
                )?;
            }
        }
        Ok(())
    }
}

/// Staged foreign key, named by relation/attribute strings until `build`.
struct PendingFk {
    from_rel: String,
    from_attrs: Vec<String>,
    to_rel: String,
}

/// Builder producing a validated [`Schema`].
///
/// ```
/// use reldb::{SchemaBuilder, ValueType};
///
/// let mut b = SchemaBuilder::new();
/// b.relation("STUDIOS")
///     .attr("sid", ValueType::Text)
///     .attr("name", ValueType::Text)
///     .key(&["sid"]);
/// b.relation("MOVIES")
///     .attr("mid", ValueType::Text)
///     .attr("studio", ValueType::Text)
///     .key(&["mid"]);
/// b.foreign_key("MOVIES", &["studio"], "STUDIOS");
/// let schema = b.build().unwrap();
/// assert_eq!(schema.relation_count(), 2);
/// ```
#[derive(Default)]
pub struct SchemaBuilder {
    relations: Vec<RelationSchema>,
    pending_fks: Vec<PendingFk>,
}

/// Handle returned by [`SchemaBuilder::relation`] for fluent attribute/key
/// declaration.
pub struct RelationBuilder<'a> {
    schema: &'a mut SchemaBuilder,
    rel_index: usize,
}

impl SchemaBuilder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start declaring a relation. Attributes and the key are added through
    /// the returned handle.
    pub fn relation(&mut self, name: impl Into<String>) -> RelationBuilder<'_> {
        self.relations.push(RelationSchema {
            name: name.into(),
            attributes: Vec::new(),
            key: Vec::new(),
        });
        let rel_index = self.relations.len() - 1;
        RelationBuilder {
            schema: self,
            rel_index,
        }
    }

    /// Declare a foreign key `from_rel[from_attrs] ⊆ to_rel[key(to_rel)]`.
    /// Referenced attributes are implicit: they are always the key of
    /// `to_rel`, in key order.
    pub fn foreign_key(
        &mut self,
        from_rel: impl Into<String>,
        from_attrs: &[&str],
        to_rel: impl Into<String>,
    ) {
        self.pending_fks.push(PendingFk {
            from_rel: from_rel.into(),
            from_attrs: from_attrs
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            to_rel: to_rel.into(),
        });
    }

    /// Validate and freeze the schema.
    pub fn build(self) -> Result<Schema> {
        let mut by_name = HashMap::new();
        for (i, rel) in self.relations.iter().enumerate() {
            if rel.attributes.is_empty() {
                return Err(DbError::Schema(format!(
                    "relation {} has no attributes",
                    rel.name
                )));
            }
            if rel.key.is_empty() {
                return Err(DbError::Schema(format!("relation {} has no key", rel.name)));
            }
            let mut names: Vec<&str> = rel.attributes.iter().map(|a| a.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            if names.len() != rel.attributes.len() {
                return Err(DbError::Schema(format!(
                    "relation {} has duplicate attribute names",
                    rel.name
                )));
            }
            if by_name
                .insert(rel.name.clone(), RelationId(i as u32))
                .is_some()
            {
                return Err(DbError::Schema(format!(
                    "duplicate relation name {}",
                    rel.name
                )));
            }
        }

        let mut fks = Vec::new();
        for pending in &self.pending_fks {
            let from_rel = *by_name.get(&pending.from_rel).ok_or_else(|| {
                DbError::Schema(format!(
                    "FK references unknown relation {}",
                    pending.from_rel
                ))
            })?;
            let to_rel = *by_name.get(&pending.to_rel).ok_or_else(|| {
                DbError::Schema(format!("FK references unknown relation {}", pending.to_rel))
            })?;
            let from_schema = &self.relations[from_rel.index()];
            let to_schema = &self.relations[to_rel.index()];
            let mut from_attrs = Vec::with_capacity(pending.from_attrs.len());
            for name in &pending.from_attrs {
                let idx = from_schema.attr_index(name).ok_or_else(|| {
                    DbError::Schema(format!(
                        "FK attribute {}.{} does not exist",
                        pending.from_rel, name
                    ))
                })?;
                from_attrs.push(idx);
            }
            let to_attrs = to_schema.key.clone();
            if from_attrs.len() != to_attrs.len() {
                return Err(DbError::Schema(format!(
                    "FK {}[{}] ⊆ {}: arity {} does not match key arity {}",
                    pending.from_rel,
                    pending.from_attrs.join(","),
                    pending.to_rel,
                    from_attrs.len(),
                    to_attrs.len()
                )));
            }
            // Type compatibility between referencing and referenced columns.
            for (b, c) in from_attrs.iter().zip(to_attrs.iter()) {
                let bt = from_schema.attributes[*b].ty;
                let ct = to_schema.attributes[*c].ty;
                if bt != ct {
                    return Err(DbError::Schema(format!(
                        "FK {}.{} has type {bt} but referenced key column {}.{} has type {ct}",
                        pending.from_rel,
                        from_schema.attributes[*b].name,
                        pending.to_rel,
                        to_schema.attributes[*c].name,
                    )));
                }
            }
            fks.push(ForeignKey {
                from_rel,
                from_attrs,
                to_rel,
                to_attrs,
            });
        }

        let n = self.relations.len();
        let mut fks_from = vec![Vec::new(); n];
        let mut fks_to = vec![Vec::new(); n];
        for (i, fk) in fks.iter().enumerate() {
            fks_from[fk.from_rel.index()].push(FkId(i as u32));
            fks_to[fk.to_rel.index()].push(FkId(i as u32));
        }

        Ok(Schema {
            relations: self.relations,
            fks,
            by_name,
            fks_from,
            fks_to,
        })
    }
}

impl RelationBuilder<'_> {
    /// Add an attribute.
    pub fn attr(self, name: impl Into<String>, ty: ValueType) -> Self {
        let rel = &mut self.schema.relations[self.rel_index];
        rel.attributes.push(Attribute::new(name, ty));
        self
    }

    /// Declare the key by attribute names. Finishes the relation. Panics on
    /// unknown attribute names (programmer error in schema literals; real
    /// validation still happens in [`SchemaBuilder::build`]).
    pub fn key(self, names: &[&str]) {
        let rel = &mut self.schema.relations[self.rel_index];
        let mut key: Vec<usize> = names
            .iter()
            .map(|n| {
                rel.attr_index(n).unwrap_or_else(|| {
                    // PANICS: deliberate — a key over an undeclared attribute
                    // is a programming error in the schema literal, caught at
                    // declaration time rather than deferred to `build`.
                    panic!("key attribute {n} not declared on relation {}", rel.name)
                })
            })
            .collect();
        key.sort_unstable();
        key.dedup();
        rel.key = key;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_rel_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.relation("S")
            .attr("sid", ValueType::Text)
            .attr("name", ValueType::Text)
            .key(&["sid"]);
        b.relation("R")
            .attr("rid", ValueType::Text)
            .attr("s_ref", ValueType::Text)
            .attr("payload", ValueType::Int)
            .key(&["rid"]);
        b.foreign_key("R", &["s_ref"], "S");
        b.build().unwrap()
    }

    #[test]
    fn builds_and_indexes() {
        let s = two_rel_schema();
        assert_eq!(s.relation_count(), 2);
        let r = s.relation_id("R").unwrap();
        let srel = s.relation_id("S").unwrap();
        assert_eq!(s.relation(r).name, "R");
        assert_eq!(s.fks_from(r).len(), 1);
        assert_eq!(s.fks_to(srel).len(), 1);
        assert!(s.fks_from(srel).is_empty());
        let fk = s.foreign_key(s.fks_from(r)[0]);
        assert_eq!(fk.from_attrs, vec![1]);
        assert_eq!(fk.to_attrs, vec![0]);
        assert_eq!(s.total_attributes(), 5);
    }

    #[test]
    fn attr_in_any_fk_detects_both_sides() {
        let s = two_rel_schema();
        let r = s.relation_id("R").unwrap();
        let srel = s.relation_id("S").unwrap();
        assert!(s.attr_in_any_fk(r, 1)); // s_ref
        assert!(!s.attr_in_any_fk(r, 2)); // payload
        assert!(s.attr_in_any_fk(srel, 0)); // sid referenced
        assert!(!s.attr_in_any_fk(srel, 1)); // name
    }

    #[test]
    fn rejects_missing_key() {
        let mut b = SchemaBuilder::new();
        b.relation("X").attr("a", ValueType::Int).key(&[]);
        assert!(matches!(b.build(), Err(DbError::Schema(_))));
    }

    #[test]
    fn rejects_duplicate_relation_names() {
        let mut b = SchemaBuilder::new();
        b.relation("X").attr("a", ValueType::Int).key(&["a"]);
        b.relation("X").attr("a", ValueType::Int).key(&["a"]);
        assert!(matches!(b.build(), Err(DbError::Schema(_))));
    }

    #[test]
    fn rejects_duplicate_attr_names() {
        let mut b = SchemaBuilder::new();
        b.relation("X")
            .attr("a", ValueType::Int)
            .attr("a", ValueType::Int)
            .key(&["a"]);
        assert!(matches!(b.build(), Err(DbError::Schema(_))));
    }

    #[test]
    fn rejects_fk_to_unknown_relation() {
        let mut b = SchemaBuilder::new();
        b.relation("X").attr("a", ValueType::Int).key(&["a"]);
        b.foreign_key("X", &["a"], "NOPE");
        assert!(matches!(b.build(), Err(DbError::Schema(_))));
    }

    #[test]
    fn rejects_fk_arity_mismatch() {
        let mut b = SchemaBuilder::new();
        b.relation("S")
            .attr("c1", ValueType::Int)
            .attr("c2", ValueType::Int)
            .key(&["c1", "c2"]);
        b.relation("R").attr("b", ValueType::Int).key(&["b"]);
        b.foreign_key("R", &["b"], "S");
        assert!(matches!(b.build(), Err(DbError::Schema(_))));
    }

    #[test]
    fn rejects_fk_type_mismatch() {
        let mut b = SchemaBuilder::new();
        b.relation("S").attr("c", ValueType::Int).key(&["c"]);
        b.relation("R").attr("b", ValueType::Text).key(&["b"]);
        b.foreign_key("R", &["b"], "S");
        assert!(matches!(b.build(), Err(DbError::Schema(_))));
    }

    #[test]
    fn display_marks_keys_and_fks() {
        let s = two_rel_schema();
        let text = s.to_string();
        assert!(text.contains("_sid_"));
        assert!(text.contains("R[s_ref] ⊆ S[sid]"));
    }

    #[test]
    fn composite_key_fk() {
        let mut b = SchemaBuilder::new();
        b.relation("S")
            .attr("c1", ValueType::Int)
            .attr("c2", ValueType::Text)
            .attr("v", ValueType::Float)
            .key(&["c1", "c2"]);
        b.relation("R")
            .attr("rid", ValueType::Int)
            .attr("b1", ValueType::Int)
            .attr("b2", ValueType::Text)
            .key(&["rid"]);
        b.foreign_key("R", &["b1", "b2"], "S");
        let s = b.build().unwrap();
        let fk = &s.foreign_keys()[0];
        assert_eq!(fk.from_attrs, vec![1, 2]);
        assert_eq!(fk.to_attrs, vec![0, 1]);
    }
}
