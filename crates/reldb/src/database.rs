//! The in-memory database: fact storage, constraint enforcement, the
//! secondary indexes that power random walks, and the **mutation journal**
//! that lets derived caches invalidate themselves fine-grained.
//!
//! ## The mutation journal
//!
//! Every successful mutation ([`Database::insert`], [`Database::restore`],
//! every deletion including cascades) bumps the [epoch](Database::epoch)
//! counter **and** appends a [`MutationRecord`] to a bounded ring. A
//! consumer that remembers the epoch it last observed can later ask
//! [`Database::journal_since`] for exactly the mutations it missed and
//! invalidate only what those mutations can reach — instead of dropping
//! all derived state on any epoch change. The ring is bounded
//! ([`Database::journal_capacity`]): when a consumer has fallen further
//! behind than the ring remembers, `journal_since` returns `None` and the
//! consumer falls back to a full rebuild — the journal is an optimisation
//! channel, never a correctness requirement.
//!
//! ## Durability hooks
//!
//! A [`DurabilityHook`] observes the same stream the journal records, but
//! synchronously and unboundedly: every successful mutation is reported to
//! the attached hook *with its full fact payload* (inserts and restores
//! pass the live fact, deletes pass the removed values), in epoch order.
//! This is the attachment point for a write-ahead log (`stembed-wal`):
//! because every record carries the complete fact, replaying the stream
//! onto a snapshot reconstructs the database exactly — see
//! [`Database::apply_mutation`].

use crate::{DbError, Fact, FactId, FkId, RelationId, Result, Schema, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Observer of the mutation stream, called synchronously by every
/// successful mutation **after** stores, indexes, and the journal are
/// updated. `payload` is always the complete fact: the live fact for
/// inserts/restores, the removed values for deletes.
///
/// Implementations must be `Send + Sync` with interior mutability — the
/// database is shared immutably across worker shards, so the hook is
/// invoked through `&self`. Hooks must not call back into the database.
/// I/O failures cannot be surfaced through this interface (mutations have
/// already committed in memory); a write-ahead log implementation records
/// them internally and reports them on its next explicit flush point.
pub trait DurabilityHook: std::fmt::Debug + Send + Sync {
    /// One mutation, in epoch order. `record.removed` is populated for
    /// deletes; `payload` is the fact for all three kinds.
    fn on_mutation(&self, record: &MutationRecord, payload: &Fact);
}

/// Process-wide source of database identities (see [`Database::db_id`]).
static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_db_id() -> u64 {
    NEXT_DB_ID.fetch_add(1, Ordering::Relaxed)
}

/// What a [`MutationRecord`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// A fresh fact entered a new slot ([`Database::insert`]).
    Insert,
    /// A live fact was tombstoned ([`Database::delete`] or a cascade).
    Delete,
    /// A tombstoned slot was revived with its original fact
    /// ([`Database::restore`]).
    Restore,
}

/// One entry of the mutation journal: which fact of which relation was
/// touched, how, and at which epoch. `record.epoch` is the value
/// [`Database::epoch`] reached *by* this mutation — records of one lineage
/// carry consecutive epochs, which is what makes "replay everything after
/// epoch `e`" well defined.
///
/// **Delete** records additionally carry the removed fact's values
/// ([`MutationRecord::removed`], behind an [`Arc`] so records stay cheap
/// to clone). Insert/restore consumers can read the mutated fact from the
/// database, but a delete leaves only a tombstone — without the payload, a
/// consumer that scopes invalidation by walking foreign keys *from* the
/// mutated fact (key values, FK tuples) would have to treat every delete
/// as touching everything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationRecord {
    /// What happened.
    pub kind: MutationKind,
    /// The touched fact's stable id (slot identity survives tombstoning).
    pub fact: FactId,
    /// The touched fact's relation (redundant with `fact.rel`, kept so
    /// consumers scoping by relation never reach into `fact`).
    pub rel: RelationId,
    /// The epoch this mutation produced.
    pub epoch: u64,
    /// For [`MutationKind::Delete`]: the removed fact's values (its key
    /// and FK tuples, as they were when it was live). `None` for inserts
    /// and restores, whose facts are live in the database.
    pub removed: Option<std::sync::Arc<Fact>>,
}

/// Default bound of the mutation ring: comfortably above one dynamic-
/// experiment insertion round (a prediction tuple plus its cascade group),
/// small enough that a wrapped consumer's full rebuild is cheaper than
/// replaying the backlog would have been.
const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// Bounded ring of the most recent [`MutationRecord`]s.
#[derive(Debug, Clone)]
struct MutationJournal {
    records: VecDeque<MutationRecord>,
    capacity: usize,
}

impl MutationJournal {
    fn new(capacity: usize) -> Self {
        MutationJournal {
            records: VecDeque::with_capacity(capacity.min(DEFAULT_JOURNAL_CAPACITY)),
            capacity,
        }
    }

    fn push(&mut self, record: MutationRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        if self.capacity > 0 {
            self.records.push_back(record);
        }
    }
}

/// Per-relation fact store.
///
/// Facts live in append-only slots; deletion leaves a tombstone (`None`) so
/// that [`FactId`]s are never silently re-bound to different facts. The
/// journal-replay path ([`Database::restore`]) may revive a tombstoned slot
/// with **the same fact** it used to hold, which preserves identity across
/// the dynamic experiment's delete/re-insert cycle.
#[derive(Debug, Clone, Default)]
struct RelationStore {
    slots: Vec<Option<Fact>>,
    live: usize,
    /// key tuple → slot.
    key_index: HashMap<Vec<Value>, u32>,
    /// Per attribute: non-null value → slots holding it (unordered).
    value_index: Vec<HashMap<Value, Vec<u32>>>,
}

/// A relational database over a fixed [`Schema`].
///
/// All mutating operations keep the key index, the per-attribute value
/// index, and the per-FK reference index transactionally consistent: either
/// the operation succeeds and all indexes reflect it, or it fails with a
/// [`DbError`] and nothing changed.
#[derive(Debug)]
pub struct Database {
    schema: Schema,
    stores: Vec<RelationStore>,
    /// Per FK: referenced key tuple → referencing slots in `fk.from_rel`.
    fk_index: Vec<HashMap<Vec<Value>, Vec<u32>>>,
    /// When true, `insert` skips FK existence checks (bulk loading of data
    /// with cyclic or forward references); call [`Database::check_all_fks`]
    /// afterwards.
    defer_fk_checks: bool,
    /// Process-unique lineage id (see [`Database::db_id`]).
    db_id: u64,
    /// Mutation epoch (see [`Database::epoch`]).
    epoch: u64,
    /// Ring of the most recent mutations (see the module docs).
    journal: MutationJournal,
    /// Synchronous observer of the mutation stream (see [`DurabilityHook`]).
    hook: Option<Arc<dyn DurabilityHook>>,
}

impl Clone for Database {
    /// Cloning starts a **new lineage**: the clone gets a fresh [`db_id`]
    /// (its epoch counter restarts at 0), so caches keyed to the original's
    /// `(db_id, epoch)` can never be mistaken for valid against the clone —
    /// the two copies mutate independently from here on.
    ///
    /// [`db_id`]: Database::db_id
    fn clone(&self) -> Self {
        Database {
            schema: self.schema.clone(),
            stores: self.stores.clone(),
            fk_index: self.fk_index.clone(),
            defer_fk_checks: self.defer_fk_checks,
            db_id: fresh_db_id(),
            epoch: 0,
            // A fresh lineage starts with an empty journal: its records
            // would describe the *original*'s history, and epoch 0 of the
            // clone names the cloned content, not an empty database.
            journal: MutationJournal::new(self.journal.capacity),
            // The hook persists the *original* lineage's WAL; a clone's
            // mutations interleaving into it would corrupt the epoch
            // stream, so clones start undurable until re-attached.
            hook: None,
        }
    }
}

impl Database {
    /// Empty database over `schema`.
    pub fn new(schema: Schema) -> Self {
        let stores = schema
            .relations()
            .iter()
            .map(|r| RelationStore {
                slots: Vec::new(),
                live: 0,
                key_index: HashMap::new(),
                value_index: vec![HashMap::new(); r.arity()],
            })
            .collect();
        let fk_index = vec![HashMap::new(); schema.foreign_keys().len()];
        Database {
            schema,
            stores,
            fk_index,
            defer_fk_checks: false,
            db_id: fresh_db_id(),
            epoch: 0,
            journal: MutationJournal::new(DEFAULT_JOURNAL_CAPACITY),
            hook: None,
        }
    }

    /// Rebuild a database from snapshotted slot contents — one
    /// `Vec<Option<Fact>>` per relation in [`RelationId`] order, `None`
    /// marking tombstones — exactly as read back via
    /// [`Database::slot_count`] / [`Database::fact`]. Tombstones are
    /// preserved so every [`FactId`] of the snapshotted database denotes
    /// the same slot here, which is what lets a WAL tail recorded against
    /// the original replay onto the restored copy
    /// ([`Database::apply_mutation`]).
    ///
    /// All per-fact constraints are re-validated and all indexes rebuilt;
    /// FK existence is checked once at the end (snapshot order need not be
    /// FK-topological). The restored database starts a **new lineage**
    /// (fresh [`Database::db_id`], empty journal) at the given `epoch`.
    pub fn from_snapshot_parts(
        schema: Schema,
        slots: Vec<Vec<Option<Fact>>>,
        epoch: u64,
    ) -> Result<Database> {
        if slots.len() != schema.relation_count() {
            return Err(DbError::Replay(format!(
                "snapshot has {} relations but the schema declares {}",
                slots.len(),
                schema.relation_count()
            )));
        }
        let mut db = Database::new(schema);
        // Per-fact validation with FK existence deferred to the final
        // whole-database check (`db` is dropped on any error path, so the
        // temporary flag never escapes).
        db.defer_fk_checks = true;
        for (rel_idx, rel_slots) in slots.into_iter().enumerate() {
            let rel = RelationId(rel_idx as u32);
            for (row, slot) in rel_slots.into_iter().enumerate() {
                match slot {
                    Some(fact) => {
                        db.validate_fact(rel, &fact)?;
                        db.index_fact(rel, row as u32, &fact);
                        db.stores[rel.index()].slots.push(Some(fact));
                        db.stores[rel.index()].live += 1;
                    }
                    None => db.stores[rel.index()].slots.push(None),
                }
            }
        }
        db.defer_fk_checks = false;
        db.check_all_fks()?;
        db.epoch = epoch;
        Ok(db)
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Process-unique identity of this database value. Every
    /// [`Database::new`] *and every clone* gets a fresh id, so a
    /// `(db_id, epoch)` pair names one immutable snapshot of one database
    /// lineage — the key derived caches (e.g. `stembed-core`'s walk
    /// distribution cache) validate against.
    pub fn db_id(&self) -> u64 {
        self.db_id
    }

    /// Mutation epoch: incremented by every successful [`Database::insert`],
    /// [`Database::restore`], and deletion (including cascades). Two equal
    /// `(db_id, epoch)` observations therefore guarantee the database
    /// content is unchanged between them.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mutations that happened *after* epoch `since`, oldest first —
    /// exactly the records a consumer bound to `(db_id, since)` missed.
    ///
    /// Returns `None` when the bounded ring no longer holds all of them
    /// (the consumer fell behind by more than
    /// [`Database::journal_capacity`] mutations, or `since` lies in the
    /// future of this lineage); the caller must then fall back to a full
    /// rebuild of whatever it derived.
    ///
    /// **Boundary contract:** the comparison is strict. A consumer lagging
    /// by *exactly* the ring's length (`missed == records.len()`, e.g. a
    /// full-capacity ring whose oldest retained record is the first one
    /// missed) still replays — the full ring is returned. Only
    /// `missed > records.len()` — at least one missed record already
    /// discarded — reports the wrap. An off-by-one here in either
    /// direction would silently serve a partial history (unsound
    /// invalidation) or force a spurious full rebuild once per exactly-
    /// capacity lag (the steady state of a consumer that catches up in
    /// capacity-sized batches).
    pub fn journal_since(&self, since: u64) -> Option<impl Iterator<Item = &MutationRecord> + '_> {
        if since > self.epoch {
            return None;
        }
        // Compare the gap in u64: `as usize` truncation on 32-bit targets
        // could otherwise alias a huge gap onto a small one and serve a
        // partial journal as if it were complete.
        let missed = self.epoch - since;
        if missed > self.journal.records.len() as u64 {
            return None; // wrapped: records since `since` were discarded
        }
        let skip = self.journal.records.len() - missed as usize;
        Some(self.journal.records.iter().skip(skip))
    }

    /// Bound of the mutation ring (records retained before the oldest is
    /// discarded).
    pub fn journal_capacity(&self) -> usize {
        self.journal.capacity
    }

    /// Change the mutation-ring bound. Shrinking discards the oldest
    /// records immediately. A capacity of 0 disables journalling —
    /// [`Database::journal_since`] then answers only the trivial
    /// "nothing missed" query.
    pub fn set_journal_capacity(&mut self, capacity: usize) {
        while self.journal.records.len() > capacity {
            self.journal.records.pop_front();
        }
        self.journal.capacity = capacity;
    }

    /// Attach a [`DurabilityHook`]; every subsequent successful mutation is
    /// reported to it in epoch order. At most one hook is attached at a
    /// time (a new attach replaces the old hook).
    ///
    /// Fails with [`DbError::JournalDisabled`] when journalling is off
    /// ([`Database::set_journal_capacity`]`(0)`): a journal-disabled
    /// database skips building delete payloads, and silently attaching
    /// there would produce a WAL that cannot replay its deletes.
    pub fn attach_durability_hook(&mut self, hook: Arc<dyn DurabilityHook>) -> Result<()> {
        if self.journal.capacity == 0 {
            return Err(DbError::JournalDisabled);
        }
        self.hook = Some(hook);
        Ok(())
    }

    /// Detach and return the current durability hook, if any.
    pub fn detach_durability_hook(&mut self) -> Option<Arc<dyn DurabilityHook>> {
        self.hook.take()
    }

    /// The currently attached durability hook, if any.
    pub fn durability_hook(&self) -> Option<&Arc<dyn DurabilityHook>> {
        self.hook.as_ref()
    }

    /// Bump the epoch and journal the mutation that caused it, then report
    /// it to the durability hook. Called by every successful mutation,
    /// after the stores and indexes are updated; deletes pass the removed
    /// fact's values along.
    fn record_mutation(
        &mut self,
        kind: MutationKind,
        fact: FactId,
        removed: Option<std::sync::Arc<Fact>>,
    ) {
        self.epoch += 1;
        let record = MutationRecord {
            kind,
            fact,
            rel: fact.rel,
            epoch: self.epoch,
            removed,
        };
        if let Some(hook) = &self.hook {
            // Deletes carry their payload in the record (the slot is a
            // tombstone by now, and `delete_unchecked` always builds the
            // payload while a hook is attached); inserts and restores read
            // the live fact.
            let payload = match record.kind {
                MutationKind::Delete => record
                    .removed
                    .as_deref()
                    // PANICS: never — deletes capture their payload whenever
                    // a hook is attached (see `record_mutation`).
                    .expect("delete payload present while hook attached"),
                MutationKind::Insert | MutationKind::Restore => self
                    .fact(record.fact)
                    // PANICS: never — the fact was just inserted/restored.
                    .expect("mutated fact live while hook attached"),
            };
            hook.on_mutation(&record, payload);
        }
        self.journal.push(record);
    }

    /// Re-apply one journalled mutation (crash-recovery replay). The
    /// caller feeds back the exact stream a [`DurabilityHook`] observed —
    /// in epoch order, onto a database restored from the snapshot the
    /// stream follows ([`Database::from_snapshot_parts`]).
    ///
    /// Inserts re-run full validation and must land in the slot the log
    /// recorded (guaranteed by slot-exact snapshots plus in-order replay —
    /// a mismatch means the log and snapshot disagree and fails with
    /// [`DbError::Replay`]). Deletes skip the dangling-reference check:
    /// the original sequence interleaved cascade members in execution
    /// order, which may pass through transiently dangling states that the
    /// later records of the same cascade repair.
    pub fn apply_mutation(&mut self, kind: MutationKind, id: FactId, fact: &Fact) -> Result<()> {
        match kind {
            MutationKind::Insert => {
                let got = self.insert(id.rel, fact.values().to_vec())?;
                if got != id {
                    return Err(DbError::Replay(format!(
                        "insert replayed into slot {got}, log recorded {id}"
                    )));
                }
            }
            MutationKind::Restore => self.restore(id, fact.clone())?,
            MutationKind::Delete => {
                self.delete_unchecked(id)?;
            }
        }
        Ok(())
    }

    /// Enable/disable deferred FK checking. With deferral on, `insert`
    /// validates everything *except* FK existence; run
    /// [`Database::check_all_fks`] once loading completes.
    pub fn set_defer_fk_checks(&mut self, defer: bool) {
        self.defer_fk_checks = defer;
    }

    /// Number of live facts in `rel`.
    pub fn live_count(&self, rel: RelationId) -> usize {
        self.stores[rel.index()].live
    }

    /// Number of slots ever allocated in `rel` — live facts *plus*
    /// tombstones. Snapshots iterate `0..slot_count` and read each slot
    /// via [`Database::fact`] (`None` = tombstone) so a restored database
    /// preserves slot identity ([`Database::from_snapshot_parts`]).
    pub fn slot_count(&self, rel: RelationId) -> usize {
        self.stores[rel.index()].slots.len()
    }

    /// Total number of live facts (Table I's "#Tuples").
    pub fn total_facts(&self) -> usize {
        self.stores.iter().map(|s| s.live).sum()
    }

    /// The live fact behind `id`, if any.
    pub fn fact(&self, id: FactId) -> Option<&Fact> {
        self.stores
            .get(id.rel.index())?
            .slots
            .get(id.row as usize)?
            .as_ref()
    }

    /// Like [`Database::fact`] but with a typed error.
    pub fn fact_required(&self, id: FactId) -> Result<&Fact> {
        self.fact(id).ok_or(DbError::UnknownFact)
    }

    /// Iterate over the live facts of `rel` in slot order.
    pub fn facts(&self, rel: RelationId) -> impl Iterator<Item = (FactId, &Fact)> {
        self.stores[rel.index()]
            .slots
            .iter()
            .enumerate()
            .filter_map(move |(row, slot)| slot.as_ref().map(|f| (FactId::new(rel, row as u32), f)))
    }

    /// Collect the live fact ids of `rel`.
    pub fn fact_ids(&self, rel: RelationId) -> Vec<FactId> {
        self.facts(rel).map(|(id, _)| id).collect()
    }

    /// Find the fact of `rel` with the given key tuple.
    pub fn lookup_key(&self, rel: RelationId, key: &[Value]) -> Option<FactId> {
        self.stores[rel.index()]
            .key_index
            .get(key)
            .map(|&row| FactId::new(rel, row))
    }

    /// Slots of facts in `rel` whose attribute `attr` equals `value`
    /// (unordered). Nulls are never indexed.
    pub fn facts_with_value(&self, rel: RelationId, attr: usize, value: &Value) -> &[u32] {
        self.stores[rel.index()].value_index[attr]
            .get(value)
            .map_or(&[], |v| v.as_slice())
    }

    /// The active domain `adom(A)`: distinct non-null values of `rel.attr`,
    /// in canonical order ([`Value::canonical_cmp`]).
    ///
    /// The backing index is hash-ordered; the sort here keeps consumers —
    /// notably kernel variance fitting, whose float sums run in this
    /// order — independent of hasher state.
    pub fn active_domain(&self, rel: RelationId, attr: usize) -> Vec<&Value> {
        // lint: nondeterministic-iter-ok(keys are collected and canonically sorted before exposure)
        let mut vals: Vec<&Value> = self.stores[rel.index()].value_index[attr].keys().collect();
        vals.sort_unstable_by(|a, b| a.canonical_cmp(b));
        vals
    }

    /// Facts of `fk.from_rel` whose FK tuple references the key tuple
    /// `key` of `fk.to_rel` (the *backward* step of a walk scheme).
    pub fn referencing_slots(&self, fk: FkId, key: &[Value]) -> &[u32] {
        self.fk_index[fk.index()]
            .get(key)
            .map_or(&[], |v| v.as_slice())
    }

    /// Facts referencing `target` via `fk`.
    pub fn referencing_facts(&self, fk: FkId, target: FactId) -> Vec<FactId> {
        let fk_def = self.schema.foreign_key(fk);
        debug_assert_eq!(fk_def.to_rel, target.rel);
        let Some(fact) = self.fact(target) else {
            return Vec::new();
        };
        let key = fact.project(&fk_def.to_attrs);
        self.referencing_slots(fk, &key)
            .iter()
            .map(|&row| FactId::new(fk_def.from_rel, row))
            .collect()
    }

    /// Total number of live facts referencing `target` over all FKs into its
    /// relation. Drives both dangling-reference protection and orphan
    /// collection during cascade deletion.
    pub fn reference_count(&self, target: FactId) -> usize {
        self.schema
            .fks_to(target.rel)
            .iter()
            .map(|&fk| {
                let fk_def = self.schema.foreign_key(fk);
                match self.fact(target) {
                    Some(fact) => {
                        let key = fact.project(&fk_def.to_attrs);
                        self.referencing_slots(fk, &key).len()
                    }
                    None => 0,
                }
            })
            .sum()
    }

    /// The fact referenced by `source` via `fk`, or `None` when any
    /// referencing attribute is null (the FK is then ignored, per §II).
    pub fn resolve_fk(&self, fk: FkId, source: FactId) -> Result<Option<FactId>> {
        let fk_def = self.schema.foreign_key(fk);
        if fk_def.from_rel != source.rel {
            return Err(DbError::BadRelationId(source.rel));
        }
        let fact = self.fact_required(source)?;
        if fact.any_null(&fk_def.from_attrs) {
            return Ok(None);
        }
        let key = fact.project(&fk_def.from_attrs);
        Ok(self.lookup_key(fk_def.to_rel, &key))
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Insert a fact into `rel`, enforcing arity, types, non-null unique
    /// keys, NaN rejection, and (unless deferred) FK existence.
    pub fn insert(&mut self, rel: RelationId, values: Vec<Value>) -> Result<FactId> {
        let fact = Fact::new(values);
        self.validate_fact(rel, &fact)?;
        let row = self.stores[rel.index()].slots.len() as u32;
        self.index_fact(rel, row, &fact);
        self.stores[rel.index()].slots.push(Some(fact));
        self.stores[rel.index()].live += 1;
        let id = FactId::new(rel, row);
        self.record_mutation(MutationKind::Insert, id, None);
        Ok(id)
    }

    /// Insert by relation name (convenience for examples and loaders).
    pub fn insert_into(&mut self, rel_name: &str, values: Vec<Value>) -> Result<FactId> {
        let rel = self
            .schema
            .relation_id(rel_name)
            .ok_or_else(|| DbError::UnknownRelation(rel_name.to_string()))?;
        self.insert(rel, values)
    }

    /// Re-insert `fact` into the tombstoned slot `id` (journal replay).
    /// Validates the same constraints as [`Database::insert`].
    pub fn restore(&mut self, id: FactId, fact: Fact) -> Result<()> {
        let store = self
            .stores
            .get(id.rel.index())
            .ok_or(DbError::BadRelationId(id.rel))?;
        match store.slots.get(id.row as usize) {
            Some(None) => {}
            // Slot does not exist or is live: restoring would corrupt.
            _ => return Err(DbError::UnknownFact),
        }
        self.validate_fact(id.rel, &fact)?;
        self.index_fact(id.rel, id.row, &fact);
        self.stores[id.rel.index()].slots[id.row as usize] = Some(fact);
        self.stores[id.rel.index()].live += 1;
        self.record_mutation(MutationKind::Restore, id, None);
        Ok(())
    }

    /// Delete a fact. Fails with [`DbError::WouldDangle`] when other live
    /// facts still reference it — use [`crate::cascade`] for cascading
    /// semantics. Returns the removed fact.
    pub fn delete(&mut self, id: FactId) -> Result<Fact> {
        let refs = self.reference_count(id);
        if refs > 0 {
            return Err(DbError::WouldDangle {
                relation: self.schema.relation(id.rel).name.clone(),
                referencing: refs,
            });
        }
        self.delete_unchecked(id)
    }

    /// Delete without the dangling-reference check. `pub(crate)`: only the
    /// cascade module may create temporary dangling states, and it repairs
    /// them before returning.
    pub(crate) fn delete_unchecked(&mut self, id: FactId) -> Result<Fact> {
        let slot = self
            .stores
            .get_mut(id.rel.index())
            .ok_or(DbError::BadRelationId(id.rel))?
            .slots
            .get_mut(id.row as usize)
            .ok_or(DbError::UnknownFact)?;
        let fact = slot.take().ok_or(DbError::UnknownFact)?;
        self.stores[id.rel.index()].live -= 1;
        self.unindex_fact(id.rel, id.row, &fact);
        // Journal the removed values: the slot is a tombstone from here
        // on, and fine-grained invalidation needs the fact's key/FK
        // tuples to scope what the delete could reach. With journalling
        // disabled (capacity 0) the record is dropped on push, so skip
        // the clone — unless a durability hook is attached, which always
        // needs the payload to make its log replayable.
        let removed = if self.journal.capacity > 0 || self.hook.is_some() {
            Some(std::sync::Arc::new(fact.clone()))
        } else {
            None
        };
        self.record_mutation(MutationKind::Delete, id, removed);
        Ok(fact)
    }

    /// Check every FK of every live fact; first violation wins. Used after
    /// bulk loading with deferred checks.
    pub fn check_all_fks(&self) -> Result<()> {
        for (fk_idx, fk) in self.schema.foreign_keys().iter().enumerate() {
            let _ = fk_idx;
            for (_, fact) in self.facts(fk.from_rel) {
                if fact.any_null(&fk.from_attrs) {
                    continue;
                }
                let key = fact.project(&fk.from_attrs);
                if self.lookup_key(fk.to_rel, &key).is_none() {
                    return Err(DbError::FkViolation {
                        from: self.schema.relation(fk.from_rel).name.clone(),
                        to: self.schema.relation(fk.to_rel).name.clone(),
                        values: key,
                    });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn validate_fact(&self, rel: RelationId, fact: &Fact) -> Result<()> {
        let rel_schema = self
            .schema
            .relations()
            .get(rel.index())
            .ok_or(DbError::BadRelationId(rel))?;
        if fact.arity() != rel_schema.arity() {
            return Err(DbError::Arity {
                relation: rel_schema.name.clone(),
                expected: rel_schema.arity(),
                got: fact.arity(),
            });
        }
        for (i, value) in fact.values().iter().enumerate() {
            let attr = &rel_schema.attributes[i];
            if value.is_nan() {
                return Err(DbError::NanValue {
                    relation: rel_schema.name.clone(),
                    attribute: attr.name.clone(),
                });
            }
            if !value.conforms_to(attr.ty) {
                return Err(DbError::TypeMismatch {
                    relation: rel_schema.name.clone(),
                    attribute: attr.name.clone(),
                    value: value.clone(),
                });
            }
            if value.is_null() && rel_schema.is_key_attr(i) {
                return Err(DbError::NullInKey {
                    relation: rel_schema.name.clone(),
                    attribute: attr.name.clone(),
                });
            }
        }
        let key = fact.project(&rel_schema.key);
        if self.stores[rel.index()].key_index.contains_key(&key) {
            return Err(DbError::DuplicateKey {
                relation: rel_schema.name.clone(),
                key,
            });
        }
        if !self.defer_fk_checks {
            for &fk_id in self.schema.fks_from(rel) {
                let fk = self.schema.foreign_key(fk_id);
                if fact.any_null(&fk.from_attrs) {
                    continue;
                }
                let fk_key = fact.project(&fk.from_attrs);
                if self.lookup_key(fk.to_rel, &fk_key).is_none() {
                    return Err(DbError::FkViolation {
                        from: rel_schema.name.clone(),
                        to: self.schema.relation(fk.to_rel).name.clone(),
                        values: fk_key,
                    });
                }
            }
        }
        Ok(())
    }

    fn index_fact(&mut self, rel: RelationId, row: u32, fact: &Fact) {
        let key = fact.project(&self.schema.relation(rel).key);
        let store = &mut self.stores[rel.index()];
        store.key_index.insert(key, row);
        for (attr, value) in fact.values().iter().enumerate() {
            if !value.is_null() {
                store.value_index[attr]
                    .entry(value.clone())
                    .or_default()
                    .push(row);
            }
        }
        for &fk_id in self.schema.fks_from(rel) {
            let fk = self.schema.foreign_key(fk_id);
            if fact.any_null(&fk.from_attrs) {
                continue;
            }
            let fk_key = fact.project(&fk.from_attrs);
            self.fk_index[fk_id.index()]
                .entry(fk_key)
                .or_default()
                .push(row);
        }
    }

    fn unindex_fact(&mut self, rel: RelationId, row: u32, fact: &Fact) {
        let key = fact.project(&self.schema.relation(rel).key);
        let store = &mut self.stores[rel.index()];
        store.key_index.remove(&key);
        for (attr, value) in fact.values().iter().enumerate() {
            if value.is_null() {
                continue;
            }
            if let Some(rows) = store.value_index[attr].get_mut(value) {
                if let Some(pos) = rows.iter().position(|&r| r == row) {
                    rows.swap_remove(pos);
                }
                if rows.is_empty() {
                    store.value_index[attr].remove(value);
                }
            }
        }
        for &fk_id in self.schema.fks_from(rel) {
            let fk = self.schema.foreign_key(fk_id);
            if fact.any_null(&fk.from_attrs) {
                continue;
            }
            let fk_key = fact.project(&fk.from_attrs);
            if let Some(rows) = self.fk_index[fk_id.index()].get_mut(&fk_key) {
                if let Some(pos) = rows.iter().position(|&r| r == row) {
                    rows.swap_remove(pos);
                }
                if rows.is_empty() {
                    self.fk_index[fk_id.index()].remove(&fk_key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchemaBuilder, ValueType};

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.relation("S")
            .attr("sid", ValueType::Text)
            .attr("name", ValueType::Text)
            .key(&["sid"]);
        b.relation("R")
            .attr("rid", ValueType::Text)
            .attr("s_ref", ValueType::Text)
            .attr("payload", ValueType::Int)
            .key(&["rid"]);
        b.foreign_key("R", &["s_ref"], "S");
        b.build().unwrap()
    }

    fn db_with_one_s() -> (Database, FactId) {
        let mut db = Database::new(schema());
        let s = db
            .insert_into("S", vec!["s1".into(), "Acme".into()])
            .unwrap();
        (db, s)
    }

    #[test]
    fn insert_and_lookup() {
        let (mut db, s) = db_with_one_s();
        let rel_r = db.schema().relation_id("R").unwrap();
        let r = db
            .insert(rel_r, vec!["r1".into(), "s1".into(), Value::Int(5)])
            .unwrap();
        assert_eq!(db.total_facts(), 2);
        assert_eq!(db.fact(r).unwrap().get(2), &Value::Int(5));
        assert_eq!(db.lookup_key(rel_r, &["r1".into()]), Some(r));
        // FK resolution.
        let fk = db.schema().fks_from(rel_r)[0];
        assert_eq!(db.resolve_fk(fk, r).unwrap(), Some(s));
        assert_eq!(db.referencing_facts(fk, s), vec![r]);
        assert_eq!(db.reference_count(s), 1);
    }

    #[test]
    fn rejects_arity_type_and_nan() {
        let (mut db, _) = db_with_one_s();
        let rel_r = db.schema().relation_id("R").unwrap();
        assert!(matches!(
            db.insert(rel_r, vec!["r1".into()]),
            Err(DbError::Arity { .. })
        ));
        assert!(matches!(
            db.insert(rel_r, vec!["r1".into(), "s1".into(), "oops".into()]),
            Err(DbError::TypeMismatch { .. })
        ));
        let rel_s = db.schema().relation_id("S").unwrap();
        let mut b = SchemaBuilder::new();
        b.relation("F").attr("x", ValueType::Float).key(&["x"]);
        let mut fdb = Database::new(b.build().unwrap());
        let frel = fdb.schema().relation_id("F").unwrap();
        assert!(matches!(
            fdb.insert(frel, vec![Value::Float(f64::NAN)]),
            Err(DbError::NanValue { .. })
        ));
        let _ = rel_s;
    }

    #[test]
    fn rejects_null_key_and_duplicate_key() {
        let (mut db, _) = db_with_one_s();
        let rel_s = db.schema().relation_id("S").unwrap();
        assert!(matches!(
            db.insert(rel_s, vec![Value::Null, "X".into()]),
            Err(DbError::NullInKey { .. })
        ));
        assert!(matches!(
            db.insert(rel_s, vec!["s1".into(), "Other".into()]),
            Err(DbError::DuplicateKey { .. })
        ));
        assert_eq!(db.total_facts(), 1);
    }

    #[test]
    fn rejects_dangling_fk_but_allows_null_fk() {
        let (mut db, _) = db_with_one_s();
        let rel_r = db.schema().relation_id("R").unwrap();
        assert!(matches!(
            db.insert(rel_r, vec!["r1".into(), "zzz".into(), Value::Int(1)]),
            Err(DbError::FkViolation { .. })
        ));
        // Null FK attribute: the FK is ignored.
        let r = db
            .insert(rel_r, vec!["r2".into(), Value::Null, Value::Int(1)])
            .unwrap();
        let fk = db.schema().fks_from(rel_r)[0];
        assert_eq!(db.resolve_fk(fk, r).unwrap(), None);
    }

    #[test]
    fn deferred_fk_checks() {
        let mut db = Database::new(schema());
        db.set_defer_fk_checks(true);
        let rel_r = db.schema().relation_id("R").unwrap();
        // Insert the referencing fact first.
        db.insert(rel_r, vec!["r1".into(), "s1".into(), Value::Int(1)])
            .unwrap();
        assert!(db.check_all_fks().is_err());
        db.insert_into("S", vec!["s1".into(), "Acme".into()])
            .unwrap();
        assert!(db.check_all_fks().is_ok());
    }

    #[test]
    fn delete_protects_references_then_succeeds() {
        let (mut db, s) = db_with_one_s();
        let rel_r = db.schema().relation_id("R").unwrap();
        let r = db
            .insert(rel_r, vec!["r1".into(), "s1".into(), Value::Int(5)])
            .unwrap();
        assert!(matches!(db.delete(s), Err(DbError::WouldDangle { .. })));
        db.delete(r).unwrap();
        db.delete(s).unwrap();
        assert_eq!(db.total_facts(), 0);
        assert!(db.fact(r).is_none());
        assert!(matches!(db.delete(r), Err(DbError::UnknownFact)));
    }

    #[test]
    fn value_index_tracks_mutations() {
        let (mut db, _) = db_with_one_s();
        let rel_r = db.schema().relation_id("R").unwrap();
        let r1 = db
            .insert(rel_r, vec!["r1".into(), "s1".into(), Value::Int(5)])
            .unwrap();
        let _r2 = db
            .insert(rel_r, vec!["r2".into(), "s1".into(), Value::Int(5)])
            .unwrap();
        assert_eq!(db.facts_with_value(rel_r, 2, &Value::Int(5)).len(), 2);
        db.delete(r1).unwrap();
        assert_eq!(db.facts_with_value(rel_r, 2, &Value::Int(5)).len(), 1);
        assert_eq!(db.facts_with_value(rel_r, 2, &Value::Int(99)).len(), 0);
        assert_eq!(db.active_domain(rel_r, 2), vec![&Value::Int(5)]);
    }

    #[test]
    fn restore_revives_tombstone_with_same_id() {
        let (mut db, s) = db_with_one_s();
        let fact = db.delete(s).unwrap();
        assert!(db.fact(s).is_none());
        db.restore(s, fact.clone()).unwrap();
        assert_eq!(db.fact(s), Some(&fact));
        // Restoring a live slot fails.
        assert!(db.restore(s, fact).is_err());
    }

    #[test]
    fn epoch_counts_mutations_and_clones_start_a_new_lineage() {
        let (mut db, s) = db_with_one_s();
        let e0 = db.epoch();
        let clone = db.clone();
        assert_ne!(db.db_id(), clone.db_id(), "clone must get a fresh db_id");
        assert_eq!(clone.epoch(), 0, "clone restarts its epoch counter");
        let fact = db.delete(s).unwrap();
        assert_eq!(db.epoch(), e0 + 1);
        db.restore(s, fact).unwrap();
        assert_eq!(db.epoch(), e0 + 2);
        // Failed mutations must not bump the epoch.
        assert!(db
            .insert_into("S", vec!["s1".into(), "dup".into()])
            .is_err());
        assert_eq!(db.epoch(), e0 + 2);
        // The clone mutates independently.
        assert_eq!(clone.epoch(), 0);
    }

    #[test]
    fn journal_records_every_mutation_kind_in_order() {
        let (mut db, s) = db_with_one_s();
        let e0 = db.epoch();
        let fact = db.delete(s).unwrap();
        db.restore(s, fact).unwrap();
        let r = db
            .insert_into("R", vec!["r1".into(), "s1".into(), Value::Int(1)])
            .unwrap();
        let records: Vec<MutationRecord> = db.journal_since(e0).unwrap().cloned().collect();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].kind, MutationKind::Delete);
        assert_eq!(records[0].fact, s);
        assert_eq!(records[0].rel, s.rel);
        assert_eq!(records[0].epoch, e0 + 1);
        // Delete records carry the removed fact's values; the slot itself
        // is a tombstone by now.
        let removed = records[0].removed.as_ref().expect("delete payload");
        assert_eq!(removed.get(0), &Value::Text("s1".into()));
        assert_eq!(records[1].kind, MutationKind::Restore);
        assert_eq!(records[1].fact, s);
        assert!(records[1].removed.is_none());
        assert_eq!(records[2].kind, MutationKind::Insert);
        assert_eq!(records[2].fact, r);
        assert!(records[2].removed.is_none());
        assert_eq!(records[2].epoch, db.epoch());
        // A consumer already at the head misses nothing.
        assert_eq!(db.journal_since(db.epoch()).unwrap().count(), 0);
        // Partial replays start mid-stream.
        assert_eq!(db.journal_since(e0 + 2).unwrap().count(), 1);
        // Failed mutations leave no record.
        assert!(db
            .insert_into("S", vec!["s1".into(), "dup".into()])
            .is_err());
        assert_eq!(db.journal_since(e0).unwrap().count(), 3);
    }

    #[test]
    fn journal_wraps_at_capacity_and_reports_it() {
        let (mut db, s) = db_with_one_s();
        db.set_journal_capacity(4);
        assert_eq!(db.journal_capacity(), 4);
        let e0 = db.epoch();
        let fact = db.delete(s).unwrap();
        db.restore(s, fact.clone()).unwrap();
        // Both records since e0 still in the ring: replayable.
        assert!(db.journal_since(e0).is_some());
        db.delete(s).unwrap();
        db.restore(s, fact.clone()).unwrap();
        db.delete(s).unwrap();
        // Five mutations since e0 exceed the ring: wrapped.
        assert!(db.journal_since(e0).is_none());
        // The most recent four are still there.
        assert_eq!(db.journal_since(e0 + 1).unwrap().count(), 4);
        // A future epoch (wrong lineage bookkeeping) is also a miss.
        assert!(db.journal_since(db.epoch() + 1).is_none());
        // Capacity 0 disables journalling entirely.
        db.set_journal_capacity(0);
        db.restore(s, fact).unwrap();
        assert!(db.journal_since(db.epoch() - 1).is_none());
        assert_eq!(db.journal_since(db.epoch()).unwrap().count(), 0);
    }

    #[test]
    fn journal_since_replays_an_exactly_capacity_lag() {
        // Regression for the wrap boundary: `missed == records.len()` is
        // the *largest replayable* lag, not a wrap. With capacity 4 and a
        // consumer exactly 4 mutations behind, the full ring must come
        // back; one further mutation tips it into `None`.
        let (mut db, s) = db_with_one_s();
        db.set_journal_capacity(4);
        let e0 = db.epoch();
        let fact = db.delete(s).unwrap();
        db.restore(s, fact.clone()).unwrap();
        db.delete(s).unwrap();
        db.restore(s, fact.clone()).unwrap();
        // Four mutations since e0, ring holds exactly four: replayable.
        let replayed: Vec<u64> = db
            .journal_since(e0)
            .expect("missed == len must replay, not fall back")
            .map(|r| r.epoch)
            .collect();
        assert_eq!(replayed, vec![e0 + 1, e0 + 2, e0 + 3, e0 + 4]);
        db.delete(s).unwrap();
        // Five missed, oldest discarded: wrapped.
        assert!(db.journal_since(e0).is_none());
        assert_eq!(db.journal_since(e0 + 1).unwrap().count(), 4);
    }

    /// Hook that records every report it receives.
    #[derive(Debug, Default)]
    struct RecordingHook {
        seen: std::sync::Mutex<Vec<(MutationKind, FactId, u64, Fact)>>,
    }

    impl DurabilityHook for RecordingHook {
        fn on_mutation(&self, record: &MutationRecord, payload: &Fact) {
            self.seen.lock().unwrap().push((
                record.kind,
                record.fact,
                record.epoch,
                payload.clone(),
            ));
        }
    }

    #[test]
    fn hook_refuses_journal_disabled_database() {
        let (mut db, _) = db_with_one_s();
        db.set_journal_capacity(0);
        let hook = std::sync::Arc::new(RecordingHook::default());
        assert_eq!(
            db.attach_durability_hook(hook.clone()),
            Err(DbError::JournalDisabled)
        );
        assert!(db.durability_hook().is_none());
        // Re-enabling journalling makes the attach valid.
        db.set_journal_capacity(8);
        db.attach_durability_hook(hook).unwrap();
        assert!(db.durability_hook().is_some());
    }

    #[test]
    fn hook_observes_every_mutation_with_payload_in_epoch_order() {
        let (mut db, s) = db_with_one_s();
        let hook = std::sync::Arc::new(RecordingHook::default());
        db.attach_durability_hook(hook.clone()).unwrap();
        let e0 = db.epoch();
        let fact = db.delete(s).unwrap();
        db.restore(s, fact.clone()).unwrap();
        let r = db
            .insert_into("R", vec!["r1".into(), "s1".into(), Value::Int(7)])
            .unwrap();
        // Failed mutations must not reach the hook.
        assert!(db
            .insert_into("S", vec!["s1".into(), "dup".into()])
            .is_err());
        let seen = hook.seen.lock().unwrap();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, MutationKind::Delete);
        assert_eq!(seen[0].1, s);
        assert_eq!(seen[0].2, e0 + 1);
        // The delete's payload is the removed fact's values.
        assert_eq!(seen[0].3, fact);
        assert_eq!(seen[1].0, MutationKind::Restore);
        assert_eq!(seen[1].3, fact);
        assert_eq!(seen[2].0, MutationKind::Insert);
        assert_eq!(seen[2].1, r);
        assert_eq!(seen[2].3.get(2), &Value::Int(7));
    }

    #[test]
    fn clones_drop_the_durability_hook() {
        let (mut db, s) = db_with_one_s();
        let hook = std::sync::Arc::new(RecordingHook::default());
        db.attach_durability_hook(hook.clone()).unwrap();
        let mut clone = db.clone();
        assert!(clone.durability_hook().is_none());
        clone.delete(s).unwrap();
        assert!(hook.seen.lock().unwrap().is_empty());
    }

    #[test]
    fn snapshot_parts_round_trip_preserves_slots_and_replays() {
        let (mut db, s) = db_with_one_s();
        let rel_s = s.rel;
        let s2 = db
            .insert_into("S", vec!["s2".into(), "Globex".into()])
            .unwrap();
        let r = db
            .insert_into("R", vec!["r1".into(), "s2".into(), Value::Int(1)])
            .unwrap();
        // Tombstone in the middle of S: s is deleted, s2 stays.
        let removed = db.delete(s).unwrap();
        // Capture slot-exact snapshot parts.
        let slots: Vec<Vec<Option<Fact>>> = db
            .schema()
            .relation_ids()
            .map(|rel| {
                (0..db.slot_count(rel))
                    .map(|row| db.fact(FactId::new(rel, row as u32)).cloned())
                    .collect()
            })
            .collect();
        let restored =
            Database::from_snapshot_parts(db.schema().clone(), slots, db.epoch()).unwrap();
        assert_eq!(restored.epoch(), db.epoch());
        assert_eq!(restored.total_facts(), db.total_facts());
        assert_eq!(restored.slot_count(rel_s), db.slot_count(rel_s));
        assert!(restored.fact(s).is_none(), "tombstone preserved");
        assert_eq!(restored.fact(s2), db.fact(s2));
        // Replay the original's continued history onto the restored copy:
        // the tombstoned slot revives under its old id and a fresh insert
        // lands in the same slot on both sides.
        let mut db2 = restored;
        db.restore(s, removed.clone()).unwrap();
        db2.apply_mutation(MutationKind::Restore, s, &removed)
            .unwrap();
        let next = db
            .insert_into("S", vec!["s3".into(), "Initech".into()])
            .unwrap();
        db2.apply_mutation(
            MutationKind::Insert,
            next,
            &Fact::new(vec!["s3".into(), "Initech".into()]),
        )
        .unwrap();
        db.delete(r).unwrap();
        db2.apply_mutation(MutationKind::Delete, r, &Fact::new(Vec::new()))
            .unwrap();
        assert_eq!(db2.epoch(), db.epoch());
        for rel in db.schema().relation_ids() {
            assert_eq!(db2.slot_count(rel), db.slot_count(rel));
            for row in 0..db.slot_count(rel) {
                let id = FactId::new(rel, row as u32);
                assert_eq!(db2.fact(id), db.fact(id));
            }
        }
    }

    #[test]
    fn replayed_insert_must_match_the_logged_slot() {
        let (mut db, _) = db_with_one_s();
        // The log claims the insert landed in slot 5; an empty restored
        // database would assign slot 1 — divergence must be typed.
        let rel_s = db.schema().relation_id("S").unwrap();
        let err = db
            .apply_mutation(
                MutationKind::Insert,
                FactId::new(rel_s, 5),
                &Fact::new(vec!["s9".into(), "Hooli".into()]),
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Replay(_)));
    }

    #[test]
    fn clones_start_with_an_empty_journal() {
        let (mut db, s) = db_with_one_s();
        db.delete(s).unwrap();
        let clone = db.clone();
        assert_eq!(clone.epoch(), 0);
        assert_eq!(clone.journal_since(0).unwrap().count(), 0);
        assert_eq!(clone.journal_capacity(), db.journal_capacity());
    }

    #[test]
    fn fact_ids_are_not_reused_after_delete() {
        let (mut db, s) = db_with_one_s();
        db.delete(s).unwrap();
        let s2 = db
            .insert_into("S", vec!["s1".into(), "Acme".into()])
            .unwrap();
        assert_ne!(s, s2, "slots must not be silently reused by insert");
    }
}
