//! The movie database of the paper's Figure 2.
//!
//! Used throughout the workspace as the canonical worked example: walk
//! schemes (Figure 4), walk distributions (Example 5.3), cascade semantics
//! (Example 6.1), and the quickstart example all run against this database.

use crate::{Database, FactId, Schema, SchemaBuilder, Value, ValueType};
use std::collections::HashMap;

/// The schema of Figure 2: MOVIES, ACTORS, STUDIOS, COLLABORATIONS with the
/// FKs printed under each relation.
pub fn movies_schema() -> Schema {
    let mut b = SchemaBuilder::new();
    b.relation("MOVIES")
        .attr("mid", ValueType::Text)
        .attr("studio", ValueType::Text)
        .attr("title", ValueType::Text)
        .attr("genre", ValueType::Text)
        .attr("budget", ValueType::Int)
        .key(&["mid"]);
    b.relation("ACTORS")
        .attr("aid", ValueType::Text)
        .attr("name", ValueType::Text)
        .attr("worth", ValueType::Int)
        .key(&["aid"]);
    b.relation("STUDIOS")
        .attr("sid", ValueType::Text)
        .attr("name", ValueType::Text)
        .attr("loc", ValueType::Text)
        .key(&["sid"]);
    b.relation("COLLABORATIONS")
        .attr("actor1", ValueType::Text)
        .attr("actor2", ValueType::Text)
        .attr("movie", ValueType::Text)
        .key(&["actor1", "actor2", "movie"]);
    b.foreign_key("MOVIES", &["studio"], "STUDIOS");
    b.foreign_key("COLLABORATIONS", &["actor1"], "ACTORS");
    b.foreign_key("COLLABORATIONS", &["actor2"], "ACTORS");
    b.foreign_key("COLLABORATIONS", &["movie"], "MOVIES");
    // PANICS: never — the schema literal above is valid by construction.
    b.build().expect("movies schema is valid by construction")
}

/// Budgets/worths are stored in millions (the paper prints e.g. "200M").
fn millions(m: i64) -> Value {
    Value::Int(m)
}

/// Build the full database of Figure 2 and return it together with a map
/// from the paper's tuple labels (`m1`…`m6`, `a1`…`a5`, `s1`…`s3`,
/// `c1`…`c4`) to [`FactId`]s.
pub fn movies_database_labeled() -> (Database, HashMap<&'static str, FactId>) {
    let mut db = Database::new(movies_schema());
    let mut ids = HashMap::new();

    // Studios first (referenced by movies).
    let studios: [(&str, &str, &str, &str); 3] = [
        ("s1", "s01", "Warner Bros.", "LA"),
        ("s2", "s02", "Universal", "LA"),
        ("s3", "s03", "Paramount", "LA"),
    ];
    for (label, sid, name, loc) in studios {
        let id = db
            .insert_into("STUDIOS", vec![sid.into(), name.into(), loc.into()])
            // PANICS: never — fixture rows satisfy the schema.
            .expect("studio insert");
        ids.insert(label, id);
    }

    // Movies. m3's genre is ⊥ in the paper.
    #[allow(clippy::type_complexity)]
    let movies: [(&str, &str, &str, &str, Option<&str>, i64); 6] = [
        ("m1", "m01", "s03", "Titanic", Some("Drama"), 200),
        ("m2", "m02", "s01", "Inception", Some("SciFi"), 160),
        ("m3", "m03", "s01", "Godzilla", None, 150),
        ("m4", "m04", "s03", "Interstellar", Some("SciFi"), 160),
        ("m5", "m05", "s02", "Tropic Thunder", Some("Action"), 90),
        ("m6", "m06", "s01", "Wolf of Wall St.", Some("Bio"), 100),
    ];
    for (label, mid, studio, title, genre, budget) in movies {
        let genre_val = genre.map_or(Value::Null, Value::from);
        let id = db
            .insert_into(
                "MOVIES",
                vec![
                    mid.into(),
                    studio.into(),
                    title.into(),
                    genre_val,
                    millions(budget),
                ],
            )
            // PANICS: never — fixture rows satisfy the schema.
            .expect("movie insert");
        ids.insert(label, id);
    }

    // Actors.
    let actors: [(&str, &str, &str, i64); 5] = [
        ("a1", "a01", "DiCaprio", 230),
        ("a2", "a02", "Watanabe", 40),
        ("a3", "a03", "Cruise", 600),
        ("a4", "a04", "McConaughey", 140),
        ("a5", "a05", "Damon", 170),
    ];
    for (label, aid, name, worth) in actors {
        let id = db
            .insert_into("ACTORS", vec![aid.into(), name.into(), millions(worth)])
            // PANICS: never — fixture rows satisfy the schema.
            .expect("actor insert");
        ids.insert(label, id);
    }

    // Collaborations.
    let collabs: [(&str, &str, &str, &str); 4] = [
        ("c1", "a01", "a02", "m03"),
        ("c2", "a04", "a05", "m04"),
        ("c3", "a04", "a03", "m05"),
        ("c4", "a01", "a04", "m06"),
    ];
    for (label, actor1, actor2, movie) in collabs {
        let id = db
            .insert_into(
                "COLLABORATIONS",
                vec![actor1.into(), actor2.into(), movie.into()],
            )
            // PANICS: never — fixture rows satisfy the schema.
            .expect("collaboration insert");
        ids.insert(label, id);
    }

    debug_assert_eq!(db.total_facts(), 18);
    (db, ids)
}

/// The database of Figure 2 without the label map.
pub fn movies_database() -> Database {
    movies_database_labeled().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_matches_figure_2() {
        let (db, ids) = movies_database_labeled();
        assert_eq!(db.total_facts(), 18);
        assert_eq!(ids.len(), 18);
        let movies = db.schema().relation_id("MOVIES").unwrap();
        assert_eq!(db.live_count(movies), 6);
        // m3's genre is null.
        let m3 = db.fact(ids["m3"]).unwrap();
        assert!(m3.get(3).is_null());
        assert_eq!(m3.get(2), &Value::Text("Godzilla".into()));
        db.check_all_fks().unwrap();
    }

    #[test]
    fn fk_references_resolve_as_in_the_paper() {
        let (db, ids) = movies_database_labeled();
        let movies = db.schema().relation_id("MOVIES").unwrap();
        // MOVIES[studio] ⊆ STUDIOS[sid]: m1 references s3 (Paramount).
        let fk = db.schema().fks_from(movies)[0];
        assert_eq!(db.resolve_fk(fk, ids["m1"]).unwrap(), Some(ids["s3"]));
        // c4 references a1, a4 and m6 (Example 3.1).
        let collabs = db.schema().relation_id("COLLABORATIONS").unwrap();
        let fks = db.schema().fks_from(collabs);
        assert_eq!(db.resolve_fk(fks[0], ids["c4"]).unwrap(), Some(ids["a1"]));
        assert_eq!(db.resolve_fk(fks[1], ids["c4"]).unwrap(), Some(ids["a4"]));
        assert_eq!(db.resolve_fk(fks[2], ids["c4"]).unwrap(), Some(ids["m6"]));
    }

    #[test]
    fn schema_has_four_fks() {
        let s = movies_schema();
        assert_eq!(s.foreign_keys().len(), 4);
        let collabs = s.relation_id("COLLABORATIONS").unwrap();
        assert_eq!(s.fks_from(collabs).len(), 3);
        let actors = s.relation_id("ACTORS").unwrap();
        assert_eq!(s.fks_to(actors).len(), 2);
    }
}
