//! Minimal textual (de)serialisation of schemas and databases.
//!
//! The format is deliberately simple — a tab-separated dump with typed
//! headers — just enough to save generated benchmark databases to disk,
//! reload them, and diff experiment inputs. It is not a general CSV parser.
//!
//! ```text
//! @relation MOVIES
//! @attr mid text key
//! @attr studio text
//! @fk studio -> STUDIOS
//! m01\ts03
//! m02\ts01
//! @end
//! ```

use crate::{Database, DbError, Result, Schema, SchemaBuilder, Value, ValueType};
use std::fmt::Write as _;

/// Serialise a database (schema + facts) into the textual dump format.
pub fn to_text(db: &Database) -> String {
    let mut out = String::new();
    let schema = db.schema();
    for rel_id in schema.relation_ids() {
        let rel = schema.relation(rel_id);
        let _ = writeln!(out, "@relation {}", rel.name);
        for (i, attr) in rel.attributes.iter().enumerate() {
            let key_marker = if rel.is_key_attr(i) { " key" } else { "" };
            let _ = writeln!(out, "@attr {} {}{}", attr.name, attr.ty, key_marker);
        }
        for &fk_id in schema.fks_from(rel_id) {
            let fk = schema.foreign_key(fk_id);
            let from_names: Vec<&str> = fk
                .from_attrs
                .iter()
                .map(|&a| rel.attributes[a].name.as_str())
                .collect();
            let _ = writeln!(
                out,
                "@fk {} -> {}",
                from_names.join(","),
                schema.relation(fk.to_rel).name
            );
        }
        for (_, fact) in db.facts(rel_id) {
            let fields: Vec<String> = fact
                .values()
                .iter()
                .map(std::string::ToString::to_string)
                .collect();
            let _ = writeln!(out, "{}", fields.join("\t"));
        }
        let _ = writeln!(out, "@end");
    }
    out
}

/// Parse a textual dump back into a database. Foreign keys may reference
/// relations declared later; FK checking is deferred until the whole dump is
/// loaded.
pub fn from_text(text: &str) -> Result<Database> {
    // Pass 1: schema.
    let schema = parse_schema(text)?;
    // Pass 2: facts.
    let mut db = Database::new(schema);
    db.set_defer_fk_checks(true);
    let mut current_rel: Option<(String, Vec<ValueType>)> = None;
    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("@relation ") {
            let rel_id = db
                .schema()
                .relation_id(name.trim())
                .ok_or_else(|| DbError::UnknownRelation(name.trim().to_string()))?;
            let types: Vec<ValueType> = db
                .schema()
                .relation(rel_id)
                .attributes
                .iter()
                .map(|a| a.ty)
                .collect();
            current_rel = Some((name.trim().to_string(), types));
        } else if line.starts_with("@attr") || line.starts_with("@fk") {
            // Schema annotations — already applied when the schema was read.
        } else if line == "@end" {
            current_rel = None;
        } else {
            let (rel_name, types) = current_rel.as_ref().ok_or_else(|| {
                DbError::Parse(format!("line {}: fact outside @relation", line_no + 1))
            })?;
            let fields: Vec<&str> = line.split('\t').collect();
            if fields.len() != types.len() {
                return Err(DbError::Parse(format!(
                    "line {}: expected {} fields, got {}",
                    line_no + 1,
                    types.len(),
                    fields.len()
                )));
            }
            let mut values = Vec::with_capacity(fields.len());
            for (field, ty) in fields.iter().zip(types.iter()) {
                let v = Value::parse(field, *ty)
                    .map_err(|e| DbError::Parse(format!("line {}: {e}", line_no + 1)))?;
                values.push(v);
            }
            db.insert_into(rel_name, values)?;
        }
    }
    db.set_defer_fk_checks(false);
    db.check_all_fks()?;
    Ok(db)
}

/// Accumulator for one relation while scanning: name, attributes, key names.
type PendingRelation = (String, Vec<(String, ValueType)>, Vec<String>);

fn parse_schema(text: &str) -> Result<Schema> {
    let mut b = SchemaBuilder::new();
    let mut current: Option<PendingRelation> = None;
    let mut fks: Vec<(String, Vec<String>, String)> = Vec::new();

    let flush = |b: &mut SchemaBuilder, rel: Option<PendingRelation>| -> Result<()> {
        if let Some((name, attrs, key)) = rel {
            let mut rb = b.relation(name);
            for (attr_name, ty) in &attrs {
                rb = rb.attr(attr_name.clone(), *ty);
            }
            let key_refs: Vec<&str> = key.iter().map(std::string::String::as_str).collect();
            if key_refs.is_empty() {
                return Err(DbError::Parse("relation without key".into()));
            }
            rb.key(&key_refs);
        }
        Ok(())
    };

    for (line_no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if let Some(name) = line.strip_prefix("@relation ") {
            flush(&mut b, current.take())?;
            current = Some((name.trim().to_string(), Vec::new(), Vec::new()));
        } else if let Some(rest) = line.strip_prefix("@attr ") {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() < 2 {
                return Err(DbError::Parse(format!(
                    "line {}: malformed @attr",
                    line_no + 1
                )));
            }
            // PANICS: in bounds — the malformed-@attr check above
            // guarantees at least two fields.
            let ty = match parts[1] {
                "int" => ValueType::Int,
                "float" => ValueType::Float,
                "text" => ValueType::Text,
                "bool" => ValueType::Bool,
                other => {
                    return Err(DbError::Parse(format!(
                        "line {}: unknown type {other}",
                        line_no + 1
                    )))
                }
            };
            let (name, attrs, key) = current.as_mut().ok_or_else(|| {
                DbError::Parse(format!("line {}: @attr outside @relation", line_no + 1))
            })?;
            let _ = name;
            // PANICS: in bounds — same length guard as the type field.
            attrs.push((parts[0].to_string(), ty));
            if parts.get(2) == Some(&"key") {
                // PANICS: in bounds — same length guard as the type field.
                key.push(parts[0].to_string());
            }
        } else if let Some(rest) = line.strip_prefix("@fk ") {
            let (name, _, _) = current.as_ref().ok_or_else(|| {
                DbError::Parse(format!("line {}: @fk outside @relation", line_no + 1))
            })?;
            let parts: Vec<&str> = rest.split("->").collect();
            if parts.len() != 2 {
                return Err(DbError::Parse(format!(
                    "line {}: malformed @fk",
                    line_no + 1
                )));
            }
            // PANICS: in bounds — the malformed-@fk check above
            // guarantees exactly two `->`-separated halves.
            let from_attrs: Vec<String> = parts[0]
                .trim()
                .split(',')
                .map(|s| s.trim().to_string())
                .collect();
            // PANICS: in bounds — same two-halves guard.
            fks.push((name.clone(), from_attrs, parts[1].trim().to_string()));
        } else if line == "@end" {
            flush(&mut b, current.take())?;
        }
        // Fact lines are ignored in the schema pass.
    }
    flush(&mut b, current.take())?;
    for (from_rel, from_attrs, to_rel) in fks {
        let refs: Vec<&str> = from_attrs.iter().map(std::string::String::as_str).collect();
        b.foreign_key(from_rel, &refs, to_rel);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::movies_database;

    #[test]
    fn roundtrip_movies_database() {
        let db = movies_database();
        let text = to_text(&db);
        let db2 = from_text(&text).expect("reparse");
        assert_eq!(db2.total_facts(), db.total_facts());
        assert_eq!(db2.schema().relation_count(), db.schema().relation_count());
        assert_eq!(
            db2.schema().foreign_keys().len(),
            db.schema().foreign_keys().len()
        );
        // Facts survive (compare per-relation sets via re-serialisation).
        assert_eq!(to_text(&db2), text);
    }

    #[test]
    fn null_values_roundtrip() {
        let db = movies_database();
        let text = to_text(&db);
        assert!(text.contains('⊥'), "m3's null genre must serialise");
        let db2 = from_text(&text).unwrap();
        let movies = db2.schema().relation_id("MOVIES").unwrap();
        let nulls = db2
            .facts(movies)
            .filter(|(_, f)| f.get(3).is_null())
            .count();
        assert_eq!(nulls, 1);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_text("m01\ts03").is_err()); // fact outside relation
        assert!(from_text("@relation X\n@attr a wat key\n@end").is_err()); // bad type
        let missing_field = "@relation X\n@attr a int key\n@attr b int\n@end\n@relation X2\n@attr c int key\n1\t2\t3\n@end";
        assert!(from_text(missing_field).is_err());
    }
}
