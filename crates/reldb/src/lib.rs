//! # reldb — relational database substrate
//!
//! A small in-memory relational database engine purpose-built for the
//! stable-tuple-embedding workspace. It implements exactly the data model of
//! the paper's §II ("Preliminaries"):
//!
//! * a **schema** is a collection of relation schemas `R(A₁,…,A_k)`, each
//!   with a unique **key** `key(R) ⊆ {A₁,…,A_k}`,
//! * **foreign-key constraints** `R[B₁,…,B_ℓ] ⊆ S[C₁,…,C_ℓ]` where
//!   `{C₁,…,C_ℓ} = key(S)`,
//! * a **database** is a finite set of **facts** `R(a₁,…,a_k)` whose values
//!   may be the distinguished null `⊥`; key attributes must be non-null and
//!   unique, and every fact with non-null FK attributes must reference an
//!   existing fact (an FK with a null referencing attribute is ignored, as
//!   in the paper).
//!
//! On top of that data model the engine maintains the secondary indexes the
//! embedding algorithms need (value index `(R, A, a) → facts` for random
//! walks, and reverse-reference indexes for backward FK steps), and
//! implements the **on-delete-cascade** deletion with a replayable journal
//! that the paper's dynamic experiment protocol (§VI-E) requires.
//!
//! ## Change tracking for derived caches
//!
//! Two complementary mechanisms let consumers keep derived state (walk
//! distribution caches, graph views) consistent with a mutating database:
//!
//! * the **epoch counter** ([`Database::epoch`]) plus the process-unique
//!   **lineage id** ([`Database::db_id`]) name an immutable content
//!   snapshot — equal pairs guarantee unchanged content;
//! * the **mutation journal** ([`Database::journal_since`]) records *what*
//!   changed between two epochs of one lineage, as a bounded ring of
//!   [`MutationRecord`]s (`Insert`/`Delete`/`Restore`, per fact). A cache
//!   that fell behind replays the records it missed and evicts only the
//!   entries those mutations can reach; when the ring has wrapped, the
//!   journal says so and the cache falls back to a full rebuild.
//!
//! `stembed-core`'s `DistCache` is the canonical consumer: it scopes each
//! record by FK-reachability of the walk schemes it caches, which is what
//! keeps it warm across the one-by-one insertion protocol.

pub mod cascade;
pub mod database;
pub mod error;
pub mod fact;
pub mod movies;
pub mod schema;
pub mod text;
pub mod value;

pub use cascade::{cascade_delete, restore_journal, DeletionJournal};
pub use database::{Database, DurabilityHook, MutationKind, MutationRecord};
pub use error::DbError;
pub use fact::{Fact, FactId};
pub use schema::{Attribute, FkId, ForeignKey, RelationId, RelationSchema, Schema, SchemaBuilder};
pub use value::{Value, ValueType};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DbError>;
