//! Facts (tuples) and stable fact identifiers.

use crate::{RelationId, Value};
use std::fmt;

/// Stable identifier of a fact: relation plus slot index within that
/// relation's store.
///
/// Slots are never reused within the lifetime of a `Database`, so a `FactId`
/// remains valid (it either denotes the same live fact or a tombstone —
/// never a *different* fact). The embedding structures key their vectors by
/// `FactId`; slot stability is what makes the "frozen old embedding"
/// guarantee of the paper meaningful across insertions and deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactId {
    /// Owning relation.
    pub rel: RelationId,
    /// Slot within the relation store.
    pub row: u32,
}

impl FactId {
    /// Construct from raw parts.
    pub fn new(rel: RelationId, row: u32) -> Self {
        FactId { rel, row }
    }
}

impl fmt::Display for FactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}#{}", self.rel.0, self.row)
    }
}

/// A fact `R(a₁,…,a_k)`: the values in attribute order.
///
/// The owning relation is implied by context (facts live inside per-relation
/// stores); pairing a `Fact` with its [`FactId`] recovers it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fact {
    values: Box<[Value]>,
}

impl Fact {
    /// Construct from a value vector.
    pub fn new(values: Vec<Value>) -> Self {
        Fact {
            values: values.into_boxed_slice(),
        }
    }

    /// The values, in attribute order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at attribute position `i` — the paper's `f[Aᵢ]`.
    #[inline]
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// Projection `f[B₁,…,B_ℓ]` as an owned vector.
    pub fn project(&self, attrs: &[usize]) -> Vec<Value> {
        attrs.iter().map(|&i| self.values[i].clone()).collect()
    }

    /// [`Fact::project`] into a caller-provided buffer (cleared first).
    /// Hot loops that probe an index once per frontier fact reuse one
    /// buffer instead of allocating a key vector per probe.
    pub fn project_into(&self, attrs: &[usize], out: &mut Vec<Value>) {
        out.clear();
        out.extend(attrs.iter().map(|&i| self.values[i].clone()));
    }

    /// `true` iff any projected attribute is null — such an FK tuple is
    /// ignored per the paper's convention.
    pub fn any_null(&self, attrs: &[usize]) -> bool {
        attrs.iter().any(|&i| self.values[i].is_null())
    }

    /// Arity of the fact.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fact() -> Fact {
        Fact::new(vec![Value::Text("m1".into()), Value::Null, Value::Int(200)])
    }

    #[test]
    fn accessors() {
        let f = fact();
        assert_eq!(f.arity(), 3);
        assert_eq!(f.get(0), &Value::Text("m1".into()));
        assert!(f.get(1).is_null());
    }

    #[test]
    fn projection_and_null_detection() {
        let f = fact();
        assert_eq!(
            f.project(&[2, 0]),
            vec![Value::Int(200), Value::Text("m1".into())]
        );
        assert!(f.any_null(&[0, 1]));
        assert!(!f.any_null(&[0, 2]));
    }

    #[test]
    fn display() {
        assert_eq!(fact().to_string(), "(m1, ⊥, 200)");
        assert_eq!(FactId::new(RelationId(2), 7).to_string(), "r2#7");
    }
}
