//! Typed attribute values with the distinguished null `⊥`.

use std::fmt;

/// The type of an attribute's domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValueType {
    /// 64-bit signed integers.
    Int,
    /// 64-bit floats. `NaN` is rejected at insertion time so that values can
    /// be hashed and compared reliably.
    Float,
    /// UTF-8 strings (categorical data, identifiers, free text).
    Text,
    /// Booleans.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Float => write!(f, "float"),
            ValueType::Text => write!(f, "text"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

/// A single attribute value.
///
/// `Null` is the distinguished `⊥` of the paper: it belongs to no attribute
/// domain, is never equal to itself for FK purposes (an FK with a null
/// referencing attribute is simply ignored), and walk destinations with null
/// target values are conditioned away (paper §V-A).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The distinguished null `⊥`.
    Null,
    /// Integer value.
    Int(i64),
    /// Float value. Never `NaN` (enforced on insertion).
    Float(f64),
    /// String value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

// Manual Eq: `Float` never holds NaN (checked at the insertion boundary), so
// reflexivity holds and the impl is sound.
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(x) => {
                2u8.hash(state);
                // Normalise -0.0 to 0.0 so that == values hash identically.
                let bits = if *x == 0.0 { 0u64 } else { x.to_bits() };
                bits.hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bool(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl Value {
    /// `true` iff this value is `⊥`.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The runtime type, or `None` for null.
    pub fn value_type(&self) -> Option<ValueType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(ValueType::Int),
            Value::Float(_) => Some(ValueType::Float),
            Value::Text(_) => Some(ValueType::Text),
            Value::Bool(_) => Some(ValueType::Bool),
        }
    }

    /// `true` iff the value is null or matches `ty`.
    pub fn conforms_to(&self, ty: ValueType) -> bool {
        match self.value_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Numeric view: `Int` and `Float` as `f64`, `Bool` as 0/1, otherwise
    /// `None`. Used by the Gaussian kernel and the flat-feature baseline.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(x) => Some(*x),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Borrow the text payload if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` iff the value is a `Float` holding `NaN` — rejected by
    /// [`crate::Database::insert`].
    pub fn is_nan(&self) -> bool {
        matches!(self, Value::Float(x) if x.is_nan())
    }

    /// A total order over values: by variant (`Null < Int < Float < Text <
    /// Bool`), then within the variant (floats via `total_cmp`; `NaN` never
    /// occurs past the insertion boundary). Used to put value-distribution
    /// supports into a canonical order so that floating-point sums over them
    /// are reproducible — `HashMap` iteration order is not.
    pub fn canonical_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Int(_) => 1,
                Value::Float(_) => 2,
                Value::Text(_) => 3,
                Value::Bool(_) => 4,
            }
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// Parse a textual token into a value of the given type. The token `⊥`
    /// (or an empty string) parses as null for any type.
    pub fn parse(token: &str, ty: ValueType) -> Result<Value, String> {
        let t = token.trim();
        if t.is_empty() || t == "⊥" || t == "NULL" {
            return Ok(Value::Null);
        }
        match ty {
            ValueType::Int => t
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad int {t:?}: {e}")),
            ValueType::Float => {
                let x = t
                    .parse::<f64>()
                    .map_err(|e| format!("bad float {t:?}: {e}"))?;
                if x.is_nan() {
                    Err("NaN is not a valid float value".into())
                } else {
                    Ok(Value::Float(x))
                }
            }
            ValueType::Text => Ok(Value::Text(t.to_string())),
            ValueType::Bool => match t {
                "true" | "1" => Ok(Value::Bool(true)),
                "false" | "0" => Ok(Value::Bool(false)),
                _ => Err(format!("bad bool {t:?}")),
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "⊥"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_properties() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.value_type(), None);
        assert!(Value::Null.conforms_to(ValueType::Int));
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn type_conformance() {
        assert!(Value::Int(3).conforms_to(ValueType::Int));
        assert!(!Value::Int(3).conforms_to(ValueType::Text));
        assert!(Value::Text("x".into()).conforms_to(ValueType::Text));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn equal_values_hash_equal() {
        let pairs = [
            (Value::Int(42), Value::Int(42)),
            (Value::Text("ab".into()), Value::Text("ab".into())),
            (Value::Float(1.5), Value::Float(1.5)),
            (Value::Bool(true), Value::Bool(true)),
            (Value::Null, Value::Null),
        ];
        for (a, b) in pairs {
            assert_eq!(a, b);
            assert_eq!(hash_of(&a), hash_of(&b));
        }
    }

    #[test]
    fn distinct_variants_are_unequal() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Null, Value::Int(0));
    }

    #[test]
    fn parse_roundtrips() {
        assert_eq!(Value::parse("7", ValueType::Int).unwrap(), Value::Int(7));
        assert_eq!(
            Value::parse("2.5", ValueType::Float).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            Value::parse("hi", ValueType::Text).unwrap(),
            Value::Text("hi".into())
        );
        assert_eq!(
            Value::parse("true", ValueType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(Value::parse("⊥", ValueType::Int).unwrap(), Value::Null);
        assert_eq!(Value::parse("", ValueType::Text).unwrap(), Value::Null);
        assert!(Value::parse("x", ValueType::Int).is_err());
        assert!(Value::parse("NaN", ValueType::Float).is_err());
    }

    #[test]
    fn canonical_cmp_is_a_total_order() {
        use std::cmp::Ordering;
        let vals = [
            Value::Null,
            Value::Int(-3),
            Value::Int(5),
            Value::Float(-0.5),
            Value::Float(2.25),
            Value::Text("a".into()),
            Value::Text("b".into()),
            Value::Bool(false),
            Value::Bool(true),
        ];
        // The listing above is already canonically sorted.
        for w in vals.windows(2) {
            assert_eq!(w[0].canonical_cmp(&w[1]), Ordering::Less);
            assert_eq!(w[1].canonical_cmp(&w[0]), Ordering::Greater);
        }
        for v in &vals {
            assert_eq!(v.canonical_cmp(v), Ordering::Equal);
        }
    }

    #[test]
    fn as_f64_views() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(1.25).as_f64(), Some(1.25));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "⊥");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Text("abc".into()).to_string(), "abc");
    }
}
