//! On-delete-cascade deletion with a replayable journal.
//!
//! The paper's dynamic experiment (§VI-E) partitions a database by deleting
//! prediction tuples "with an *On Delete Cascade* deletion, which will
//! automatically fix the foreign-key constraints throughout the database. In
//! particular, data that is only referenced by the tuple that is being
//! deleted is also removed from the database." Re-insertion then happens
//! "one-by-one in the inverse order of their deletion", each prediction
//! tuple together with the facts its deletion cascaded to.
//!
//! Two cascade directions are therefore involved:
//!
//! 1. **Downstream** (classic `ON DELETE CASCADE`): every fact *referencing*
//!    the deleted fact must go too, recursively — otherwise the database
//!    would violate its FK constraints.
//! 2. **Orphan collection**: every fact the deleted fact *referenced* that
//!    is left with zero referencers is garbage-collected, recursively
//!    (Example 6.1 of the paper: deleting a collaboration removes the actor
//!    that only it referenced).
//!
//! [`cascade_delete`] performs both and records every removal (in removal
//! order) in a [`DeletionJournal`]. Replaying a journal in reverse restores
//! the exact prior state — parents re-appear before the facts referencing
//! them, so every intermediate state satisfies the constraints.

use crate::{Database, Fact, FactId, Result};
use std::collections::HashSet;

/// One removed fact: its identity (slot is preserved for restoration) and
/// its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The id the fact had (and will have again after restoration).
    pub id: FactId,
    /// The removed fact.
    pub fact: Fact,
}

/// All facts removed by one cascading deletion, in removal order: referencing
/// facts first, then the root, then collected orphans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeletionJournal {
    /// Entries in removal order.
    pub entries: Vec<JournalEntry>,
}

impl DeletionJournal {
    /// Number of removed facts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` iff nothing was removed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The ids of all removed facts, in removal order.
    pub fn ids(&self) -> impl Iterator<Item = FactId> + '_ {
        self.entries.iter().map(|e| e.id)
    }

    /// Merge another journal into this one (batch experiments accumulate
    /// per-tuple journals).
    pub fn extend(&mut self, other: DeletionJournal) {
        self.entries.extend(other.entries);
    }
}

/// Delete `root` with full cascade semantics and journal the removals.
///
/// * `collect_orphans = true` additionally garbage-collects facts that the
///   removed facts referenced and that end up unreferenced (the paper's
///   experiment behaviour).
/// * Every removed fact keeps its slot as a tombstone, so
///   [`restore_journal`] can revive identical [`FactId`]s.
pub fn cascade_delete(
    db: &mut Database,
    root: FactId,
    collect_orphans: bool,
) -> Result<DeletionJournal> {
    db.fact_required(root)?; // fail fast on dead ids
    let mut journal = DeletionJournal::default();
    let mut removed: HashSet<FactId> = HashSet::new();

    delete_with_children(db, root, &mut journal, &mut removed)?;

    if collect_orphans {
        // Repeatedly sweep: a parent may become orphaned only when one of
        // the facts removed so far referenced it. Process as a worklist.
        let mut frontier: Vec<FactId> = journal.entries.iter().map(|e| e.id).collect();
        while let Some(id) = frontier.pop() {
            // Parents this fact referenced. The fact is already deleted, so
            // read its values from the journal.
            let entry = journal
                .entries
                .iter()
                .find(|e| e.id == id)
                // PANICS: never — the frontier was seeded from this journal.
                .expect("frontier ids come from the journal")
                .clone();
            let fk_ids: Vec<_> = db.schema().fks_from(id.rel).to_vec();
            for fk_id in fk_ids {
                let fk = db.schema().foreign_key(fk_id).clone();
                if entry.fact.any_null(&fk.from_attrs) {
                    continue;
                }
                let key = entry.fact.project(&fk.from_attrs);
                let Some(parent) = db.lookup_key(fk.to_rel, &key) else {
                    continue; // parent already removed
                };
                if removed.contains(&parent) {
                    continue;
                }
                if db.reference_count(parent) == 0 {
                    // Orphaned by this cascade: remove (it has no children
                    // left by definition of reference_count == 0).
                    let fact = db.delete_unchecked(parent)?;
                    removed.insert(parent);
                    journal.entries.push(JournalEntry { id: parent, fact });
                    frontier.push(parent);
                }
            }
        }
    }
    Ok(journal)
}

/// Post-order deletion: all facts referencing `id` first, then `id` itself.
fn delete_with_children(
    db: &mut Database,
    id: FactId,
    journal: &mut DeletionJournal,
    removed: &mut HashSet<FactId>,
) -> Result<()> {
    if removed.contains(&id) {
        return Ok(());
    }
    // Mark before recursing so reference cycles terminate.
    removed.insert(id);
    let fk_ids: Vec<_> = db.schema().fks_to(id.rel).to_vec();
    for fk_id in fk_ids {
        loop {
            // Re-query each round: recursive deletions mutate the index.
            let children = db.referencing_facts(fk_id, id);
            let Some(&child) = children.iter().find(|c| !removed.contains(c)) else {
                break;
            };
            delete_with_children(db, child, journal, removed)?;
        }
    }
    let fact = db.delete_unchecked(id)?;
    journal.entries.push(JournalEntry { id, fact });
    Ok(())
}

/// Replay a journal in reverse, restoring every fact into its original slot.
/// Returns the restored ids in restoration order.
pub fn restore_journal(db: &mut Database, journal: &DeletionJournal) -> Result<Vec<FactId>> {
    let mut restored = Vec::with_capacity(journal.len());
    for entry in journal.entries.iter().rev() {
        db.restore(entry.id, entry.fact.clone())?;
        restored.push(entry.id);
    }
    Ok(restored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::movies::{movies_database, movies_database_labeled};

    #[test]
    fn example_6_1_semantics() {
        // Paper Example 6.1 (with the paper's evident typo fixed: the movie
        // referenced by c1 is m3/Godzilla, not m4): deleting c1 removes a2
        // (Watanabe, only referenced by c1) and m3 (only referenced by c1),
        // but keeps a1 (DiCaprio, still referenced by c4).
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["c1"], true).unwrap();
        let removed: Vec<FactId> = journal.ids().collect();
        assert!(removed.contains(&ids["c1"]));
        assert!(removed.contains(&ids["a2"]), "Watanabe must be collected");
        assert!(removed.contains(&ids["m3"]), "Godzilla must be collected");
        assert!(db.fact(ids["a1"]).is_some(), "DiCaprio must survive");
        assert!(
            db.fact(ids["m6"]).is_some(),
            "Wolf of Wall St. must survive"
        );
        // c1 removed first (root has no children), orphans after.
        assert_eq!(journal.entries[0].id, ids["c1"]);
    }

    #[test]
    fn downstream_cascade_removes_referencing_facts() {
        // Deleting actor a4 must remove collaborations c2, c3, c4.
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a4"], false).unwrap();
        let removed: Vec<FactId> = journal.ids().collect();
        for label in ["c2", "c3", "c4", "a4"] {
            assert!(removed.contains(&ids[label]), "{label} must be removed");
        }
        // Without orphan collection nothing else goes.
        assert!(db.fact(ids["a5"]).is_some());
        assert!(db.fact(ids["m4"]).is_some());
        db.check_all_fks().unwrap();
    }

    #[test]
    fn orphan_collection_recurses_through_chains() {
        // Deleting a4 with orphan collection: the collaborations c2, c3, c4
        // cascade away; the actors/movies only they referenced (a5, a3, m4,
        // m5, m6) are collected; m5's studio s2 (Universal) was referenced
        // only by m5 and is collected transitively. a1 (DiCaprio) survives
        // because c1 still references it; s3 survives via m1.
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a4"], true).unwrap();
        let removed: Vec<FactId> = journal.ids().collect();
        for label in ["a4", "c2", "c3", "c4", "a5", "a3", "m4", "m5", "m6", "s2"] {
            assert!(
                removed.contains(&ids[label]),
                "{label} should be collected, removed = {removed:?}"
            );
        }
        assert!(
            db.fact(ids["a1"]).is_some(),
            "DiCaprio still referenced by c1"
        );
        assert!(db.fact(ids["s3"]).is_some(), "s3 still referenced by m1");
        assert!(db.fact(ids["s1"]).is_some(), "s1 still referenced by m2/m3");
        assert!(db.fact(ids["m1"]).is_some());
        db.check_all_fks().unwrap();
    }

    #[test]
    fn journal_restores_exact_state() {
        let (mut db, ids) = movies_database_labeled();
        let before = db.clone();
        let journal = cascade_delete(&mut db, ids["a4"], true).unwrap();
        assert!(db.total_facts() < before.total_facts());
        let restored = restore_journal(&mut db, &journal).unwrap();
        assert_eq!(restored.len(), journal.len());
        assert_eq!(db.total_facts(), before.total_facts());
        // Every original fact is back under its original id.
        for (label, id) in &ids {
            assert_eq!(
                db.fact(*id),
                before.fact(*id),
                "fact {label} differs after restore"
            );
        }
        db.check_all_fks().unwrap();
    }

    #[test]
    fn intermediate_states_respect_fks() {
        // Restore step by step; after each single restoration the database
        // must satisfy all FK constraints (this is what makes one-by-one
        // re-insertion well-defined).
        let (mut db, ids) = movies_database_labeled();
        let journal = cascade_delete(&mut db, ids["a4"], true).unwrap();
        for entry in journal.entries.iter().rev() {
            db.restore(entry.id, entry.fact.clone()).unwrap();
            db.check_all_fks().unwrap();
        }
    }

    #[test]
    fn deleting_dead_fact_fails() {
        let mut db = movies_database();
        let rel = db.schema().relation_id("ACTORS").unwrap();
        let bogus = FactId::new(rel, 999);
        assert!(cascade_delete(&mut db, bogus, true).is_err());
    }
}
